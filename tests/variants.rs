//! Integration tests for the vulnerability classes of Table 3 and the novel
//! variants of §6.3 / §6.4 / §A.6, exercised end-to-end on the handwritten
//! gadgets.

use revizor_suite::prelude::*;
use rvz_executor::SideChannelKind;

fn detect(target: &Target, contract: Contract, tc: &TestCase, max_inputs: usize) -> Option<usize> {
    // Try a few input seeds, as the paper's Table 5 harness does.
    (0..4u64).find_map(|s| {
        detection::inputs_to_violation(target, contract.clone(), tc, s * 17 + 5, max_inputs)
    })
}

#[test]
fn v4_violates_ct_seq_and_ct_cond_but_not_ct_bpas() {
    // Table 3, Target 2: the store-bypass leak is a violation of contracts
    // that do not permit BPAS, and is permitted by CT-BPAS.
    let target = Target::target2();
    let gadget = gadgets::spectre_v4();
    assert!(detect(&target, Contract::ct_seq(), &gadget, 64).is_some());
    assert!(detect(&target, Contract::ct_cond(), &gadget, 64).is_some());
    assert!(detect(&target, Contract::ct_bpas(), &gadget, 48).is_none());
}

#[test]
fn v4_patch_is_effective() {
    // Table 3, Target 4: with the SSBD microcode patch the same gadget
    // complies with every contract.
    let target = Target::target4();
    let gadget = gadgets::spectre_v4();
    assert!(detect(&target, Contract::ct_seq(), &gadget, 48).is_none());
}

#[test]
fn v1_violates_ct_seq_and_ct_bpas_but_not_ct_cond() {
    // Table 3, Target 5.
    let target = Target::target5();
    let gadget = gadgets::spectre_v1();
    assert!(detect(&target, Contract::ct_seq(), &gadget, 64).is_some());
    assert!(detect(&target, Contract::ct_bpas(), &gadget, 64).is_some());
    assert!(detect(&target, Contract::ct_cond(), &gadget, 48).is_none());
}

#[test]
fn mds_violates_every_ct_contract_on_target7() {
    // Table 3, Target 7: assist-based leaks expose values, which no CT
    // contract permits.
    let target = Target::target7();
    let gadget = gadgets::mds_lfb();
    for contract in Contract::table3_contracts() {
        assert!(
            detect(&target, contract.clone(), &gadget, 64).is_some(),
            "MDS should violate {contract}"
        );
    }
}

#[test]
fn lvi_null_detected_on_mds_patched_coffee_lake() {
    // Table 3, Target 8.
    let target = Target::target8();
    assert!(detect(&target, Contract::ct_seq(), &gadgets::lvi_null(), 64).is_some());
    // The same gadget on a part without zero-injection and without MDS
    // leakage would comply; approximate that check with the in-order part.
    let mut inorder = target.clone();
    inorder.cpu_config = UarchConfig::in_order();
    assert!(detect(&inorder, Contract::ct_seq(), &gadgets::lvi_null(), 32).is_none());
}

#[test]
fn v1_latency_variant_race_is_visible_in_the_hardware_footprint() {
    // §6.3 / Figure 5: whether the speculative load leaves a cache trace
    // depends on the division latency.  The gadget violates CT-SEQ like any
    // V1 leak; the latency-dependent part of the footprint is visible
    // directly on the CPU under test (the same race the paper reports).
    // Under CT-COND the divergence is a strict subset (present/absent
    // speculative access), which the §5.5 trace-equivalence absorbs — the
    // paper itself notes that the latency variants are rare and hard to
    // reproduce; see EXPERIMENTS.md.
    let target = Target::target6();
    let gadget = gadgets::v1_var();
    assert!(
        detect(&target, Contract::ct_seq(), &gadget, 100).is_some(),
        "the V1-var gadget must at least violate CT-SEQ"
    );

    // Demonstrate the race itself on the CPU: same masked quotient (same
    // CT-COND class), different division latency, different footprint.
    let mut cpu = SpecCpu::new(target.cpu_config.clone());
    let mk_input = |rax: u64, rbx: u64| {
        let mut i = Input::zeroed(gadget.sandbox());
        i.set_reg(Reg::Rax, rax); // dividend
        i.set_reg(Reg::Rcx, 64); // divisor (patched to 65 by the gadget)
        i.set_reg(Reg::Rbx, rbx); // out-of-bounds selector
        i
    };
    // Train the branch towards taken.
    for _ in 0..6 {
        cpu.run(&gadget, &mk_input(0, 1), &RunOptions::default()).unwrap();
    }
    // The speculative access lands at masked(quotient + RBX) = 192.
    let leak_line = gadget.sandbox().base + 192;
    cpu.cache_mut().flush_all();
    cpu.run(&gadget, &mk_input(0, 200), &RunOptions::default()).unwrap(); // fast division
    let fast_leak = cpu.cache_mut().is_cached(leak_line);

    let mut cpu = SpecCpu::new(target.cpu_config.clone());
    for _ in 0..6 {
        cpu.run(&gadget, &mk_input(0, 1), &RunOptions::default()).unwrap();
    }
    cpu.cache_mut().flush_all();
    cpu.run(&gadget, &mk_input(192, 200), &RunOptions::default()).unwrap(); // slow division
    let slow_leak = cpu.cache_mut().is_cached(leak_line);

    assert!(fast_leak, "fast division completes inside the speculation window");
    assert!(!slow_leak, "slow division starves the speculative load");
}

#[test]
fn speculative_store_eviction_only_on_coffee_lake() {
    // §6.4: speculative stores modify the cache on Coffee Lake but not on
    // Skylake.
    let contract = Contract::ct_cond_no_spec_store();
    let gadget = gadgets::speculative_store_eviction();

    let mut skylake = Target::target5();
    skylake.mode = MeasurementMode::prime_probe();
    assert!(detect(&skylake, contract.clone(), &gadget, 64).is_none());

    let mut coffee_lake = Target::target8();
    coffee_lake.mode = MeasurementMode::prime_probe();
    coffee_lake.isa = IsaSubset::AR_MEM_CB;
    assert!(detect(&coffee_lake, contract, &gadget, 64).is_some());
}

#[test]
fn a6_double_load_store_bypass_variant_violates_ct_seq() {
    // §A.6: two loads from the same address transiently observe different
    // values when only one of them bypasses the pending store.
    let target = Target::target2();
    let gadget = gadgets::ssb_double_load();
    assert!(detect(&target, Contract::ct_seq(), &gadget, 100).is_some());
}

#[test]
fn flush_reload_and_evict_reload_find_the_same_v1_violation() {
    // §6.1: on a 4 KiB sandbox the three measurement modes observe the same
    // thing, so the choice of side channel does not change the verdict.
    let gadget = gadgets::spectre_v1();
    for channel in [SideChannelKind::PrimeProbe, SideChannelKind::FlushReload, SideChannelKind::EvictReload] {
        let mut target = Target::target5();
        target.mode = MeasurementMode { channel, assists: false };
        assert!(
            detect(&target, Contract::ct_seq(), &gadget, 64).is_some(),
            "V1 must be detected through {channel:?}"
        );
    }
}

#[test]
fn classification_labels_match_table3() {
    use revizor::classify::classify;
    assert_eq!(
        classify(&Target::target5(), &Contract::ct_seq(), &gadgets::spectre_v1()),
        VulnClass::SpectreV1
    );
    assert_eq!(
        classify(&Target::target2(), &Contract::ct_seq(), &gadgets::spectre_v4()),
        VulnClass::SpectreV4
    );
    assert_eq!(
        classify(&Target::target7(), &Contract::ct_cond_bpas(), &gadgets::mds_lfb()),
        VulnClass::Mds
    );
    assert_eq!(
        classify(&Target::target8(), &Contract::ct_cond_bpas(), &gadgets::lvi_null()),
        VulnClass::LviNull
    );
}
