//! Fuzzer configuration.

use crate::targets::Target;
use rvz_executor::ExecutorConfig;
use rvz_gen::GeneratorConfig;
use rvz_model::Contract;
use serde::{Deserialize, Serialize};

/// Configuration of one fuzzing campaign (one target, one contract).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzerConfig {
    /// The contract the CPU is tested against.
    pub contract: Contract,
    /// Test-case / input generation parameters.
    pub generator: GeneratorConfig,
    /// Executor parameters (measurement mode, repetitions, noise).
    pub executor: ExecutorConfig,
    /// Stop after this many test cases if no violation was found.
    pub max_test_cases: usize,
    /// Base seed of the campaign; everything downstream is derived from it.
    pub seed: u64,
    /// Re-check reported violations with nested speculation enabled in the
    /// model, to filter false violations caused by the nesting-disabled
    /// default (§5.4).
    pub verify_with_nesting: bool,
    /// Re-check reported violations with the priming-swap test to filter
    /// divergence caused by the microarchitectural context (§5.3).
    pub priming_swap_check: bool,
    /// Discard statically-leak-impossible test cases before the model and
    /// hardware measurements (the [`staticanalysis`](crate::staticanalysis)
    /// pre-filter).  Sound — only true negatives are discarded — but off by
    /// default so reported test-case counts match the unfiltered pipeline.
    pub speculation_filter: bool,
    /// Number of test cases per testing round; the diversity analysis runs
    /// at round boundaries (§5.6).
    pub round_size: usize,
    /// Number of worker threads the campaign driver fans test cases out to
    /// within a round.  `1` processes rounds on the calling thread; larger
    /// values evaluate the test cases of one round concurrently.  Per-test-
    /// case seeding keeps the confirmed violations identical for any value
    /// of `parallelism` with a fixed campaign seed.
    pub parallelism: usize,
}

impl FuzzerConfig {
    /// Configuration for one of the paper's targets (Table 2) against a
    /// contract, with the paper's initial generator parameters.
    pub fn for_target(target: &Target, contract: Contract) -> FuzzerConfig {
        FuzzerConfig {
            contract,
            generator: GeneratorConfig::for_subset(target.isa),
            executor: ExecutorConfig::fast(target.mode),
            max_test_cases: 1000,
            seed: 0,
            verify_with_nesting: true,
            priming_swap_check: true,
            speculation_filter: false,
            round_size: 10,
            parallelism: 1,
        }
    }

    /// Builder: limit the number of test cases.
    pub fn with_max_test_cases(mut self, n: usize) -> FuzzerConfig {
        self.max_test_cases = n.max(1);
        self
    }

    /// Builder: set the number of inputs per test case.
    pub fn with_inputs_per_test_case(mut self, n: usize) -> FuzzerConfig {
        self.generator.inputs_per_test_case = n.max(2);
        self
    }

    /// Builder: set the campaign seed.
    pub fn with_seed(mut self, seed: u64) -> FuzzerConfig {
        self.seed = seed;
        self
    }

    /// Builder: replace the generator configuration.
    pub fn with_generator(mut self, generator: GeneratorConfig) -> FuzzerConfig {
        self.generator = generator;
        self
    }

    /// Builder: replace the executor configuration.
    pub fn with_executor(mut self, executor: ExecutorConfig) -> FuzzerConfig {
        self.executor = executor;
        self
    }

    /// Builder: set the number of round-driver worker threads (`0` and `1`
    /// both mean single-threaded).
    pub fn with_parallelism(mut self, n: usize) -> FuzzerConfig {
        self.parallelism = n.max(1);
        self
    }

    /// Builder: enable or disable the static speculation pre-filter.
    pub fn with_speculation_filter(mut self, enabled: bool) -> FuzzerConfig {
        self.speculation_filter = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_isa::IsaSubset;

    #[test]
    fn for_target_inherits_isa_and_mode() {
        let t = Target::target5();
        let c = FuzzerConfig::for_target(&t, Contract::ct_seq());
        assert_eq!(c.generator.isa, IsaSubset::AR_MEM_CB);
        assert_eq!(c.executor.mode, t.mode);
        assert_eq!(c.contract, Contract::ct_seq());
        assert!(c.verify_with_nesting);
        assert!(c.priming_swap_check);
    }

    #[test]
    fn builders() {
        let c = FuzzerConfig::for_target(&Target::target1(), Contract::ct_seq())
            .with_max_test_cases(5)
            .with_inputs_per_test_case(7)
            .with_seed(42);
        assert_eq!(c.max_test_cases, 5);
        assert_eq!(c.generator.inputs_per_test_case, 7);
        assert_eq!(c.seed, 42);
    }

    #[test]
    fn parallelism_defaults_to_one_and_is_clamped() {
        let c = FuzzerConfig::for_target(&Target::target1(), Contract::ct_seq());
        assert_eq!(c.parallelism, 1);
        assert_eq!(c.with_parallelism(0).parallelism, 1);
        let c = FuzzerConfig::for_target(&Target::target1(), Contract::ct_seq());
        assert_eq!(c.with_parallelism(4).parallelism, 4);
    }
}
