//! # rvz-gen
//!
//! Test-case and input generation (§5.1, §5.2).
//!
//! * [`ProgramGenerator`] samples the space of programs: it builds a random
//!   DAG of basic blocks, adds terminators matching the DAG, fills the
//!   blocks with random instructions from the configured ISA subset, and
//!   instruments the result so it can never fault (memory accesses are
//!   masked into the sandbox, divisions are patched against divide errors).
//! * [`InputGenerator`] produces pseudo-random architectural states from a
//!   32-bit PRNG whose entropy is deliberately reduced so that several
//!   inputs fall into the same contract-trace class (input effectiveness,
//!   CH2).
//!
//! # Example
//!
//! ```
//! use rvz_gen::{GeneratorConfig, InputGenerator, ProgramGenerator};
//! use rvz_emu::Runner;
//!
//! let config = GeneratorConfig::paper_initial();
//! let tc = ProgramGenerator::new(config.clone()).generate(42);
//! assert!(tc.validate().is_ok());
//! // Generated programs never fault, whatever the input.
//! let inputs = InputGenerator::new(config.input_entropy_bits).generate(&tc, 7, 10);
//! for input in &inputs {
//!     Runner::new(&tc).run(input).expect("instrumented test cases cannot fault");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod input_gen;
pub mod program;
pub mod scenario;

pub use config::GeneratorConfig;
pub use input_gen::InputGenerator;
pub use program::ProgramGenerator;
pub use scenario::Scenario;
