//! Regenerates Table 4: detection time until the first violation for the
//! targets that exhibit violations (Targets 2, 5, 7, 8), for different
//! amounts of contract-permitted leakage.
//!
//! Usage: `cargo run --release -p rvz-bench --bin table4 [samples per cell] [--threads=N]`
//!
//! Each sample runs the whole 10-cell grid (3 leakage rows x 4 targets,
//! minus the paper's two N/A cells) as **one** [`CampaignMatrix`] on the
//! shared worker pool: every target's test-case stream and hardware traces
//! are collected once and checked against all of its contracts, so a
//! sample costs a fraction of 10 independent campaigns.  Per-cell
//! detection times are the group's attributed evaluation time — comparable
//! to an independent campaign's wall clock — and every sample is a
//! deterministic function of its matrix seed.

use revizor::orchestrator::CampaignMatrix;
use revizor::targets::Target;
use rvz_bench::{budget_from_args, flag_value_from_args, fmt_duration, row};
use rvz_model::Contract;
use std::time::Duration;

fn main() {
    let samples = budget_from_args(5);
    let threads = flag_value_from_args::<usize>("--threads").unwrap_or(1);
    let max_test_cases = 300;
    println!("Table 4: detection time (mean over {samples} runs, coefficient of variation in parentheses)");
    println!();

    // Rows: contract-permitted leakage (None = CT-SEQ, V4 = CT-BPAS, V1 = CT-COND).
    let rows: Vec<(&str, Contract)> = vec![
        ("None", Contract::ct_seq()),
        ("V4", Contract::ct_bpas()),
        ("V1", Contract::ct_cond()),
    ];
    // Columns: the vulnerable targets and their headline vulnerability type.
    let columns: Vec<(&str, Target)> = vec![
        ("V4-type (Target 2)", Target::target2()),
        ("V1-type (Target 5)", Target::target5()),
        ("MDS-type (Target 7)", Target::target7()),
        ("LVI-type (Target 8)", Target::target8()),
    ];

    // N/A cells of the paper: a contract that already permits the target's
    // headline leak.
    let na = |row_label: &str, col_label: &str| {
        (row_label == "V4" && col_label.starts_with("V4"))
            || (row_label == "V1" && col_label.starts_with("V1"))
    };

    // One pooled matrix per sample; durations[row][col] collects the
    // detection times of the samples that found a violation.
    let mut durations: Vec<Vec<Vec<Duration>>> = vec![vec![Vec::new(); columns.len()]; rows.len()];
    for sample in 0..samples {
        let mut matrix = CampaignMatrix::new(sample as u64 * 7919 + 1)
            .with_budget(max_test_cases)
            .with_parallelism(threads);
        for (row_label, contract) in &rows {
            for (col_label, target) in &columns {
                if !na(row_label, col_label) {
                    matrix = matrix.add_cell(target.clone(), contract.clone());
                }
            }
        }
        let report = matrix.run();
        for (ri, (row_label, contract)) in rows.iter().enumerate() {
            for (ci, (col_label, target)) in columns.iter().enumerate() {
                if na(row_label, col_label) {
                    continue;
                }
                let cell = report.cell(target.id, contract).expect("grid covers every cell");
                if cell.found() {
                    durations[ri][ci].push(cell.detection_time);
                }
            }
        }
    }

    let widths = [10, 24, 24, 24, 24];
    let mut header = vec!["Permitted".to_string()];
    header.extend(columns.iter().map(|(n, _)| n.to_string()));
    println!("{}", row(&header, &widths));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 3 * widths.len()));

    for (ri, (row_label, _)) in rows.iter().enumerate() {
        let mut line = vec![row_label.to_string()];
        for (ci, (col_label, _)) in columns.iter().enumerate() {
            if na(row_label, col_label) {
                line.push("N/A".to_string());
                continue;
            }
            let found = &durations[ri][ci];
            if found.is_empty() {
                line.push(format!("not found ({samples} runs)"));
                continue;
            }
            let secs: Vec<f64> = found.iter().map(Duration::as_secs_f64).collect();
            let mean = secs.iter().sum::<f64>() / secs.len() as f64;
            let cv = if secs.len() < 2 || mean == 0.0 {
                0.0
            } else {
                let var = secs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / secs.len() as f64;
                var.sqrt() / mean
            };
            line.push(format!(
                "{} ({cv:.1}) [{} of {samples}]",
                fmt_duration(Duration::from_secs_f64(mean)),
                found.len(),
            ));
        }
        println!("{}", row(&line, &widths));
    }

    println!();
    println!(
        "Paper reference (absolute times are not comparable — the CPU under test here is a \
         simulator): most vulnerabilities detected within minutes; V4-type detection is the \
         slowest; permitting one leakage type does not prevent detection of the others."
    );
}
