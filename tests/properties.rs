//! Property-based tests (proptest) on the core invariants of the system:
//! the generator's fault-freedom guarantee, determinism of every pipeline
//! stage, the analyzer's relational properties, and trace algebra.

use proptest::prelude::*;
use revizor_suite::prelude::*;
use rvz_cache::SetVector;
use rvz_model::Observation;

fn arb_isa() -> impl Strategy<Value = IsaSubset> {
    prop_oneof![
        Just(IsaSubset::AR),
        Just(IsaSubset::AR_MEM),
        Just(IsaSubset::AR_MEM_VAR),
        Just(IsaSubset::AR_CB),
        Just(IsaSubset::AR_MEM_CB),
        Just(IsaSubset::AR_MEM_CB_VAR),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// §5.1 step 4: instrumentation guarantees that generated test cases
    /// never fault, for any seed, any ISA subset and any input.
    #[test]
    fn generated_test_cases_never_fault(
        seed in 0u64..5000,
        input_seed in 0u64..5000,
        isa in arb_isa(),
        instructions in 4usize..24,
        blocks in 1usize..6,
    ) {
        let config = GeneratorConfig::for_subset(isa)
            .with_instructions(instructions)
            .with_basic_blocks(blocks);
        let tc = ProgramGenerator::new(config).generate(seed);
        prop_assert_eq!(tc.validate(), Ok(()));
        let input = InputGenerator::new(4).generate_one(&tc, input_seed);
        prop_assert!(Runner::new(&tc).run(&input).is_ok());
    }

    /// The contract model is a pure function of (test case, input).
    #[test]
    fn contract_traces_are_deterministic(seed in 0u64..2000, input_seed in 0u64..2000) {
        let config = GeneratorConfig::for_subset(IsaSubset::AR_MEM_CB).with_instructions(12);
        let tc = ProgramGenerator::new(config).generate(seed);
        let input = InputGenerator::new(2).generate_one(&tc, input_seed);
        let model = ContractModel::new(Contract::ct_cond_bpas());
        let a = model.collect_trace(&tc, &input).unwrap();
        let b = model.collect_trace(&tc, &input).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Weakening the contract (SEQ -> COND -> COND-BPAS) never removes
    /// observations: the SEQ trace observations are a prefix-preserving
    /// subset (here checked as multiset inclusion of memory addresses).
    #[test]
    fn more_permissive_contracts_expose_at_least_as_much(
        seed in 0u64..2000,
        input_seed in 0u64..2000,
    ) {
        let config = GeneratorConfig::for_subset(IsaSubset::AR_MEM_CB).with_instructions(12);
        let tc = ProgramGenerator::new(config).generate(seed);
        let input = InputGenerator::new(2).generate_one(&tc, input_seed);
        let seq = ContractModel::new(Contract::ct_seq()).collect_trace(&tc, &input).unwrap();
        let cond = ContractModel::new(Contract::ct_cond()).collect_trace(&tc, &input).unwrap();
        let both = ContractModel::new(Contract::ct_cond_bpas()).collect_trace(&tc, &input).unwrap();
        prop_assert!(seq.len() <= cond.len());
        prop_assert!(cond.len() <= both.len());
        for addr in seq.mem_addrs() {
            prop_assert!(cond.mem_addrs().contains(&addr));
        }
    }

    /// `ContractModel::collect_many` shares one architectural pass across a
    /// whole contract slate; its per-contract traces and execution metadata
    /// must be indistinguishable from independent `collect` runs, for every
    /// Table 3 contract (plus ARCH-SEQ and a nested variant), on arbitrary
    /// generated test cases and inputs.
    #[test]
    fn collect_many_equals_independent_collection(
        seed in 0u64..3000,
        input_seed in 0u64..3000,
        isa in arb_isa(),
        instructions in 4usize..20,
        blocks in 2usize..6,
    ) {
        let config = GeneratorConfig::for_subset(isa)
            .with_instructions(instructions)
            .with_basic_blocks(blocks);
        let tc = ProgramGenerator::new(config).generate(seed);
        let input = InputGenerator::new(2).generate_one(&tc, input_seed);
        let mut contracts = Contract::table3_contracts();
        contracts.push(Contract::arch_seq());
        contracts.push(Contract::ct_cond_bpas().with_nesting(true));
        let shared = ContractModel::collect_many(&contracts, &tc, &input).unwrap();
        prop_assert_eq!(shared.len(), contracts.len());
        for (contract, out) in contracts.iter().zip(shared) {
            let solo = ContractModel::new(contract.clone()).collect(&tc, &input).unwrap();
            prop_assert!(out.trace == solo.trace, "trace mismatch for {}", contract.name());
            prop_assert!(out.info == solo.info, "info mismatch for {}", contract.name());
        }
    }

    /// Outlier filtering is order-independent: the merged trace is a
    /// function of the sample *multiset*, so any reordering of the raw
    /// samples must merge identically (§5.3 — the union and the one-off
    /// discard do not depend on measurement order).
    #[test]
    fn merge_samples_is_order_independent(
        bits in proptest::collection::vec(0u64..64, 1..24),
        min_count in 1usize..4,
        rotation in 0usize..24,
    ) {
        let samples: Vec<SetVector> = bits.iter().map(|&b| SetVector::from_bits(b)).collect();
        let mut cfg = ExecutorConfig::fast(MeasurementMode::prime_probe());
        cfg.outlier_min_count = min_count;
        let ex = Executor::new(SpecCpu::new(UarchConfig::skylake()), cfg);

        let mut reversed = samples.clone();
        reversed.reverse();
        let mut rotated = samples.clone();
        rotated.rotate_left(rotation % samples.len());
        prop_assert_eq!(ex.merge_samples(&samples), ex.merge_samples(&reversed));
        prop_assert_eq!(ex.merge_samples(&samples), ex.merge_samples(&rotated));
    }

    /// The merged trace is exactly the union of the samples that survive the
    /// outlier threshold; when every sample is discarded as an outlier, the
    /// most frequent sample survives, so a non-empty input never merges to
    /// zero samples.
    #[test]
    fn merge_samples_is_union_of_kept_samples(
        bits in proptest::collection::vec(0u64..256, 1..32),
    ) {
        let samples: Vec<SetVector> = bits.iter().map(|&b| SetVector::from_bits(b)).collect();
        let cfg = ExecutorConfig::fast(MeasurementMode::prime_probe());
        let ex = Executor::new(SpecCpu::new(UarchConfig::skylake()), cfg);
        let merged = ex.merge_samples(&samples);
        prop_assert!(merged.samples() >= 1, "non-empty input must keep at least one sample");

        let mut counts = std::collections::BTreeMap::new();
        for s in &samples {
            *counts.entry(*s).or_insert(0usize) += 1;
        }
        let threshold = if samples.len() >= cfg.outlier_min_count { cfg.outlier_min_count } else { 1 };
        let kept: Vec<SetVector> =
            counts.iter().filter(|(_, &c)| c >= threshold).map(|(s, _)| *s).collect();
        if kept.is_empty() {
            // Fallback: the most frequent sample, ties broken by the set
            // vector itself (deterministic, independent of hash order).
            let expected =
                counts.iter().map(|(s, &c)| (c, *s)).max().map(|(_, s)| s).unwrap();
            prop_assert_eq!(merged.sets(), expected);
        } else {
            let mut expected = SetVector::EMPTY;
            for s in &kept {
                expected = expected.union(*s);
            }
            prop_assert_eq!(merged.sets(), expected);
            prop_assert_eq!(merged.samples() as usize, kept.len());
        }
    }

    /// The batch API is byte-identical to repeated single-test-case calls on
    /// an identically configured executor — including under synthetic
    /// noise, which draws from one stream across the whole batch.
    #[test]
    fn batch_collection_matches_single_calls(seed in 0u64..400) {
        use rvz_executor::NoiseConfig;
        let config = GeneratorConfig::for_subset(IsaSubset::AR_MEM_CB).with_instructions(10);
        let gen = ProgramGenerator::new(config);
        let tc_a = gen.generate(seed);
        let tc_b = gen.generate(seed ^ 0x5555);
        let inputs_a = InputGenerator::new(2).generate(&tc_a, seed, 8);
        let inputs_b = InputGenerator::new(2).generate(&tc_b, !seed, 8);
        let cfg = ExecutorConfig::fast(MeasurementMode::prime_probe())
            .with_repetitions(3)
            .with_noise(NoiseConfig { one_off_probability: 0.1, smi_probability: 0.05, seed });

        let mut single = Executor::new(SpecCpu::new(UarchConfig::skylake()), cfg);
        let expected = vec![
            single.collect_htraces(&tc_a, &inputs_a).unwrap(),
            single.collect_htraces(&tc_b, &inputs_b).unwrap(),
        ];
        let mut batched = Executor::new(SpecCpu::new(UarchConfig::skylake()), cfg);
        let got = batched
            .collect_htraces_batch(&[(&tc_a, &inputs_a), (&tc_b, &inputs_b)])
            .unwrap();
        prop_assert_eq!(expected, got);
    }

    /// The CPU under test is deterministic: the same priming sequence
    /// produces the same hardware traces, measurement after measurement.
    #[test]
    fn hardware_traces_are_reproducible(seed in 0u64..1000) {
        let config = GeneratorConfig::for_subset(IsaSubset::AR_MEM_CB).with_instructions(10);
        let tc = ProgramGenerator::new(config).generate(seed);
        let inputs = InputGenerator::new(2).generate(&tc, seed, 8);
        let run = || {
            let cpu = SpecCpu::new(UarchConfig::skylake());
            let mut ex = Executor::new(cpu, ExecutorConfig::fast(MeasurementMode::prime_probe()));
            ex.collect_htraces(&tc, &inputs).unwrap()
        };
        prop_assert_eq!(run(), run());
    }

    /// Relational soundness of the analyzer: violations are only ever
    /// reported between inputs whose contract traces are equal, and no
    /// violation is reported when all hardware traces are identical.
    #[test]
    fn analyzer_reports_only_within_classes(
        ctrace_ids in proptest::collection::vec(0u64..4, 2..40),
        hset in proptest::collection::vec(0usize..8, 2..40),
    ) {
        let n = ctrace_ids.len().min(hset.len());
        let ctraces: Vec<_> =
            ctrace_ids[..n].iter().map(|&i| rvz_model::CTrace::new(vec![Observation::MemAddr(i)])).collect();
        let htraces: Vec<_> =
            hset[..n].iter().map(|&s| HTrace::from_sets(SetVector::from_sets([s]))).collect();
        let result = Analyzer::new().check(&ctraces, &htraces);
        for v in &result.violations {
            prop_assert_eq!(ctraces[v.input_a].clone(), ctraces[v.input_b].clone());
            prop_assert!(!htraces[v.input_a].equivalent(&htraces[v.input_b]));
        }
        let uniform: Vec<_> = (0..n).map(|_| HTrace::from_sets(SetVector::from_sets([1]))).collect();
        prop_assert!(!Analyzer::new().check(&ctraces, &uniform).has_violation());
    }

    /// Set-vector algebra: union is commutative/idempotent and the subset
    /// relation used by the analyzer is consistent with union.
    #[test]
    fn set_vector_algebra(a in any::<u64>(), b in any::<u64>()) {
        let va = SetVector::from_bits(a);
        let vb = SetVector::from_bits(b);
        prop_assert_eq!(va.union(vb), vb.union(va));
        prop_assert_eq!(va.union(va), va);
        prop_assert!(va.is_subset_of(va.union(vb)));
        prop_assert!(vb.is_subset_of(va.union(vb)));
        prop_assert_eq!(va.intersection(vb).union(va), va);
    }

    /// The in-order CPU complies with CT-SEQ on arbitrary generated test
    /// cases: speculation-free hardware cannot leak more than the
    /// architectural trace (the fuzzer-level no-false-positive guarantee).
    #[test]
    fn in_order_cpu_has_no_ct_seq_violations(seed in 0u64..300) {
        let config = GeneratorConfig::for_subset(IsaSubset::AR_MEM_CB).with_instructions(10);
        let tc = ProgramGenerator::new(config).generate(seed);
        let inputs = InputGenerator::new(2).generate(&tc, seed ^ 0xabcd, 10);
        let model = ContractModel::new(Contract::ct_seq());
        let ctraces: Result<Vec<_>, _> =
            inputs.iter().map(|i| model.collect_trace(&tc, i)).collect();
        let ctraces = ctraces.unwrap();
        let cpu = SpecCpu::new(UarchConfig::in_order());
        let mut ex = Executor::new(cpu, ExecutorConfig::fast(MeasurementMode::prime_probe()));
        let htraces = ex.collect_htraces(&tc, &inputs).unwrap();
        prop_assert!(!Analyzer::new().check(&ctraces, &htraces).has_violation());
    }
}
