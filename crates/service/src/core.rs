//! The service core: job table, sharded workers and event fan-out.
//!
//! The core is transport-agnostic — the TCP front-end ([`crate::server`])
//! and the in-process [`ServiceHandle`](crate::ServiceHandle) both drive
//! this API.  Jobs are sharded over `shards` long-lived worker threads
//! (assignment: FNV of the job id, so it survives restarts); each worker
//! drives its job as an incremental
//! [`MatrixRun`](revizor::orchestrator::MatrixRun), persisting a
//! checkpoint to the spool between waves and publishing progress events to
//! the job's event log.  Subscribers (watchers) replay that log from any
//! cursor, so late subscribers see the full history and event delivery can
//! never perturb verdicts.

use crate::job::JobSpec;
use crate::spool::{JobPhase, Spool, SpoolRecord};
use revizor::campaign::{CellEvent, ProgressObserver, RoundEvent};
use revizor::orchestrator::{MatrixCheckpoint, MatrixReport};
use rvz_bench::json::Json;
use rvz_bench::report::{matrix_cells_json, matrix_timing_json};
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Configuration of a service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shard worker threads.  Jobs are distributed over shards by
    /// job-id hash; shards run their jobs sequentially and independently of
    /// each other.
    pub shards: usize,
    /// Spool directory for durable job state; `None` keeps everything in
    /// memory (jobs are lost when the process exits).
    pub spool: Option<PathBuf>,
    /// Waves between spool checkpoints (1 = checkpoint after every wave).
    pub checkpoint_every: usize,
    /// TCP listen address for the JSON-lines front-end (e.g.
    /// `"127.0.0.1:0"` for an ephemeral port); `None` runs in-process only.
    pub listen: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { shards: 2, spool: None, checkpoint_every: 1, listen: None }
    }
}

/// One job's in-memory state.
struct JobEntry {
    spec: JobSpec,
    shard: usize,
    phase: JobPhase,
    /// Append-only event log; watchers replay it by cursor.
    events: Vec<Json>,
    checkpoint: Option<MatrixCheckpoint>,
    result: Option<Json>,
}

/// Everything behind the core's one lock.
struct CoreState {
    jobs: BTreeMap<String, JobEntry>,
    /// Submission order (workers scan it for their shard's next job).
    order: Vec<String>,
}

/// A summary of one job, for `status` / `list` responses.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job identifier.
    pub job: String,
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// The shard the job is pinned to.
    pub shard: usize,
    /// Number of matrix cells.
    pub cells: usize,
    /// Cells already finished (violation found; budget-exhausted cells
    /// close only when the whole job does).
    pub cells_finished: usize,
    /// Events published so far.
    pub events: usize,
}

impl JobStatus {
    /// The wire form of the summary.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("job", self.job.as_str())
            .field("state", self.phase.label())
            .field("shard", self.shard)
            .field("cells", self.cells)
            .field("cells_finished", self.cells_finished)
            .field("events", self.events)
    }
}

/// The transport-agnostic service core (see the module docs).
pub struct ServiceCore {
    config: ServiceConfig,
    spool: Option<Spool>,
    state: Mutex<CoreState>,
    /// Notified on every state change: submissions (wakes workers), events
    /// and completions (wakes watchers / waiters).
    changed: Condvar,
    stop: AtomicBool,
    counter: AtomicU64,
}

impl ServiceCore {
    /// Create a core, loading (and re-queuing) any unfinished jobs from the
    /// spool.
    ///
    /// # Errors
    /// Propagates spool-directory creation failures.
    pub fn new(config: ServiceConfig) -> io::Result<Arc<ServiceCore>> {
        let spool = match &config.spool {
            Some(dir) => Some(Spool::open(dir)?),
            None => None,
        };
        let mut state = CoreState { jobs: BTreeMap::new(), order: Vec::new() };
        let mut next_counter = 1u64;
        if let Some(spool) = &spool {
            for record in spool.load_all() {
                let shard = shard_of(&record.job, config.shards);
                // Job ids end in `-<counter hex>`; keep allocating above the
                // highest loaded one so a restarted server can never reuse
                // (and overwrite) an existing job's id.
                if let Some(n) = record
                    .job
                    .rsplit('-')
                    .next()
                    .and_then(|suffix| u64::from_str_radix(suffix, 16).ok())
                {
                    next_counter = next_counter.max(n + 1);
                }
                let events = restored_events(&record);
                state.order.push(record.job.clone());
                state.jobs.insert(
                    record.job.clone(),
                    JobEntry {
                        spec: record.spec,
                        shard,
                        phase: record.phase,
                        events,
                        checkpoint: record.checkpoint,
                        result: record.result,
                    },
                );
            }
        }
        Ok(Arc::new(ServiceCore {
            config,
            spool,
            state: Mutex::new(state),
            changed: Condvar::new(),
            stop: AtomicBool::new(false),
            counter: AtomicU64::new(next_counter),
        }))
    }

    /// The instance configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Has [`ServiceCore::stop`] been requested?
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Ask workers (and the front-end) to stop.  Workers finish their
    /// current wave, persist a checkpoint and exit; unfinished jobs stay
    /// resumable in the spool.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _guard = self.state.lock().expect("core lock");
        self.changed.notify_all();
    }

    /// Submit a job.  The spec is validated (targets/contracts must
    /// resolve) and persisted before the job id is returned.
    ///
    /// # Errors
    /// Returns a message for invalid specs.
    pub fn submit(&self, spec: JobSpec) -> Result<String, String> {
        // Resolve eagerly so a bad spec fails at the submission boundary,
        // not inside a worker.
        spec.to_matrix()?;
        let digest = fnv(spec.to_json().render().as_bytes());
        let job = loop {
            // The counter is process-unique and seeded above every id
            // loaded from the spool, so collisions are only possible with
            // hand-named spool files — skip over those too.
            let job = format!("j{digest:x}-{:x}", self.counter.fetch_add(1, Ordering::SeqCst));
            if !self.state.lock().expect("core lock").jobs.contains_key(&job) {
                break job;
            }
        };
        let shard = shard_of(&job, self.config.shards);
        let entry = JobEntry {
            spec,
            shard,
            phase: JobPhase::Queued,
            events: Vec::new(),
            checkpoint: None,
            result: None,
        };
        self.persist(&Self::record_of(&job, &entry));
        let mut state = self.state.lock().expect("core lock");
        state.order.push(job.clone());
        state.jobs.insert(job.clone(), entry);
        self.changed.notify_all();
        Ok(job)
    }

    /// A summary of one job, if known.
    pub fn status(&self, job: &str) -> Option<JobStatus> {
        let state = self.state.lock().expect("core lock");
        state.jobs.get(job).map(|e| summarize(job, e))
    }

    /// Summaries of all jobs, in submission order.
    pub fn list(&self) -> Vec<JobStatus> {
        let state = self.state.lock().expect("core lock");
        state
            .order
            .iter()
            .filter_map(|job| state.jobs.get(job).map(|e| summarize(job, e)))
            .collect()
    }

    /// The result payload of a finished job.  `None` = unknown job,
    /// `Some(None)` = known but not finished.
    #[allow(clippy::option_option)]
    pub fn result(&self, job: &str) -> Option<Option<Json>> {
        let state = self.state.lock().expect("core lock");
        state.jobs.get(job).map(|e| e.result.clone())
    }

    /// Events `from..` of a job's log (empty when none are new).  `None`
    /// for unknown jobs.
    pub fn events_from(&self, job: &str, from: usize) -> Option<Vec<Json>> {
        let state = self.state.lock().expect("core lock");
        state.jobs.get(job).map(|e| e.events.get(from..).unwrap_or_default().to_vec())
    }

    /// Block until the job finishes (or the core stops); returns its result
    /// payload.
    ///
    /// # Errors
    /// Returns a message for unknown jobs or when the core stops first.
    pub fn wait(&self, job: &str) -> Result<Json, String> {
        let mut state = self.state.lock().expect("core lock");
        loop {
            match state.jobs.get(job) {
                None => return Err(format!("unknown job `{job}`")),
                Some(e) => {
                    if let Some(result) = &e.result {
                        return Ok(result.clone());
                    }
                }
            }
            if self.stopped() {
                return Err("service stopped before the job finished".to_string());
            }
            let (next, _) = self
                .changed
                .wait_timeout(state, Duration::from_millis(200))
                .expect("core lock");
            state = next;
        }
    }

    /// Build the durable record of a job (caller persists it *outside* the
    /// core lock — checkpoint documents carry whole violation reports, and
    /// file I/O under the lock would stall every client-facing call).
    fn record_of(job: &str, entry: &JobEntry) -> SpoolRecord {
        SpoolRecord {
            job: job.to_string(),
            spec: entry.spec.clone(),
            phase: entry.phase,
            checkpoint: entry.checkpoint.clone(),
            result: entry.result.clone(),
        }
    }

    /// Write one record to the spool (no lock held).
    fn persist(&self, record: &SpoolRecord) {
        let Some(spool) = &self.spool else { return };
        if let Err(e) = spool.save(record) {
            eprintln!("spool: failed to persist job {}: {e}", record.job);
        }
    }

    /// Pick the next queued job for `shard`, marking it running.
    fn claim(&self, shard: usize) -> Option<(String, JobSpec, Option<MatrixCheckpoint>)> {
        let (claimed, record) = {
            let mut state = self.state.lock().expect("core lock");
            let job = state.order.iter().find(|job| {
                state
                    .jobs
                    .get(*job)
                    .is_some_and(|e| e.phase == JobPhase::Queued && e.shard == shard)
            })?;
            let job = job.clone();
            let entry = state.jobs.get_mut(&job).expect("found above");
            entry.phase = JobPhase::Running;
            let claimed = (job.clone(), entry.spec.clone(), entry.checkpoint.clone());
            (claimed, Self::record_of(&job, entry))
        };
        self.persist(&record);
        Some(claimed)
    }

    /// Append events to a job's log.
    fn publish(&self, job: &str, events: Vec<Json>) {
        if events.is_empty() {
            return;
        }
        let mut state = self.state.lock().expect("core lock");
        if let Some(entry) = state.jobs.get_mut(job) {
            entry.events.extend(events);
        }
        self.changed.notify_all();
    }

    /// Store a wave checkpoint (and persist it, outside the lock).
    fn save_checkpoint(&self, job: &str, checkpoint: MatrixCheckpoint, phase: JobPhase) {
        let record = {
            let mut state = self.state.lock().expect("core lock");
            let Some(entry) = state.jobs.get_mut(job) else { return };
            entry.checkpoint = Some(checkpoint);
            entry.phase = phase;
            Self::record_of(job, entry)
        };
        self.persist(&record);
        self.changed.notify_all();
    }

    /// Finish a job: store the result, drop the checkpoint, publish the
    /// `done` event.
    fn complete(&self, job: &str, result: Json) {
        let done = Json::obj()
            .field("event", "done")
            .field("job", job)
            .field("result", result.clone());
        let record = {
            let mut state = self.state.lock().expect("core lock");
            let Some(entry) = state.jobs.get_mut(job) else { return };
            entry.phase = JobPhase::Done;
            entry.result = Some(result);
            entry.checkpoint = None;
            entry.events.push(done);
            Self::record_of(job, entry)
        };
        self.persist(&record);
        self.changed.notify_all();
    }

    /// The body of one shard worker thread: claim → drive → complete, until
    /// the core stops.
    pub fn run_worker(self: &Arc<Self>, shard: usize) {
        while !self.stopped() {
            let Some((job, spec, checkpoint)) = self.claim(shard) else {
                // Idle: wait for a submission (or stop).
                let state = self.state.lock().expect("core lock");
                let _ = self
                    .changed
                    .wait_timeout(state, Duration::from_millis(100))
                    .expect("core lock");
                continue;
            };
            self.drive(&job, &spec, checkpoint);
        }
    }

    /// Drive one job to completion (or to the stop flag).
    fn drive(&self, job: &str, spec: &JobSpec, checkpoint: Option<MatrixCheckpoint>) {
        let matrix = match spec.to_matrix() {
            Ok(m) => m,
            Err(e) => {
                // Validated at submit; only a hand-edited spool reaches here.
                self.complete(job, Json::obj().field("job", job).field("error", e.as_str()));
                return;
            }
        };
        let mut run = match &checkpoint {
            Some(cp) => match matrix.resume(cp) {
                Ok(run) => run,
                Err(e) => {
                    eprintln!("job {job}: discarding stale checkpoint ({e}); restarting");
                    matrix.start()
                }
            },
            None => matrix.start(),
        };
        let mut collector = EventCollector { job: job.to_string(), events: Vec::new() };
        let mut waves_since_checkpoint = 0usize;
        loop {
            if self.stopped() {
                // Killed mid-job: park the progress and hand the job back
                // to the queue; the next server (or restart) resumes it.
                self.publish(job, std::mem::take(&mut collector.events));
                self.save_checkpoint(job, run.checkpoint(), JobPhase::Queued);
                return;
            }
            let more = run.step(&mut collector);
            self.publish(job, std::mem::take(&mut collector.events));
            if !more {
                break;
            }
            waves_since_checkpoint += 1;
            if waves_since_checkpoint >= self.config.checkpoint_every.max(1) {
                self.save_checkpoint(job, run.checkpoint(), JobPhase::Running);
                waves_since_checkpoint = 0;
            }
        }
        let report = run.finish(&mut collector);
        self.publish(job, std::mem::take(&mut collector.events));
        self.complete(job, job_result_json(job, spec, &report));
    }
}

fn summarize(job: &str, e: &JobEntry) -> JobStatus {
    let cells = e.spec.cells.len();
    JobStatus {
        job: job.to_string(),
        phase: e.phase,
        shard: e.shard,
        cells,
        cells_finished: match e.phase {
            JobPhase::Done => cells,
            _ => e
                .events
                .iter()
                .filter(|ev| ev.get("event").and_then(Json::as_str) == Some("cell"))
                .count(),
        },
        events: e.events.len(),
    }
}

/// Reconstruct a restored job's event log from its spool record, so
/// watchers of a job that progressed (or finished) under a previous server
/// still see its history and — crucially — the terminating `done` event.
/// Cell events are synthesized from the checkpoint (pre-kill finds never
/// re-fire after a resume); `elapsed_ms` is lost with the old process.
fn restored_events(record: &SpoolRecord) -> Vec<Json> {
    let mut events = Vec::new();
    if let Some(checkpoint) = &record.checkpoint {
        for (progress, (target, contract)) in
            checkpoint.cells.iter().zip(&record.spec.cells)
        {
            let Some(progress) = progress else { continue };
            events.push(
                Json::obj()
                    .field("event", "cell")
                    .field("job", record.job.as_str())
                    .field("target", *target)
                    .field("contract", contract.as_str())
                    .field("found", progress.violation.is_some())
                    .field(
                        "vulnerability",
                        progress.violation.as_ref().map(|v| v.vulnerability.to_string()),
                    )
                    .field("test_cases", progress.test_cases)
                    .field("elapsed_ms", 0.0),
            );
        }
    }
    if let Some(result) = &record.result {
        events.push(
            Json::obj()
                .field("event", "done")
                .field("job", record.job.as_str())
                .field("result", result.clone()),
        );
    }
    events
}

/// The result payload of a finished job: the job id and spec, the
/// deterministic per-cell section ([`matrix_cells_json`] — byte-identical
/// for any execution of the same spec, kill + resume included) and the
/// nondeterministic timing side channel.
pub fn job_result_json(job: &str, spec: &JobSpec, report: &MatrixReport) -> Json {
    Json::obj()
        .field("job", job)
        .field("spec", spec.to_json())
        .field("seed", report.seed)
        .field("measured_test_cases", report.test_cases)
        .field("cells", matrix_cells_json(report))
        .field("timing", matrix_timing_json(report))
}

/// The deterministic section of a result payload: everything except the
/// per-run `job` id and `timing`.  Two results for the same spec compare
/// byte-equal on this rendering.
pub fn deterministic_result(result: &Json) -> Json {
    match result {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "job" && k != "timing")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Collects matrix progress events as wire-format JSON lines.
struct EventCollector {
    job: String,
    events: Vec<Json>,
}

impl ProgressObserver for EventCollector {
    fn round_completed(&mut self, event: &RoundEvent) {
        self.events.push(
            Json::obj()
                .field("event", "round")
                .field("job", self.job.as_str())
                .field("target", event.target_id)
                .field("round", event.round)
                .field("test_cases", event.test_cases)
                .field("escalations", event.escalations),
        );
    }

    fn cell_finished(&mut self, event: &CellEvent) {
        self.events.push(
            Json::obj()
                .field("event", "cell")
                .field("job", self.job.as_str())
                .field("target", event.target_id)
                .field("contract", event.contract.name())
                .field("found", event.found)
                .field("vulnerability", event.vulnerability.map(|v| v.to_string()))
                .field("test_cases", event.test_cases)
                .field("elapsed_ms", event.elapsed.as_secs_f64() * 1000.0),
        );
    }
}

/// FNV-1a, used for shard assignment (stable across restarts).
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn shard_of(job: &str, shards: usize) -> usize {
    (fnv(job.as_bytes()) % shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 8] {
            for job in ["j1-1", "jabc-2", "jfff-3"] {
                let s = shard_of(job, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(job, shards));
            }
        }
    }

    #[test]
    fn deterministic_result_drops_job_and_timing() {
        let result = Json::obj()
            .field("job", "j1")
            .field("cells", Json::Arr(vec![]))
            .field("timing", Json::obj().field("duration_ms", 3.5));
        let det = deterministic_result(&result);
        assert!(det.get("job").is_none());
        assert!(det.get("timing").is_none());
        assert!(det.get("cells").is_some());
    }

    #[test]
    fn submit_rejects_invalid_specs() {
        let core = ServiceCore::new(ServiceConfig::default()).unwrap();
        let err = core.submit(JobSpec::new(1).add_cell(42, "CT-SEQ")).expect_err("rejects");
        assert!(err.contains("unknown target"), "{err}");
    }
}
