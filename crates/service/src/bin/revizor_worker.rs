//! A worker host for fleet-mode campaign serving: dial a coordinator
//! (`revizor-serve --fleet-addr=…`), register at runtime, and lease
//! relocatable work units.
//!
//! ```text
//! revizor-worker --coordinator=127.0.0.1:15791 [--name=w1] [--retry-secs=30]
//! ```
//!
//! * `--coordinator` — the coordinator's **fleet** port (not the client
//!   port).
//! * `--name` — the name this worker registers under (default:
//!   `worker-<pid>`); it shows up in per-unit `status` placement.
//! * `--retry-secs` — how long to keep retrying a failed connect before
//!   exiting (default 30; lets workers start before the coordinator and
//!   ride out coordinator restarts).
//! * `--wire-format` — `binary` (default) or `json`: whether to advertise
//!   binary checkpoint framing at registration.  Forcing `json` is for
//!   older coordinators and for exercising mixed-format fleets; verdicts
//!   are format-independent either way.
//!
//! Workers are stateless and elastic: they join and leave at any time,
//! leasing one unit (one target group of a job's matrix) at a time.
//! Every wave's checkpoint is replicated to the coordinator's spool
//! before the next wave starts, so killing a worker (even `kill -9`)
//! never loses more than the wave in flight — the coordinator steals the
//! unit back and the verdicts come out byte-identical.  Run as many
//! workers as you have machines.

use rvz_bench::{flag_from_args, flag_value_from_args};
use rvz_service::{Worker, WorkerConfig};
use std::time::Duration;

const HELP: &str = "revizor-worker: a fleet worker host for revizor-serve

usage: revizor-worker --coordinator=HOST:PORT [options]

  --coordinator=HOST:PORT the coordinator's fleet port (revizor-serve
                          --fleet-addr), where workers register at runtime
  --name=NAME             registration name (default worker-<pid>)
  --retry-secs=SECS       connect retry window (default 30)
  --wire-format=FORMAT    checkpoint framing: binary (default) or json
  -h, --help              this text
";

fn main() {
    if flag_from_args("--help") || flag_from_args("-h") {
        print!("{HELP}");
        return;
    }
    let Some(coordinator) = flag_value_from_args::<String>("--coordinator") else {
        eprintln!("revizor-worker: pass --coordinator=HOST:PORT (the coordinator's fleet port)");
        std::process::exit(2);
    };
    let mut config = WorkerConfig::new(coordinator);
    if let Some(name) = flag_value_from_args::<String>("--name") {
        config.name = name;
    }
    if let Some(secs) = flag_value_from_args::<u64>("--retry-secs") {
        config.retry_for = Duration::from_secs(secs);
    }
    match flag_value_from_args::<String>("--wire-format").as_deref() {
        None | Some("binary") => {}
        Some("json") => config.force_json = true,
        Some(other) => {
            eprintln!("revizor-worker: unknown --wire-format `{other}` (binary or json)");
            std::process::exit(2);
        }
    }
    eprintln!(
        "revizor-worker: `{}` connecting to {} (retry window {:?})",
        config.name, config.coordinator, config.retry_for
    );
    match Worker::new(config).run() {
        Ok(()) => eprintln!("revizor-worker: coordinator shut us down; exiting"),
        Err(e) => {
            eprintln!("revizor-worker: coordinator unreachable: {e}");
            std::process::exit(1);
        }
    }
}
