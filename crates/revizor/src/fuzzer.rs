//! The end-to-end fuzzer (Figure 2).

use crate::campaign::{
    self, NoopObserver, ProgressObserver, RoundEvent, SeedEval, SlateSpec, SlateUnit,
};
use crate::classify::{classify, VulnClass};
use crate::config::FuzzerConfig;
use crate::diversity::PatternCoverage;
use crate::staticanalysis::{self, GadgetSignature};
use crate::targets::Target;
use rvz_analyzer::{AnalysisResult, Analyzer, Violation};
use rvz_emu::Fault;
use rvz_executor::Executor;
use rvz_gen::InputGenerator;
use rvz_isa::{Input, TestCase};
use rvz_model::{Contract, ExecutionInfo};
use rvz_uarch::{CpuUnderTest, SpecCpu};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// The result of testing one test case with one input batch.
#[derive(Debug, Clone)]
pub struct TestCaseOutcome {
    /// The inputs used (in priming order).
    pub inputs: Vec<Input>,
    /// The raw relational-analysis result.
    pub analysis: AnalysisResult,
    /// A violation that survived the priming-swap and nesting re-checks.
    pub confirmed_violation: Option<Violation>,
    /// Violations discarded by the priming-swap check (§5.3).
    pub discarded_as_artifact: usize,
    /// Violations discarded by the nested-speculation re-check (§5.4).
    pub discarded_by_nesting: usize,
}

/// A confirmed counterexample, with everything needed to reproduce and
/// minimize it.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationReport {
    /// The violating test case.
    pub test_case: TestCase,
    /// The input sequence (priming order).
    pub inputs: Vec<Input>,
    /// The diverging input pair and their traces.
    pub violation: Violation,
    /// The violated contract.
    pub contract: Contract,
    /// The per-test-case seed the campaign evaluated this test case with.
    /// Replaying it through [`Revizor::test_case`] on a fuzzer with the
    /// generator configuration that was in effect for this round
    /// reproduces the same inputs and (under synthetic noise) the same
    /// noise stream.  Escalations (§5.6) change that configuration at round
    /// boundaries; when one happened before the violation, replay the
    /// recorded [`inputs`](ViolationReport::inputs) directly via
    /// [`Revizor::test_with_inputs`] after seeding the executor's noise
    /// stream with [`NoiseConfig::for_test_case_seed`](rvz_executor::NoiseConfig::for_test_case_seed).
    pub test_case_seed: u64,
    /// Heuristic classification of the underlying vulnerability.
    pub vulnerability: VulnClass,
    /// Static gadget signature of the violating program (source kind ×
    /// dependency shape × transmitter kind), for deduplicating equivalent
    /// gadgets across campaigns.  `None` when the static pass cannot
    /// attribute the leak to a transmitter.
    pub gadget: Option<GadgetSignature>,
    /// Number of test cases executed up to and including this one.
    pub test_cases_until_detection: usize,
    /// Number of inputs executed up to and including this test case.
    pub inputs_until_detection: usize,
}

/// Summary of a fuzzing campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzReport {
    /// The first confirmed violation, if any.
    pub violation: Option<ViolationReport>,
    /// Test cases executed.
    pub test_cases: usize,
    /// Test cases generated, including ones the static pre-filter discarded
    /// before measurement.  Equals [`test_cases`](FuzzReport::test_cases)
    /// when the filter is off.
    pub generated: usize,
    /// Test cases discarded by the static speculation pre-filter.
    pub statically_filtered: usize,
    /// Inputs executed (across all test cases).
    pub total_inputs: usize,
    /// Testing rounds completed.
    pub rounds: usize,
    /// Generator escalations triggered by the diversity analysis.
    pub escalations: usize,
    /// Wall-clock duration of the campaign.
    pub duration: Duration,
    /// Mean input effectiveness across test cases (§5.2 / CH2).
    pub mean_effectiveness: f64,
    /// Final pattern coverage (§5.6).
    pub coverage: PatternCoverage,
}

impl FuzzReport {
    /// Did the campaign find a confirmed violation?
    pub fn found_violation(&self) -> bool {
        self.violation.is_some()
    }

    /// Test cases processed per second (the §6.5 fuzzing-speed metric).
    pub fn test_cases_per_second(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.test_cases as f64 / secs
        }
    }
}

/// The Revizor fuzzer: ties the generator, model, executor, analyzer and
/// diversity analysis into the testing loop of Figure 2.
#[derive(Debug)]
pub struct Revizor<C: CpuUnderTest> {
    config: FuzzerConfig,
    target: Option<Target>,
    input_gen: InputGenerator,
    executor: Executor<C>,
    analyzer: Analyzer,
    coverage: PatternCoverage,
}

impl Revizor<SpecCpu> {
    /// Convenience constructor for one of the paper's targets.
    pub fn for_target(target: &Target, contract: Contract) -> Revizor<SpecCpu> {
        let config = FuzzerConfig::for_target(target, contract);
        Revizor::new(target.cpu(), config).with_target(target.clone())
    }
}

impl<C: CpuUnderTest> Revizor<C> {
    /// Create a fuzzer around a CPU under test.
    pub fn new(cpu: C, config: FuzzerConfig) -> Revizor<C> {
        let input_gen = InputGenerator::new(config.generator.input_entropy_bits);
        let executor = Executor::new(cpu, config.executor);
        Revizor {
            config,
            target: None,
            input_gen,
            executor,
            analyzer: Analyzer::new(),
            coverage: PatternCoverage::new(),
        }
    }

    /// Attach the target description (enables vulnerability classification).
    pub fn with_target(mut self, target: Target) -> Revizor<C> {
        self.target = Some(target);
        self
    }

    /// The campaign configuration.
    pub fn config(&self) -> &FuzzerConfig {
        &self.config
    }

    /// Current pattern coverage.
    pub fn coverage(&self) -> &PatternCoverage {
        &self.coverage
    }

    /// Access to the executor (and through it, the CPU under test).
    pub fn executor_mut(&mut self) -> &mut Executor<C> {
        &mut self.executor
    }

    /// Test one test case with the deterministic input batch and noise
    /// stream a campaign round worker would use for `seed` — the sequential
    /// half of the replay contract: evaluating the test case the campaign
    /// generated for `seed` through this method reproduces the campaign's
    /// measurement exactly (see [`ViolationReport::test_case_seed`]).
    ///
    /// # Errors
    /// Propagates architectural faults (which generated test cases never
    /// produce).
    pub fn test_case(&mut self, tc: &TestCase, seed: u64) -> Result<TestCaseOutcome, Fault> {
        let n = self.config.generator.inputs_per_test_case;
        let inputs = self.input_gen.generate(tc, campaign::input_stream_seed(seed), n);
        self.executor.reseed_noise(self.config.executor.noise.for_test_case_seed(seed));
        self.test_with_inputs(tc, &inputs)
    }

    /// Test one test case with an explicit input sequence (used by the
    /// postprocessor and the handwritten-gadget experiments).
    ///
    /// # Errors
    /// Propagates architectural faults.
    pub fn test_with_inputs(
        &mut self,
        tc: &TestCase,
        inputs: &[Input],
    ) -> Result<TestCaseOutcome, Fault> {
        let (outcome, class_members) =
            evaluate_test_case(&mut self.executor, &self.analyzer, &self.config, tc, inputs)?;
        self.absorb_coverage(&class_members);
        Ok(outcome)
    }

    /// Feed one test case's effective-class execution metadata into the
    /// shared pattern coverage; returns whether coverage improved.
    fn absorb_coverage(&mut self, class_members: &[Vec<ExecutionInfo>]) -> bool {
        let member_refs: Vec<Vec<&ExecutionInfo>> =
            class_members.iter().map(|c| c.iter().collect()).collect();
        self.coverage.update(&member_refs)
    }
}

/// One evaluated test case of a round, produced by a (possibly parallel)
/// round worker and merged by the driver in campaign order.
struct RoundUnit {
    seed: u64,
    tc: TestCase,
    outcome: TestCaseOutcome,
    class_members: Vec<Vec<ExecutionInfo>>,
}

impl RoundUnit {
    /// Repackage a single-contract [`SlateUnit`] into the round driver's
    /// unit shape.
    fn from_slate(unit: SlateUnit) -> RoundUnit {
        let SlateUnit { seed, tc, inputs, mut outcomes } = unit;
        let o = outcomes.pop().expect("single-contract slate");
        RoundUnit {
            seed,
            tc,
            outcome: TestCaseOutcome {
                inputs,
                analysis: o.analysis,
                confirmed_violation: o.confirmed_violation,
                discarded_as_artifact: o.discarded_as_artifact,
                discarded_by_nesting: o.discarded_by_nesting,
            },
            class_members: o.class_members,
        }
    }
}

impl<C: CpuUnderTest + Clone + Send + Sync> Revizor<C> {
    /// Evaluate the test cases with indices `range` (one testing round) and
    /// return their results in campaign order.  With `parallelism > 1` the
    /// test cases are fanned out across a thread pool; every worker gets a
    /// fresh clone of the CPU under test and seeds derived only from the
    /// test-case index, so the results are identical for any thread count.
    fn evaluate_round(
        &self,
        pool: Option<&rayon::ThreadPool>,
        range: std::ops::Range<usize>,
    ) -> Vec<Option<SeedEval>> {
        let spec = SlateSpec {
            generator: self.config.generator.clone(),
            executor: self.config.executor,
            checks: (&self.config).into(),
            contracts: vec![self.config.contract.clone()],
            speculation_filter: self.config.speculation_filter,
        };
        let cpu_template = self.executor.cpu();
        let seeds: Vec<(usize, u64)> =
            range.map(|i| (i, self.config.seed.wrapping_add(i as u64))).collect();
        let evaluate_one =
            move |seed: u64| -> SeedEval { campaign::evaluate_seed(cpu_template, &spec, seed) };
        let violated = |eval: &SeedEval| -> bool {
            matches!(eval, SeedEval::Measured(u) if u.outcomes[0].confirmed_violation.is_some())
        };
        match pool {
            None => {
                // Single-threaded: evaluate lazily and stop at the first
                // confirmed violation — the merge loop discards everything
                // after it anyway.
                let mut units = Vec::with_capacity(seeds.len());
                for (_, seed) in seeds {
                    let eval = evaluate_one(seed);
                    let found = violated(&eval);
                    units.push(Some(eval));
                    if found {
                        break;
                    }
                }
                units
            }
            Some(pool) => {
                // Cooperative cancellation: once some worker confirms a
                // violation at campaign index `v`, workers skip indices
                // `> v` — the merge loop stops at the lowest violating
                // index, so skipped units (`None`) are never read and the
                // results stay identical to the single-threaded path.
                let first_violation = AtomicUsize::new(usize::MAX);
                pool.install(|| {
                    use rayon::prelude::*;
                    seeds
                        .into_par_iter()
                        .map(|(idx, seed)| {
                            if first_violation.load(Ordering::Relaxed) < idx {
                                return None;
                            }
                            let eval = evaluate_one(seed);
                            if violated(&eval) {
                                first_violation.fetch_min(idx, Ordering::Relaxed);
                            }
                            Some(eval)
                        })
                        .collect()
                })
            }
        }
    }

    /// Run the fuzzing campaign until a confirmed violation is found or the
    /// test-case budget is exhausted.
    ///
    /// The campaign proceeds in testing rounds of
    /// [`FuzzerConfig::round_size`] test cases.  Rounds are evaluated with
    /// [`FuzzerConfig::parallelism`] worker threads — each round's test
    /// cases are independent (fresh microarchitectural state, per-test-case
    /// seeds), so they fan out across cores; the driver then merges the
    /// results in campaign order, applies the diversity feedback (§5.6) at
    /// the round boundary, and stops at the first confirmed violation.
    /// For a fixed campaign seed the confirmed violation and all report
    /// counters are independent of `parallelism`.
    pub fn run(&mut self) -> FuzzReport {
        self.run_with_observer(&mut NoopObserver)
    }

    /// Run the fuzzing campaign (see [`Revizor::run`]), reporting a
    /// [`RoundEvent`] to `observer` at every completed testing round.
    /// Events are emitted from the driving thread in campaign order and do
    /// not affect the campaign's results.
    pub fn run_with_observer(&mut self, observer: &mut dyn ProgressObserver) -> FuzzReport {
        let start = Instant::now();
        // The pool is only needed (and only spawns worker threads) for
        // multi-threaded campaigns.
        let pool = (self.config.parallelism > 1).then(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(self.config.parallelism)
                .build()
                .expect("failed to spawn fuzzing worker threads")
        });
        let mut test_cases = 0usize;
        let mut generated = 0usize;
        let mut statically_filtered = 0usize;
        let mut total_inputs = 0usize;
        let mut rounds = 0usize;
        let mut escalations = 0usize;
        let mut effectiveness_sum = 0.0f64;
        let mut round_improved = false;
        let mut coverage_level = 1usize;
        let mut violation: Option<ViolationReport> = None;

        // `round_size` is a public config field; clamp so a zero value
        // cannot stall the campaign loop.
        let round_size = self.config.round_size.max(1);
        let mut round_start = 0usize;
        'campaign: while round_start < self.config.max_test_cases {
            let round_end = (round_start + round_size).min(self.config.max_test_cases);
            let units = self.evaluate_round(pool.as_ref(), round_start..round_end);

            for eval in units.into_iter().flatten() {
                generated += 1;
                let unit = match eval {
                    SeedEval::Filtered => {
                        statically_filtered += 1;
                        continue;
                    }
                    SeedEval::Faulted => continue,
                    SeedEval::Measured(u) => RoundUnit::from_slate(*u),
                };
                let RoundUnit { seed, tc, outcome, class_members } = unit;
                round_improved |= self.absorb_coverage(&class_members);
                test_cases += 1;
                total_inputs += outcome.inputs.len();
                effectiveness_sum += outcome.analysis.stats.effectiveness();

                if let Some(v) = outcome.confirmed_violation {
                    let vulnerability = match &self.target {
                        Some(t) => classify(t, &self.config.contract, &tc),
                        None => VulnClass::Unknown,
                    };
                    let gadget = staticanalysis::gadget_class(&tc, self.target.as_ref());
                    violation = Some(ViolationReport {
                        test_case: tc,
                        inputs: outcome.inputs,
                        violation: v,
                        contract: self.config.contract.clone(),
                        test_case_seed: seed,
                        vulnerability,
                        gadget,
                        test_cases_until_detection: test_cases,
                        inputs_until_detection: total_inputs,
                    });
                    break 'campaign;
                }
            }

            // Every round that runs to completion counts — including a
            // final partial one (budget not a multiple of the round size).
            // A round cut short by a confirmed violation is not counted:
            // the campaign stops mid-round (`break 'campaign` above).
            rounds += 1;
            observer.round_completed(&RoundEvent {
                target_id: self.target.as_ref().map(|t| t.id),
                round: rounds,
                test_cases,
                filtered: statically_filtered,
                escalations,
            });

            // Round boundary: diversity feedback (§5.6).  The generator is
            // escalated when the current coverage goal is met (all single
            // patterns, then all pattern pairs) or when a whole round went
            // by without improving coverage.  A final partial round has no
            // boundary, so it never escalates the generator.
            if round_end.is_multiple_of(round_size) {
                let isa = self.config.generator.isa;
                let goal_met = match coverage_level {
                    1 => self.coverage.all_single_covered(isa),
                    _ => self.coverage.all_pairs_covered(isa),
                };
                if goal_met || !round_improved {
                    if goal_met {
                        coverage_level += 1;
                    }
                    self.config.generator.escalate();
                    self.input_gen = InputGenerator::new(self.config.generator.input_entropy_bits);
                    escalations += 1;
                }
                round_improved = false;
            }
            round_start = round_end;
        }

        FuzzReport {
            violation,
            test_cases,
            generated,
            statically_filtered,
            total_inputs,
            rounds,
            escalations,
            duration: start.elapsed(),
            mean_effectiveness: if test_cases == 0 {
                0.0
            } else {
                effectiveness_sum / test_cases as f64
            },
            coverage: self.coverage.clone(),
        }
    }
}

/// The per-test-case pipeline with a single contract: a thin wrapper over
/// the slate-based [`campaign::evaluate_slate`] (which collects hardware
/// traces once and can check them against whole contract slates).
fn evaluate_test_case<C: CpuUnderTest>(
    executor: &mut Executor<C>,
    analyzer: &Analyzer,
    config: &FuzzerConfig,
    tc: &TestCase,
    inputs: &[Input],
) -> Result<(TestCaseOutcome, Vec<Vec<ExecutionInfo>>), Fault> {
    let outcome = campaign::evaluate_slate(
        executor,
        analyzer,
        config.into(),
        std::slice::from_ref(&config.contract),
        tc,
        inputs,
    )?
    .pop()
    .expect("single-contract slate");
    Ok((
        TestCaseOutcome {
            inputs: inputs.to_vec(),
            analysis: outcome.analysis,
            confirmed_violation: outcome.confirmed_violation,
            discarded_as_artifact: outcome.discarded_as_artifact,
            discarded_by_nesting: outcome.discarded_by_nesting,
        },
        outcome.class_members,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets;
    use rvz_executor::ExecutorConfig;
    use rvz_gen::ProgramGenerator;

    fn quick_config(target: &Target, contract: Contract) -> FuzzerConfig {
        // Start from a mid-campaign generator configuration (as if a few
        // escalation rounds already happened) so the unit test stays fast.
        let generator = rvz_gen::GeneratorConfig::for_subset(target.isa)
            .with_basic_blocks(4)
            .with_instructions(14);
        FuzzerConfig::for_target(target, contract)
            .with_generator(generator)
            .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2))
            .with_inputs_per_test_case(20)
            // Detection is stochastic in the PRNG stream; with the vendored
            // `rand` stand-in, seed 1 finds its first V1 at test case 75,
            // so the budget leaves headroom rather than encoding one
            // particular random stream.
            .with_max_test_cases(120)
            .with_seed(1)
    }

    #[test]
    fn baseline_target1_complies_with_ct_seq() {
        // Table 3, column 1: AR-only test cases on Skylake never violate
        // CT-SEQ — no false positives.
        let target = Target::target1();
        let config = quick_config(&target, Contract::ct_seq()).with_max_test_cases(15);
        let mut r = Revizor::new(target.cpu(), config).with_target(target.clone());
        let report = r.run();
        assert!(!report.found_violation(), "baseline must not report violations");
        assert!(report.test_cases > 0);
    }

    #[test]
    fn target5_violates_ct_seq_with_spectre_v1() {
        let target = Target::target5();
        let config = quick_config(&target, Contract::ct_seq());
        let mut r = Revizor::new(target.cpu(), config).with_target(target.clone());
        let report = r.run();
        assert!(report.found_violation(), "Spectre V1 must surface as a CT-SEQ violation");
        let v = report.violation.unwrap();
        assert_eq!(v.vulnerability, VulnClass::SpectreV1);
        assert!(v.test_case.conditional_branch_count() > 0);
    }

    #[test]
    fn target5_complies_with_ct_cond() {
        // CT-COND permits leakage during branch prediction, so the V1-only
        // target no longer violates it (Table 3, Target 5 row CT-COND).
        let target = Target::target5();
        let config = quick_config(&target, Contract::ct_cond()).with_max_test_cases(15);
        let mut r = Revizor::new(target.cpu(), config).with_target(target.clone());
        let report = r.run();
        assert!(!report.found_violation());
    }

    #[test]
    fn handwritten_v1_gadget_detected_quickly() {
        let target = Target::target5();
        let config = quick_config(&target, Contract::ct_seq());
        let mut r = Revizor::new(target.cpu(), config).with_target(target.clone());
        let tc = gadgets::spectre_v1();
        let outcome = r.test_case(&tc, 7).unwrap();
        assert!(outcome.confirmed_violation.is_some(), "handwritten V1 gadget must violate CT-SEQ");
    }

    #[test]
    fn noisy_campaign_violation_reproduces_through_public_api() {
        use rvz_executor::NoiseConfig;
        let target = Target::target5();
        let generator = rvz_gen::GeneratorConfig::for_subset(target.isa)
            .with_basic_blocks(4)
            .with_instructions(14);
        let noise = NoiseConfig { one_off_probability: 0.05, smi_probability: 0.05, seed: 17 };
        let mut config = FuzzerConfig::for_target(&target, Contract::ct_seq())
            .with_generator(generator)
            .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(5).with_noise(noise))
            .with_inputs_per_test_case(20)
            // Under this noise stream the first violating test case sits at
            // absolute seed ~162; start nearby so the test stays fast.
            .with_max_test_cases(60)
            .with_seed(150);
        // One (partial) round for the whole budget: the generator never
        // escalates, so the violating test case can be regenerated from its
        // campaign seed alone.
        config.round_size = 1000;

        let mut fuzzer = Revizor::new(target.cpu(), config.clone()).with_target(target.clone());
        let report = fuzzer.run();
        let v = report.violation.expect("noisy campaign must find Spectre V1");

        // Replay through the public sequential API on a fresh fuzzer: the
        // shared seed derivation must reproduce the same inputs, the same
        // noise stream, and therefore the exact same confirmed violation.
        let tc = ProgramGenerator::new(config.generator.clone()).generate(v.test_case_seed);
        let mut replay = Revizor::new(target.cpu(), config).with_target(target.clone());
        let outcome = replay.test_case(&tc, v.test_case_seed).unwrap();
        assert_eq!(outcome.inputs, v.inputs, "input batch must match the campaign's");
        let rv = outcome.confirmed_violation.expect("violation must reproduce under replay");
        assert_eq!((rv.input_a, rv.input_b), (v.violation.input_a, v.violation.input_b));
        assert_eq!(rv.htrace_a, v.violation.htrace_a);
        assert_eq!(rv.htrace_b, v.violation.htrace_b);
    }

    #[test]
    fn partial_final_round_is_counted_without_escalation() {
        // `max_test_cases = 10, round_size = 4` runs rounds of 4, 4 and 2
        // test cases: the final partial round counts toward `rounds` but
        // has no boundary, so it never escalates the generator.
        let run_with_budget = |max: usize| {
            let target = Target::target1();
            let mut config = quick_config(&target, Contract::ct_seq()).with_max_test_cases(max);
            config.round_size = 4;
            Revizor::new(target.cpu(), config).with_target(target.clone()).run()
        };
        let full = run_with_budget(8);
        let partial = run_with_budget(10);
        assert_eq!(full.rounds, 2);
        assert_eq!(partial.test_cases, 10);
        assert_eq!(partial.rounds, 3, "the final partial round must be counted");
        assert_eq!(
            partial.escalations, full.escalations,
            "a partial round has no boundary and must not escalate"
        );
    }

    #[test]
    fn zero_round_size_terminates() {
        // `round_size` is a public field; a zero value must not stall the
        // campaign loop (it is clamped to 1).
        let target = Target::target1();
        let mut config = quick_config(&target, Contract::ct_seq()).with_max_test_cases(3);
        config.round_size = 0;
        let report = Revizor::new(target.cpu(), config).with_target(target.clone()).run();
        assert_eq!(report.test_cases, 3);
        assert_eq!(report.rounds, 3);
    }

    #[test]
    fn report_metrics_are_populated() {
        let target = Target::target1();
        let config = quick_config(&target, Contract::ct_seq()).with_max_test_cases(12);
        let mut r = Revizor::new(target.cpu(), config).with_target(target.clone());
        let report = r.run();
        assert_eq!(report.test_cases, 12);
        assert!(report.total_inputs >= 12 * 20);
        assert!(report.rounds >= 1);
        assert!(report.mean_effectiveness > 0.0, "low-entropy inputs must collide");
        assert!(report.test_cases_per_second() > 0.0);
    }
}
