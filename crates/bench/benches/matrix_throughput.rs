//! Criterion bench for the campaign orchestrator: the wall-clock cost of a
//! Table 3-style matrix run with cross-contract trace sharing versus the
//! pre-orchestrator shape (one fully independent campaign per cell).
//!
//! Both sides run the same cells, the same budgets and the same per-cell
//! seed streams, and produce identical per-cell verdicts — the orchestrator
//! guarantees cell results are independent of the slate's composition — so
//! the comparison isolates the scheduling + htrace-sharing win: each
//! target's hardware traces are collected once and checked against all four
//! contracts instead of once per contract.

use criterion::{criterion_group, criterion_main, Criterion};
use revizor::orchestrator::CampaignMatrix;
use revizor::targets::Target;
use rvz_model::Contract;

/// A small Table 3 slice: one violating and two complying targets against
/// the full CT-* contract family (12 cells, 3 cell groups).
fn slice_targets() -> Vec<Target> {
    vec![Target::target1(), Target::target4(), Target::target5()]
}

const BUDGET: usize = 24;
const SEED: u64 = 11;

fn matrix(parallelism: usize) -> CampaignMatrix {
    let mut m = CampaignMatrix::new(SEED).with_budget(BUDGET).with_parallelism(parallelism);
    for target in slice_targets() {
        m = m.add_cells(target, Contract::table3_contracts());
    }
    m
}

fn bench_matrix_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_throughput");
    group.sample_size(10);

    // The pre-orchestrator Table 3 loop: every cell is an independent
    // campaign that collects its own hardware traces.
    group.bench_function("sequential_per_cell_12_cells", |b| {
        b.iter(|| {
            let mut reports = Vec::new();
            for target in slice_targets() {
                for contract in Contract::table3_contracts() {
                    let report = CampaignMatrix::new(SEED)
                        .with_budget(BUDGET)
                        .add_cell(target.clone(), contract)
                        .run();
                    reports.push(report);
                }
            }
            reports
        })
    });

    // The orchestrated run: same cells, same seeds, shared pool, htraces
    // collected once per (target, test case).
    group.bench_function("shared_matrix_12_cells", |b| {
        let m = matrix(1);
        b.iter(|| m.run())
    });

    // Same, with the shared pool fanned out (single-core containers show no
    // extra win here; multi-core hosts overlap the cell groups).
    group.bench_function("shared_matrix_12_cells_threads_4", |b| {
        let m = matrix(4);
        b.iter(|| m.run())
    });

    group.finish();
}

criterion_group!(benches, bench_matrix_throughput);
criterion_main!(benches);
