//! Handwritten test cases (gadgets) for known speculative vulnerabilities.
//!
//! The paper uses manually written test cases to measure how many random
//! inputs Revizor needs to surface each known vulnerability (Table 5), to
//! illustrate the novel variants (Figures 5 and 6) and to describe the new
//! store-bypass variant found during artifact evaluation (§A.6).  These are
//! the equivalents for the reproduction's ISA; all of them confine their
//! memory accesses to the sandbox exactly like generated test cases do.

use rvz_isa::builder::TestCaseBuilder;
use rvz_isa::{AluOp, Cond, Reg, SandboxLayout, TestCase};

// The Table 5 gadgets and the predictor-zoo gadgets are authored in
// `rvz_gen::scenario` so campaign cells can pin them via
// `GeneratorConfig::with_scenario`; this module re-exposes them under the
// historical names alongside the remaining handwritten witnesses.

/// The sandbox-masking constant for a one-page sandbox (`0b111111000000`).
const MASK: i64 = 0b111111000000;

/// Spectre V1 (bounds check bypass): a conditional bounds check guards a
/// dependent double load; on the mispredicted path the secret selects the
/// address of the second load (Figure 6b of the paper).
pub fn spectre_v1() -> TestCase {
    rvz_gen::scenario::spectre_v1()
}

/// Spectre V1.1 (speculative buffer overflow): the mispredicted path
/// contains a store whose address depends on unchecked data, followed by a
/// use of the same location.
pub fn spectre_v1_1() -> TestCase {
    rvz_gen::scenario::spectre_v1_1()
}

/// Spectre V2 (branch target injection): an indirect jump whose target is
/// predicted by the BTB; the mispredicted target leaks a register through a
/// load.
pub fn spectre_v2() -> TestCase {
    rvz_gen::scenario::spectre_v2()
}

/// Spectre V4 (speculative store bypass): a store with a slowly resolving
/// address is bypassed by a younger load, whose stale value selects a
/// dependent access.
pub fn spectre_v4() -> TestCase {
    rvz_gen::scenario::spectre_v4()
}

/// Spectre V5 / ret2spec: the return address is overwritten in memory, so
/// the RSB predicts a stale target whose body leaks a register.
pub fn spectre_v5_ret() -> TestCase {
    rvz_gen::scenario::spectre_v5_ret()
}

/// MDS via the line-fill buffer (RIDL/ZombieLoad-style): a secret travels
/// through the fill buffer, an assisted load transiently forwards it, and a
/// dependent access leaks it.
pub fn mds_lfb() -> TestCase {
    rvz_gen::scenario::mds_lfb()
}

/// MDS via the store buffer (Fallout-style): the secret enters the memory
/// subsystem through a store rather than a load.
pub fn mds_sb() -> TestCase {
    rvz_gen::scenario::mds_sb()
}

/// Cross-site BTB-aliasing V2: requires an aliasing set-associative BTB
/// (see [`rvz_gen::Scenario::BtbAliasingV2`]).
pub fn btb_aliasing_v2() -> TestCase {
    rvz_gen::scenario::btb_aliasing_v2()
}

/// Deep RSB over/underflow chain: requires a cyclic RSB (see
/// [`rvz_gen::Scenario::DeepRsbChain`]).
pub fn deep_rsb_chain(depth: usize) -> TestCase {
    rvz_gen::scenario::deep_rsb_chain(depth)
}

/// Predictor-state-dependent leak: requires a history-sensitive direction
/// predictor (see [`rvz_gen::Scenario::PredictorStateLeak`]).
pub fn predictor_state_leak() -> TestCase {
    rvz_gen::scenario::predictor_state_leak()
}

/// LVI-Null: on an MDS-patched part the assisted load transiently forwards
/// zero; the dependent computation mixes the injected zero with other
/// registers, exposing information the contract does not allow.
pub fn lvi_null() -> TestCase {
    TestCaseBuilder::new()
        .origin("gadget:lvi-null")
        .sandbox(SandboxLayout::two_pages().with_assist_page(1))
        .block("entry", |b| {
            // Assisted load; architectural value comes from the input.
            b.load_disp(Reg::Rbx, Reg::R14, 4096 + 256);
            // Mix the (possibly zero-injected) value with another register.
            b.alu(AluOp::Sub, Reg::Rbx, Reg::Rdx);
            b.neg(Reg::Rbx);
            b.and_imm(Reg::Rbx, MASK);
            b.load(Reg::Rcx, Reg::R14, Reg::Rbx);
            b.exit();
        })
        .build()
}

/// The novel V1 latency variant (Figure 5): whether the speculative load
/// lands in the cache depends on the latency of a division feeding it.
pub fn v1_var() -> TestCase {
    TestCaseBuilder::new()
        .origin("gadget:v1-var")
        .block("entry", |b| {
            b.alu_imm(AluOp::And, Reg::Rdx, 0);
            b.alu_imm(AluOp::Or, Reg::Rcx, 1);
            b.div(Reg::Rcx); // b = variable_latency(a)
            b.cmp_imm(Reg::Rbx, 128);
            b.jcc(Cond::B, "spec", "done");
        })
        .block("spec", |b| {
            // The speculative access mixes the division result with another
            // register, so its address carries data and its issue time
            // carries the division latency — the race of Figure 5.
            b.add(Reg::Rax, Reg::Rbx);
            b.and_imm(Reg::Rax, MASK);
            b.load(Reg::Rsi, Reg::R14, Reg::Rax); // c = array[b]
            b.jmp("done");
        })
        .block("done", |b| b.exit())
        .build()
}

/// The novel V4 latency variant (§6.3): the store-bypass window races a
/// variable-latency division feeding the bypassing load's dependent access.
pub fn v4_var() -> TestCase {
    TestCaseBuilder::new()
        .origin("gadget:v4-var")
        .block("entry", |b| {
            // Variable-latency producer.
            b.alu_imm(AluOp::And, Reg::Rdx, 0);
            b.alu_imm(AluOp::Or, Reg::Rcx, 1);
            b.div(Reg::Rcx);
            // Slow store address chain.
            b.mov_imm(Reg::Rbx, 0);
            b.imul_imm(Reg::Rbx, 1);
            b.imul_imm(Reg::Rbx, 1);
            b.and_imm(Reg::Rbx, MASK);
            b.store(Reg::R14, Reg::Rbx, Reg::Rdx);
            // The bypassing load's dependent access also waits for the DIV.
            b.load_disp(Reg::Rsi, Reg::R14, 0);
            b.add(Reg::Rsi, Reg::Rax);
            b.and_imm(Reg::Rsi, MASK);
            b.load(Reg::Rdi, Reg::R14, Reg::Rsi);
            b.exit();
        })
        .build()
}

/// The novel store-bypass variant found during artifact evaluation (§A.6):
/// two consecutive loads from the same address, only one of which bypasses
/// an older store with a slow address, so they transiently return different
/// values; the difference is leaked through a dependent access.
pub fn ssb_double_load() -> TestCase {
    TestCaseBuilder::new()
        .origin("gadget:ssb-double-load")
        .block("entry", |b| {
            // addr_slow: dynamically computed (slow) copy of addr_fast (0).
            b.mov_imm(Reg::Rax, 0);
            b.imul_imm(Reg::Rax, 1);
            b.imul_imm(Reg::Rax, 1);
            b.imul_imm(Reg::Rax, 1);
            b.and_imm(Reg::Rax, MASK);
            // *addr_slow = new_value (RDX).
            b.store(Reg::R14, Reg::Rax, Reg::Rdx);
            // x1 = *addr_fast  (issues early -> may bypass the store).
            b.load_disp(Reg::Rbx, Reg::R14, 0);
            // x2 = *addr_slow  (waits for the slow chain and a division, so
            // the store has resolved by then and forwards new_value).
            b.alu_imm(AluOp::And, Reg::Rdx, 0);
            b.alu_imm(AluOp::Or, Reg::Rcx, 1);
            b.div(Reg::Rcx);
            b.add_imm(Reg::Rax, 0);
            b.load(Reg::Rsi, Reg::R14, Reg::Rax);
            // y = array[x1 - x2].
            b.sub(Reg::Rbx, Reg::Rsi);
            b.and_imm(Reg::Rbx, MASK);
            b.load(Reg::Rdi, Reg::R14, Reg::Rbx);
            b.exit();
        })
        .build()
}

/// Figure 6a: the secret is loaded *non-speculatively* and leaked on a
/// speculative path.  This violates CT-SEQ but **not** ARCH-SEQ, which
/// permits exposure of non-speculatively loaded values (§6.6).
pub fn arch_seq_insensitive() -> TestCase {
    TestCaseBuilder::new()
        .origin("gadget:fig6a-nonspec-load")
        .block("entry", |b| {
            b.and_imm(Reg::Rbx, MASK);
            b.load(Reg::Rcx, Reg::R14, Reg::Rbx); // a = array1[b] (architectural)
            b.and_imm(Reg::Rcx, MASK);
            b.cmp_imm(Reg::Rax, 128);
            b.jcc(Cond::B, "spec", "done");
        })
        .block("spec", |b| {
            b.load(Reg::Rdx, Reg::R14, Reg::Rcx); // c = array2[a] (speculative)
            b.jmp("done");
        })
        .block("done", |b| b.exit())
        .build()
}

/// Figure 6b: both the secret load and its use are speculative — the classic
/// V1 gadget.  This violates CT-SEQ *and* ARCH-SEQ (§6.6).
pub fn arch_seq_sensitive() -> TestCase {
    spectre_v1()
}

/// The §6.4 speculative-store-eviction witness: the mispredicted path
/// contains a store whose address depends on unchecked data.  On a part
/// where speculative stores already modify the cache (Coffee Lake) this
/// violates the CT-COND variant that does not permit speculative stores to
/// leak.
pub fn speculative_store_eviction() -> TestCase {
    TestCaseBuilder::new()
        .origin("gadget:spec-store-eviction")
        .block("entry", |b| {
            b.and_imm(Reg::Rbx, MASK);
            b.cmp_imm(Reg::Rax, 128);
            b.jcc(Cond::B, "store_path", "done");
        })
        .block("store_path", |b| {
            b.store(Reg::R14, Reg::Rbx, Reg::Rcx);
            b.jmp("done");
        })
        .block("done", |b| b.exit())
        .build()
}

/// All Table 5 gadgets with their paper labels, in table order.
pub fn table5_gadgets() -> Vec<(&'static str, TestCase)> {
    vec![
        ("V1", spectre_v1()),
        ("V1.1", spectre_v1_1()),
        ("V2", spectre_v2()),
        ("V4", spectre_v4()),
        ("V5-ret", spectre_v5_ret()),
        ("MDS-LFB", mds_lfb()),
        ("MDS-SB", mds_sb()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_emu::Runner;
    use rvz_gen::InputGenerator;

    #[test]
    fn all_gadgets_are_valid_and_fault_free() {
        let mut gadgets = table5_gadgets();
        gadgets.push(("LVI", lvi_null()));
        gadgets.push(("V1-var", v1_var()));
        gadgets.push(("V4-var", v4_var()));
        gadgets.push(("A.6", ssb_double_load()));
        gadgets.push(("Fig6a", arch_seq_insensitive()));
        gadgets.push(("6.4", speculative_store_eviction()));
        let gen = InputGenerator::new(3);
        for (name, tc) in gadgets {
            assert_eq!(tc.validate(), Ok(()), "{name}");
            for input in gen.generate(&tc, 1, 10) {
                Runner::new(&tc)
                    .run(&input)
                    .unwrap_or_else(|e| panic!("gadget {name} faulted: {e}"));
            }
        }
    }

    #[test]
    fn table5_has_seven_entries_in_paper_order() {
        let names: Vec<&str> = table5_gadgets().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["V1", "V1.1", "V2", "V4", "V5-ret", "MDS-LFB", "MDS-SB"]);
    }

    #[test]
    fn gadget_origins_are_labelled() {
        assert!(spectre_v1().origin().contains("spectre-v1"));
        assert!(mds_lfb().origin().contains("mds"));
        assert!(ssb_double_load().origin().contains("double-load"));
    }

    #[test]
    fn assist_gadgets_use_the_assist_page() {
        assert_eq!(mds_lfb().sandbox().assist_page, Some(1));
        assert_eq!(mds_sb().sandbox().assist_page, Some(1));
        assert_eq!(lvi_null().sandbox().assist_page, Some(1));
        assert_eq!(spectre_v1().sandbox().assist_page, None);
    }

    #[test]
    fn v5_ret_has_call_and_ret() {
        let tc = spectre_v5_ret();
        let has_call = tc
            .blocks()
            .iter()
            .any(|b| matches!(b.terminator, rvz_isa::Terminator::Call { .. }));
        let has_ret =
            tc.blocks().iter().any(|b| matches!(b.terminator, rvz_isa::Terminator::Ret));
        assert!(has_call && has_ret);
    }
}
