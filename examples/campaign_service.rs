//! Serve fuzzing campaigns in-process: submit a small Table-3 slice as a
//! job, stream its progress, and verify the served verdicts are
//! byte-identical to running the matrix directly.
//!
//! ```text
//! cargo run --release --example campaign_service
//! ```
//!
//! The same jobs can be served over TCP: start `revizor-serve` and submit
//! with `revizor-submit` (see the README's "Campaign service" section).

use revizor_suite::bench::report::matrix_cells_json;
use revizor_suite::prelude::*;

fn main() {
    // An in-process service: two shard workers, no TCP, no spool.
    let handle = ServiceHandle::start(ServiceConfig::default()).expect("service starts");

    // Target 5 (Skylake, AR+MEM+CB) against the four Table 3 contracts.
    let spec = JobSpec::new(7)
        .with_budget(60)
        .add_cell(5, "CT-SEQ")
        .add_cell(5, "CT-BPAS")
        .add_cell(5, "CT-COND")
        .add_cell(5, "CT-COND-BPAS");
    let job = handle.submit(spec.clone()).expect("job accepted");
    println!("submitted {job} ({} cells)", spec.cells.len());

    let result = handle.wait(&job).expect("job completes");
    for cell in result.get("cells").and_then(|c| c.as_array()).unwrap_or_default() {
        println!(
            "  target {} x {:<14} found: {} ({} test cases)",
            cell.get("target").and_then(|v| v.as_u64()).unwrap_or(0),
            cell.get("contract").and_then(|v| v.as_str()).unwrap_or("?"),
            cell.get("found").and_then(|v| v.as_bool()).unwrap_or(false),
            cell.get("test_cases").and_then(|v| v.as_u64()).unwrap_or(0),
        );
    }

    // The service contract: served verdicts are byte-identical to an
    // in-process matrix run of the same spec.
    let baseline = spec.to_matrix().expect("spec resolves").run();
    assert_eq!(
        result.get("cells").expect("cells present").render(),
        matrix_cells_json(&baseline).render()
    );
    println!("served verdicts match the in-process CampaignMatrix::run byte-for-byte");
    handle.shutdown();
}
