//! # rvz-model
//!
//! Executable speculation contracts (the *Model* of MRT, §5.4).
//!
//! A speculation contract specifies, for every instruction, the information
//! an attacker may legitimately learn (*observation clause*) and the
//! speculation the CPU may legitimately perform (*execution clause*).  The
//! model executes a test case on the architectural emulator ([`rvz_emu`]),
//! follows the execution clause by exploring speculative paths with a
//! checkpoint/rollback mechanism, and records the observation clause into a
//! **contract trace**.
//!
//! Supported observation clauses (§2.3): [`ObservationClause::Mem`],
//! [`ObservationClause::Ct`], [`ObservationClause::Arch`].
//! Supported execution clauses: [`ExecutionClause::Seq`],
//! [`ExecutionClause::Cond`], [`ExecutionClause::Bpas`],
//! [`ExecutionClause::CondBpas`], plus the §6.4 variant in which speculative
//! stores are not permitted to leak
//! ([`Contract::without_speculative_store_exposure`]).
//!
//! # Example
//!
//! ```
//! use rvz_isa::{builder::TestCaseBuilder, Input, Reg, Cond};
//! use rvz_model::{Contract, ContractModel};
//!
//! // Figure 1 of the paper: z = array1[x]; if (y < 10) z = array2[y].
//! let tc = TestCaseBuilder::new()
//!     .block("entry", |b| {
//!         b.and_imm(Reg::Rax, 0b111111000000);
//!         b.load(Reg::Rbx, Reg::R14, Reg::Rax);
//!         b.cmp_imm(Reg::Rcx, 10);
//!         b.jcc(Cond::B, "then", "end");
//!     })
//!     .block("then", |b| {
//!         b.and_imm(Reg::Rcx, 0b111111000000);
//!         b.load(Reg::Rdx, Reg::R14, Reg::Rcx);
//!         b.jmp("end");
//!     })
//!     .block("end", |b| b.exit())
//!     .build();
//!
//! let mut input = Input::zeroed(tc.sandbox());
//! input.set_reg(Reg::Rax, 0x100);
//! input.set_reg(Reg::Rcx, 20); // branch not taken architecturally
//!
//! let seq = ContractModel::new(Contract::mem_seq()).collect(&tc, &input).unwrap();
//! let cond = ContractModel::new(Contract::mem_cond()).collect(&tc, &input).unwrap();
//! // MEM-COND additionally exposes the access on the mispredicted path.
//! assert!(cond.trace.len() > seq.trace.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contract;
pub mod ctrace;
pub mod model;

pub use contract::{Contract, ExecutionClause, ObservationClause};
pub use ctrace::{CTrace, Observation};
pub use model::{ContractModel, ExecutedInstr, ExecutionInfo, InstrKind, MemAddrs, ModelOutput};
