//! Multi-host mode: the coordinator side of the worker protocol.
//!
//! A coordinator is a campaign server whose jobs run on **remote worker
//! hosts** (`revizor-worker` processes) instead of in-process shard
//! threads.  Clients see the exact same JSON-lines protocol; behind the
//! core, a second listener accepts worker connections and a poll reactor
//! (same shape as [`crate::server`]) drives dispatch and replication:
//!
//! ```text
//!            clients                         worker hosts
//!   submit/watch/cancel │   ┌──────────────┐ │ register ▲
//!            ───────────┼──►│ ServiceCore  │◄┼──────────┘
//!                           │  job table   │ │  assign(job, spec, cp) ─►
//!                           │  event logs  │ │  ◄─ wave(cp, digest, events)
//!                           │  spool ◄─────┼─┼─ replicate, then ack ─►
//!                           └──────────────┘ │  ◄─ done(result) / cancelled
//! ```
//!
//! ## The replication contract
//!
//! After every wave a worker sends the job's [`MatrixCheckpoint`] (with its
//! [`digest`](revizor::orchestrator::MatrixCheckpoint::digest) computed
//! *before* encoding) and blocks for the coordinator's `ack`.  The
//! coordinator re-digests the decoded snapshot — a mismatch means the
//! transfer codec lost state, so the snapshot is **rejected** (`"accepted":
//! false`) rather than spooled; the job then simply resumes from an older
//! replicated wave if its worker dies.  Because a resumed
//! [`MatrixRun`](revizor::orchestrator::MatrixRun) replays the identical
//! stream suffix from *any* wave boundary, verdicts stay byte-identical no
//! matter which replicated checkpoint a reassignment starts from — the
//! chaos harness (`tests/chaos.rs`) sweeps exactly this property.
//!
//! ## Failure handling
//!
//! * **Worker dies / connection drops** — every job assigned to the
//!   connection is handed back to the queue with its last replicated
//!   checkpoint ([`ServiceCore::requeue_interrupted`]) and reassigned to
//!   the next idle worker.
//! * **Cancellation** — a client `cancel` marks the job; the coordinator
//!   forwards `{"op":"cancel"}` to the owning worker, which stops at the
//!   next wave boundary and reports back its stopping checkpoint.
//! * **Priorities** — dispatch claims the highest-priority queued job
//!   (FIFO within a priority), exactly like the in-process shard workers.

use crate::core::ServiceCore;
use crate::framing;
use crate::spool::JobPhase;
use rvz_bench::json::{parse, Json};
use rvz_bench::report::checkpoint_transfer_from_json;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One connected worker host.
struct WorkerConn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// The name the worker registered under (empty until `register`).
    name: String,
    registered: bool,
    /// When the connection last produced bytes, for the silent-partition
    /// timeout ([`crate::ServiceConfig::worker_timeout`]).
    last_heard: Instant,
    /// The job currently assigned to this worker (one at a time).
    job: Option<String>,
    /// Has the cancel for the assigned job already been forwarded?
    cancel_sent: bool,
    /// Highest wave replicated for the current assignment (transfers must
    /// arrive strictly increasing).
    last_wave: Option<usize>,
    closed: bool,
}

impl WorkerConn {
    fn queue_line(&mut self, doc: &Json) {
        framing::queue_line(&mut self.outbuf, doc);
    }
}

/// The coordinator reactor: worker listener + connections (see the module
/// docs).
pub struct Coordinator {
    core: Arc<ServiceCore>,
    listener: TcpListener,
    addr: SocketAddr,
    conns: Vec<WorkerConn>,
}

impl Coordinator {
    /// Bind the worker listener (non-blocking) on `listen`.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind(core: Arc<ServiceCore>, listen: &str) -> io::Result<Coordinator> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Coordinator { core, listener, addr, conns: Vec::new() })
    }

    /// The bound worker address (useful with an ephemeral `:0` port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// One non-blocking pass: accept workers, ingest their frames,
    /// forward cancels, dispatch queued jobs to idle workers, flush.
    /// Returns whether any progress was made (callers sleep briefly when
    /// idle).
    pub fn poll_once(&mut self) -> bool {
        let mut progress = false;

        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_ok() {
                        self.conns.push(WorkerConn {
                            stream,
                            inbuf: Vec::new(),
                            outbuf: Vec::new(),
                            name: String::new(),
                            registered: false,
                            last_heard: Instant::now(),
                            job: None,
                            cancel_sent: false,
                            last_wave: None,
                            closed: false,
                        });
                        progress = true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        for conn in &mut self.conns {
            progress |= Self::service_conn(&self.core, conn);
        }

        // Silent-partition detection: a worker driving a job sends at
        // least one frame per wave, so a long-silent assigned connection
        // is dead even if the socket never errors (pulled cable, frozen
        // host).  Dropping it is safe — the job resumes byte-identically
        // from its last replicated checkpoint on another worker.
        let timeout = self.core.config().worker_timeout;
        for conn in &mut self.conns {
            if !conn.closed && conn.job.is_some() && conn.last_heard.elapsed() > timeout {
                eprintln!(
                    "coordinator: worker `{}` silent for {:.1?} mid-job; dropping it",
                    conn.name,
                    conn.last_heard.elapsed()
                );
                conn.closed = true;
            }
        }

        // A closed connection orphans its assignment: hand the job back to
        // the queue at its last replicated checkpoint.
        for conn in &mut self.conns {
            if conn.closed {
                if let Some(job) = conn.job.take() {
                    eprintln!(
                        "coordinator: worker `{}` lost mid-job; requeueing {job}",
                        conn.name
                    );
                    self.core.requeue_interrupted(&job);
                    progress = true;
                }
            }
        }
        self.conns.retain(|c| !c.closed);

        progress |= self.forward_cancels();
        progress |= self.dispatch();

        for conn in &mut self.conns {
            progress |= Self::flush(conn);
        }
        progress
    }

    /// Read and handle every complete frame of one connection.
    fn service_conn(core: &Arc<ServiceCore>, conn: &mut WorkerConn) -> bool {
        let (mut progress, closed) = framing::read_available(&mut conn.stream, &mut conn.inbuf);
        conn.closed |= closed;
        if progress {
            conn.last_heard = Instant::now();
        }
        while let Some(line) = framing::next_line(&mut conn.inbuf) {
            Self::handle_frame(core, conn, &line);
            progress = true;
        }
        progress
    }

    /// Handle one worker frame.
    fn handle_frame(core: &Arc<ServiceCore>, conn: &mut WorkerConn, line: &str) {
        let frame = match parse(line) {
            Ok(doc) => doc,
            Err(e) => {
                // A malformed frame means the peer is not speaking the
                // protocol (or the stream is corrupt): drop it; its job is
                // requeued like any other disconnect.
                eprintln!("coordinator: malformed worker frame ({e}); dropping `{}`", conn.name);
                conn.closed = true;
                return;
            }
        };
        match frame.get("op").and_then(Json::as_str) {
            Some("register") => {
                conn.name = frame
                    .get("worker")
                    .and_then(Json::as_str)
                    .unwrap_or("anonymous")
                    .to_string();
                conn.registered = true;
                conn.queue_line(&Json::obj().field("op", "registered"));
            }
            Some("wave") => Self::handle_wave(core, conn, &frame),
            Some("done") => {
                let Some(job) = frame.get("job").and_then(Json::as_str) else { return };
                if conn.job.as_deref() != Some(job) {
                    return; // stale frame from a superseded assignment
                }
                // The closing cell events (budget-exhausted cells close at
                // finish) ride on the done frame; publish before the
                // terminating done event.
                let events = frame
                    .get("events")
                    .and_then(Json::as_array)
                    .map(<[Json]>::to_vec)
                    .unwrap_or_default();
                core.publish(job, events);
                let result = frame.get("result").cloned().unwrap_or(Json::Null);
                core.complete(job, result);
                conn.job = None;
                conn.cancel_sent = false;
                conn.last_wave = None;
            }
            Some("cancelled") => {
                let Some(job) = frame.get("job").and_then(Json::as_str) else { return };
                if conn.job.as_deref() != Some(job) {
                    return;
                }
                // The worker's stopping point rides along as a normal
                // checkpoint transfer; keep it only if it validates.
                let checkpoint = checkpoint_transfer_from_json(&frame)
                    .ok()
                    .filter(|t| t.validates() && t.job == job)
                    .map(|t| t.checkpoint);
                core.finish_cancelled(job, checkpoint);
                conn.job = None;
                conn.cancel_sent = false;
                conn.last_wave = None;
            }
            _ => {}
        }
    }

    /// Replicate one wave checkpoint (the heart of the failover story).
    fn handle_wave(core: &Arc<ServiceCore>, conn: &mut WorkerConn, frame: &Json) {
        let transfer = match checkpoint_transfer_from_json(frame) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("coordinator: undecodable checkpoint transfer ({e})");
                conn.closed = true;
                return;
            }
        };
        let stale = conn.job.as_deref() != Some(transfer.job.as_str());
        let replayed = conn.last_wave.is_some_and(|w| transfer.checkpoint.wave <= w);
        let valid = transfer.validates();
        let accepted = !stale && !replayed && valid;
        if accepted {
            let events = frame
                .get("events")
                .and_then(Json::as_array)
                .map(<[Json]>::to_vec)
                .unwrap_or_default();
            core.publish(&transfer.job, events);
            core.save_checkpoint(&transfer.job, transfer.checkpoint.clone(), JobPhase::Running);
            conn.last_wave = Some(transfer.checkpoint.wave);
        } else if !valid {
            // Never spool a snapshot that lost state in transit: resuming
            // from it could silently change verdicts.  The job still holds
            // its previous replicated checkpoint, which resumes correctly.
            eprintln!(
                "coordinator: checkpoint digest mismatch for {} wave {} (rejected)",
                transfer.job, transfer.checkpoint.wave
            );
        }
        conn.queue_line(
            &Json::obj()
                .field("op", "ack")
                .field("job", transfer.job.as_str())
                .field("wave", transfer.checkpoint.wave)
                .field("accepted", accepted),
        );
    }

    /// Forward pending cancellations to the workers driving the jobs.
    fn forward_cancels(&mut self) -> bool {
        let mut progress = false;
        for conn in &mut self.conns {
            let Some(job) = conn.job.clone() else { continue };
            if !conn.cancel_sent && self.core.cancel_requested(&job) {
                conn.queue_line(&Json::obj().field("op", "cancel").field("job", job.as_str()));
                conn.cancel_sent = true;
                progress = true;
            }
        }
        progress
    }

    /// Assign queued jobs (highest priority first) to idle workers.
    fn dispatch(&mut self) -> bool {
        let mut progress = false;
        for conn in &mut self.conns {
            if !conn.registered || conn.job.is_some() {
                continue;
            }
            let Some((job, spec, checkpoint)) =
                self.core.claim(Some(conn.name.as_str()))
            else {
                break; // queue empty: no later conn will find work either
            };
            let assign = Json::obj()
                .field("op", "assign")
                .field("job", job.as_str())
                .field("spec", spec.to_json())
                .field(
                    "checkpoint",
                    checkpoint.as_ref().map(rvz_bench::report::matrix_checkpoint_to_json),
                );
            eprintln!(
                "coordinator: assigned {job} to worker `{}`{}",
                conn.name,
                match &checkpoint {
                    Some(cp) => format!(" (resuming from wave {})", cp.wave),
                    None => String::new(),
                }
            );
            conn.queue_line(&assign);
            conn.job = Some(job);
            conn.cancel_sent = false;
            conn.last_wave = checkpoint.map(|cp| cp.wave);
            // The silence clock starts at assignment — idle workers send
            // nothing, so their stale `last_heard` must not count against
            // the new job.
            conn.last_heard = Instant::now();
            progress = true;
        }
        progress
    }

    /// Flush as much queued output as the socket accepts.
    fn flush(conn: &mut WorkerConn) -> bool {
        let (progress, closed) = framing::flush(&mut conn.stream, &mut conn.outbuf);
        conn.closed |= closed;
        progress
    }

    /// Drive the reactor until the core stops, then tell every worker to
    /// shut down (best effort).
    pub fn run(mut self) {
        while !self.core.stopped() {
            if !self.poll_once() {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        for conn in &mut self.conns {
            conn.queue_line(&Json::obj().field("op", "shutdown"));
            // The socket is non-blocking; a backed-up buffer would make
            // write_all bail on WouldBlock and silently drop the shutdown
            // frame, leaving workers to burn their whole reconnect-retry
            // window.  Switch to blocking with a short timeout so the
            // frame actually drains (bounded: this is best-effort).
            let _ = conn.stream.set_nonblocking(false);
            let _ = conn.stream.set_write_timeout(Some(Duration::from_millis(500)));
            let _ = conn.stream.write_all(&conn.outbuf);
        }
    }
}

/// A running coordinator: the reactor thread plus its bound worker
/// address.
pub struct CoordinatorHandle {
    addr: SocketAddr,
    thread: JoinHandle<()>,
}

impl CoordinatorHandle {
    /// Spawn the coordinator reactor on its own thread.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn spawn(core: Arc<ServiceCore>, listen: &str) -> io::Result<CoordinatorHandle> {
        let coordinator = Coordinator::bind(core, listen)?;
        let addr = coordinator.local_addr();
        let thread = std::thread::Builder::new()
            .name("rvz-service-coordinator".to_string())
            .spawn(move || coordinator.run())
            .map_err(io::Error::other)?;
        Ok(CoordinatorHandle { addr, thread })
    }

    /// The bound worker address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Join the reactor thread (call after [`ServiceCore::stop`]).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}
