//! Offline stand-in for `serde_json`.
//!
//! No code in the workspace currently produces JSON; this stub exists so
//! that `[workspace.dependencies]` carries the same dependency set the
//! online build would, and so future reporting code has a signature-
//! compatible seam to build against.

use std::fmt;

/// Error type standing in for `serde_json::Error`.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Signature-compatible stand-in for `serde_json::to_string`.
///
/// The vendored `serde` derives expand to nothing, so no workspace type
/// implements `Serialize` and this function is deliberately uncallable; it
/// exists so code written against the real API still type-checks.
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String, Error> {
    Err(Error("vendored serde stub cannot serialize".to_string()))
}

/// Signature-compatible stand-in for `serde_json::to_string_pretty`.
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(value: &T) -> Result<String, Error> {
    to_string(value)
}
