//! The campaign server: serve Revizor fuzzing campaigns over TCP.
//!
//! ```text
//! revizor-serve [--addr=127.0.0.1:15790] [--spool=DIR] [--shards=N] [--checkpoint-every=N]
//! ```
//!
//! * `--addr` — listen address (use port `0` for an ephemeral port; the
//!   bound address is printed on startup).
//! * `--spool` — durable job state; a restarted server resumes every
//!   unfinished job from here with byte-identical verdicts.
//! * `--shards` — long-lived worker threads; jobs are distributed over
//!   them by job-id hash.
//! * `--checkpoint-every` — waves between spool checkpoints (default 1).
//!
//! The wire protocol (newline-delimited JSON) is documented in
//! `rvz_service::server`; submit with `revizor-submit` or any line-based
//! TCP client.

use rvz_bench::flag_value_from_args;
use rvz_service::{ServiceConfig, ServiceHandle};
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let addr =
        flag_value_from_args::<String>("--addr").unwrap_or_else(|| "127.0.0.1:15790".to_string());
    let spool = flag_value_from_args::<String>("--spool").map(PathBuf::from);
    let shards = flag_value_from_args::<usize>("--shards").unwrap_or(2);
    let checkpoint_every = flag_value_from_args::<usize>("--checkpoint-every").unwrap_or(1);

    let config = ServiceConfig {
        shards,
        spool: spool.clone(),
        checkpoint_every,
        listen: Some(addr),
    };
    let handle = match ServiceHandle::start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("revizor-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    let bound = handle.local_addr().expect("listen address configured");
    eprintln!(
        "revizor-serve: listening on {bound} ({shards} shard{}, spool: {})",
        if shards == 1 { "" } else { "s" },
        spool.as_deref().map(|p| p.display().to_string()).unwrap_or_else(|| "none".to_string()),
    );
    let resumed = handle.core().list();
    if !resumed.is_empty() {
        eprintln!("revizor-serve: {} job(s) loaded from the spool", resumed.len());
    }

    // Serve until killed; the spool makes an abrupt kill safe (unfinished
    // jobs resume on the next start).
    loop {
        std::thread::sleep(Duration::from_secs(1));
    }
}
