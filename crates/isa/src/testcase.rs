//! Test cases: DAGs of basic blocks plus the sandbox layout they run in.

use crate::block::{BasicBlock, BlockId, Terminator};
use crate::inst::Instr;
use crate::sandbox::SandboxLayout;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// A complete test case (the "program" of Definition 1).
///
/// Blocks are stored in topological order; block `0` is the entry.  Generated
/// test cases are DAGs (terminators only jump forward), which matches the
/// paper's loop-free generation strategy (§5.1).  Handwritten gadgets may use
/// `Call`/`Ret` but must still be acyclic in the static successor relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestCase {
    blocks: Vec<BasicBlock>,
    sandbox: SandboxLayout,
    /// Free-form origin note ("generated seed=42", "gadget:spectre-v1", ...).
    origin: String,
}

/// Errors produced by [`TestCase::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The test case has no blocks.
    Empty,
    /// A terminator refers to a block that does not exist.
    DanglingTarget {
        /// Block containing the bad terminator.
        from: BlockId,
        /// Missing target.
        to: BlockId,
    },
    /// A terminator jumps backwards or to itself, which could form a loop.
    BackwardEdge {
        /// Block containing the terminator.
        from: BlockId,
        /// Backward target.
        to: BlockId,
    },
    /// Block ids are not dense and in order.
    MisnumberedBlock {
        /// Position in the vector.
        expected: usize,
        /// Actual id found.
        found: BlockId,
    },
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Empty => write!(f, "test case has no basic blocks"),
            TestCaseError::DanglingTarget { from, to } => {
                write!(f, "terminator of {from} targets non-existent block {to}")
            }
            TestCaseError::BackwardEdge { from, to } => {
                write!(f, "terminator of {from} jumps backwards to {to}")
            }
            TestCaseError::MisnumberedBlock { expected, found } => {
                write!(f, "block at position {expected} has id {found}")
            }
        }
    }
}

impl std::error::Error for TestCaseError {}

impl TestCase {
    /// Create a test case from blocks and a sandbox layout.
    ///
    /// Use [`TestCase::validate`] to check structural invariants.
    pub fn new(blocks: Vec<BasicBlock>, sandbox: SandboxLayout) -> TestCase {
        TestCase { blocks, sandbox, origin: String::new() }
    }

    /// Attach an origin note.
    pub fn with_origin(mut self, origin: impl Into<String>) -> TestCase {
        self.origin = origin.into();
        self
    }

    /// The origin note.
    pub fn origin(&self) -> &str {
        &self.origin
    }

    /// The basic blocks in topological order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Mutable access to the blocks (used by the postprocessor/minimizer).
    pub fn blocks_mut(&mut self) -> &mut Vec<BasicBlock> {
        &mut self.blocks
    }

    /// The sandbox layout.
    pub fn sandbox(&self) -> SandboxLayout {
        self.sandbox
    }

    /// Replace the sandbox layout (e.g. to enable the assist page).
    pub fn set_sandbox(&mut self, sandbox: SandboxLayout) {
        self.sandbox = sandbox;
    }

    /// The entry block.
    pub fn entry(&self) -> &BasicBlock {
        &self.blocks[0]
    }

    /// Look up a block by id.
    pub fn block(&self, id: BlockId) -> Option<&BasicBlock> {
        self.blocks.get(id.index())
    }

    /// Total number of instructions (bodies plus terminators).
    pub fn instruction_count(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    /// Number of memory-accessing instructions.
    pub fn memory_access_count(&self) -> usize {
        self.blocks.iter().map(|b| b.memory_access_count()).sum()
    }

    /// Number of conditional-branch terminators.
    pub fn conditional_branch_count(&self) -> usize {
        self.blocks.iter().filter(|b| b.terminator.is_conditional()).count()
    }

    /// Number of indirect-jump terminators (the sites a BTB predicts).
    pub fn indirect_branch_count(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(b.terminator, Terminator::IndirectJmp { .. }))
            .count()
    }

    /// Number of return terminators (the sites an RSB predicts).
    pub fn return_count(&self) -> usize {
        self.blocks.iter().filter(|b| matches!(b.terminator, Terminator::Ret)).count()
    }

    /// Number of variable-latency instructions.
    pub fn variable_latency_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.instrs.iter().filter(|i| i.is_variable_latency()).count())
            .sum()
    }

    /// Iterate over `(block, index, instruction)` for all body instructions.
    pub fn iter_instrs(&self) -> impl Iterator<Item = (BlockId, usize, &Instr)> {
        self.blocks
            .iter()
            .flat_map(|b| b.instrs.iter().enumerate().map(move |(i, ins)| (b.id, i, ins)))
    }

    /// Check structural invariants: non-empty, dense block numbering, no
    /// dangling targets and no backward edges for plain jumps/branches.
    ///
    /// # Errors
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), TestCaseError> {
        if self.blocks.is_empty() {
            return Err(TestCaseError::Empty);
        }
        for (i, b) in self.blocks.iter().enumerate() {
            if b.id.index() != i {
                return Err(TestCaseError::MisnumberedBlock { expected: i, found: b.id });
            }
        }
        let n = self.blocks.len();
        for b in &self.blocks {
            for succ in b.terminator.successors() {
                if succ.index() >= n {
                    return Err(TestCaseError::DanglingTarget { from: b.id, to: succ });
                }
                // Call targets may be placed anywhere; plain jumps must go
                // forward so generated programs stay loop-free.
                let is_call = matches!(b.terminator, Terminator::Call { .. });
                if !is_call && succ.index() <= b.id.index() {
                    return Err(TestCaseError::BackwardEdge { from: b.id, to: succ });
                }
            }
        }
        Ok(())
    }

    /// Blocks reachable from the entry following static successors.
    pub fn reachable_blocks(&self) -> HashSet<BlockId> {
        let mut seen = HashSet::new();
        let mut stack = vec![BlockId::ENTRY];
        while let Some(b) = stack.pop() {
            if !seen.insert(b) {
                continue;
            }
            if let Some(block) = self.block(b) {
                for s in block.terminator.successors() {
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Render the test case in the assembly-like format used by the paper's
    /// figures (Figure 3 / Figure 4).
    pub fn to_asm(&self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for TestCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.origin.is_empty() {
            writeln!(f, "; origin: {}", self.origin)?;
        }
        writeln!(f, "; sandbox: {} page(s), mask {:#b}", self.sandbox.data_pages, self.sandbox.address_mask())?;
        for b in &self.blocks {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Cond};
    use crate::operand::Operand;
    use crate::reg::Reg;

    fn simple_tc() -> TestCase {
        let mut b0 = BasicBlock::new(BlockId(0));
        b0.instrs.push(Instr::Alu {
            op: AluOp::And,
            dest: Operand::reg(Reg::Rax),
            src: Operand::imm(0b111111000000),
            lock: false,
        });
        b0.terminator =
            Terminator::CondJmp { cond: Cond::Ns, taken: BlockId(1), not_taken: BlockId(2) };
        let b1 = BasicBlock::new(BlockId(1));
        let mut b1 = b1;
        b1.terminator = Terminator::Jmp { target: BlockId(2) };
        let b2 = BasicBlock::new(BlockId(2));
        TestCase::new(vec![b0, b1, b2], SandboxLayout::one_page()).with_origin("test")
    }

    #[test]
    fn validate_accepts_simple_dag() {
        assert_eq!(simple_tc().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_empty() {
        let tc = TestCase::new(vec![], SandboxLayout::one_page());
        assert_eq!(tc.validate(), Err(TestCaseError::Empty));
    }

    #[test]
    fn validate_rejects_dangling_target() {
        let mut tc = simple_tc();
        tc.blocks_mut()[1].terminator = Terminator::Jmp { target: BlockId(9) };
        assert!(matches!(tc.validate(), Err(TestCaseError::DanglingTarget { .. })));
    }

    #[test]
    fn validate_rejects_backward_edge() {
        let mut tc = simple_tc();
        tc.blocks_mut()[2].terminator = Terminator::Jmp { target: BlockId(0) };
        assert!(matches!(tc.validate(), Err(TestCaseError::BackwardEdge { .. })));
    }

    #[test]
    fn validate_rejects_misnumbered_blocks() {
        let b0 = BasicBlock::new(BlockId(1));
        let tc = TestCase::new(vec![b0], SandboxLayout::one_page());
        assert!(matches!(tc.validate(), Err(TestCaseError::MisnumberedBlock { .. })));
    }

    #[test]
    fn counters() {
        let tc = simple_tc();
        assert_eq!(tc.instruction_count(), 4);
        assert_eq!(tc.conditional_branch_count(), 1);
        assert_eq!(tc.memory_access_count(), 0);
        assert_eq!(tc.variable_latency_count(), 0);
        assert_eq!(tc.origin(), "test");
    }

    #[test]
    fn reachability() {
        let tc = simple_tc();
        let r = tc.reachable_blocks();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn display_contains_blocks_and_sandbox() {
        let s = simple_tc().to_asm();
        assert!(s.contains(".bb0"));
        assert!(s.contains("AND RAX, 4032"));
        assert!(s.contains("sandbox"));
    }

    #[test]
    fn error_display() {
        let e = TestCaseError::DanglingTarget { from: BlockId(0), to: BlockId(7) };
        assert!(format!("{e}").contains(".bb7"));
    }
}
