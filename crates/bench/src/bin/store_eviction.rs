//! Regenerates §6.4: validating the "stores do not modify the cache until
//! they retire" assumption made by STT and KLEESpectre.
//!
//! The CT-COND contract is modified so that speculative stores are *not*
//! permitted to leak; Skylake complies, Coffee Lake does not (speculative
//! stores already allocate cache lines there).
//!
//! Both contracts run as one *slate* per CPU over the shared detection
//! schedule ([`first_violations_over_seeds`], the same pool `table3` and
//! `contract_sensitivity` drive): each seed's growing input batches are
//! measured once and the hardware traces are checked against CT-COND and
//! CT-COND-NO-SPEC-STORE together.  Plain CT-COND is the built-in control —
//! it permits speculative-store leakage, so it must stay quiet on both CPUs,
//! and the slate provides that column for free.

use revizor::detection::first_violations_over_seeds;
use revizor::gadgets;
use revizor::targets::Target;
use rvz_bench::{budget_from_args, row};
use rvz_executor::MeasurementMode;
use rvz_model::Contract;

fn main() {
    let max_inputs = budget_from_args(150);
    let contracts = vec![Contract::ct_cond(), Contract::ct_cond_no_spec_store()];
    println!(
        "Speculative store eviction (§6.4), contracts: {} (control) / {}",
        contracts[0], contracts[1]
    );
    println!();

    let gadget = gadgets::speculative_store_eviction();
    let cpus: Vec<(&str, Target)> = vec![
        ("Skylake", {
            let mut t = Target::target5();
            t.mode = MeasurementMode::prime_probe();
            t
        }),
        ("Coffee Lake", {
            let mut t = Target::target8();
            t.mode = MeasurementMode::prime_probe();
            t.isa = rvz_isa::IsaSubset::AR_MEM_CB;
            t
        }),
    ];

    let widths = [14, 22, 34];
    println!(
        "{}",
        row(&["CPU".into(), "CT-COND (control)".into(), "CT-COND-NO-SPEC-STORE".into()], &widths)
    );
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 3 * widths.len()));
    for (name, target) in cpus {
        let first = first_violations_over_seeds(
            &target,
            &contracts,
            &gadget,
            (0..5u64).map(|s| s * 13 + 3),
            max_inputs,
        );
        let mut line = vec![name.to_string()];
        line.push(match first[0] {
            Some(n) => format!("VIOLATION after {n} inputs (?)"),
            None => "quiet (as expected)".to_string(),
        });
        line.push(match first[1] {
            Some(n) => format!("VIOLATION after {n} inputs (assumption wrong)"),
            None => "no violation (assumption holds)".to_string(),
        });
        println!("{}", row(&line, &widths));
    }

    println!();
    println!(
        "Expected shape (paper): no violation on Skylake; a counterexample on Coffee Lake, \
         showing that speculative stores can modify the cache state before retiring.  The \
         CT-COND control column stays quiet on both CPUs."
    );
}
