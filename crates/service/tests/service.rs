//! Integration tests for the campaign service: determinism of served
//! verdicts against in-process runs, kill + resume through the spool,
//! client isolation, multi-host dispatch, job priorities, cancellation
//! and the server-gone watch error.

use rvz_bench::json::Json;
use rvz_bench::report::matrix_cells_json;
use rvz_service::{
    deterministic_result, Client, JobPhase, JobSpec, ServiceConfig, ServiceHandle, Spool,
    SubmitError, WatchError, Worker, WorkerConfig,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rvz-service-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small Table-3 slice: Target 5 against three contracts (V1 violates
/// CT-SEQ and CT-BPAS within this budget; CT-COND runs to exhaustion).
fn slice_spec(seed: u64) -> JobSpec {
    JobSpec::new(seed)
        .with_budget(40)
        .add_cell(5, "CT-SEQ")
        .add_cell(5, "CT-BPAS")
        .add_cell(5, "CT-COND")
}

#[test]
fn served_job_is_byte_identical_to_an_in_process_matrix_run() {
    let handle = ServiceHandle::start(ServiceConfig {
        shards: 2,
        spool: None,
        checkpoint_every: 1,
        listen: Some("127.0.0.1:0".to_string()),
        worker_listen: None,
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let addr = handle.local_addr().expect("TCP front-end attached");

    let spec = slice_spec(7);
    let mut client = Client::connect(addr).expect("client connects");
    let job = client.submit(&spec).expect("job accepted");

    let mut rounds = 0usize;
    let mut cells = 0usize;
    let result = client
        .watch(&job, |event| match event.get("event").and_then(Json::as_str) {
            Some("round") => rounds += 1,
            Some("cell") => cells += 1,
            _ => {}
        })
        .expect("job completes");
    assert!(rounds >= 2, "budget 40 / round 10 must stream several round events");
    assert_eq!(cells, 3, "every cell reports exactly one cell event");

    // Acceptance criterion: the served result's deterministic section is
    // byte-identical to an in-process CampaignMatrix::run of the same seed
    // — same cells, verdicts, unit seeds, test-case counts, down to the
    // full violation reports.
    let baseline = spec.to_matrix().expect("spec resolves").run();
    assert_eq!(
        result.get("cells").expect("result has cells").render(),
        matrix_cells_json(&baseline).render(),
    );
    assert_eq!(
        result.get("measured_test_cases").and_then(Json::as_u64),
        Some(baseline.test_cases as u64)
    );

    // Submitting the identical spec again yields the identical
    // deterministic payload (fresh job id and timing differ).
    let job2 = client.submit(&spec).expect("second submission accepted");
    assert_ne!(job, job2);
    let result2 = client.watch(&job2, |_| {}).expect("second job completes");
    assert_eq!(
        deterministic_result(&result).render(),
        deterministic_result(&result2).render()
    );

    handle.shutdown();
}

#[test]
fn killed_server_resumes_from_the_spool_byte_identically() {
    let dir = scratch_dir("resume");
    // Target 1 never violates CT-SEQ, so its group consumes the whole
    // budget (many waves) — plenty of room to kill the server mid-job.
    // Target 5 contributes a violation so the resumed result also carries a
    // full ViolationReport.
    let spec = JobSpec::new(7)
        .with_budget(200)
        .add_cell(1, "CT-SEQ")
        .add_cell(5, "CT-SEQ")
        .add_cell(5, "CT-BPAS");
    let config = |listen: Option<String>| ServiceConfig {
        shards: 1,
        spool: Some(dir.clone()),
        checkpoint_every: 1,
        listen,
        worker_listen: None,
        ..ServiceConfig::default()
    };

    // First server: submit, let it make progress, then kill it mid-job.
    let first = ServiceHandle::start(config(None)).expect("first server starts");
    let job = first.submit(spec.clone()).expect("job accepted");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let rounds = first
            .core()
            .events_from(&job, 0)
            .expect("job known")
            .iter()
            .filter(|e| e.get("event").and_then(Json::as_str) == Some("round"))
            .count();
        if rounds >= 2 {
            break;
        }
        assert!(Instant::now() < deadline, "job made no progress");
        std::thread::sleep(Duration::from_millis(5));
    }
    first.shutdown(); // stops at the next wave boundary, like a kill

    // The spool must hold the interrupted job with a mid-stream checkpoint.
    let records = Spool::open(&dir).expect("spool opens").load_all();
    assert_eq!(records.len(), 1);
    let record = &records[0];
    assert_eq!(record.job, job);
    assert!(record.result.is_none(), "the job must not have finished before the kill");
    let checkpoint = record.checkpoint.as_ref().expect("checkpoint persisted");
    let progressed: usize = checkpoint.groups.iter().map(|g| g.next_index).sum();
    assert!(progressed > 0, "checkpoint must carry real progress");
    assert!(
        checkpoint.groups.iter().any(|g| g.next_index < 200),
        "the kill must land mid-stream"
    );

    // Second server over the same spool: the job resumes automatically and
    // completes with byte-identical verdicts.
    let second = ServiceHandle::start(config(None)).expect("second server starts");
    let result = second.wait(&job).expect("resumed job completes");
    second.shutdown();

    let baseline = spec.to_matrix().expect("spec resolves").run();
    assert_eq!(
        result.get("cells").expect("result has cells").render(),
        matrix_cells_json(&baseline).render(),
        "kill + resume must not change a single byte of the verdict section"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_do_not_perturb_each_others_verdicts() {
    let handle = ServiceHandle::start(ServiceConfig {
        shards: 2,
        spool: None,
        checkpoint_every: 1,
        listen: Some("127.0.0.1:0".to_string()),
        worker_listen: None,
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let addr = handle.local_addr().expect("TCP front-end attached");

    // Two clients, two different jobs, submitted before either result is
    // read so the campaigns overlap in the service.
    let spec_a = slice_spec(7);
    let spec_b = JobSpec::new(19).with_budget(40).add_cell(5, "CT-SEQ").add_cell(1, "CT-SEQ");
    let mut client_a = Client::connect(addr).expect("client A connects");
    let mut client_b = Client::connect(addr).expect("client B connects");
    let job_a = client_a.submit(&spec_a).expect("job A accepted");
    let job_b = client_b.submit(&spec_b).expect("job B accepted");

    let watcher = {
        let spec = spec_b.clone();
        std::thread::spawn(move || {
            let result = client_b.watch(&job_b, |_| {}).expect("job B completes");
            (spec, result)
        })
    };
    let result_a = client_a.watch(&job_a, |_| {}).expect("job A completes");
    let (spec_b, result_b) = watcher.join().expect("watcher thread");

    for (spec, result) in [(&spec_a, &result_a), (&spec_b, &result_b)] {
        let baseline = spec.to_matrix().expect("spec resolves").run();
        assert_eq!(
            result.get("cells").expect("result has cells").render(),
            matrix_cells_json(&baseline).render(),
            "a concurrent neighbor job must not perturb verdicts"
        );
    }

    handle.shutdown();
}

#[test]
fn restart_preserves_results_and_never_reuses_job_ids() {
    let dir = scratch_dir("restart-ids");
    let config = || ServiceConfig {
        shards: 1,
        spool: Some(dir.clone()),
        checkpoint_every: 1,
        listen: None,
        worker_listen: None,
        ..ServiceConfig::default()
    };
    let spec = JobSpec::new(3).with_budget(4).add_cell(1, "CT-SEQ");

    let first = ServiceHandle::start(config()).expect("first server starts");
    let job1 = first.submit(spec.clone()).expect("job accepted");
    let result1 = first.wait(&job1).expect("job completes");
    first.shutdown();

    let second = ServiceHandle::start(config()).expect("second server starts");
    // The restored done job still answers with its result, and its event
    // log terminates a watch (the `done` event is reconstructed).
    assert_eq!(
        second.core().result(&job1).expect("job known").map(|r| deterministic_result(&r).render()),
        Some(deterministic_result(&result1).render())
    );
    let events = second.core().events_from(&job1, 0).expect("job known");
    assert!(
        events.iter().any(|e| e.get("event").and_then(Json::as_str) == Some("done")),
        "restored job must carry a terminating done event"
    );
    // Resubmitting the identical spec must mint a fresh id (the old
    // counter collided here before) — and must not clobber job1's result.
    let job2 = second.submit(spec).expect("resubmission accepted");
    assert_ne!(job1, job2, "job ids must never be reused across restarts");
    let result2 = second.wait(&job2).expect("resubmitted job completes");
    assert_eq!(
        deterministic_result(&result1).render(),
        deterministic_result(&result2).render()
    );
    assert!(second.core().result(&job1).expect("job1 still known").is_some());
    second.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

/// Poll `check` until it returns true or `secs` elapse (assert on timeout).
fn await_or_die(secs: u64, what: &str, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !check() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn multi_host_jobs_run_on_worker_hosts_byte_identically() {
    let dir = scratch_dir("multi-host");
    // Coordinator mode: no local shards; jobs go to worker hosts.
    let handle = ServiceHandle::start(ServiceConfig {
        shards: 2, // ignored in coordinator mode
        spool: Some(dir.clone()),
        checkpoint_every: 1,
        listen: None,
        worker_listen: Some("127.0.0.1:0".to_string()),
        ..ServiceConfig::default()
    })
    .expect("coordinator starts");
    let worker_addr = handle.worker_addr().expect("worker port bound").to_string();

    // Two worker hosts (threads here; separate processes in production —
    // the CI smoke covers that shape).
    let spawn_worker = |name: &str| {
        let mut config = WorkerConfig::new(worker_addr.clone());
        config.name = name.to_string();
        config.retry_for = Duration::from_secs(5);
        std::thread::spawn(move || Worker::new(config).run())
    };
    let w1 = spawn_worker("w1");
    let w2 = spawn_worker("w2");

    let spec_a = slice_spec(7);
    let spec_b = JobSpec::new(19).with_budget(40).add_cell(5, "CT-SEQ").add_cell(1, "CT-SEQ");
    let job_a = handle.submit(spec_a.clone()).expect("job A accepted");
    let job_b = handle.submit(spec_b.clone()).expect("job B accepted");
    let result_a = handle.wait(&job_a).expect("job A completes");
    let result_b = handle.wait(&job_b).expect("job B completes");

    for (spec, result) in [(&spec_a, &result_a), (&spec_b, &result_b)] {
        let baseline = spec.to_matrix().expect("spec resolves").run();
        assert_eq!(
            result.get("cells").expect("result has cells").render(),
            matrix_cells_json(&baseline).render(),
            "worker-host verdicts must be byte-identical to in-process runs"
        );
    }
    // Watchers see the full event history, worker-driven or not.
    let events = handle.core().events_from(&job_a, 0).expect("job A known");
    let rounds = events
        .iter()
        .filter(|e| e.get("event").and_then(Json::as_str) == Some("round"))
        .count();
    assert!(rounds >= 2, "worker-driven jobs must stream round events (got {rounds})");
    assert_eq!(
        events.last().and_then(|e| e.get("event")).and_then(Json::as_str),
        Some("done")
    );

    handle.shutdown();
    let _ = (w1.join(), w2.join());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watch_surfaces_server_gone_and_the_job_resumes_on_restart() {
    let dir = scratch_dir("server-gone");
    // Target 1 never violates CT-SEQ: the job runs its whole budget, so
    // the server can be stopped mid-watch deterministically.
    let spec = JobSpec::new(7).with_budget(200).add_cell(1, "CT-SEQ").add_cell(5, "CT-SEQ");
    let config = || ServiceConfig {
        shards: 1,
        spool: Some(dir.clone()),
        checkpoint_every: 1,
        listen: Some("127.0.0.1:0".to_string()),
        worker_listen: None,
        ..ServiceConfig::default()
    };

    let first = ServiceHandle::start(config()).expect("first server starts");
    let addr = first.local_addr().expect("TCP front-end attached");
    let mut client = Client::connect(addr).expect("client connects");
    let job = client.submit(&spec).expect("job accepted");

    // Watch on a second connection; kill the server once events flow.
    let watcher = {
        let job = job.clone();
        let mut watch_client = Client::connect(addr).expect("watcher connects");
        std::thread::spawn(move || watch_client.watch(&job, |_| {}))
    };
    {
        let core = first.core();
        let job = job.clone();
        await_or_die(60, "first round events", move || {
            core.events_from(&job, 0).expect("job known").iter().any(|e| {
                e.get("event").and_then(Json::as_str) == Some("round")
            })
        });
    }
    first.shutdown();

    // The distinct error: not a job failure, the job is spooled.
    let outcome = watcher.join().expect("watcher thread");
    assert_eq!(outcome, Err(WatchError::ServerGone { job: job.clone() }));
    let message = WatchError::ServerGone { job: job.clone() }.to_string();
    assert!(message.contains("spooled"), "the error must say the job survives: {message}");

    // Restart over the same spool: the SAME job id resumes and completes
    // with byte-identical verdicts.
    let second = ServiceHandle::start(config()).expect("second server starts");
    let addr = second.local_addr().expect("TCP front-end attached");
    let mut client = Client::connect(addr).expect("client reconnects");
    let result = client.watch(&job, |_| {}).expect("resumed job completes");
    let baseline = spec.to_matrix().expect("spec resolves").run();
    assert_eq!(
        result.get("cells").expect("result has cells").render(),
        matrix_cells_json(&baseline).render(),
        "the job resumed after the server died mid-watch must not change verdicts"
    );
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn higher_priority_jobs_start_first_on_a_saturated_worker() {
    // One shard: the filler job saturates it; everything submitted while
    // it runs drains strictly by (priority, submission order) —
    // observable through the global `seq` stamps on the event logs.
    let handle = ServiceHandle::start(ServiceConfig {
        shards: 1,
        spool: None,
        checkpoint_every: 1,
        listen: None,
        worker_listen: None,
        ..ServiceConfig::default()
    })
    .expect("service starts");

    let filler = handle
        .submit(JobSpec::new(3).with_budget(40).add_cell(1, "CT-SEQ"))
        .expect("filler accepted");
    // Saturation point: only submit the contenders once the single shard
    // worker is committed to the filler.
    {
        let core = handle.core();
        let job = filler.clone();
        await_or_die(60, "filler claimed", move || {
            core.status(&job).unwrap().phase == JobPhase::Running
        });
    }
    let low = handle
        .submit(JobSpec::new(4).with_budget(4).add_cell(1, "CT-SEQ"))
        .expect("low accepted");
    let high = handle
        .submit(JobSpec::new(5).with_budget(4).with_priority(10).add_cell(1, "CT-SEQ"))
        .expect("high accepted");
    assert_eq!(handle.core().status(&high).unwrap().priority, 10);

    for job in [&filler, &low, &high] {
        handle.wait(job).expect("job completes");
    }
    let first_seq = |job: &str| {
        handle.core().events_from(job, 0).expect("job known")[0]
            .get("seq")
            .and_then(Json::as_u64)
            .expect("events are seq-stamped")
    };
    assert!(
        first_seq(&filler) < first_seq(&high) && first_seq(&high) < first_seq(&low),
        "expected filler < high < low, got {} / {} / {}",
        first_seq(&filler),
        first_seq(&high),
        first_seq(&low)
    );
    handle.shutdown();
}

#[test]
fn priority_is_never_inverted_by_placement_across_shard_workers() {
    // Two shard workers: a short filler on one, a much longer filler on
    // the other.  The worker that frees first must take the
    // high-priority contender from the ONE global queue (and then the
    // low one, serially — the long filler is still running), so job-id
    // hashing can never pin the high-priority job behind a busy thread.
    let handle = ServiceHandle::start(ServiceConfig {
        shards: 2,
        spool: None,
        checkpoint_every: 1,
        listen: None,
        worker_listen: None,
        ..ServiceConfig::default()
    })
    .expect("service starts");

    let short_filler = handle
        .submit(JobSpec::new(3).with_budget(40).add_cell(1, "CT-SEQ"))
        .expect("short filler accepted");
    // ~10x the short filler: still running while both contenders drain.
    let long_filler = handle
        .submit(JobSpec::new(4).with_budget(400).add_cell(1, "CT-SEQ"))
        .expect("long filler accepted");
    {
        let core = handle.core();
        let (a, b) = (short_filler.clone(), long_filler.clone());
        await_or_die(60, "both shard workers saturated", move || {
            core.status(&a).unwrap().phase == JobPhase::Running
                && core.status(&b).unwrap().phase == JobPhase::Running
        });
    }
    let low = handle
        .submit(JobSpec::new(5).with_budget(4).add_cell(1, "CT-SEQ"))
        .expect("low accepted");
    let high = handle
        .submit(JobSpec::new(6).with_budget(4).with_priority(7).add_cell(1, "CT-SEQ"))
        .expect("high accepted");
    for job in [&short_filler, &low, &high] {
        handle.wait(job).expect("job completes");
    }
    // Both contenders ran on the worker the short filler freed (the long
    // filler still occupied the other), so their event order IS the claim
    // order: high first despite being submitted last.
    let first_seq = |job: &str| {
        handle.core().events_from(job, 0).expect("job known")[0]
            .get("seq")
            .and_then(Json::as_u64)
            .expect("events are seq-stamped")
    };
    assert!(
        first_seq(&high) < first_seq(&low),
        "the freed worker must take the high-priority job first: high {} vs low {}",
        first_seq(&high),
        first_seq(&low)
    );
    assert_eq!(
        handle.core().status(&long_filler).unwrap().phase,
        JobPhase::Running,
        "the long filler must still be running, proving the contenders shared one worker"
    );
    handle.wait(&long_filler).expect("long filler completes");
    handle.shutdown();
}

#[test]
fn cancelled_job_stops_emitting_and_its_spool_record_survives_restart() {
    let dir = scratch_dir("cancel");
    let config = |listen: Option<String>| ServiceConfig {
        shards: 1,
        spool: Some(dir.clone()),
        checkpoint_every: 1,
        listen,
        worker_listen: None,
        ..ServiceConfig::default()
    };
    let handle = ServiceHandle::start(config(Some("127.0.0.1:0".to_string())))
        .expect("service starts");
    let addr = handle.local_addr().expect("TCP front-end attached");

    // A long-running job (target 1 exhausts its budget of 200).
    let running = handle
        .submit(JobSpec::new(7).with_budget(200).add_cell(1, "CT-SEQ"))
        .expect("job accepted");
    // A queued job behind it cancels immediately.
    let queued = handle
        .submit(JobSpec::new(8).with_budget(200).add_cell(1, "CT-SEQ"))
        .expect("queued job accepted");
    let mut client = Client::connect(addr).expect("client connects");
    assert_eq!(client.cancel(&queued).expect("cancel accepted"), "cancelled");
    assert_eq!(handle.core().status(&queued).unwrap().phase, JobPhase::Cancelled);

    // Cancel the running job once it has streamed some rounds; it stops
    // cooperatively at the next wave boundary.
    {
        let core = handle.core();
        let job = running.clone();
        await_or_die(60, "round events before cancelling", move || {
            core.events_from(&job, 0).expect("job known").iter().any(|e| {
                e.get("event").and_then(Json::as_str) == Some("round")
            })
        });
    }
    assert_eq!(client.cancel(&running).expect("cancel accepted"), "cancelling");
    {
        let core = handle.core();
        let job = running.clone();
        await_or_die(60, "cooperative cancellation", move || {
            core.status(&job).unwrap().phase == JobPhase::Cancelled
        });
    }

    // Invariant: after the terminal event, the log never grows again.
    let events = handle.core().events_from(&running, 0).expect("job known");
    let done = events.last().expect("terminal event");
    assert_eq!(done.get("event").and_then(Json::as_str), Some("done"));
    assert_eq!(done.get("cancelled").and_then(Json::as_bool), Some(true));
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        handle.core().events_from(&running, 0).expect("job known").len(),
        events.len(),
        "a cancelled job must not emit further events"
    );
    // A watch of the cancelled job terminates cleanly with the cancelled
    // result payload.
    let payload = client.watch(&running, |_| {}).expect("watch terminates");
    assert_eq!(payload.get("cancelled").and_then(Json::as_bool), Some(true));
    handle.shutdown();

    // The spool records the cancelled state (including where it stopped)…
    let records = Spool::open(&dir).expect("spool opens").load_all();
    let record = records.iter().find(|r| r.job == running).expect("record kept");
    assert_eq!(record.phase, JobPhase::Cancelled);
    let checkpoint = record.checkpoint.as_ref().expect("stopping checkpoint kept");
    assert!(checkpoint.groups[0].next_index > 0, "stopped mid-stream, not at 0");
    assert!(checkpoint.groups[0].next_index < 200, "stopped before the budget");

    // …and a restarted server keeps both jobs terminally cancelled: no
    // resume, no further events.
    let restarted = ServiceHandle::start(config(None)).expect("restart");
    for job in [&running, &queued] {
        assert_eq!(restarted.core().status(job).unwrap().phase, JobPhase::Cancelled);
    }
    let before = restarted.core().events_from(&running, 0).expect("known").len();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        restarted.core().events_from(&running, 0).expect("known").len(),
        before,
        "a restarted server must not resume a cancelled job"
    );
    restarted.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let handle = ServiceHandle::start(ServiceConfig {
        shards: 1,
        spool: None,
        checkpoint_every: 1,
        listen: Some("127.0.0.1:0".to_string()),
        worker_listen: None,
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let addr = handle.local_addr().expect("TCP front-end attached");
    let mut client = Client::connect(addr).expect("client connects");

    // Unknown op, unknown job, invalid spec: each comes back as an error
    // response on a connection that stays usable.
    assert!(client.request(&Json::obj().field("op", "frobnicate")).is_err());
    assert!(client.status("j-nope").is_err());
    let err = client
        .submit(&JobSpec::new(1).add_cell(42, "CT-SEQ"))
        .expect_err("invalid spec rejected");
    assert!(err.contains("unknown target"), "{err}");
    let pong = client.request(&Json::obj().field("op", "ping")).expect("still usable");
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

    handle.shutdown();
}

#[test]
fn backpressured_submits_retry_and_status_reports_unit_placement() {
    // Fleet mode with a one-unit watermark and no workers: the first job
    // parks two units in the queue, so the next submission must defer.
    let handle = ServiceHandle::start(ServiceConfig {
        shards: 1,
        spool: None,
        checkpoint_every: 1,
        listen: Some("127.0.0.1:0".to_string()),
        worker_listen: Some("127.0.0.1:0".to_string()),
        queue_watermark: 1,
        ..ServiceConfig::default()
    })
    .expect("coordinator starts");
    let addr = handle.local_addr().expect("TCP front-end attached");
    let fleet = handle.worker_addr().expect("fleet port bound").to_string();

    let spec = JobSpec::new(7).with_budget(40).add_cell(1, "CT-SEQ").add_cell(5, "CT-SEQ");
    let mut client = Client::connect(addr).expect("client connects");
    let job = client.try_submit(&spec).expect("an empty queue accepts");
    match client.try_submit(&spec) {
        Err(SubmitError::Backpressure { retry_after }) => {
            assert!(retry_after >= Duration::from_millis(250), "hint is a usable wait");
        }
        other => panic!("expected a backpressure rejection, got {other:?}"),
    }

    // A worker registering at runtime drains both units...
    let worker = {
        let mut config = WorkerConfig::new(fleet);
        config.name = "drain".to_string();
        config.retry_for = Duration::from_secs(3);
        std::thread::spawn(move || {
            let _ = Worker::new(config).run();
        })
    };
    let result = handle.wait(&job).expect("job completes once a worker joins");
    let baseline = spec.to_matrix().expect("spec resolves").run();
    assert_eq!(
        result.get("cells").expect("result has cells").render(),
        matrix_cells_json(&baseline).render(),
    );

    // ...status reports where each relocatable unit ended up...
    let status = client.status(&job).expect("status");
    let units = status.get("units").and_then(Json::as_array).expect("status lists units");
    let mut targets: Vec<u64> =
        units.iter().filter_map(|u| u.get("target").and_then(Json::as_u64)).collect();
    targets.sort_unstable();
    assert_eq!(targets, vec![1, 5], "one relocatable unit per target group");
    assert!(
        units.iter().all(|u| u.get("state").and_then(Json::as_str) == Some("done")),
        "both units ran to completion"
    );

    // ...and the drained queue reopens submissions without any reset.
    client.try_submit(&spec).expect("a drained queue accepts again");
    handle.shutdown();
    let _ = worker.join();
}
