//! The speculative CPU simulator.

use crate::config::UarchConfig;
use crate::predictors::{DirectionPredictor, ReturnPredictor, TargetPredictor};
use crate::store_buffer::{StoreBuffer, StoreBufferEntry};
use crate::timing::Timing;
use crate::CpuUnderTest;
use rvz_cache::{Cache, CacheConfig};
use rvz_emu::{Emulator, EventBuf, Fault, MemEventKind};
use rvz_isa::{
    BlockId, DecodedInstr, DecodedOp, DecodedProgram, DecodedTerm, Input, Instr, Reg, SrcOp,
    Terminator, TestCase, Width,
};
use serde::{Deserialize, Serialize};

/// Per-run options chosen by the executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunOptions {
    /// Enable microcode assists: the accessed-bit of one sandbox page is
    /// cleared before the run, so the first load from that page triggers an
    /// assist (the paper's `*+Assist` executor mode, §5.3).
    pub enable_assists: bool,
}

impl RunOptions {
    /// Options with microcode assists enabled.
    pub fn with_assists() -> RunOptions {
        RunOptions { enable_assists: true }
    }
}

/// Statistics reported by one run of the CPU under test.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Architecturally executed instructions (including terminators).
    pub executed_instructions: usize,
    /// Speculation episodes entered (mispredictions, bypasses, assists).
    pub speculation_episodes: usize,
    /// Instructions executed transiently on speculative paths.
    pub transient_instructions: usize,
    /// Conditional-branch mispredictions.
    pub mispredictions: usize,
    /// Store-bypass (Spectre V4) events.
    pub store_bypasses: usize,
    /// Microcode assists triggered.
    pub assists: usize,
    /// Digest of the final architectural state (for determinism checks).
    pub final_state_digest: u64,
}

/// Maximum architecturally executed instructions per run.
const MAX_ARCH_STEPS: usize = 4096;

/// Position of an instruction inside a test case; `idx == body length`
/// denotes the terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pos {
    block: BlockId,
    idx: usize,
}

/// Transient value injection applied to the first load of a speculation
/// episode (stale store-buffer data for V4, fill-buffer data for MDS, zero
/// for LVI-Null).
#[derive(Debug, Clone, Copy)]
struct Injection {
    addr: u64,
    width: Width,
    value: u64,
}

/// The black-box speculative CPU.
///
/// See the crate documentation for the list of modelled mechanisms; the
/// executor interacts with it exclusively through [`CpuUnderTest`].
#[derive(Debug, Clone)]
pub struct SpecCpu {
    config: UarchConfig,
    cache: Cache,
    branch_predictor: Box<dyn DirectionPredictor>,
    btb: Box<dyn TargetPredictor>,
    rsb: Box<dyn ReturnPredictor>,
    /// Last data value moved through the memory subsystem — the stale
    /// line-fill-buffer content forwarded by MDS-vulnerable parts.
    fill_buffer: u64,
}

/// Per-run mutable bookkeeping.
struct RunCtx {
    store_buffer: StoreBuffer,
    outcome: RunOutcome,
    /// `Some(page)` while the accessed-bit of that sandbox page is still
    /// clear, i.e. the next access to it will trigger an assist.
    assist_armed: Option<u64>,
}

impl SpecCpu {
    /// Create a CPU with the given micro-architecture configuration and an
    /// L1D-sized cache.
    pub fn new(config: UarchConfig) -> SpecCpu {
        let branch_predictor = config.predictors.build_direction();
        let btb = config.predictors.build_target();
        let rsb = config.predictors.build_return();
        SpecCpu { config, cache: Cache::new(CacheConfig::l1d()), branch_predictor, btb, rsb, fill_buffer: 0 }
    }

    /// The micro-architecture configuration.
    pub fn config(&self) -> &UarchConfig {
        &self.config
    }

    /// Immutable access to the cache.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Conditional-branch predictor statistics `(predictions, mispredictions)`.
    pub fn predictor_stats(&self) -> (u64, u64) {
        (self.branch_predictor.predictions(), self.branch_predictor.mispredictions())
    }

    // --- latency helpers ----------------------------------------------------

    /// Memory-latency component, known only after the cache was consulted.
    fn mem_latency(&self, load_hit: Option<bool>) -> u64 {
        match load_hit {
            Some(true) => self.config.load_hit_latency,
            Some(false) => self.config.load_miss_latency,
            None => 0,
        }
    }

    /// Operation-latency component.  Must be evaluated *before* the
    /// instruction executes, because variable-latency instructions (DIV)
    /// derive their latency from their input operand values.
    fn op_latency(&self, instr: &Instr, emu: &Emulator) -> u64 {
        match instr {
            Instr::Div { src } => {
                let divisor = match src {
                    rvz_isa::Operand::Reg(r, w) => w.truncate(emu.state().reg(*r)),
                    rvz_isa::Operand::Imm(v) => *v as u64,
                    rvz_isa::Operand::Mem(m, w) => {
                        let addr = emu.effective_addr(m);
                        emu.state().read_mem(addr, *w).unwrap_or(1)
                    }
                }
                .max(1);
                self.config.div_latency(
                    emu.state().reg(Reg::Rax),
                    emu.state().reg(Reg::Rdx),
                    divisor,
                )
            }
            Instr::Imul { .. } => 3,
            Instr::Lfence | Instr::Mfence => 2,
            _ => self.config.alu_latency,
        }
    }

    /// [`SpecCpu::op_latency`] over a decoded instruction.
    fn op_latency_decoded(&self, op: &DecodedOp, emu: &Emulator) -> u64 {
        match op {
            DecodedOp::Div { src, .. } => {
                let divisor = match src {
                    SrcOp::Reg(r, w) => w.truncate(emu.state().reg(*r)),
                    SrcOp::Imm(v) => *v,
                    SrcOp::Mem(m, w) => {
                        let addr = emu.effective_addr(m);
                        emu.state().read_mem(addr, *w).unwrap_or(1)
                    }
                }
                .max(1);
                self.config.div_latency(
                    emu.state().reg(Reg::Rax),
                    emu.state().reg(Reg::Rdx),
                    divisor,
                )
            }
            DecodedOp::Imul { .. } => 3,
            DecodedOp::Fence => 2,
            _ => self.config.alu_latency,
        }
    }

    /// Touch the cache for a memory access, returning whether it hit.
    fn touch_cache(&mut self, addr: u64) -> bool {
        self.cache.access(addr)
    }

    // --- speculation episodes -------------------------------------------------

    /// Run a speculative path starting at `pos` until the squash cycle, the
    /// speculation window, a fence, or the end of the program.  All
    /// architectural effects are rolled back; only the cache (and the
    /// transient-instruction counters) keep the footprint.
    #[allow(clippy::too_many_arguments)]
    fn speculate(
        &mut self,
        emu: &mut Emulator,
        timing: &mut Timing,
        ctx: &mut RunCtx,
        tc: &TestCase,
        start: Pos,
        injection: Option<Injection>,
        squash_cycle: u64,
        depth: usize,
    ) {
        if self.config.speculation_window == 0 || depth > self.config.max_nesting {
            return;
        }
        ctx.outcome.speculation_episodes += 1;
        let emu_cp = emu.checkpoint();
        let timing_cp = timing.clone();
        let sb_cp = ctx.store_buffer.clone();

        // Apply the transient value injection by temporarily rewriting the
        // injected location; the checkpoint restore undoes it.
        if let Some(inj) = injection {
            let _ = emu.state_mut().write_mem(inj.addr, inj.width, inj.value);
        }

        let mut fuel = self.config.speculation_window;
        let mut pos = start;
        'path: while fuel > 0 {
            let block = match tc.block(pos.block) {
                Some(b) => b,
                None => break,
            };
            if pos.idx < block.instrs.len() {
                let instr = &block.instrs[pos.idx];
                if instr.is_fence() {
                    // A serializing instruction on the wrong path stalls it
                    // until the squash arrives.
                    break 'path;
                }
                let issue = timing.issue_cycle(&instr.reads_regs(), instr.reads_flags());
                if issue > squash_cycle {
                    break 'path;
                }
                // Nested triggers (assists / store bypass) inside the window.
                if depth < self.config.max_nesting {
                    self.maybe_nested_speculation(emu, timing, ctx, tc, pos, instr, issue, depth);
                }
                let op_latency = self.op_latency(instr, emu);
                let mut load_hit = None;
                let fx = match emu.exec_instr(instr) {
                    Ok(fx) => fx,
                    // Transient faults are suppressed: the wrong path simply
                    // stops making progress.
                    Err(_) => break 'path,
                };
                for ev in &fx.mem_events {
                    match ev.kind {
                        MemEventKind::Read => {
                            let hit = self.touch_cache(ev.addr);
                            if load_hit.is_none() {
                                load_hit = Some(hit);
                            }
                        }
                        MemEventKind::Write => {
                            if self.config.spec_store_touches_cache {
                                self.touch_cache(ev.addr);
                            }
                        }
                    }
                }
                let latency = op_latency + self.mem_latency(load_hit);
                timing.retire(issue, latency, &instr.writes_regs(), instr.writes_flags());
                ctx.outcome.transient_instructions += 1;
                fuel -= 1;
                pos.idx += 1;
            } else {
                // Speculative control flow follows the predictors.
                let issue = timing.issue_cycle(
                    &block.terminator.reads_regs(),
                    block.terminator.reads_flags(),
                );
                if issue > squash_cycle {
                    break 'path;
                }
                timing.retire(issue, 1, &[], false);
                ctx.outcome.transient_instructions += 1;
                fuel -= 1;
                let next = match &block.terminator {
                    Terminator::Exit => None,
                    Terminator::Jmp { target } => Some(*target),
                    Terminator::CondJmp { cond, taken, not_taken } => {
                        // Inside the window the front end follows the
                        // predictor; if it has no strong opinion we follow
                        // the speculatively computed flags.
                        let dir = if self.branch_predictor.predict(pos.block.index()) {
                            true
                        } else {
                            emu.eval_cond(*cond)
                        };
                        Some(if dir { *taken } else { *not_taken })
                    }
                    Terminator::IndirectJmp { src, table } => {
                        let predicted = self.btb.predict(pos.block.index());
                        predicted.or_else(|| {
                            let v = emu.state().reg(*src) as usize;
                            Some(table[v % table.len()])
                        })
                    }
                    Terminator::Call { target, return_to } => {
                        let _ = emu.push_ret(return_to.index() as u64);
                        Some(*target)
                    }
                    Terminator::Ret => match emu.pop_ret() {
                        Ok((v, _)) => Some(BlockId((v as usize) % tc.blocks().len())),
                        Err(_) => None,
                    },
                };
                match next {
                    Some(b) => pos = Pos { block: b, idx: 0 },
                    None => break 'path,
                }
            }
        }

        emu.restore(emu_cp);
        *timing = timing_cp;
        ctx.store_buffer = sb_cp;
    }

    /// Check whether the instruction at `pos` triggers a value-injection
    /// speculation episode (store bypass or microcode assist) and run it.
    #[allow(clippy::too_many_arguments)]
    fn maybe_nested_speculation(
        &mut self,
        emu: &mut Emulator,
        timing: &mut Timing,
        ctx: &mut RunCtx,
        tc: &TestCase,
        pos: Pos,
        instr: &Instr,
        issue: u64,
        depth: usize,
    ) {
        if let Some((inj, squash, kind)) = self.injection_trigger(emu, tc, ctx, instr, issue) {
            match kind {
                TriggerKind::Bypass => ctx.outcome.store_bypasses += 1,
                TriggerKind::Assist => {
                    ctx.outcome.assists += 1;
                    ctx.assist_armed = None;
                }
            }
            self.speculate(emu, timing, ctx, tc, pos, Some(inj), squash, depth + 1);
        }
    }

    /// Determine whether a load in `instr` triggers store-bypass or assist
    /// speculation, returning the injection, squash cycle and trigger kind.
    fn injection_trigger(
        &self,
        emu: &Emulator,
        tc: &TestCase,
        ctx: &RunCtx,
        instr: &Instr,
        issue: u64,
    ) -> Option<(Injection, u64, TriggerKind)> {
        let (mem, width, _) = instr.mem_operands().into_iter().find(|(_, _, w)| !w)?;
        let addr = emu.effective_addr(&mem);

        // Microcode assist on the armed page takes precedence: the load
        // cannot complete at all until the assist finishes.
        if let Some(page) = ctx.assist_armed {
            if tc.sandbox().page_of(addr) == Some(page) {
                let value = if self.config.mds_vulnerable {
                    self.fill_buffer
                } else if self.config.lvi_null_injection {
                    0
                } else {
                    // Patched against both: the assist only delays the load.
                    emu.state().read_mem(addr, width).unwrap_or(0)
                };
                let squash = issue + self.config.assist_latency;
                return Some((Injection { addr, width, value }, squash, TriggerKind::Assist));
            }
        }

        // Speculative store bypass (Spectre V4).
        if self.config.bypass_active() {
            if let Some(entry) = ctx.store_buffer.bypass_candidate(addr, width.bytes(), issue) {
                let squash = entry.addr_ready_cycle + self.config.misprediction_penalty;
                return Some((
                    Injection { addr, width, value: width.truncate(entry.stale_value) },
                    squash,
                    TriggerKind::Bypass,
                ));
            }
        }
        None
    }

    // --- architectural execution ------------------------------------------------

    /// Execute one architectural (committed) instruction, spawning
    /// speculation episodes as needed.
    fn exec_arch_instr(
        &mut self,
        emu: &mut Emulator,
        timing: &mut Timing,
        ctx: &mut RunCtx,
        tc: &TestCase,
        pos: Pos,
        instr: &Instr,
    ) -> Result<(), Fault> {
        if instr.is_fence() {
            timing.barrier();
            ctx.store_buffer.drain();
            ctx.outcome.executed_instructions += 1;
            return Ok(());
        }
        let issue = timing.issue_cycle(&instr.reads_regs(), instr.reads_flags());

        // Value-injection speculation (V4 / MDS / LVI) triggered by loads.
        if let Some((inj, squash, kind)) = self.injection_trigger(emu, tc, ctx, instr, issue) {
            match kind {
                TriggerKind::Bypass => ctx.outcome.store_bypasses += 1,
                TriggerKind::Assist => {
                    ctx.outcome.assists += 1;
                    ctx.assist_armed = None;
                }
            }
            self.speculate(emu, timing, ctx, tc, pos, Some(inj), squash, 1);
            // After an assist the load re-issues once the assist completes.
            if kind == TriggerKind::Assist {
                timing.advance_to(issue + self.config.assist_latency);
            }
        }

        // Record stale values for stores before they overwrite memory.
        let mut pending_stores: Vec<(u64, u64, u64)> = Vec::new(); // (addr, len, stale)
        for (mem, width, is_write) in instr.mem_operands() {
            if is_write {
                let addr = emu.effective_addr(&mem);
                let stale = emu.state().read_mem(addr, width).unwrap_or(0);
                let addr_ready = mem
                    .address_regs()
                    .iter()
                    .map(|r| timing.reg_ready(*r))
                    .max()
                    .unwrap_or(0)
                    .max(issue)
                    + self.config.store_address_delay;
                pending_stores.push((addr, width.bytes(), stale));
                // Record immediately so younger loads in later instructions
                // see this store as a bypass candidate.
                ctx.store_buffer.push(StoreBufferEntry {
                    addr,
                    len: width.bytes(),
                    stale_value: stale,
                    new_value: 0, // filled below once the store executes
                    addr_ready_cycle: addr_ready,
                    issue_cycle: issue,
                });
            }
        }

        let op_latency = self.op_latency(instr, emu);
        let fx = emu.exec_instr(instr)?;
        let mut load_hit = None;
        for ev in &fx.mem_events {
            let hit = self.touch_cache(ev.addr);
            if ev.kind == MemEventKind::Read && load_hit.is_none() {
                load_hit = Some(hit);
            }
            // Every committed transfer refreshes the fill buffer contents.
            self.fill_buffer = ev.value;
            // A committed access to the armed page sets the accessed bit
            // even if it was a store (no injection, but no later assist).
            if let Some(page) = ctx.assist_armed {
                if tc.sandbox().page_of(ev.addr) == Some(page) && ev.kind == MemEventKind::Write {
                    ctx.assist_armed = None;
                }
            }
        }

        let latency = op_latency + self.mem_latency(load_hit);
        timing.retire(issue, latency, &instr.writes_regs(), instr.writes_flags());
        let _ = pending_stores;
        ctx.outcome.executed_instructions += 1;
        Ok(())
    }

    /// Execute an architectural terminator, spawning a misprediction episode
    /// when a predictor disagrees with the resolved direction/target.
    fn exec_arch_terminator(
        &mut self,
        emu: &mut Emulator,
        timing: &mut Timing,
        ctx: &mut RunCtx,
        tc: &TestCase,
        pos: Pos,
    ) -> Result<Option<BlockId>, Fault> {
        let block = tc.block(pos.block).expect("valid block");
        let term = &block.terminator;
        let site = pos.block.index();
        let issue = timing.issue_cycle(&term.reads_regs(), term.reads_flags());
        ctx.outcome.executed_instructions += 1;

        let next = match term {
            Terminator::Exit => None,
            Terminator::Jmp { target } => {
                timing.retire(issue, 1, &[], false);
                Some(*target)
            }
            Terminator::CondJmp { cond, taken, not_taken } => {
                let actual = emu.eval_cond(*cond);
                let predicted = self.branch_predictor.predict(site);
                self.branch_predictor.update(site, actual);
                if predicted != actual {
                    ctx.outcome.mispredictions += 1;
                    let wrong = if predicted { *taken } else { *not_taken };
                    let squash = issue + self.config.misprediction_penalty;
                    self.speculate(
                        emu,
                        timing,
                        ctx,
                        tc,
                        Pos { block: wrong, idx: 0 },
                        None,
                        squash,
                        1,
                    );
                }
                timing.retire(issue, 1, &[], false);
                Some(if actual { *taken } else { *not_taken })
            }
            Terminator::IndirectJmp { src, table } => {
                let v = emu.state().reg(*src) as usize;
                let actual = table[v % table.len()];
                let predicted = self.btb.predict(site);
                self.btb.update(site, actual);
                if let Some(p) = predicted {
                    if p != actual {
                        ctx.outcome.mispredictions += 1;
                        let squash = issue + self.config.misprediction_penalty;
                        self.speculate(emu, timing, ctx, tc, Pos { block: p, idx: 0 }, None, squash, 1);
                    }
                }
                timing.retire(issue, 1, &[], false);
                Some(actual)
            }
            Terminator::Call { target, return_to } => {
                let ev = emu.push_ret(return_to.index() as u64)?;
                self.touch_cache(ev.addr);
                self.fill_buffer = ev.value;
                self.rsb.push(*return_to);
                timing.retire(issue, 1, &[], false);
                Some(*target)
            }
            Terminator::Ret => {
                let predicted = self.rsb.pop_predict();
                let (v, ev) = emu.pop_ret()?;
                self.touch_cache(ev.addr);
                let actual = BlockId((v as usize) % tc.blocks().len());
                if let Some(p) = predicted {
                    if p != actual {
                        ctx.outcome.mispredictions += 1;
                        let squash = issue + self.config.misprediction_penalty;
                        self.speculate(emu, timing, ctx, tc, Pos { block: p, idx: 0 }, None, squash, 1);
                    }
                }
                timing.retire(issue, 1, &[], false);
                Some(actual)
            }
        };
        Ok(next)
    }

    // --- decoded fast path --------------------------------------------------

    /// [`SpecCpu::speculate`] over a pre-decoded program, rolling back with a
    /// delta checkpoint (register snapshot + memory undo journal) instead of
    /// a full architectural-state clone.
    #[allow(clippy::too_many_arguments)]
    fn speculate_decoded(
        &mut self,
        emu: &mut Emulator,
        timing: &mut Timing,
        ctx: &mut RunCtx,
        prog: &DecodedProgram,
        start: Pos,
        injection: Option<Injection>,
        squash_cycle: u64,
        depth: usize,
    ) {
        if self.config.speculation_window == 0 || depth > self.config.max_nesting {
            return;
        }
        ctx.outcome.speculation_episodes += 1;
        let emu_cp = emu.begin_speculation();
        let timing_cp = timing.clone();
        let sb_cp = ctx.store_buffer.clone();

        // Apply the transient value injection through the journaled write so
        // the rollback undoes it.
        if let Some(inj) = injection {
            let _ = emu.write_mem(inj.addr, inj.width, inj.value);
        }

        let mut buf = EventBuf::new();
        let mut fuel = self.config.speculation_window;
        let mut pos = start;
        'path: while fuel > 0 {
            let body = prog.body(pos.block);
            if pos.idx < body.len() {
                let d = &body[pos.idx];
                if d.is_fence {
                    // A serializing instruction on the wrong path stalls it
                    // until the squash arrives.
                    break 'path;
                }
                let issue = timing.issue_cycle(&d.reads_regs, d.reads_flags);
                if issue > squash_cycle {
                    break 'path;
                }
                // Nested triggers (assists / store bypass) inside the window.
                if depth < self.config.max_nesting {
                    self.maybe_nested_speculation_decoded(emu, timing, ctx, prog, pos, d, issue, depth);
                }
                let op_latency = self.op_latency_decoded(&d.op, emu);
                let mut load_hit = None;
                buf.clear();
                if emu.exec_decoded(&d.op, &mut buf).is_err() {
                    // Transient faults are suppressed: the wrong path simply
                    // stops making progress.
                    break 'path;
                }
                for ev in buf.events() {
                    match ev.kind {
                        MemEventKind::Read => {
                            let hit = self.touch_cache(ev.addr);
                            if load_hit.is_none() {
                                load_hit = Some(hit);
                            }
                        }
                        MemEventKind::Write => {
                            if self.config.spec_store_touches_cache {
                                self.touch_cache(ev.addr);
                            }
                        }
                    }
                }
                let latency = op_latency + self.mem_latency(load_hit);
                timing.retire(issue, latency, &d.writes_regs, d.writes_flags);
                ctx.outcome.transient_instructions += 1;
                fuel -= 1;
                pos.idx += 1;
            } else {
                // Speculative control flow follows the predictors.
                let term = prog.terminator(pos.block);
                let issue = timing.issue_cycle(&term.reads_regs, term.reads_flags);
                if issue > squash_cycle {
                    break 'path;
                }
                timing.retire(issue, 1, &[], false);
                ctx.outcome.transient_instructions += 1;
                fuel -= 1;
                let next = match &term.term {
                    DecodedTerm::Exit => None,
                    DecodedTerm::Jmp { target } => Some(*target),
                    DecodedTerm::CondJmp { cond, taken, not_taken } => {
                        // Inside the window the front end follows the
                        // predictor; if it has no strong opinion we follow
                        // the speculatively computed flags.
                        let dir = if self.branch_predictor.predict(pos.block.index()) {
                            true
                        } else {
                            emu.eval_cond(*cond)
                        };
                        Some(if dir { *taken } else { *not_taken })
                    }
                    DecodedTerm::IndirectJmp { src, table } => {
                        let predicted = self.btb.predict(pos.block.index());
                        predicted.or_else(|| {
                            let v = emu.state().reg(*src) as usize;
                            Some(table[v % table.len()])
                        })
                    }
                    DecodedTerm::Call { target, return_to } => {
                        let _ = emu.push_ret(return_to.index() as u64);
                        Some(*target)
                    }
                    DecodedTerm::Ret => match emu.pop_ret() {
                        Ok((v, _)) => Some(BlockId((v as usize) % prog.num_blocks())),
                        Err(_) => None,
                    },
                };
                match next {
                    Some(b) => pos = Pos { block: b, idx: 0 },
                    None => break 'path,
                }
            }
        }

        emu.rollback(emu_cp);
        *timing = timing_cp;
        ctx.store_buffer = sb_cp;
    }

    /// [`SpecCpu::maybe_nested_speculation`] over a pre-decoded program.
    #[allow(clippy::too_many_arguments)]
    fn maybe_nested_speculation_decoded(
        &mut self,
        emu: &mut Emulator,
        timing: &mut Timing,
        ctx: &mut RunCtx,
        prog: &DecodedProgram,
        pos: Pos,
        d: &DecodedInstr,
        issue: u64,
        depth: usize,
    ) {
        if let Some((inj, squash, kind)) = self.injection_trigger_decoded(emu, prog, ctx, d, issue)
        {
            match kind {
                TriggerKind::Bypass => ctx.outcome.store_bypasses += 1,
                TriggerKind::Assist => {
                    ctx.outcome.assists += 1;
                    ctx.assist_armed = None;
                }
            }
            self.speculate_decoded(emu, timing, ctx, prog, pos, Some(inj), squash, depth + 1);
        }
    }

    /// [`SpecCpu::injection_trigger`] over a decoded instruction, using its
    /// pre-resolved memory-operand list.
    fn injection_trigger_decoded(
        &self,
        emu: &Emulator,
        prog: &DecodedProgram,
        ctx: &RunCtx,
        d: &DecodedInstr,
        issue: u64,
    ) -> Option<(Injection, u64, TriggerKind)> {
        let (mem, width, _) = d.mem_ops.iter().find(|(_, _, w)| !w)?;
        let addr = emu.effective_addr(mem);

        // Microcode assist on the armed page takes precedence: the load
        // cannot complete at all until the assist finishes.
        if let Some(page) = ctx.assist_armed {
            if prog.sandbox().page_of(addr) == Some(page) {
                let value = if self.config.mds_vulnerable {
                    self.fill_buffer
                } else if self.config.lvi_null_injection {
                    0
                } else {
                    // Patched against both: the assist only delays the load.
                    emu.state().read_mem(addr, *width).unwrap_or(0)
                };
                let squash = issue + self.config.assist_latency;
                return Some((
                    Injection { addr, width: *width, value },
                    squash,
                    TriggerKind::Assist,
                ));
            }
        }

        // Speculative store bypass (Spectre V4).
        if self.config.bypass_active() {
            if let Some(entry) = ctx.store_buffer.bypass_candidate(addr, width.bytes(), issue) {
                let squash = entry.addr_ready_cycle + self.config.misprediction_penalty;
                return Some((
                    Injection { addr, width: *width, value: width.truncate(entry.stale_value) },
                    squash,
                    TriggerKind::Bypass,
                ));
            }
        }
        None
    }

    /// [`SpecCpu::exec_arch_instr`] over a decoded instruction: no AST walk,
    /// no per-step metadata allocation, events in a fixed inline buffer.
    #[allow(clippy::too_many_arguments)]
    fn exec_arch_instr_decoded(
        &mut self,
        emu: &mut Emulator,
        timing: &mut Timing,
        ctx: &mut RunCtx,
        prog: &DecodedProgram,
        pos: Pos,
        d: &DecodedInstr,
        buf: &mut EventBuf,
    ) -> Result<(), Fault> {
        if d.is_fence {
            timing.barrier();
            ctx.store_buffer.drain();
            ctx.outcome.executed_instructions += 1;
            return Ok(());
        }
        let issue = timing.issue_cycle(&d.reads_regs, d.reads_flags);

        // Value-injection speculation (V4 / MDS / LVI) triggered by loads.
        if let Some((inj, squash, kind)) = self.injection_trigger_decoded(emu, prog, ctx, d, issue)
        {
            match kind {
                TriggerKind::Bypass => ctx.outcome.store_bypasses += 1,
                TriggerKind::Assist => {
                    ctx.outcome.assists += 1;
                    ctx.assist_armed = None;
                }
            }
            self.speculate_decoded(emu, timing, ctx, prog, pos, Some(inj), squash, 1);
            // After an assist the load re-issues once the assist completes.
            if kind == TriggerKind::Assist {
                timing.advance_to(issue + self.config.assist_latency);
            }
        }

        // Record stale values for stores before they overwrite memory, so
        // younger loads see this store as a bypass candidate.
        for (mem, width, is_write) in d.mem_ops.iter() {
            if *is_write {
                let addr = emu.effective_addr(mem);
                let stale = emu.state().read_mem(addr, *width).unwrap_or(0);
                let addr_ready = mem
                    .address_regs()
                    .iter()
                    .map(|r| timing.reg_ready(*r))
                    .max()
                    .unwrap_or(0)
                    .max(issue)
                    + self.config.store_address_delay;
                ctx.store_buffer.push(StoreBufferEntry {
                    addr,
                    len: width.bytes(),
                    stale_value: stale,
                    new_value: 0,
                    addr_ready_cycle: addr_ready,
                    issue_cycle: issue,
                });
            }
        }

        let op_latency = self.op_latency_decoded(&d.op, emu);
        buf.clear();
        emu.exec_decoded(&d.op, buf)?;
        let mut load_hit = None;
        for ev in buf.events() {
            let hit = self.touch_cache(ev.addr);
            if ev.kind == MemEventKind::Read && load_hit.is_none() {
                load_hit = Some(hit);
            }
            // Every committed transfer refreshes the fill buffer contents.
            self.fill_buffer = ev.value;
            // A committed access to the armed page sets the accessed bit
            // even if it was a store (no injection, but no later assist).
            if let Some(page) = ctx.assist_armed {
                if prog.sandbox().page_of(ev.addr) == Some(page)
                    && ev.kind == MemEventKind::Write
                {
                    ctx.assist_armed = None;
                }
            }
        }

        let latency = op_latency + self.mem_latency(load_hit);
        timing.retire(issue, latency, &d.writes_regs, d.writes_flags);
        ctx.outcome.executed_instructions += 1;
        Ok(())
    }

    /// [`SpecCpu::exec_arch_terminator`] over a pre-decoded program.
    fn exec_arch_terminator_decoded(
        &mut self,
        emu: &mut Emulator,
        timing: &mut Timing,
        ctx: &mut RunCtx,
        prog: &DecodedProgram,
        pos: Pos,
    ) -> Result<Option<BlockId>, Fault> {
        let term = prog.terminator(pos.block);
        let site = pos.block.index();
        let issue = timing.issue_cycle(&term.reads_regs, term.reads_flags);
        ctx.outcome.executed_instructions += 1;

        let next = match &term.term {
            DecodedTerm::Exit => None,
            DecodedTerm::Jmp { target } => {
                timing.retire(issue, 1, &[], false);
                Some(*target)
            }
            DecodedTerm::CondJmp { cond, taken, not_taken } => {
                let actual = emu.eval_cond(*cond);
                let predicted = self.branch_predictor.predict(site);
                self.branch_predictor.update(site, actual);
                if predicted != actual {
                    ctx.outcome.mispredictions += 1;
                    let wrong = if predicted { *taken } else { *not_taken };
                    let squash = issue + self.config.misprediction_penalty;
                    self.speculate_decoded(
                        emu,
                        timing,
                        ctx,
                        prog,
                        Pos { block: wrong, idx: 0 },
                        None,
                        squash,
                        1,
                    );
                }
                timing.retire(issue, 1, &[], false);
                Some(if actual { *taken } else { *not_taken })
            }
            DecodedTerm::IndirectJmp { src, table } => {
                let v = emu.state().reg(*src) as usize;
                let actual = table[v % table.len()];
                let predicted = self.btb.predict(site);
                self.btb.update(site, actual);
                if let Some(p) = predicted {
                    if p != actual {
                        ctx.outcome.mispredictions += 1;
                        let squash = issue + self.config.misprediction_penalty;
                        self.speculate_decoded(
                            emu,
                            timing,
                            ctx,
                            prog,
                            Pos { block: p, idx: 0 },
                            None,
                            squash,
                            1,
                        );
                    }
                }
                timing.retire(issue, 1, &[], false);
                Some(actual)
            }
            DecodedTerm::Call { target, return_to } => {
                let ev = emu.push_ret(return_to.index() as u64)?;
                self.touch_cache(ev.addr);
                self.fill_buffer = ev.value;
                self.rsb.push(*return_to);
                timing.retire(issue, 1, &[], false);
                Some(*target)
            }
            DecodedTerm::Ret => {
                let predicted = self.rsb.pop_predict();
                let (v, ev) = emu.pop_ret()?;
                self.touch_cache(ev.addr);
                let actual = BlockId((v as usize) % prog.num_blocks());
                if let Some(p) = predicted {
                    if p != actual {
                        ctx.outcome.mispredictions += 1;
                        let squash = issue + self.config.misprediction_penalty;
                        self.speculate_decoded(
                            emu,
                            timing,
                            ctx,
                            prog,
                            Pos { block: p, idx: 0 },
                            None,
                            squash,
                            1,
                        );
                    }
                }
                timing.retire(issue, 1, &[], false);
                Some(actual)
            }
        };
        Ok(next)
    }

    /// Reference implementation of the run loop that re-walks the test-case
    /// AST per step and checkpoints speculation by full-state clone.
    ///
    /// Retained as the differential-testing oracle for
    /// [`CpuUnderTest::run_decoded`]: both paths must produce identical
    /// outcomes and identical cache/predictor state.
    ///
    /// # Errors
    /// Same as [`CpuUnderTest::run`].
    pub fn run_reference(
        &mut self,
        tc: &TestCase,
        input: &Input,
        opts: &RunOptions,
    ) -> Result<RunOutcome, Fault> {
        let mut emu = Emulator::new(tc.sandbox(), input);
        let mut timing = Timing::new();
        let assist_armed = if opts.enable_assists {
            Some(tc.sandbox().assist_page.unwrap_or(0))
        } else {
            None
        };
        let mut ctx = RunCtx {
            store_buffer: StoreBuffer::new(),
            outcome: RunOutcome::default(),
            assist_armed,
        };

        let mut pos = Pos { block: BlockId::ENTRY, idx: 0 };
        loop {
            if ctx.outcome.executed_instructions >= MAX_ARCH_STEPS {
                return Err(Fault::StepLimitExceeded);
            }
            let block = tc.block(pos.block).expect("valid block id");
            if pos.idx < block.instrs.len() {
                let instr = block.instrs[pos.idx].clone();
                self.exec_arch_instr(&mut emu, &mut timing, &mut ctx, tc, pos, &instr)?;
                pos.idx += 1;
            } else {
                match self.exec_arch_terminator(&mut emu, &mut timing, &mut ctx, tc, pos)? {
                    Some(next) => pos = Pos { block: next, idx: 0 },
                    None => break,
                }
            }
        }
        ctx.outcome.final_state_digest = emu.state().digest();
        Ok(ctx.outcome)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TriggerKind {
    Bypass,
    Assist,
}

impl CpuUnderTest for SpecCpu {
    fn name(&self) -> String {
        self.config.name.clone()
    }

    fn run(&mut self, tc: &TestCase, input: &Input, opts: &RunOptions) -> Result<RunOutcome, Fault> {
        let prog =
            DecodedProgram::decode(tc).unwrap_or_else(|e| panic!("malformed test case: {e}"));
        self.run_decoded(&prog, input, opts)
    }

    fn run_decoded(
        &mut self,
        prog: &DecodedProgram,
        input: &Input,
        opts: &RunOptions,
    ) -> Result<RunOutcome, Fault> {
        let mut emu = Emulator::new(prog.sandbox(), input);
        let mut timing = Timing::new();
        let assist_armed = if opts.enable_assists {
            Some(prog.sandbox().assist_page.unwrap_or(0))
        } else {
            None
        };
        let mut ctx = RunCtx {
            store_buffer: StoreBuffer::new(),
            outcome: RunOutcome::default(),
            assist_armed,
        };

        let mut buf = EventBuf::new();
        let mut pos = Pos { block: BlockId::ENTRY, idx: 0 };
        loop {
            if ctx.outcome.executed_instructions >= MAX_ARCH_STEPS {
                return Err(Fault::StepLimitExceeded);
            }
            let body = prog.body(pos.block);
            if pos.idx < body.len() {
                let d = &body[pos.idx];
                self.exec_arch_instr_decoded(&mut emu, &mut timing, &mut ctx, prog, pos, d, &mut buf)?;
                pos.idx += 1;
            } else {
                match self.exec_arch_terminator_decoded(&mut emu, &mut timing, &mut ctx, prog, pos)? {
                    Some(next) => pos = Pos { block: next, idx: 0 },
                    None => break,
                }
            }
        }
        ctx.outcome.final_state_digest = emu.state().digest();
        Ok(ctx.outcome)
    }

    fn cache_mut(&mut self) -> &mut Cache {
        &mut self.cache
    }

    fn reset_uarch(&mut self) {
        self.cache.flush_all();
        self.cache.reset_counters();
        self.branch_predictor.reset();
        self.btb.reset();
        self.rsb.reset();
        self.fill_buffer = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_isa::builder::TestCaseBuilder;
    use rvz_isa::{Cond, SandboxLayout};

    fn set_of(tc: &TestCase, offset: u64) -> u64 {
        tc.sandbox().base + offset
    }

    /// A Spectre-V1 gadget: bounds check, then a dependent load on the
    /// in-bounds path whose address depends on RBX (only used speculatively
    /// when RAX is out of bounds).
    fn v1_gadget() -> TestCase {
        TestCaseBuilder::new()
            .origin("test:v1")
            .block("entry", |b| {
                b.cmp_imm(Reg::Rax, 8);
                b.jcc(Cond::B, "in_bounds", "done");
            })
            .block("in_bounds", |b| {
                b.and_imm(Reg::Rbx, 0b111111000000);
                b.load(Reg::Rcx, Reg::R14, Reg::Rbx);
                b.jmp("done");
            })
            .block("done", |b| b.exit())
            .build()
    }

    fn run_cpu(cpu: &mut SpecCpu, tc: &TestCase, input: &Input) -> RunOutcome {
        cpu.run(tc, input, &RunOptions::default()).expect("run ok")
    }

    #[test]
    fn architectural_load_touches_its_cache_set() {
        let tc = TestCaseBuilder::new()
            .block("entry", |b| {
                b.and_imm(Reg::Rax, 0b111111000000);
                b.load(Reg::Rbx, Reg::R14, Reg::Rax);
                b.exit();
            })
            .build();
        let mut cpu = SpecCpu::new(UarchConfig::skylake());
        let mut input = Input::zeroed(tc.sandbox());
        input.set_reg(Reg::Rax, 0x80);
        run_cpu(&mut cpu, &tc, &input);
        assert!(cpu.cache().is_cached(set_of(&tc, 0x80)));
        assert!(!cpu.cache().is_cached(set_of(&tc, 0x40)));
    }

    #[test]
    fn runs_are_deterministic() {
        let tc = v1_gadget();
        let mut input = Input::zeroed(tc.sandbox());
        input.set_reg(Reg::Rax, 100);
        input.set_reg(Reg::Rbx, 0x200);
        let mut cpu1 = SpecCpu::new(UarchConfig::skylake());
        let mut cpu2 = SpecCpu::new(UarchConfig::skylake());
        let o1 = run_cpu(&mut cpu1, &tc, &input);
        let o2 = run_cpu(&mut cpu2, &tc, &input);
        assert_eq!(o1, o2);
        assert_eq!(cpu1.cache(), cpu2.cache());
    }

    #[test]
    fn decoded_run_matches_reference_run() {
        // Same training sequence, same victim, two CPUs: one steps the
        // decoded program, the other re-walks the AST.  Outcomes, cache
        // state and predictor state must be identical at every point.
        for (tc, assists) in [
            (v1_gadget(), false),
            (v4_gadget(), false),
            (assist_gadget(), true),
            (spec_store_gadget(), false),
            (v1_var_gadget(), false),
        ] {
            for config in [
                UarchConfig::skylake(),
                UarchConfig::skylake_patched(),
                UarchConfig::coffee_lake(),
                UarchConfig::in_order(),
            ] {
                let opts =
                    if assists { RunOptions::with_assists() } else { RunOptions::default() };
                let mut dec = SpecCpu::new(config.clone());
                let mut reference = SpecCpu::new(config.clone());
                for i in 0..8u64 {
                    let mut input = Input::zeroed(tc.sandbox());
                    input.set_reg(Reg::Rax, if i < 6 { 1 } else { 100 });
                    input.set_reg(Reg::Rbx, 0x40 * i);
                    input.set_reg(Reg::Rdx, 0x100);
                    input.write_mem_u64(0, 0x680);
                    input.write_mem_u64(0x100, 0xd40);
                    let od = dec.run(&tc, &input, &opts).unwrap();
                    let or = reference.run_reference(&tc, &input, &opts).unwrap();
                    assert_eq!(od, or, "{} outcome differs (iter {i})", config.name);
                    assert_eq!(dec.cache(), reference.cache(), "{} cache differs", config.name);
                    assert_eq!(
                        dec.predictor_stats(),
                        reference.predictor_stats(),
                        "{} predictor differs",
                        config.name
                    );
                }
            }
        }
    }

    #[test]
    fn mispredicted_branch_leaves_speculative_trace() {
        let tc = v1_gadget();
        let mut cpu = SpecCpu::new(UarchConfig::skylake());

        // Train the predictor: several in-bounds inputs take the branch.
        for i in 0..6 {
            let mut t = Input::zeroed(tc.sandbox());
            t.set_reg(Reg::Rax, 1);
            t.set_reg(Reg::Rbx, 0x40 * i);
            run_cpu(&mut cpu, &tc, &t);
        }
        cpu.cache_mut().flush_all();

        // Out-of-bounds input: architecturally skips the load, but the
        // trained predictor speculates into it.  RBX selects line 0x7c0.
        let mut victim = Input::zeroed(tc.sandbox());
        victim.set_reg(Reg::Rax, 100);
        victim.set_reg(Reg::Rbx, 0x7c0);
        let outcome = run_cpu(&mut cpu, &tc, &victim);
        assert!(outcome.mispredictions >= 1);
        assert!(outcome.speculation_episodes >= 1);
        assert!(
            cpu.cache().is_cached(set_of(&tc, 0x7c0)),
            "speculatively loaded line must be cached (Spectre V1)"
        );
    }

    #[test]
    fn in_order_cpu_leaves_no_speculative_trace() {
        let tc = v1_gadget();
        let mut cpu = SpecCpu::new(UarchConfig::in_order());
        for i in 0..6 {
            let mut t = Input::zeroed(tc.sandbox());
            t.set_reg(Reg::Rax, 1);
            t.set_reg(Reg::Rbx, 0x40 * i);
            run_cpu(&mut cpu, &tc, &t);
        }
        cpu.cache_mut().flush_all();
        let mut victim = Input::zeroed(tc.sandbox());
        victim.set_reg(Reg::Rax, 100);
        victim.set_reg(Reg::Rbx, 0x7c0);
        let outcome = run_cpu(&mut cpu, &tc, &victim);
        assert_eq!(outcome.speculation_episodes, 0);
        assert!(!cpu.cache().is_cached(set_of(&tc, 0x7c0)));
    }

    /// Spectre V4 gadget: a store to [R14+0] whose address depends on a slow
    /// chain, followed by a load from the same location and a dependent load
    /// indexed by the (possibly stale) value.
    fn v4_gadget() -> TestCase {
        TestCaseBuilder::new()
            .origin("test:v4")
            .block("entry", |b| {
                // Make the store address depend on a long dependency chain.
                b.mov_imm(Reg::Rax, 0);
                b.imul_imm(Reg::Rax, 1);
                b.imul_imm(Reg::Rax, 1);
                b.imul_imm(Reg::Rax, 1);
                b.and_imm(Reg::Rax, 0b111111000000);
                // Store 0 over the secret at [R14 + RAX(=0)].
                b.store(Reg::R14, Reg::Rax, Reg::Rdx); // RDX = 0 -> overwrite
                // Immediately load it back (may bypass the store)...
                b.load_disp(Reg::Rbx, Reg::R14, 0);
                // ...and leak the loaded value through a dependent access.
                b.and_imm(Reg::Rbx, 0b111111000000);
                b.load(Reg::Rcx, Reg::R14, Reg::Rbx);
                b.exit();
            })
            .build()
    }

    #[test]
    fn store_bypass_leaks_stale_value_when_unpatched() {
        let tc = v4_gadget();
        let mut input = Input::zeroed(tc.sandbox());
        input.write_mem_u64(0, 0x680); // stale secret selects line 0x680
        input.set_reg(Reg::Rdx, 0);

        let mut cpu = SpecCpu::new(UarchConfig::skylake());
        let o = run_cpu(&mut cpu, &tc, &input);
        assert!(o.store_bypasses >= 1, "bypass should trigger: {o:?}");
        assert!(
            cpu.cache().is_cached(set_of(&tc, 0x680)),
            "stale-value-dependent line cached (Spectre V4)"
        );

        let mut patched = SpecCpu::new(UarchConfig::skylake_patched());
        let o = run_cpu(&mut patched, &tc, &input);
        assert_eq!(o.store_bypasses, 0);
        assert!(
            !patched.cache().is_cached(set_of(&tc, 0x680)),
            "V4 patch (SSBD) suppresses the stale-value leak"
        );
    }

    /// MDS gadget: a load from the assist page followed by a dependent load.
    fn assist_gadget() -> TestCase {
        TestCaseBuilder::new()
            .origin("test:assist")
            .sandbox(SandboxLayout::two_pages().with_assist_page(1))
            .block("entry", |b| {
                // Bring a secret through the fill buffer.
                b.and_imm(Reg::Rdx, 0b111111000000);
                b.load(Reg::Rax, Reg::R14, Reg::Rdx);
                // Load from the assist page (page 1).
                b.load_disp(Reg::Rbx, Reg::R14, 4096 + 512);
                // Leak whatever the load returned.
                b.and_imm(Reg::Rbx, 0b111111000000);
                b.load(Reg::Rcx, Reg::R14, Reg::Rbx);
                b.exit();
            })
            .build()
    }

    #[test]
    fn microcode_assist_forwards_fill_buffer_on_mds_vulnerable_part() {
        let tc = assist_gadget();
        let mut input = Input::zeroed(tc.sandbox());
        input.set_reg(Reg::Rdx, 0x100);
        input.write_mem_u64(0x100, 0xd40); // secret value in the fill buffer
        input.write_mem_u64(4096 + 512, 0x0); // architectural value at assist addr

        let mut cpu = SpecCpu::new(UarchConfig::skylake());
        let o = cpu.run(&tc, &input, &RunOptions::with_assists()).unwrap();
        assert!(o.assists >= 1);
        // The transiently forwarded fill-buffer value (0xd40) selects a line
        // that differs from the architectural one (0x0 -> line 0).
        assert!(
            cpu.cache().is_cached(set_of(&tc, 0xd40 & 0xfc0)),
            "MDS: fill-buffer value leaked into the cache"
        );
    }

    #[test]
    fn no_assist_leak_when_assists_disabled() {
        let tc = assist_gadget();
        let mut input = Input::zeroed(tc.sandbox());
        input.set_reg(Reg::Rdx, 0x100);
        input.write_mem_u64(0x100, 0xd40);
        let mut cpu = SpecCpu::new(UarchConfig::skylake());
        let o = cpu.run(&tc, &input, &RunOptions::default()).unwrap();
        assert_eq!(o.assists, 0);
        assert!(!cpu.cache().is_cached(set_of(&tc, 0xd40 & 0xfc0)));
    }

    #[test]
    fn lvi_null_injects_zero_on_mds_patched_part() {
        let tc = assist_gadget();
        let mut input = Input::zeroed(tc.sandbox());
        input.set_reg(Reg::Rdx, 0x100);
        input.write_mem_u64(0x100, 0xd40);
        // Architectural value at the assist address selects line 0x340.
        input.write_mem_u64(4096 + 512, 0x340);

        let mut cpu = SpecCpu::new(UarchConfig::coffee_lake());
        let o = cpu.run(&tc, &input, &RunOptions::with_assists()).unwrap();
        assert!(o.assists >= 1);
        assert!(
            cpu.cache().is_cached(set_of(&tc, 0)),
            "LVI-Null: the zero-injected dependent access touches line 0"
        );
        assert!(
            !cpu.cache().is_cached(set_of(&tc, 0xd40 & 0xfc0)),
            "MDS-patched part must not forward fill-buffer data"
        );
    }

    /// Speculative-store gadget (§6.4): a store on a mispredicted path.
    fn spec_store_gadget() -> TestCase {
        TestCaseBuilder::new()
            .origin("test:spec-store")
            .block("entry", |b| {
                b.cmp_imm(Reg::Rax, 8);
                b.jcc(Cond::B, "store_path", "done");
            })
            .block("store_path", |b| {
                b.and_imm(Reg::Rbx, 0b111111000000);
                b.store(Reg::R14, Reg::Rbx, Reg::Rcx);
                b.jmp("done");
            })
            .block("done", |b| b.exit())
            .build()
    }

    #[test]
    fn speculative_stores_modify_cache_only_on_coffee_lake() {
        let tc = spec_store_gadget();
        let train = |cpu: &mut SpecCpu| {
            for i in 0..6 {
                let mut t = Input::zeroed(tc.sandbox());
                t.set_reg(Reg::Rax, 1);
                t.set_reg(Reg::Rbx, 0x40 * i);
                run_cpu(cpu, &tc, &t);
            }
            cpu.cache_mut().flush_all();
        };
        let mut victim = Input::zeroed(tc.sandbox());
        victim.set_reg(Reg::Rax, 100);
        victim.set_reg(Reg::Rbx, 0x780);

        let mut sky = SpecCpu::new(UarchConfig::skylake());
        train(&mut sky);
        run_cpu(&mut sky, &tc, &victim);
        assert!(
            !sky.cache().is_cached(set_of(&tc, 0x780)),
            "Skylake: speculative stores do not modify the cache"
        );

        let mut cfl = SpecCpu::new(UarchConfig::coffee_lake());
        train(&mut cfl);
        run_cpu(&mut cfl, &tc, &victim);
        assert!(
            cfl.cache().is_cached(set_of(&tc, 0x780)),
            "Coffee Lake: speculative stores already modify the cache (§6.4)"
        );
    }

    /// V1-var gadget (Figure 5): the speculative load depends on a division,
    /// so whether it lands in the cache depends on the division latency.
    fn v1_var_gadget() -> TestCase {
        TestCaseBuilder::new()
            .origin("test:v1-var")
            .block("entry", |b| {
                b.mov_imm(Reg::Rdx, 0);
                b.mov_imm(Reg::Rcx, 3);
                b.div(Reg::Rcx); // RAX = RAX / 3, latency depends on RAX
                b.and_imm(Reg::Rax, 0b111111000000);
                b.cmp_imm(Reg::Rbx, 8);
                b.jcc(Cond::B, "spec", "done");
            })
            .block("spec", |b| {
                b.load(Reg::Rsi, Reg::R14, Reg::Rax);
                b.jmp("done");
            })
            .block("done", |b| b.exit())
            .build()
    }

    #[test]
    fn division_latency_race_controls_speculative_footprint() {
        let tc = v1_var_gadget();
        let train = |cpu: &mut SpecCpu| {
            for _ in 0..6 {
                let mut t = Input::zeroed(tc.sandbox());
                t.set_reg(Reg::Rbx, 1);
                t.set_reg(Reg::Rax, 9);
                run_cpu(cpu, &tc, &t);
            }
            cpu.cache_mut().flush_all();
        };

        // Fast division: tiny quotient -> the speculative load issues in
        // time and leaves a trace.
        let mut cpu = SpecCpu::new(UarchConfig::skylake());
        train(&mut cpu);
        let mut fast = Input::zeroed(tc.sandbox());
        fast.set_reg(Reg::Rbx, 100); // out of bounds -> misprediction
        fast.set_reg(Reg::Rax, 2); // 2/3=0 -> masked 0 -> line 0, minimal latency
        run_cpu(&mut cpu, &tc, &fast);
        let fast_leaked = cpu.cache().is_cached(set_of(&tc, 0));

        // Slow division: huge dividend -> the load misses the window.
        let mut cpu = SpecCpu::new(UarchConfig::skylake());
        train(&mut cpu);
        let mut slow = Input::zeroed(tc.sandbox());
        slow.set_reg(Reg::Rbx, 100);
        slow.set_reg(Reg::Rax, u64::MAX); // enormous quotient
        run_cpu(&mut cpu, &tc, &slow);
        let slow_quotient_line = (u64::MAX / 3) & 0xfc0;
        let slow_leaked = cpu.cache().is_cached(set_of(&tc, slow_quotient_line));

        assert!(fast_leaked, "fast division completes inside the speculation window");
        assert!(
            !slow_leaked,
            "slow division starves the speculative load (latency race, §6.3)"
        );
    }

    #[test]
    fn lfence_stops_speculative_leak() {
        let tc = TestCaseBuilder::new()
            .block("entry", |b| {
                b.cmp_imm(Reg::Rax, 8);
                b.jcc(Cond::B, "spec", "done");
            })
            .block("spec", |b| {
                b.lfence();
                b.and_imm(Reg::Rbx, 0b111111000000);
                b.load(Reg::Rcx, Reg::R14, Reg::Rbx);
                b.jmp("done");
            })
            .block("done", |b| b.exit())
            .build();
        let mut cpu = SpecCpu::new(UarchConfig::skylake());
        for _ in 0..6 {
            let mut t = Input::zeroed(tc.sandbox());
            t.set_reg(Reg::Rax, 1);
            run_cpu(&mut cpu, &tc, &t);
        }
        cpu.cache_mut().flush_all();
        let mut victim = Input::zeroed(tc.sandbox());
        victim.set_reg(Reg::Rax, 100);
        victim.set_reg(Reg::Rbx, 0x7c0);
        let o = run_cpu(&mut cpu, &tc, &victim);
        assert!(o.mispredictions >= 1);
        assert!(!cpu.cache().is_cached(set_of(&tc, 0x7c0)), "LFENCE blocks the leak");
    }

    #[test]
    fn reset_uarch_clears_all_state() {
        let tc = v1_gadget();
        let mut cpu = SpecCpu::new(UarchConfig::skylake());
        let mut i = Input::zeroed(tc.sandbox());
        i.set_reg(Reg::Rax, 1);
        run_cpu(&mut cpu, &tc, &i);
        assert!(cpu.predictor_stats().0 > 0);
        cpu.reset_uarch();
        assert_eq!(cpu.predictor_stats(), (0, 0));
        assert!(!cpu.cache().is_cached(tc.sandbox().base));
    }

    #[test]
    fn outcome_counts_instructions() {
        let tc = v1_gadget();
        let mut cpu = SpecCpu::new(UarchConfig::skylake());
        let mut i = Input::zeroed(tc.sandbox());
        i.set_reg(Reg::Rax, 1);
        i.set_reg(Reg::Rbx, 0);
        let o = run_cpu(&mut cpu, &tc, &i);
        // entry: cmp, jcc; in_bounds: and, load, jmp; done: exit = 6.
        assert_eq!(o.executed_instructions, 6);
        assert_ne!(o.final_state_digest, 0);
    }

    #[test]
    fn name_reflects_configuration() {
        let cpu = SpecCpu::new(UarchConfig::coffee_lake());
        assert!(cpu.name().contains("Coffee Lake"));
    }
}
