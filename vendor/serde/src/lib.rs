//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serializes at runtime, so this stub provides the trait names and
//! re-exports the no-op derive macros from the vendored `serde_derive`.
//! Replacing the `[workspace.dependencies]` path entry with the real
//! crates.io `serde` requires no source changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
