//! Contract-trace collection by instrumented emulation.

use crate::contract::Contract;
use crate::ctrace::{CTrace, Observation};
use rvz_emu::{Emulator, EventBuf, Fault, MemEvent, MemEventKind, Runner};
use rvz_isa::{
    BlockId, DecodedInstr, DecodedOp, DecodedProgram, DecodedTerm, DecodedTerminator, Input, Instr,
    RegSet, Terminator, TestCase,
};
use serde::{Deserialize, Serialize};

/// Base virtual address of the (synthetic) code layout used for program-
/// counter observations.
pub const CODE_BASE: u64 = 0x4000;

/// Maximum architecturally executed instructions per model run.
const MAX_ARCH_STEPS: usize = 4096;

/// Classification of an executed instruction, used by the diversity
/// (pattern-coverage) analysis (§5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrKind {
    /// Reads memory only.
    Load,
    /// Writes memory only.
    Store,
    /// Reads and writes memory (read-modify-write).
    LoadStore,
    /// Conditional branch terminator.
    CondBranch,
    /// Unconditional direct jump terminator.
    Jump,
    /// Indirect jump, call or return terminator.
    IndirectBranch,
    /// Variable-latency instruction (division).
    VarLatency,
    /// Register-only computation.
    Alu,
    /// Serializing fence.
    Fence,
    /// Anything else (NOP, exit).
    Other,
}

/// Addresses of the memory accesses one instruction performed, stored
/// inline: an instruction produces at most three memory events (read +
/// write for read-modify-write ops, plus the stack access of `CALL`/`RET`
/// terminators is a single event), so the record stays `Copy` and the
/// collection loop never heap-allocates per instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MemAddrs {
    addrs: [u64; 3],
    len: u8,
}

impl MemAddrs {
    /// Addresses from a batch of memory events.
    ///
    /// # Panics
    /// Panics if more than three events are passed — the emulator never
    /// produces that many for one instruction.
    pub fn from_events(events: &[MemEvent]) -> MemAddrs {
        let mut m = MemAddrs::default();
        for ev in events {
            m.addrs[m.len as usize] = ev.addr;
            m.len += 1;
        }
        m
    }

    /// Build from a plain list of addresses (test helper).
    ///
    /// # Panics
    /// Panics if more than three addresses are passed.
    pub fn of(addrs: &[u64]) -> MemAddrs {
        let mut m = MemAddrs::default();
        for &a in addrs {
            m.addrs[m.len as usize] = a;
            m.len += 1;
        }
        m
    }

    /// The recorded addresses.
    pub fn as_slice(&self) -> &[u64] {
        &self.addrs[..self.len as usize]
    }

    /// Whether no accesses were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether any address is shared with another record.
    pub fn intersects(&self, other: &MemAddrs) -> bool {
        self.as_slice().iter().any(|a| other.as_slice().contains(a))
    }
}

/// Record of one architecturally executed instruction.
///
/// Deliberately `Copy`: one record is produced per executed instruction on
/// the measurement hot path (and cloned per contract by
/// [`ContractModel::collect_many`]), so the register sets are bitmasks and
/// the access addresses are stored inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutedInstr {
    /// Block containing the instruction.
    pub block: BlockId,
    /// Index in the block body, or `None` for the terminator.
    pub index: Option<usize>,
    /// Kind of instruction.
    pub kind: InstrKind,
    /// Registers read.
    pub reads_regs: RegSet,
    /// Registers written.
    pub writes_regs: RegSet,
    /// Whether the flags are read.
    pub reads_flags: bool,
    /// Whether the flags are written.
    pub writes_flags: bool,
    /// Addresses of memory accesses performed.
    pub mem_addrs: MemAddrs,
}

/// Execution metadata collected alongside the contract trace; input to the
/// pattern-coverage analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionInfo {
    /// Architecturally executed instructions, in order.
    pub executed: Vec<ExecutedInstr>,
    /// Number of speculative paths explored by the execution clause.
    pub speculative_paths: usize,
    /// Number of observations recorded on speculative paths.
    pub speculative_observations: usize,
}

/// The result of running the model on one (test case, input) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelOutput {
    /// The contract trace.
    pub trace: CTrace,
    /// Execution metadata for diversity analysis.
    pub info: ExecutionInfo,
}

/// Synthetic program counter of an instruction (`index == body length`
/// denotes the terminator).
pub fn instr_pc(block: BlockId, index: usize) -> u64 {
    CODE_BASE + (block.index() as u64) * 0x100 + (index as u64) * 4
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pos {
    block: BlockId,
    idx: usize,
}

/// The executable contract model (§5.4): an emulator instrumented to follow
/// the contract's execution clause and record its observation clause.
#[derive(Debug, Clone)]
pub struct ContractModel {
    contract: Contract,
}

impl ContractModel {
    /// Create a model for the given contract.
    pub fn new(contract: Contract) -> ContractModel {
        ContractModel { contract }
    }

    /// The contract being modelled.
    pub fn contract(&self) -> &Contract {
        &self.contract
    }

    /// Collect the contract trace for one input.
    ///
    /// Decodes the test case first; prefer [`ContractModel::collect_decoded`]
    /// when the same program runs for many inputs.
    ///
    /// # Errors
    /// Propagates architectural faults of the sequential execution; faults
    /// on explored speculative paths are suppressed, matching hardware.
    ///
    /// # Panics
    /// Panics if the test case fails decode-time validation.
    pub fn collect(&self, tc: &TestCase, input: &Input) -> Result<ModelOutput, Fault> {
        let prog =
            DecodedProgram::decode(tc).unwrap_or_else(|e| panic!("malformed test case: {e}"));
        self.collect_decoded(&prog, input)
    }

    /// Collect the contract trace for one input of a pre-decoded program.
    ///
    /// This is the hot path: the program representation is dense, operand
    /// and metadata resolution happened once at decode time, and speculative
    /// exploration uses delta checkpoints instead of full-state clones.
    ///
    /// # Errors
    /// Propagates architectural faults of the sequential execution; faults
    /// on explored speculative paths are suppressed, matching hardware.
    pub fn collect_decoded(
        &self,
        prog: &DecodedProgram,
        input: &Input,
    ) -> Result<ModelOutput, Fault> {
        let mut emu = Emulator::new(prog.sandbox(), input);
        let mut obs = Vec::new();
        let mut info = ExecutionInfo::default();
        let mut pos = Pos { block: BlockId::ENTRY, idx: 0 };
        let mut steps = 0usize;
        let mut buf = EventBuf::new();
        let mut events = Vec::new();

        loop {
            if steps >= MAX_ARCH_STEPS {
                return Err(Fault::StepLimitExceeded);
            }
            steps += 1;
            let body = prog.body(pos.block);
            if pos.idx < body.len() {
                let d = &body[pos.idx];

                // BPAS execution clause: before committing a store, expose
                // the observations of the path on which it is skipped.
                if self.contract.execution.permits_bpas() && d.writes_mem {
                    explore_decoded(
                        &self.contract,
                        &mut emu,
                        prog,
                        pos,
                        true,
                        &mut obs,
                        &mut info,
                        0,
                    );
                }

                if self.contract.observation.exposes_pc() {
                    obs.push(Observation::Pc(instr_pc(pos.block, pos.idx)));
                }
                buf.clear();
                emu.exec_decoded(&d.op, &mut buf)?;
                record_mem_events(&self.contract, buf.events(), true, &mut obs);
                info.executed.push(Self::record_decoded_instr(pos, d, buf.events()));
                pos.idx += 1;
            } else {
                if self.contract.observation.exposes_pc() {
                    obs.push(Observation::Pc(instr_pc(pos.block, body.len())));
                }

                // COND execution clause: expose the observations of the
                // mispredicted direction before following the correct one.
                let term = prog.terminator(pos.block);
                if self.contract.execution.permits_cond() {
                    if let DecodedTerm::CondJmp { cond, taken, not_taken } = &term.term {
                        let actual = emu.eval_cond(*cond);
                        let wrong = if actual { *not_taken } else { *taken };
                        explore_decoded(
                            &self.contract,
                            &mut emu,
                            prog,
                            Pos { block: wrong, idx: 0 },
                            false,
                            &mut obs,
                            &mut info,
                            0,
                        );
                    }
                }

                events.clear();
                let next = Runner::next_block_decoded(&mut emu, prog, pos.block, &mut events)?;
                record_mem_events(&self.contract, &events, true, &mut obs);
                info.executed.push(Self::record_decoded_terminator(pos, term, &events));
                match next {
                    Some(b) => pos = Pos { block: b, idx: 0 },
                    None => break,
                }
            }
        }

        Ok(ModelOutput { trace: CTrace::new(obs), info })
    }

    /// Reference implementation of [`ContractModel::collect`] that re-walks
    /// the test-case AST per step and checkpoints by full-state clone.
    ///
    /// Retained as the differential-testing oracle for the pre-decoded path;
    /// decoding is a pure representation change, never a semantic one, and
    /// this function is the executable statement of that invariant.
    ///
    /// # Errors
    /// Same as [`ContractModel::collect`].
    pub fn collect_reference(&self, tc: &TestCase, input: &Input) -> Result<ModelOutput, Fault> {
        let mut emu = Emulator::new(tc.sandbox(), input);
        let mut obs = Vec::new();
        let mut info = ExecutionInfo::default();
        let mut pos = Pos { block: BlockId::ENTRY, idx: 0 };
        let mut steps = 0usize;

        loop {
            if steps >= MAX_ARCH_STEPS {
                return Err(Fault::StepLimitExceeded);
            }
            steps += 1;
            let block = tc.block(pos.block).expect("valid block id");
            if pos.idx < block.instrs.len() {
                let instr = &block.instrs[pos.idx];

                // BPAS execution clause: before committing a store, expose
                // the observations of the path on which it is skipped.
                if self.contract.execution.permits_bpas() && instr.writes_mem() {
                    explore_reference(&self.contract, &mut emu, tc, pos, true, &mut obs, &mut info, 0);
                }

                if self.contract.observation.exposes_pc() {
                    obs.push(Observation::Pc(instr_pc(pos.block, pos.idx)));
                }
                let fx = emu.exec_instr(instr)?;
                record_mem_events(&self.contract, &fx.mem_events, true, &mut obs);
                info.executed.push(Self::record_instr(pos, instr, &fx.mem_events));
                pos.idx += 1;
            } else {
                if self.contract.observation.exposes_pc() {
                    obs.push(Observation::Pc(instr_pc(pos.block, block.instrs.len())));
                }

                // COND execution clause: expose the observations of the
                // mispredicted direction before following the correct one.
                if self.contract.execution.permits_cond() {
                    if let Terminator::CondJmp { cond, taken, not_taken } = &block.terminator {
                        let actual = emu.eval_cond(*cond);
                        let wrong = if actual { *not_taken } else { *taken };
                        explore_reference(
                            &self.contract,
                            &mut emu,
                            tc,
                            Pos { block: wrong, idx: 0 },
                            false,
                            &mut obs,
                            &mut info,
                            0,
                        );
                    }
                }

                let mut events = Vec::new();
                let next = Runner::next_block(&mut emu, tc, pos.block, &mut events)?;
                record_mem_events(&self.contract, &events, true, &mut obs);
                info.executed.push(Self::record_terminator(pos, &block.terminator, &events));
                match next {
                    Some(b) => pos = Pos { block: b, idx: 0 },
                    None => break,
                }
            }
        }

        Ok(ModelOutput { trace: CTrace::new(obs), info })
    }

    /// Collect the contract traces of *several* contracts for one input in a
    /// single pass: the architectural execution — which is the same for
    /// every contract — runs once, and only the speculative exploration and
    /// observation recording fork per contract.
    ///
    /// The outputs are identical to calling [`ContractModel::collect`] once
    /// per contract (each speculative exploration checkpoints and restores
    /// the shared emulator, so later contracts observe the same architectural
    /// state as a fresh run would).  This is the model half of the
    /// cross-contract sharing used by the campaign orchestrator: hardware
    /// traces are collected once per (target, test case) and checked against
    /// a whole contract slate, and `collect_many` keeps the model side from
    /// re-running the architectural pass per contract.
    ///
    /// # Errors
    /// Propagates architectural faults of the sequential execution (the
    /// architectural pass is contract-independent, so every contract of the
    /// slate would fault identically); faults on explored speculative paths
    /// are suppressed, matching hardware.
    ///
    /// # Panics
    /// Panics if the test case fails decode-time validation.
    pub fn collect_many(
        contracts: &[Contract],
        tc: &TestCase,
        input: &Input,
    ) -> Result<Vec<ModelOutput>, Fault> {
        let prog =
            DecodedProgram::decode(tc).unwrap_or_else(|e| panic!("malformed test case: {e}"));
        Self::collect_many_decoded(contracts, &prog, input)
    }

    /// [`ContractModel::collect_many`] over a pre-decoded program: the
    /// campaign orchestrator decodes once per test case and reuses the
    /// program across every input and every contract of the slate.
    ///
    /// # Errors
    /// Same as [`ContractModel::collect_many`].
    pub fn collect_many_decoded(
        contracts: &[Contract],
        prog: &DecodedProgram,
        input: &Input,
    ) -> Result<Vec<ModelOutput>, Fault> {
        let mut emu = Emulator::new(prog.sandbox(), input);
        let mut obs: Vec<Vec<Observation>> = (0..contracts.len()).map(|_| Vec::new()).collect();
        let mut infos: Vec<ExecutionInfo> = vec![ExecutionInfo::default(); contracts.len()];
        let mut pos = Pos { block: BlockId::ENTRY, idx: 0 };
        let mut steps = 0usize;
        let mut buf = EventBuf::new();
        let mut events = Vec::new();

        loop {
            if steps >= MAX_ARCH_STEPS {
                return Err(Fault::StepLimitExceeded);
            }
            steps += 1;
            let body = prog.body(pos.block);
            if pos.idx < body.len() {
                let d = &body[pos.idx];
                // Per-contract prelude, in each contract's own observation
                // order: speculative store-bypass exploration first, then
                // the program-counter observation (exactly as in `collect`).
                for (k, c) in contracts.iter().enumerate() {
                    if c.execution.permits_bpas() && d.writes_mem {
                        explore_decoded(c, &mut emu, prog, pos, true, &mut obs[k], &mut infos[k], 0);
                    }
                    if c.observation.exposes_pc() {
                        obs[k].push(Observation::Pc(instr_pc(pos.block, pos.idx)));
                    }
                }
                // The architectural step itself runs once for all contracts.
                buf.clear();
                emu.exec_decoded(&d.op, &mut buf)?;
                let record = Self::record_decoded_instr(pos, d, buf.events());
                for (k, c) in contracts.iter().enumerate() {
                    record_mem_events(c, buf.events(), true, &mut obs[k]);
                    infos[k].executed.push(record);
                }
                pos.idx += 1;
            } else {
                let term = prog.terminator(pos.block);
                for (k, c) in contracts.iter().enumerate() {
                    if c.observation.exposes_pc() {
                        obs[k].push(Observation::Pc(instr_pc(pos.block, body.len())));
                    }
                    if c.execution.permits_cond() {
                        if let DecodedTerm::CondJmp { cond, taken, not_taken } = &term.term {
                            let actual = emu.eval_cond(*cond);
                            let wrong = if actual { *not_taken } else { *taken };
                            explore_decoded(
                                c,
                                &mut emu,
                                prog,
                                Pos { block: wrong, idx: 0 },
                                false,
                                &mut obs[k],
                                &mut infos[k],
                                0,
                            );
                        }
                    }
                }
                events.clear();
                let next = Runner::next_block_decoded(&mut emu, prog, pos.block, &mut events)?;
                let record = Self::record_decoded_terminator(pos, term, &events);
                for (k, c) in contracts.iter().enumerate() {
                    record_mem_events(c, &events, true, &mut obs[k]);
                    infos[k].executed.push(record);
                }
                match next {
                    Some(b) => pos = Pos { block: b, idx: 0 },
                    None => break,
                }
            }
        }

        Ok(obs
            .into_iter()
            .zip(infos)
            .map(|(o, info)| ModelOutput { trace: CTrace::new(o), info })
            .collect())
    }

    /// Convenience: collect only the contract trace.
    ///
    /// # Errors
    /// Same as [`ContractModel::collect`].
    pub fn collect_trace(&self, tc: &TestCase, input: &Input) -> Result<CTrace, Fault> {
        Ok(self.collect(tc, input)?.trace)
    }

    fn record_instr(pos: Pos, instr: &Instr, events: &[MemEvent]) -> ExecutedInstr {
        let kind = match instr {
            Instr::Div { .. } => InstrKind::VarLatency,
            Instr::Lfence | Instr::Mfence => InstrKind::Fence,
            Instr::Nop => InstrKind::Other,
            i if i.reads_mem() && i.writes_mem() => InstrKind::LoadStore,
            i if i.reads_mem() => InstrKind::Load,
            i if i.writes_mem() => InstrKind::Store,
            _ => InstrKind::Alu,
        };
        ExecutedInstr {
            block: pos.block,
            index: Some(pos.idx),
            kind,
            reads_regs: RegSet::of(&instr.reads_regs()),
            writes_regs: RegSet::of(&instr.writes_regs()),
            reads_flags: instr.reads_flags(),
            writes_flags: instr.writes_flags(),
            mem_addrs: MemAddrs::from_events(events),
        }
    }

    fn record_terminator(pos: Pos, term: &Terminator, events: &[MemEvent]) -> ExecutedInstr {
        let kind = match term {
            Terminator::CondJmp { .. } => InstrKind::CondBranch,
            Terminator::Jmp { .. } => InstrKind::Jump,
            Terminator::IndirectJmp { .. } | Terminator::Call { .. } | Terminator::Ret => {
                InstrKind::IndirectBranch
            }
            Terminator::Exit => InstrKind::Other,
        };
        ExecutedInstr {
            block: pos.block,
            index: None,
            kind,
            reads_regs: RegSet::of(&term.reads_regs()),
            writes_regs: RegSet::EMPTY,
            reads_flags: term.reads_flags(),
            writes_flags: false,
            mem_addrs: MemAddrs::from_events(events),
        }
    }

    fn record_decoded_instr(pos: Pos, d: &DecodedInstr, events: &[MemEvent]) -> ExecutedInstr {
        let kind = if d.is_var_latency {
            InstrKind::VarLatency
        } else if d.is_fence {
            InstrKind::Fence
        } else if matches!(d.op, DecodedOp::Nop) {
            InstrKind::Other
        } else if d.reads_mem && d.writes_mem {
            InstrKind::LoadStore
        } else if d.reads_mem {
            InstrKind::Load
        } else if d.writes_mem {
            InstrKind::Store
        } else {
            InstrKind::Alu
        };
        ExecutedInstr {
            block: pos.block,
            index: Some(pos.idx),
            kind,
            reads_regs: d.reads_set,
            writes_regs: d.writes_set,
            reads_flags: d.reads_flags,
            writes_flags: d.writes_flags,
            mem_addrs: MemAddrs::from_events(events),
        }
    }

    fn record_decoded_terminator(
        pos: Pos,
        t: &DecodedTerminator,
        events: &[MemEvent],
    ) -> ExecutedInstr {
        let kind = match &t.term {
            DecodedTerm::CondJmp { .. } => InstrKind::CondBranch,
            DecodedTerm::Jmp { .. } => InstrKind::Jump,
            DecodedTerm::IndirectJmp { .. } | DecodedTerm::Call { .. } | DecodedTerm::Ret => {
                InstrKind::IndirectBranch
            }
            DecodedTerm::Exit => InstrKind::Other,
        };
        ExecutedInstr {
            block: pos.block,
            index: None,
            kind,
            reads_regs: t.reads_set,
            writes_regs: RegSet::EMPTY,
            reads_flags: t.reads_flags,
            writes_flags: false,
            mem_addrs: MemAddrs::from_events(events),
        }
    }
}

/// Record the observations of a batch of memory events under `contract`'s
/// observation clause.
fn record_mem_events(
    contract: &Contract,
    events: &[MemEvent],
    architectural: bool,
    obs: &mut Vec<Observation>,
) {
    for ev in events {
        match ev.kind {
            MemEventKind::Read => {
                obs.push(Observation::MemAddr(ev.addr));
                if contract.observation.exposes_loaded_values() {
                    obs.push(Observation::LoadValue(ev.value));
                }
            }
            MemEventKind::Write => {
                if architectural || contract.expose_speculative_stores {
                    obs.push(Observation::MemAddr(ev.addr));
                }
            }
        }
    }
}

/// Explore a mis-speculated path starting at `start` under `contract`'s
/// execution clause over a pre-decoded program, using delta checkpoints
/// (register snapshot + memory-write undo journal) to roll back.
/// With `skip_first_store` the first store at `start` is speculatively
/// bypassed (the BPAS clause); otherwise the path is followed as a branch
/// misprediction (the COND clause).
#[allow(clippy::too_many_arguments)]
fn explore_decoded(
    contract: &Contract,
    emu: &mut Emulator,
    prog: &DecodedProgram,
    start: Pos,
    skip_first_store: bool,
    obs: &mut Vec<Observation>,
    info: &mut ExecutionInfo,
    depth: usize,
) {
    if contract.speculation_window == 0 {
        return;
    }
    let max_depth = if contract.nested_speculation { 4 } else { 0 };
    if depth > max_depth {
        return;
    }
    info.speculative_paths += 1;
    let checkpoint = emu.begin_speculation();
    let obs_before = obs.len();

    let mut buf = EventBuf::new();
    let mut pos = start;
    let mut fuel = contract.speculation_window;
    let mut first = true;
    'path: while fuel > 0 {
        let body = prog.body(pos.block);
        if pos.idx < body.len() {
            let d = &body[pos.idx];
            let skip = first && skip_first_store && d.writes_mem;
            first = false;
            if d.is_fence {
                break 'path;
            }
            fuel -= 1;
            if skip {
                pos.idx += 1;
                continue;
            }
            // Nested BPAS inside an explored path.
            if depth < max_depth && contract.execution.permits_bpas() && d.writes_mem {
                explore_decoded(contract, emu, prog, pos, true, obs, info, depth + 1);
            }
            if contract.observation.exposes_pc() {
                obs.push(Observation::Pc(instr_pc(pos.block, pos.idx)));
            }
            buf.clear();
            match emu.exec_decoded(&d.op, &mut buf) {
                Ok(()) => record_mem_events(contract, buf.events(), false, obs),
                Err(_) => break 'path, // transient faults are suppressed
            }
            pos.idx += 1;
        } else {
            first = false;
            fuel -= 1;
            if contract.observation.exposes_pc() {
                obs.push(Observation::Pc(instr_pc(pos.block, body.len())));
            }
            // Nested COND inside an explored path.
            if depth < max_depth && contract.execution.permits_cond() {
                if let DecodedTerm::CondJmp { cond, taken, not_taken } =
                    &prog.terminator(pos.block).term
                {
                    let actual = emu.eval_cond(*cond);
                    let wrong = if actual { *not_taken } else { *taken };
                    explore_decoded(
                        contract,
                        emu,
                        prog,
                        Pos { block: wrong, idx: 0 },
                        false,
                        obs,
                        info,
                        depth + 1,
                    );
                }
            }
            let mut events = Vec::new();
            match Runner::next_block_decoded(emu, prog, pos.block, &mut events) {
                Ok(Some(b)) => {
                    record_mem_events(contract, &events, false, obs);
                    pos = Pos { block: b, idx: 0 };
                }
                Ok(None) | Err(_) => {
                    record_mem_events(contract, &events, false, obs);
                    break 'path;
                }
            }
        }
    }

    info.speculative_observations += obs.len() - obs_before;
    emu.rollback(checkpoint);
}

/// Reference-path twin of [`explore_decoded`]: walks the AST and checkpoints
/// by full-state clone.  Used only by [`ContractModel::collect_reference`].
#[allow(clippy::too_many_arguments)]
fn explore_reference(
    contract: &Contract,
    emu: &mut Emulator,
    tc: &TestCase,
    start: Pos,
    skip_first_store: bool,
    obs: &mut Vec<Observation>,
    info: &mut ExecutionInfo,
    depth: usize,
) {
    if contract.speculation_window == 0 {
        return;
    }
    let max_depth = if contract.nested_speculation { 4 } else { 0 };
    if depth > max_depth {
        return;
    }
    info.speculative_paths += 1;
    let checkpoint = emu.checkpoint();
    let obs_before = obs.len();

    let mut pos = start;
    let mut fuel = contract.speculation_window;
    let mut first = true;
    'path: while fuel > 0 {
        let block = match tc.block(pos.block) {
            Some(b) => b,
            None => break,
        };
        if pos.idx < block.instrs.len() {
            let instr = &block.instrs[pos.idx];
            let skip = first && skip_first_store && instr.writes_mem();
            first = false;
            if instr.is_fence() {
                break 'path;
            }
            fuel -= 1;
            if skip {
                pos.idx += 1;
                continue;
            }
            // Nested BPAS inside an explored path.
            if depth < max_depth && contract.execution.permits_bpas() && instr.writes_mem() {
                explore_reference(contract, emu, tc, pos, true, obs, info, depth + 1);
            }
            if contract.observation.exposes_pc() {
                obs.push(Observation::Pc(instr_pc(pos.block, pos.idx)));
            }
            match emu.exec_instr(instr) {
                Ok(fx) => record_mem_events(contract, &fx.mem_events, false, obs),
                Err(_) => break 'path, // transient faults are suppressed
            }
            pos.idx += 1;
        } else {
            first = false;
            fuel -= 1;
            if contract.observation.exposes_pc() {
                obs.push(Observation::Pc(instr_pc(pos.block, block.instrs.len())));
            }
            // Nested COND inside an explored path.
            if depth < max_depth && contract.execution.permits_cond() {
                if let Terminator::CondJmp { cond, taken, not_taken } = &block.terminator {
                    let actual = emu.eval_cond(*cond);
                    let wrong = if actual { *not_taken } else { *taken };
                    explore_reference(
                        contract,
                        emu,
                        tc,
                        Pos { block: wrong, idx: 0 },
                        false,
                        obs,
                        info,
                        depth + 1,
                    );
                }
            }
            let mut events = Vec::new();
            match Runner::next_block(emu, tc, pos.block, &mut events) {
                Ok(Some(b)) => {
                    record_mem_events(contract, &events, false, obs);
                    pos = Pos { block: b, idx: 0 };
                }
                Ok(None) | Err(_) => {
                    record_mem_events(contract, &events, false, obs);
                    break 'path;
                }
            }
        }
    }

    info.speculative_observations += obs.len() - obs_before;
    emu.restore(checkpoint);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::Contract;
    use rvz_isa::builder::TestCaseBuilder;
    use rvz_isa::{Cond, Reg};

    /// Figure 1 of the paper, adapted to the sandbox:
    /// `z = array1[x]; if (y < 10) z = array2[y]`.
    fn figure1() -> TestCase {
        TestCaseBuilder::new()
            .origin("fig1")
            .block("entry", |b| {
                b.and_imm(Reg::Rax, 0b111111000000); // x
                b.load(Reg::Rbx, Reg::R14, Reg::Rax);
                b.cmp_imm(Reg::Rcx, 10); // y < 10 ?
                b.jcc(Cond::B, "then", "end");
            })
            .block("then", |b| {
                b.and_imm(Reg::Rcx, 0b111111000000);
                b.load(Reg::Rdx, Reg::R14, Reg::Rcx);
                b.jmp("end");
            })
            .block("end", |b| b.exit())
            .build()
    }

    fn input_xy(tc: &TestCase, x: u64, y: u64) -> Input {
        let mut i = Input::zeroed(tc.sandbox());
        i.set_reg(Reg::Rax, x);
        i.set_reg(Reg::Rcx, y);
        i
    }

    #[test]
    fn mem_seq_exposes_only_architectural_accesses() {
        let tc = figure1();
        let input = input_xy(&tc, 0x100, 20); // branch not taken
        let out = ContractModel::new(Contract::mem_seq()).collect(&tc, &input).unwrap();
        let addrs = out.trace.mem_addrs();
        assert_eq!(addrs, vec![tc.sandbox().base + 0x100]);
        assert_eq!(out.info.speculative_paths, 0);
    }

    #[test]
    fn mem_cond_additionally_exposes_mispredicted_path() {
        let tc = figure1();
        let input = input_xy(&tc, 0x100, 20);
        let out = ContractModel::new(Contract::mem_cond()).collect(&tc, &input).unwrap();
        let addrs = out.trace.mem_addrs();
        // Architectural access at base+0x100 plus the speculative access at
        // base + (20 & mask) = base.
        assert_eq!(addrs, vec![tc.sandbox().base + 0x100, tc.sandbox().base]);
        assert!(out.info.speculative_paths >= 1);
        assert!(out.info.speculative_observations >= 1);
    }

    #[test]
    fn paper_example_same_seq_trace_different_secrets() {
        // Same x, different y, both out of bounds (branch not taken): the
        // MEM-SEQ traces coincide, as in the §2.2 counterexample for MEM-SEQ.
        let tc = figure1();
        let a = input_xy(&tc, 0x100, 0x80);
        let b = input_xy(&tc, 0x100, 0xc0);
        let m = ContractModel::new(Contract::mem_seq());
        assert_eq!(m.collect_trace(&tc, &a).unwrap(), m.collect_trace(&tc, &b).unwrap());
        // But MEM-COND distinguishes them (the speculative access differs).
        let m = ContractModel::new(Contract::mem_cond());
        assert_ne!(m.collect_trace(&tc, &a).unwrap(), m.collect_trace(&tc, &b).unwrap());
    }

    #[test]
    fn ct_exposes_program_counter() {
        let tc = figure1();
        let input = input_xy(&tc, 0x100, 20);
        let mem = ContractModel::new(Contract::mem_seq()).collect_trace(&tc, &input).unwrap();
        let ct = ContractModel::new(Contract::ct_seq()).collect_trace(&tc, &input).unwrap();
        assert!(ct.len() > mem.len());
        assert!(ct.observations().iter().any(|o| matches!(o, Observation::Pc(_))));
        assert!(mem.observations().iter().all(|o| !matches!(o, Observation::Pc(_))));
    }

    #[test]
    fn ct_traces_differ_when_control_flow_differs() {
        let tc = figure1();
        let taken = input_xy(&tc, 0x100, 5);
        let not_taken = input_xy(&tc, 0x100, 25);
        let m = ContractModel::new(Contract::ct_seq());
        assert_ne!(m.collect_trace(&tc, &taken).unwrap(), m.collect_trace(&tc, &not_taken).unwrap());
    }

    #[test]
    fn arch_exposes_loaded_values() {
        let tc = figure1();
        let mut a = input_xy(&tc, 0x100, 20);
        let mut b = input_xy(&tc, 0x100, 20);
        a.write_mem_u64(0x100, 1);
        b.write_mem_u64(0x100, 2);
        let ct = ContractModel::new(Contract::ct_seq());
        assert_eq!(ct.collect_trace(&tc, &a).unwrap(), ct.collect_trace(&tc, &b).unwrap());
        let arch = ContractModel::new(Contract::arch_seq());
        assert_ne!(arch.collect_trace(&tc, &a).unwrap(), arch.collect_trace(&tc, &b).unwrap());
    }

    /// A store-bypass gadget: a store overwrites a secret, a load reads the
    /// same location and the loaded value indexes a dependent access.
    fn bpas_gadget() -> TestCase {
        TestCaseBuilder::new()
            .origin("bpas")
            .block("entry", |b| {
                b.store_disp(Reg::R14, 0, Reg::Rdx); // overwrite with RDX
                b.load_disp(Reg::Rbx, Reg::R14, 0);
                b.and_imm(Reg::Rbx, 0b111111000000);
                b.load(Reg::Rcx, Reg::R14, Reg::Rbx);
                b.exit();
            })
            .build()
    }

    #[test]
    fn bpas_exposes_skipped_store_path() {
        let tc = bpas_gadget();
        let mut input = Input::zeroed(tc.sandbox());
        input.write_mem_u64(0, 0x7c0); // old (stale) value
        input.set_reg(Reg::Rdx, 0x40); // new value

        let seq = ContractModel::new(Contract::ct_seq()).collect(&tc, &input).unwrap();
        let bpas = ContractModel::new(Contract::ct_bpas()).collect(&tc, &input).unwrap();
        let base = tc.sandbox().base;
        assert!(
            !seq.trace.mem_addrs().contains(&(base + 0x7c0)),
            "CT-SEQ must not expose the stale-value access"
        );
        assert!(
            bpas.trace.mem_addrs().contains(&(base + 0x7c0)),
            "CT-BPAS exposes the access dependent on the stale value"
        );
        assert!(bpas.trace.mem_addrs().contains(&(base + 0x40)), "architectural access still exposed");
        assert!(bpas.info.speculative_paths >= 1);
    }

    #[test]
    fn two_inputs_same_bpas_trace_when_stale_values_match() {
        let tc = bpas_gadget();
        let mut a = Input::zeroed(tc.sandbox());
        a.write_mem_u64(0, 0x7c0);
        a.set_reg(Reg::Rdx, 0x40);
        let mut b = a.clone();
        b.set_reg(Reg::Rsi, 123); // unrelated difference
        let m = ContractModel::new(Contract::ct_bpas());
        assert_eq!(m.collect_trace(&tc, &a).unwrap(), m.collect_trace(&tc, &b).unwrap());
    }

    #[test]
    fn speculation_window_bounds_exploration() {
        let tc = figure1();
        let input = input_xy(&tc, 0x100, 20);
        let wide = ContractModel::new(Contract::mem_cond()).collect(&tc, &input).unwrap();
        let narrow = ContractModel::new(Contract::mem_cond().with_speculation_window(1))
            .collect(&tc, &input)
            .unwrap();
        assert!(narrow.trace.len() < wide.trace.len());
        let zero = ContractModel::new(Contract::mem_cond().with_speculation_window(0))
            .collect(&tc, &input)
            .unwrap();
        let seq = ContractModel::new(Contract::mem_seq()).collect(&tc, &input).unwrap();
        assert_eq!(zero.trace, seq.trace, "window 0 degenerates to SEQ");
    }

    #[test]
    fn lfence_stops_speculative_exploration() {
        let tc = TestCaseBuilder::new()
            .block("entry", |b| {
                b.cmp_imm(Reg::Rcx, 10);
                b.jcc(Cond::B, "then", "end");
            })
            .block("then", |b| {
                b.lfence();
                b.and_imm(Reg::Rax, 0b111111000000);
                b.load(Reg::Rbx, Reg::R14, Reg::Rax);
                b.jmp("end");
            })
            .block("end", |b| b.exit())
            .build();
        let mut input = Input::zeroed(tc.sandbox());
        input.set_reg(Reg::Rcx, 20); // not taken; "then" is the mispredicted path
        input.set_reg(Reg::Rax, 0x200);
        let out = ContractModel::new(Contract::mem_cond()).collect(&tc, &input).unwrap();
        assert!(
            !out.trace.mem_addrs().contains(&(tc.sandbox().base + 0x200)),
            "LFENCE on the speculative path stops the exploration"
        );
    }

    #[test]
    fn no_spec_store_variant_hides_speculative_stores() {
        // The mispredicted path contains a store; CT-COND exposes its
        // address, the §6.4 variant does not.
        let tc = TestCaseBuilder::new()
            .block("entry", |b| {
                b.cmp_imm(Reg::Rcx, 10);
                b.jcc(Cond::B, "then", "end");
            })
            .block("then", |b| {
                b.and_imm(Reg::Rax, 0b111111000000);
                b.store(Reg::R14, Reg::Rax, Reg::Rbx);
                b.jmp("end");
            })
            .block("end", |b| b.exit())
            .build();
        let mut input = Input::zeroed(tc.sandbox());
        input.set_reg(Reg::Rcx, 20);
        input.set_reg(Reg::Rax, 0x380);
        let full = ContractModel::new(Contract::ct_cond()).collect_trace(&tc, &input).unwrap();
        let restricted =
            ContractModel::new(Contract::ct_cond_no_spec_store()).collect_trace(&tc, &input).unwrap();
        let addr = tc.sandbox().base + 0x380;
        assert!(full.mem_addrs().contains(&addr));
        assert!(!restricted.mem_addrs().contains(&addr));
    }

    #[test]
    fn nested_speculation_explores_more() {
        // Two chained conditional branches; the deeper speculative access is
        // only visible with nesting enabled.
        let tc = TestCaseBuilder::new()
            .block("entry", |b| {
                b.cmp_imm(Reg::Rcx, 10);
                b.jcc(Cond::B, "mid", "end");
            })
            .block("mid", |b| {
                b.cmp_imm(Reg::Rdx, 10);
                b.jcc(Cond::B, "deep", "end");
            })
            .block("deep", |b| {
                b.and_imm(Reg::Rax, 0b111111000000);
                b.load(Reg::Rbx, Reg::R14, Reg::Rax);
                b.jmp("end");
            })
            .block("end", |b| b.exit())
            .build();
        let mut input = Input::zeroed(tc.sandbox());
        input.set_reg(Reg::Rcx, 20); // entry branch not taken -> "mid" is speculative
        input.set_reg(Reg::Rdx, 20); // mid branch not taken -> "deep" needs nesting
        input.set_reg(Reg::Rax, 0x440);
        let flat = ContractModel::new(Contract::mem_cond()).collect_trace(&tc, &input).unwrap();
        let nested =
            ContractModel::new(Contract::mem_cond().with_nesting(true)).collect_trace(&tc, &input).unwrap();
        let addr = tc.sandbox().base + 0x440;
        assert!(!flat.mem_addrs().contains(&addr));
        assert!(nested.mem_addrs().contains(&addr));
        assert!(nested.len() > flat.len());
    }

    #[test]
    fn model_is_deterministic() {
        let tc = figure1();
        let input = input_xy(&tc, 0x180, 3);
        let m = ContractModel::new(Contract::ct_cond_bpas());
        let a = m.collect(&tc, &input).unwrap();
        let b = m.collect(&tc, &input).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.info, b.info);
    }

    #[test]
    fn execution_info_records_kinds() {
        let tc = figure1();
        let input = input_xy(&tc, 0x100, 5);
        let out = ContractModel::new(Contract::ct_seq()).collect(&tc, &input).unwrap();
        let kinds: Vec<InstrKind> = out.info.executed.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&InstrKind::Load));
        assert!(kinds.contains(&InstrKind::CondBranch));
        assert!(kinds.contains(&InstrKind::Alu));
        let loads: Vec<_> =
            out.info.executed.iter().filter(|e| e.kind == InstrKind::Load).collect();
        assert!(!loads[0].mem_addrs.is_empty());
    }

    #[test]
    fn collect_many_matches_independent_collection_per_contract() {
        // The shared architectural pass must be invisible: every contract's
        // output equals an independent `collect` run, including the
        // speculative-path counters.
        let contracts = [
            Contract::ct_seq(),
            Contract::ct_bpas(),
            Contract::ct_cond(),
            Contract::ct_cond_bpas(),
            Contract::arch_seq(),
            Contract::mem_cond().with_nesting(true),
            Contract::ct_cond_no_spec_store(),
        ];
        for tc in [figure1(), bpas_gadget()] {
            for (x, y) in [(0x100, 20), (0x100, 5), (0x40, 0x80)] {
                let input = input_xy(&tc, x, y);
                let shared = ContractModel::collect_many(&contracts, &tc, &input).unwrap();
                assert_eq!(shared.len(), contracts.len());
                for (c, out) in contracts.iter().zip(&shared) {
                    let solo = ContractModel::new(c.clone()).collect(&tc, &input).unwrap();
                    assert_eq!(out.trace, solo.trace, "{} trace differs", c.name());
                    assert_eq!(out.info, solo.info, "{} info differs", c.name());
                }
            }
        }
    }

    #[test]
    fn decoded_collection_matches_reference() {
        let contracts = [
            Contract::ct_seq(),
            Contract::ct_bpas(),
            Contract::ct_cond_bpas(),
            Contract::arch_seq(),
            Contract::mem_cond().with_nesting(true),
            Contract::ct_cond_no_spec_store(),
        ];
        for tc in [figure1(), bpas_gadget()] {
            for (x, y) in [(0x100, 20), (0x100, 5), (0x40, 0x80)] {
                let input = input_xy(&tc, x, y);
                for c in &contracts {
                    let m = ContractModel::new(c.clone());
                    let dec = m.collect(&tc, &input).unwrap();
                    let reference = m.collect_reference(&tc, &input).unwrap();
                    assert_eq!(dec.trace, reference.trace, "{} trace differs", c.name());
                    assert_eq!(dec.info, reference.info, "{} info differs", c.name());
                }
            }
        }
    }

    #[test]
    fn collect_many_handles_empty_and_single_slates() {
        let tc = figure1();
        let input = input_xy(&tc, 0x100, 20);
        assert!(ContractModel::collect_many(&[], &tc, &input).unwrap().is_empty());
        let single =
            ContractModel::collect_many(std::slice::from_ref(&Contract::ct_seq()), &tc, &input)
                .unwrap();
        let solo = ContractModel::new(Contract::ct_seq()).collect(&tc, &input).unwrap();
        assert_eq!(single[0], solo);
    }

    #[test]
    fn collect_many_repeated_contract_gets_identical_outputs() {
        // The same contract twice in a slate observes the same state: the
        // first exploration's checkpoint/restore must be exact.
        let tc = bpas_gadget();
        let mut input = Input::zeroed(tc.sandbox());
        input.write_mem_u64(0, 0x7c0);
        input.set_reg(Reg::Rdx, 0x40);
        let slate = [Contract::ct_bpas(), Contract::ct_bpas()];
        let outs = ContractModel::collect_many(&slate, &tc, &input).unwrap();
        assert_eq!(outs[0], outs[1]);
    }

    #[test]
    fn pc_layout_is_injective_for_small_blocks() {
        let mut seen = std::collections::HashSet::new();
        for b in 0..16 {
            for i in 0..32 {
                assert!(seen.insert(instr_pc(BlockId(b), i)));
            }
        }
    }
}
