//! The end-to-end fuzzer (Figure 2).

use crate::classify::{classify, VulnClass};
use crate::config::FuzzerConfig;
use crate::diversity::PatternCoverage;
use crate::targets::Target;
use rvz_analyzer::{AnalysisResult, Analyzer, Violation};
use rvz_emu::Fault;
use rvz_executor::Executor;
use rvz_gen::{InputGenerator, ProgramGenerator};
use rvz_isa::{Input, TestCase};
use rvz_model::{Contract, ContractModel, ExecutionInfo};
use rvz_uarch::{CpuUnderTest, SpecCpu};
use std::time::{Duration, Instant};

/// The result of testing one test case with one input batch.
#[derive(Debug, Clone)]
pub struct TestCaseOutcome {
    /// The inputs used (in priming order).
    pub inputs: Vec<Input>,
    /// The raw relational-analysis result.
    pub analysis: AnalysisResult,
    /// A violation that survived the priming-swap and nesting re-checks.
    pub confirmed_violation: Option<Violation>,
    /// Violations discarded by the priming-swap check (§5.3).
    pub discarded_as_artifact: usize,
    /// Violations discarded by the nested-speculation re-check (§5.4).
    pub discarded_by_nesting: usize,
}

/// A confirmed counterexample, with everything needed to reproduce and
/// minimize it.
#[derive(Debug, Clone)]
pub struct ViolationReport {
    /// The violating test case.
    pub test_case: TestCase,
    /// The input sequence (priming order).
    pub inputs: Vec<Input>,
    /// The diverging input pair and their traces.
    pub violation: Violation,
    /// The violated contract.
    pub contract: Contract,
    /// Heuristic classification of the underlying vulnerability.
    pub vulnerability: VulnClass,
    /// Number of test cases executed up to and including this one.
    pub test_cases_until_detection: usize,
    /// Number of inputs executed up to and including this test case.
    pub inputs_until_detection: usize,
}

/// Summary of a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The first confirmed violation, if any.
    pub violation: Option<ViolationReport>,
    /// Test cases executed.
    pub test_cases: usize,
    /// Inputs executed (across all test cases).
    pub total_inputs: usize,
    /// Testing rounds completed.
    pub rounds: usize,
    /// Generator escalations triggered by the diversity analysis.
    pub escalations: usize,
    /// Wall-clock duration of the campaign.
    pub duration: Duration,
    /// Mean input effectiveness across test cases (§5.2 / CH2).
    pub mean_effectiveness: f64,
    /// Final pattern coverage (§5.6).
    pub coverage: PatternCoverage,
}

impl FuzzReport {
    /// Did the campaign find a confirmed violation?
    pub fn found_violation(&self) -> bool {
        self.violation.is_some()
    }

    /// Test cases processed per second (the §6.5 fuzzing-speed metric).
    pub fn test_cases_per_second(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.test_cases as f64 / secs
        }
    }
}

/// The Revizor fuzzer: ties the generator, model, executor, analyzer and
/// diversity analysis into the testing loop of Figure 2.
#[derive(Debug)]
pub struct Revizor<C: CpuUnderTest> {
    config: FuzzerConfig,
    target: Option<Target>,
    generator: ProgramGenerator,
    input_gen: InputGenerator,
    executor: Executor<C>,
    analyzer: Analyzer,
    coverage: PatternCoverage,
}

impl Revizor<SpecCpu> {
    /// Convenience constructor for one of the paper's targets.
    pub fn for_target(target: &Target, contract: Contract) -> Revizor<SpecCpu> {
        let config = FuzzerConfig::for_target(target, contract);
        Revizor::new(target.cpu(), config).with_target(target.clone())
    }
}

impl<C: CpuUnderTest> Revizor<C> {
    /// Create a fuzzer around a CPU under test.
    pub fn new(cpu: C, config: FuzzerConfig) -> Revizor<C> {
        let generator = ProgramGenerator::new(config.generator.clone());
        let input_gen = InputGenerator::new(config.generator.input_entropy_bits);
        let executor = Executor::new(cpu, config.executor);
        Revizor {
            config,
            target: None,
            generator,
            input_gen,
            executor,
            analyzer: Analyzer::new(),
            coverage: PatternCoverage::new(),
        }
    }

    /// Attach the target description (enables vulnerability classification).
    pub fn with_target(mut self, target: Target) -> Revizor<C> {
        self.target = Some(target);
        self
    }

    /// The campaign configuration.
    pub fn config(&self) -> &FuzzerConfig {
        &self.config
    }

    /// Current pattern coverage.
    pub fn coverage(&self) -> &PatternCoverage {
        &self.coverage
    }

    /// Access to the executor (and through it, the CPU under test).
    pub fn executor_mut(&mut self) -> &mut Executor<C> {
        &mut self.executor
    }

    /// Test one test case with a deterministic input batch.
    ///
    /// # Errors
    /// Propagates architectural faults (which generated test cases never
    /// produce).
    pub fn test_case(&mut self, tc: &TestCase, input_seed: u64) -> Result<TestCaseOutcome, Fault> {
        let n = self.config.generator.inputs_per_test_case;
        let inputs = self.input_gen.generate(tc, input_seed, n);
        self.test_with_inputs(tc, &inputs)
    }

    /// Test one test case with an explicit input sequence (used by the
    /// postprocessor and the handwritten-gadget experiments).
    ///
    /// # Errors
    /// Propagates architectural faults.
    pub fn test_with_inputs(
        &mut self,
        tc: &TestCase,
        inputs: &[Input],
    ) -> Result<TestCaseOutcome, Fault> {
        let model = ContractModel::new(self.config.contract.clone());
        let mut ctraces = Vec::with_capacity(inputs.len());
        let mut infos: Vec<ExecutionInfo> = Vec::with_capacity(inputs.len());
        for input in inputs {
            let out = model.collect(tc, input)?;
            ctraces.push(out.trace);
            infos.push(out.info);
        }
        let htraces = self.executor.collect_htraces(tc, inputs)?;
        let analysis = self.analyzer.check(&ctraces, &htraces);

        // Feed the diversity analysis: execution infos grouped by effective
        // input class.
        let classes = self.analyzer.input_classes(&ctraces);
        let class_members: Vec<Vec<&ExecutionInfo>> = classes
            .iter()
            .filter(|c| c.is_effective())
            .map(|c| c.members.iter().map(|&i| &infos[i]).collect())
            .collect();
        self.coverage.update(&class_members);

        let mut discarded_as_artifact = 0;
        let mut discarded_by_nesting = 0;
        let mut confirmed = None;
        for v in &analysis.violations {
            if self.config.priming_swap_check
                && self.executor.is_measurement_artifact(tc, inputs, v.input_a, v.input_b)?
            {
                discarded_as_artifact += 1;
                continue;
            }
            if self.config.verify_with_nesting && self.config.contract.speculation_window > 0 {
                let nested = ContractModel::new(self.config.contract.clone().with_nesting(true));
                let a = nested.collect_trace(tc, &inputs[v.input_a])?;
                let b = nested.collect_trace(tc, &inputs[v.input_b])?;
                if a != b {
                    // Under the true (nested) contract the inputs are in
                    // different classes; the reported violation was an
                    // artifact of the nesting-disabled approximation.
                    discarded_by_nesting += 1;
                    continue;
                }
            }
            confirmed = Some(v.clone());
            break;
        }

        Ok(TestCaseOutcome {
            inputs: inputs.to_vec(),
            analysis,
            confirmed_violation: confirmed,
            discarded_as_artifact,
            discarded_by_nesting,
        })
    }

    /// Run the fuzzing campaign until a confirmed violation is found or the
    /// test-case budget is exhausted.
    pub fn run(&mut self) -> FuzzReport {
        let start = Instant::now();
        let mut test_cases = 0usize;
        let mut total_inputs = 0usize;
        let mut rounds = 0usize;
        let mut escalations = 0usize;
        let mut effectiveness_sum = 0.0f64;
        let mut round_improved = false;
        let mut coverage_level = 1usize;
        let mut violation: Option<ViolationReport> = None;

        for tc_index in 0..self.config.max_test_cases {
            let seed = self.config.seed.wrapping_add(tc_index as u64);
            let tc = self.generator.generate(seed);
            let before_coverage = self.coverage.clone();
            let outcome = match self.test_case(&tc, seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
                Ok(o) => o,
                Err(_) => continue, // malformed test case; skip (never happens for generated code)
            };
            test_cases += 1;
            total_inputs += outcome.inputs.len();
            effectiveness_sum += outcome.analysis.stats.effectiveness();
            round_improved |= self.coverage != before_coverage;

            if let Some(v) = outcome.confirmed_violation {
                let vulnerability = match &self.target {
                    Some(t) => classify(t, &self.config.contract, &tc),
                    None => VulnClass::Unknown,
                };
                violation = Some(ViolationReport {
                    test_case: tc,
                    inputs: outcome.inputs,
                    violation: v,
                    contract: self.config.contract.clone(),
                    vulnerability,
                    test_cases_until_detection: test_cases,
                    inputs_until_detection: total_inputs,
                });
                break;
            }

            // Round boundary: diversity feedback (§5.6).  The generator is
            // escalated when the current coverage goal is met (all single
            // patterns, then all pattern pairs) or when a whole round went
            // by without improving coverage.
            if (tc_index + 1) % self.config.round_size == 0 {
                rounds += 1;
                let isa = self.config.generator.isa;
                let goal_met = match coverage_level {
                    1 => self.coverage.all_single_covered(isa),
                    _ => self.coverage.all_pairs_covered(isa),
                };
                if goal_met || !round_improved {
                    if goal_met {
                        coverage_level += 1;
                    }
                    self.config.generator.escalate();
                    self.generator.set_config(self.config.generator.clone());
                    self.input_gen = InputGenerator::new(self.config.generator.input_entropy_bits);
                    escalations += 1;
                }
                round_improved = false;
            }
        }

        FuzzReport {
            violation,
            test_cases,
            total_inputs,
            rounds,
            escalations,
            duration: start.elapsed(),
            mean_effectiveness: if test_cases == 0 {
                0.0
            } else {
                effectiveness_sum / test_cases as f64
            },
            coverage: self.coverage.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets;
    use rvz_executor::ExecutorConfig;

    fn quick_config(target: &Target, contract: Contract) -> FuzzerConfig {
        // Start from a mid-campaign generator configuration (as if a few
        // escalation rounds already happened) so the unit test stays fast.
        let generator = rvz_gen::GeneratorConfig::for_subset(target.isa)
            .with_basic_blocks(4)
            .with_instructions(14);
        FuzzerConfig::for_target(target, contract)
            .with_generator(generator)
            .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2))
            .with_inputs_per_test_case(20)
            .with_max_test_cases(40)
            .with_seed(1)
    }

    #[test]
    fn baseline_target1_complies_with_ct_seq() {
        // Table 3, column 1: AR-only test cases on Skylake never violate
        // CT-SEQ — no false positives.
        let target = Target::target1();
        let config = quick_config(&target, Contract::ct_seq()).with_max_test_cases(15);
        let mut r = Revizor::new(target.cpu(), config).with_target(target.clone());
        let report = r.run();
        assert!(!report.found_violation(), "baseline must not report violations");
        assert!(report.test_cases > 0);
    }

    #[test]
    fn target5_violates_ct_seq_with_spectre_v1() {
        let target = Target::target5();
        let config = quick_config(&target, Contract::ct_seq());
        let mut r = Revizor::new(target.cpu(), config).with_target(target.clone());
        let report = r.run();
        assert!(report.found_violation(), "Spectre V1 must surface as a CT-SEQ violation");
        let v = report.violation.unwrap();
        assert_eq!(v.vulnerability, VulnClass::SpectreV1);
        assert!(v.test_case.conditional_branch_count() > 0);
    }

    #[test]
    fn target5_complies_with_ct_cond() {
        // CT-COND permits leakage during branch prediction, so the V1-only
        // target no longer violates it (Table 3, Target 5 row CT-COND).
        let target = Target::target5();
        let config = quick_config(&target, Contract::ct_cond()).with_max_test_cases(15);
        let mut r = Revizor::new(target.cpu(), config).with_target(target.clone());
        let report = r.run();
        assert!(!report.found_violation());
    }

    #[test]
    fn handwritten_v1_gadget_detected_quickly() {
        let target = Target::target5();
        let config = quick_config(&target, Contract::ct_seq());
        let mut r = Revizor::new(target.cpu(), config).with_target(target.clone());
        let tc = gadgets::spectre_v1();
        let outcome = r.test_case(&tc, 7).unwrap();
        assert!(outcome.confirmed_violation.is_some(), "handwritten V1 gadget must violate CT-SEQ");
    }

    #[test]
    fn report_metrics_are_populated() {
        let target = Target::target1();
        let config = quick_config(&target, Contract::ct_seq()).with_max_test_cases(12);
        let mut r = Revizor::new(target.cpu(), config).with_target(target.clone());
        let report = r.run();
        assert_eq!(report.test_cases, 12);
        assert!(report.total_inputs >= 12 * 20);
        assert!(report.rounds >= 1);
        assert!(report.mean_effectiveness > 0.0, "low-entropy inputs must collide");
        assert!(report.test_cases_per_second() > 0.0);
    }
}
