//! Regenerates Table 5: the number of random inputs needed to surface a
//! violation on handwritten test cases of known vulnerabilities.
//!
//! Usage: `cargo run --release -p rvz-bench --bin table5 [seeds per gadget] [--threads=N]`
//!
//! Each sample runs all seven gadgets as **one** scenario-pinned
//! [`CampaignMatrix`] on the shared worker pool: every cell's generator is
//! pinned to its gadget family ([`Scenario::table5`]), so the matrix
//! "stream" replays the handwritten test case with fresh random inputs
//! each round, and `#inputs` is the number of inputs executed up to the
//! first confirmed violation.  V1/V1.1/V2/V4/V5-ret are measured on the
//! Prime+Probe targets; the MDS gadgets use Prime+Probe+Assist on the
//! MDS-vulnerable part (Target 7's CPU), matching the paper's note that
//! they only work on pre-9th-gen parts.

use revizor::orchestrator::CampaignMatrix;
use revizor::targets::Target;
use rvz_bench::{budget_from_args, flag_value_from_args, row};
use rvz_executor::MeasurementMode;
use rvz_gen::Scenario;
use rvz_model::Contract;

fn main() {
    let samples = budget_from_args(10);
    let threads = flag_value_from_args::<usize>("--threads").unwrap_or(1);
    let max_units = 25; // test-case evaluations (6-input batches) per cell
    println!("Table 5: detection of known vulnerabilities on handwritten test cases");
    println!("  (#inputs = mean number of random inputs executed until a CT-SEQ violation,");
    println!("   over {samples} matrix seeds; each cell replays its gadget with fresh input batches)");
    println!();

    // Scenario -> target used to test it.
    let v4_target = Target::target2(); // Skylake with the V4 patch off, Prime+Probe
    let mds_target = {
        let mut t = Target::target7(); // Skylake, assists enabled
        t.mode = MeasurementMode::prime_probe_assist();
        t
    };
    let base: Vec<(&str, Target)> = vec![
        ("V1", Target::target5()),
        ("V1.1", Target::target5()),
        ("V2", Target::target5()),
        ("V4", v4_target),
        ("V5-ret", Target::target5()),
        ("MDS-LFB", mds_target.clone()),
        ("MDS-SB", mds_target),
    ];
    let rows: Vec<(&str, Target)> = Scenario::table5()
        .into_iter()
        .zip(base)
        .map(|(scenario, (label, mut target))| {
            target.scenario = Some(scenario);
            (label, target)
        })
        .collect();
    let paper_inputs = [6u32, 6, 4, 62, 2, 2, 12];

    // One pooled matrix per sample seed; all seven scenario-pinned cells
    // share the worker fleet.  Cells are read back by index: several rows
    // pin different scenarios onto the same target id.
    let mut counts: Vec<Vec<usize>> = vec![Vec::new(); rows.len()];
    for sample in 0..samples {
        let mut matrix = CampaignMatrix::new(sample as u64 * 104_729 + 3)
            .with_budget(max_units)
            .with_inputs_per_test_case(6)
            .with_parallelism(threads);
        for (_, target) in &rows {
            matrix = matrix.add_cell(target.clone(), Contract::ct_seq());
        }
        let report = matrix.run();
        for (i, cell) in report.cells.iter().enumerate() {
            if let Some(v) = &cell.violation {
                counts[i].push(v.inputs_until_detection);
            }
        }
    }

    let widths = [9, 10, 10, 8, 8, 14];
    println!(
        "{}",
        row(
            &[
                "Gadget".into(),
                "mean".into(),
                "min".into(),
                "max".into(),
                "found".into(),
                "paper (#inputs)".into()
            ],
            &widths
        )
    );
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 3 * widths.len()));
    for (i, (label, _)) in rows.iter().enumerate() {
        let found = &counts[i];
        let mean = if found.is_empty() {
            0.0
        } else {
            found.iter().sum::<usize>() as f64 / found.len() as f64
        };
        println!(
            "{}",
            row(
                &[
                    label.to_string(),
                    format!("{mean:.1}"),
                    format!("{}", found.iter().min().copied().unwrap_or(0)),
                    format!("{}", found.iter().max().copied().unwrap_or(0)),
                    format!("{}/{samples}", found.len()),
                    format!("{}", paper_inputs[i]),
                ],
                &widths
            )
        );
    }
    println!();
    println!(
        "Shape check: every known vulnerability is detected with a small number of random \
         inputs (the paper needs 2-62).  Input counts here are batch-granular (a cell's \
         inputs arrive one batch per test-case evaluation), so they upper-bound the paper's \
         one-at-a-time minima; the simulator's low-entropy inputs also surface V4 faster \
         than the paper's 62."
    );
}
