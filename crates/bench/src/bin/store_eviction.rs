//! Regenerates §6.4: validating the "stores do not modify the cache until
//! they retire" assumption made by STT and KLEESpectre.
//!
//! The CT-COND contract is modified so that speculative stores are *not*
//! permitted to leak; Skylake complies, Coffee Lake does not (speculative
//! stores already allocate cache lines there).

use revizor::detection::inputs_to_violation;
use revizor::gadgets;
use revizor::targets::Target;
use rvz_bench::{budget_from_args, row};
use rvz_executor::MeasurementMode;
use rvz_model::Contract;

fn main() {
    let max_inputs = budget_from_args(150);
    let contract = Contract::ct_cond_no_spec_store();
    println!("Speculative store eviction (§6.4), contract: {contract}");
    println!();

    let gadget = gadgets::speculative_store_eviction();
    let cpus: Vec<(&str, Target)> = vec![
        ("Skylake", {
            let mut t = Target::target5();
            t.mode = MeasurementMode::prime_probe();
            t
        }),
        ("Coffee Lake", {
            let mut t = Target::target8();
            t.mode = MeasurementMode::prime_probe();
            t.isa = rvz_isa::IsaSubset::AR_MEM_CB;
            t
        }),
    ];

    let widths = [14, 30];
    println!("{}", row(&["CPU".into(), "result".into()], &widths));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 3 * widths.len()));
    for (name, target) in cpus {
        let mut cell = "no violation (assumption holds)".to_string();
        for seed in 0..5u64 {
            if let Some(n) =
                inputs_to_violation(&target, contract.clone(), &gadget, seed * 13 + 3, max_inputs)
            {
                cell = format!("VIOLATION after {n} inputs (assumption wrong)");
                break;
            }
        }
        println!("{}", row(&[name.to_string(), cell], &widths));
    }

    println!();
    println!(
        "Expected shape (paper): no violation on Skylake; a counterexample on Coffee Lake, \
         showing that speculative stores can modify the cache state before retiring."
    );
}
