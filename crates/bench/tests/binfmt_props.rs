//! Binary wire-format properties: arbitrary checkpoints and transfer
//! frames survive encode → decode byte-identically, the binary and JSON
//! codecs agree on every document, and truncated or bit-flipped frames
//! yield clean errors — never panics, never a silently-wrong checkpoint
//! accepted past its digest.

use proptest::prelude::*;
use revizor::diversity::PatternCoverage;
use revizor::orchestrator::{CellProgress, GroupProgress, MatrixCheckpoint};
use revizor::EffectivenessStats;
use rvz_bench::binfmt::{
    checkpoint_transfer_from_binary, checkpoint_transfer_to_binary, frame_len,
    matrix_checkpoint_from_binary, matrix_checkpoint_to_binary, parse_frame, HEADER_LEN,
};
use rvz_bench::json::{parse, Json};
use rvz_bench::report::{matrix_checkpoint_from_json, matrix_checkpoint_to_json};
use rvz_isa::BlockId;
use rvz_uarch::{BranchPredictor, Btb, DirectionPredictor, TargetPredictor};
use std::time::Duration;

/// A synthetic checkpoint exercising the codec's full shape from raw
/// bits (the same generator as the service's JSON protocol tests;
/// violation-carrying cells are covered by the real-run round trips in
/// `rvz_bench::binfmt`'s unit tests).
fn checkpoint_from(scalars: [u64; 4], groups: &[(u8, u64)], cells: &[u64]) -> MatrixCheckpoint {
    MatrixCheckpoint {
        wave: (scalars[0] % 1000) as usize,
        seed: scalars[1],
        budget: (scalars[2] & 0xFFFF) as usize,
        round_size: (scalars[2] >> 16 & 0xFF) as usize,
        escalation: scalars[2] & (1 << 63) != 0,
        config_digest: scalars[3],
        cells: cells
            .iter()
            .map(|&c| {
                (c & 1 == 1).then(|| CellProgress {
                    violation: None,
                    test_cases: (c >> 1 & 0xFFFF) as usize,
                    filtered: (c >> 40 & 0xFF) as usize,
                    total_inputs: (c >> 17 & 0xFFFF) as usize,
                    effectiveness: EffectivenessStats {
                        total_inputs: (c >> 17 & 0xFFFF) as usize,
                        effective_inputs: (c >> 21 & 0xFFF) as usize,
                        classes: (c >> 48 & 0xFF) as usize,
                        singleton_classes: (c >> 52 & 0xFF) as usize,
                    },
                    detection_time: Duration::from_nanos(c >> 33),
                })
            })
            .collect(),
        groups: groups
            .iter()
            .map(|&(target_id, g)| GroupProgress {
                target_id,
                next_index: (g & 0xFFFF) as usize,
                test_cases: (g >> 16 & 0xFFFF) as usize,
                filtered: (g >> 24 & 0xFF) as usize,
                total_inputs: (g >> 32 & 0xFFFF) as usize,
                effectiveness: vec![EffectivenessStats {
                    total_inputs: (g >> 32 & 0xFFFF) as usize,
                    effective_inputs: (g >> 36 & 0xFFF) as usize,
                    classes: (g >> 8 & 0xFF) as usize,
                    singleton_classes: (g >> 12 & 0xFF) as usize,
                }],
                round: (g >> 48 & 0xFF) as usize,
                work: Duration::from_nanos(g.rotate_left(13)),
                escalations: (g >> 56 & 0xF) as usize,
                coverage_level: 1 + (g >> 60 & 0x3) as usize,
                round_improved: g & (1 << 63) != 0,
                coverage: PatternCoverage::new(),
            })
            .collect(),
    }
}

/// An arbitrary routing meta document of the shape the service attaches
/// to transfers (flat object, mixed scalar types).
fn meta_from(bits: u64) -> Json {
    Json::obj()
        .field("op", ["progress", "final", "lease"][(bits % 3) as usize])
        .field("target", bits >> 3 & 0xFF)
        .field("events", bits >> 11 & 0xFFFF)
        .field("stolen", bits & (1 << 63) != 0)
}

/// Splice the `history` field (which records the update interleaving and
/// legitimately differs between the two training orders) out of a
/// predictor's Debug rendering.
fn strip_history(s: &str) -> String {
    let i = s.find(" history: ").expect("rendering names the history field");
    let j = i + s[i..].find(',').expect("history is not the last field");
    format!("{}{}", &s[..i], &s[j..])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Regression for the predictor-table map type: `Debug` renderings are
    /// the canonical encoding that checkpoint digests hash, so two
    /// predictors holding the same logical state must re-encode
    /// byte-identically no matter which order their sites were first
    /// observed in.  A hash-map-backed table only passes this for lucky
    /// site sets.
    #[test]
    fn predictor_state_re_encodes_byte_identically(
        raw in proptest::collection::vec(any::<u64>(), 1..24),
    ) {
        // Each word encodes one training batch: a site (low 6 bits) and a
        // 1-4 long outcome sequence (remaining bits).  Collecting into an
        // ordered map dedups sites, so each site has one well-defined
        // sequence regardless of visit order.
        let batches: std::collections::BTreeMap<usize, Vec<bool>> = raw
            .iter()
            .map(|&bits| {
                let site = (bits & 0x3F) as usize;
                let len = 1 + (bits >> 6 & 0x3) as usize;
                let outcomes = (0..len).map(|k| bits >> (8 + k) & 1 == 1).collect();
                (site, outcomes)
            })
            .collect();
        // With zero history bits the per-site counters are independent, so
        // visiting the sites in opposite orders (keeping each site's own
        // outcome sequence) trains the same logical state.
        let mut fwd = BranchPredictor::new();
        let mut rev = BranchPredictor::new();
        for (&site, outcomes) in &batches {
            for &taken in outcomes {
                fwd.update(site, taken);
            }
        }
        for (&site, outcomes) in batches.iter().rev() {
            for &taken in outcomes {
                rev.update(site, taken);
            }
        }
        prop_assert_eq!(
            strip_history(&format!("{fwd:?}")),
            strip_history(&format!("{rev:?}"))
        );

        // The BTB is a pure last-target map with no order-dependent state
        // at all for distinct sites — renderings must match exactly.
        let mut btb_fwd = Btb::new();
        let mut btb_rev = Btb::new();
        for (&site, outcomes) in &batches {
            btb_fwd.update(site, BlockId(outcomes.len()));
        }
        for (&site, outcomes) in batches.iter().rev() {
            btb_rev.update(site, BlockId(outcomes.len()));
        }
        prop_assert_eq!(format!("{btb_fwd:?}"), format!("{btb_rev:?}"));
    }

    /// Checkpoint frames decode back to the exact value and re-encode to
    /// the exact bytes; the JSON codec agrees on the same document, so
    /// binary ↔ JSON is lossless in both directions.
    #[test]
    fn checkpoint_frames_round_trip_byte_identically(
        s0 in any::<u64>(), s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>(),
        groups in proptest::collection::vec(any::<u64>(), 0..4),
        cells in proptest::collection::vec(any::<u64>(), 0..8),
    ) {
        let groups: Vec<(u8, u64)> = groups.iter().map(|&g| ((g >> 5) as u8, g)).collect();
        let cp = checkpoint_from([s0, s1, s2, s3], &groups, &cells);
        let frame = matrix_checkpoint_to_binary(&cp);
        prop_assert_eq!(frame_len(&frame), Ok(Some(frame.len())));
        let decoded = matrix_checkpoint_from_binary(&frame).unwrap();
        prop_assert_eq!(&decoded, &cp);
        prop_assert_eq!(decoded.digest(), cp.digest());
        // Deterministic encoding: same value, same bytes.
        prop_assert_eq!(&matrix_checkpoint_to_binary(&decoded), &frame);
        // Lossless against the JSON codec, both directions.
        let doc = matrix_checkpoint_to_json(&cp);
        prop_assert_eq!(&matrix_checkpoint_to_json(&decoded).render(), &doc.render());
        let via_json = matrix_checkpoint_from_json(&parse(&doc.render()).unwrap()).unwrap();
        prop_assert_eq!(&matrix_checkpoint_to_binary(&via_json), &frame);
    }

    /// Transfer frames carry job id, routing meta and payload exactly,
    /// and the pre-encode digest still validates after the round trip.
    #[test]
    fn transfer_frames_round_trip_and_validate(
        s0 in any::<u64>(), s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>(),
        cells in proptest::collection::vec(any::<u64>(), 0..6),
        job_bits in any::<u64>(), meta_bits in any::<u64>(),
    ) {
        const JOBS: [&str; 4] = ["j1-2", "jdead-beef", "…uni≠code…", "-"];
        let job = JOBS[(job_bits % JOBS.len() as u64) as usize];
        let cp = checkpoint_from([s0, s1, s2, s3], &[(5, s1)], &cells);
        let meta = meta_from(meta_bits);
        let frame = checkpoint_transfer_to_binary(job, &cp, &meta);
        let decoded = checkpoint_transfer_from_binary(&frame).unwrap();
        prop_assert_eq!(decoded.transfer.job.as_str(), job);
        prop_assert_eq!(&decoded.transfer.checkpoint, &cp);
        prop_assert!(decoded.transfer.validates(), "decode must preserve the digest");
        prop_assert_eq!(&decoded.meta.render(), &meta.render());
    }

    /// Every strict prefix of a binary frame is a clean decode error —
    /// not a panic, not an accepted checkpoint.  `frame_len` reports the
    /// same prefixes as incomplete instead of guessing.
    #[test]
    fn truncated_binary_frames_error_cleanly(
        s0 in any::<u64>(), s1 in any::<u64>(), cut in any::<u64>(),
    ) {
        let cp = checkpoint_from([s0, s1, s1 ^ s0, s0.rotate_left(7)], &[(5, s1)], &[s0 | 1]);
        let frame = matrix_checkpoint_to_binary(&cp);
        let cut = (cut % frame.len() as u64) as usize;
        let err = matrix_checkpoint_from_binary(&frame[..cut])
            .expect_err("strict prefixes of a frame are invalid");
        prop_assert!(!err.is_empty());
        match frame_len(&frame[..cut]) {
            // Too short to know the length, or known-longer-than-given.
            Ok(None) => prop_assert!(cut < HEADER_LEN),
            Ok(Some(total)) => prop_assert!(total > cut, "frame_len must not under-report"),
            Err(e) => prop_assert!(!e.is_empty()),
        }
    }

    /// A single flipped bit anywhere in a frame never panics the decoder:
    /// it either errors with a message, or — when the flip lands in the
    /// payload — the digest exposes the corruption.  Header flips are
    /// always hard errors.
    #[test]
    fn bit_flipped_frames_never_panic_and_never_forge_a_digest(
        s0 in any::<u64>(), s1 in any::<u64>(), flip in any::<u64>(),
    ) {
        let cp = checkpoint_from([s0, s1, s1.wrapping_mul(3), !s0], &[(3, s0)], &[s1 | 1]);
        let mut frame = matrix_checkpoint_to_binary(&cp);
        let bit = (flip % (frame.len() as u64 * 8)) as usize;
        frame[bit / 8] ^= 1 << (bit % 8);
        match matrix_checkpoint_from_binary(&frame) {
            Err(e) => prop_assert!(!e.is_empty(), "errors must carry a message"),
            Ok(mutated) => {
                // The frame has no checksum of its own; a body flip may
                // still decode.  The checkpoint's content digest is what
                // downstream validation compares — it must move.
                if mutated != cp {
                    prop_assert!(mutated.digest() != cp.digest());
                }
            }
        }
        prop_assert!(bit >= HEADER_LEN * 8 || matrix_checkpoint_from_binary(&frame).is_err(),
            "header flips are always rejected");
    }

    /// Arbitrary garbage never panics the frame parser.
    #[test]
    fn garbage_never_panics_the_frame_parser(
        bytes in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        if let Err(e) = parse_frame(&bytes) {
            prop_assert!(!e.is_empty(), "errors must carry a message");
        }
        let _ = frame_len(&bytes);
    }
}
