//! Cache side-channel measurement primitives.
//!
//! The executor records hardware traces by performing a genuine cache attack
//! against the CPU under test, but "in a fully controlled environment"
//! (§5.3).  These types implement the three attacks supported by the paper —
//! Prime+Probe, Flush+Reload and Evict+Reload — against the [`Cache`] model.
//!
//! A channel is built once per measurement session and reused across every
//! repetition of every input: the attacker's address lists are a pure
//! function of the cache geometry (or of the victim sandbox), so they are
//! computed once per geometry and cached inside the channel instead of being
//! rebuilt on each of the `repetitions × inputs` measurements.

use crate::model::{Cache, CacheConfig};
use crate::set_vector::SetVector;

/// Base address of the attacker's probing buffer.  It is disjoint from any
/// victim sandbox address, so attacker lines never alias victim lines.
pub const ATTACKER_BASE: u64 = 0xF000_0000;

/// A cache side channel: prepares the cache before the victim executes and
/// measures the victim's footprint afterwards.
///
/// Channels are stateful so they can cache derived data (attacker address
/// lists, victim line lists) across measurements; [`reset`](SideChannel::reset)
/// clears the measurement state without discarding those caches.
pub trait SideChannel: std::fmt::Debug {
    /// Human-readable name (e.g. `P+P`).
    fn name(&self) -> &'static str;

    /// Prepare the cache before the victim runs.
    fn prepare(&mut self, cache: &mut Cache);

    /// Measure the victim's footprint after it ran, as a [`SetVector`].
    fn measure(&mut self, cache: &mut Cache) -> SetVector;

    /// Forget any in-flight measurement state so the channel can be reused
    /// for a fresh session.  Cached per-geometry data (which is a pure
    /// function of the cache configuration) survives a reset.
    fn reset(&mut self) {}
}

/// Prime+Probe: fill every set with attacker lines, then detect which sets
/// lost at least one attacker line to the victim.
///
/// This is the paper's default threat model; the executor uses the L1D miss
/// counter while re-probing, which is modelled by missing probes of the
/// attacker's lines.
#[derive(Debug, Clone, Default)]
pub struct PrimeProbe {
    /// Geometry the cached tag table was built for.
    geometry: Option<CacheConfig>,
    /// Attacker line tags, `ways` consecutive entries per set, in the order
    /// the sequential prime walk would access them.
    tags: Vec<u64>,
    primed: bool,
}

impl PrimeProbe {
    /// Create a Prime+Probe channel.
    pub fn new() -> PrimeProbe {
        PrimeProbe::default()
    }

    /// The attacker line covering `(set, way)` of the given geometry.
    pub fn attacker_addr(cfg: CacheConfig, set: usize, way: usize) -> u64 {
        ATTACKER_BASE + ((way * cfg.sets + set) as u64) * cfg.line_size
    }

    /// (Re)build the per-set attacker tag table when the geometry changes.
    fn ensure_geometry(&mut self, cfg: CacheConfig) {
        if self.geometry == Some(cfg) {
            return;
        }
        self.tags.clear();
        self.tags.reserve(cfg.sets * cfg.ways);
        for set in 0..cfg.sets {
            for way in 0..cfg.ways {
                self.tags.push(Self::attacker_addr(cfg, set, way) / cfg.line_size);
            }
        }
        self.geometry = Some(cfg);
    }

    /// Attacker tags of one set, ordered way 0 to way `ways - 1`.
    fn set_tags(&self, cfg: CacheConfig, set: usize) -> &[u64] {
        &self.tags[set * cfg.ways..(set + 1) * cfg.ways]
    }
}

impl SideChannel for PrimeProbe {
    fn name(&self) -> &'static str {
        "P+P"
    }

    fn prepare(&mut self, cache: &mut Cache) {
        let cfg = cache.config();
        self.ensure_geometry(cfg);
        // The sequential walk (way-major over all sets) touches each set's
        // lines in way order and never mixes sets, so bulk-filling one set
        // at a time leaves the cache in the identical state.
        for set in 0..cfg.sets {
            cache.prime_set(set, self.set_tags(cfg, set));
        }
        self.primed = true;
    }

    fn measure(&mut self, cache: &mut Cache) -> SetVector {
        let cfg = cache.config();
        self.ensure_geometry(cfg);
        let mut v = SetVector::EMPTY;
        for set in 0..cfg.sets.min(SetVector::SETS) {
            if cache.probe_set(set, self.set_tags(cfg, set)) < cfg.ways {
                v.insert(set);
            }
        }
        v
    }

    fn reset(&mut self) {
        self.primed = false;
    }
}

/// Flush+Reload: flush all victim lines before the run, then reload them and
/// record which ones the victim brought back into the cache.
///
/// On a 4 KiB sandbox this produces traces equivalent to Prime+Probe, as
/// noted in §6.1 (64 lines of one page map 1:1 onto the 64 L1D sets).
#[derive(Debug, Clone)]
pub struct FlushReload {
    victim_base: u64,
    victim_len: u64,
    /// Line size the cached victim line list was built for.
    line_size: Option<u64>,
    /// Line-aligned addresses of the monitored victim lines.
    lines: Vec<u64>,
}

impl FlushReload {
    /// Create a Flush+Reload channel monitoring `[victim_base, victim_base + victim_len)`.
    pub fn new(victim_base: u64, victim_len: u64) -> FlushReload {
        FlushReload { victim_base, victim_len, line_size: None, lines: Vec::new() }
    }

    /// (Re)build the victim line list when the line size changes.
    fn ensure_lines(&mut self, cache: &Cache) {
        let line = cache.config().line_size;
        if self.line_size == Some(line) {
            return;
        }
        let first = self.victim_base / line;
        let last = (self.victim_base + self.victim_len).div_ceil(line);
        self.lines.clear();
        self.lines.extend((first..last).map(|l| l * line));
        self.line_size = Some(line);
    }
}

impl SideChannel for FlushReload {
    fn name(&self) -> &'static str {
        "F+R"
    }

    fn prepare(&mut self, cache: &mut Cache) {
        self.ensure_lines(cache);
        for &addr in &self.lines {
            cache.flush(addr);
        }
    }

    fn measure(&mut self, cache: &mut Cache) -> SetVector {
        self.ensure_lines(cache);
        let mut v = SetVector::EMPTY;
        for &addr in &self.lines {
            if cache.is_cached(addr) {
                v.insert(cache.set_of(addr));
            }
        }
        v
    }
}

/// Evict+Reload: like Flush+Reload but evicts the victim lines by walking an
/// eviction set instead of flushing them (useful when `CLFLUSH` is not
/// available to the attacker).
#[derive(Debug, Clone)]
pub struct EvictReload {
    /// Eviction sets: filling every cache set with attacker lines pushes out
    /// any victim line, exactly like a Prime+Probe prepare.
    evict: PrimeProbe,
    inner: FlushReload,
}

impl EvictReload {
    /// Create an Evict+Reload channel monitoring `[victim_base, victim_base + victim_len)`.
    pub fn new(victim_base: u64, victim_len: u64) -> EvictReload {
        EvictReload { evict: PrimeProbe::new(), inner: FlushReload::new(victim_base, victim_len) }
    }
}

impl SideChannel for EvictReload {
    fn name(&self) -> &'static str {
        "E+R"
    }

    fn prepare(&mut self, cache: &mut Cache) {
        self.evict.prepare(cache);
    }

    fn measure(&mut self, cache: &mut Cache) -> SetVector {
        self.inner.measure(cache)
    }

    fn reset(&mut self) {
        self.evict.reset();
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CacheConfig;

    fn victim_touch(cache: &mut Cache, addrs: &[u64]) {
        for &a in addrs {
            cache.access(a);
        }
    }

    #[test]
    fn prime_probe_detects_victim_sets() {
        let mut cache = Cache::new(CacheConfig::l1d());
        let mut pp = PrimeProbe::new();
        pp.prepare(&mut cache);
        // Victim touches lines in sets 0, 4, 5 (addresses inside a 4K page).
        victim_touch(&mut cache, &[0x10_0000, 0x10_0100, 0x10_0140]);
        let v = pp.measure(&mut cache);
        assert!(v.contains(0) && v.contains(4) && v.contains(5));
        assert_eq!(v.count(), 3);
    }

    #[test]
    fn prime_probe_empty_when_victim_idle() {
        let mut cache = Cache::new(CacheConfig::l1d());
        let mut pp = PrimeProbe::new();
        pp.prepare(&mut cache);
        let v = pp.measure(&mut cache);
        assert!(v.is_empty());
    }

    #[test]
    fn prime_probe_survives_geometry_change() {
        // The cached tag table is keyed by geometry; reusing one channel
        // across caches with different shapes must rebuild it.
        let mut pp = PrimeProbe::new();
        let mut big = Cache::new(CacheConfig::l1d());
        pp.prepare(&mut big);
        let mut tiny = Cache::new(CacheConfig::tiny(4, 2));
        pp.prepare(&mut tiny);
        victim_touch(&mut tiny, &[0x40]);
        let v = pp.measure(&mut tiny);
        assert!(v.contains(1));
        assert_eq!(v.count(), 1);
    }

    #[test]
    fn reset_clears_measurement_state_only() {
        let mut cache = Cache::new(CacheConfig::l1d());
        let mut pp = PrimeProbe::new();
        pp.prepare(&mut cache);
        assert!(pp.primed);
        pp.reset();
        assert!(!pp.primed);
        assert!(pp.geometry.is_some(), "per-geometry cache survives reset");
        // The channel is immediately reusable.
        pp.prepare(&mut cache);
        victim_touch(&mut cache, &[0x10_0080]);
        assert!(pp.measure(&mut cache).contains(2));
    }

    #[test]
    fn flush_reload_detects_victim_lines() {
        let mut cache = Cache::new(CacheConfig::l1d());
        let base = 0x10_0000;
        let mut fr = FlushReload::new(base, 4096);
        // Warm a victim line, then prepare (flush) removes it.
        cache.access(base + 0x80);
        fr.prepare(&mut cache);
        assert!(fr.measure(&mut cache).is_empty());
        victim_touch(&mut cache, &[base + 0x80, base + 0xc0]);
        let v = fr.measure(&mut cache);
        assert!(v.contains(2) && v.contains(3));
        assert_eq!(v.count(), 2);
    }

    #[test]
    fn evict_reload_matches_flush_reload_on_one_page() {
        let base = 0x10_0000;
        let victim = [base + 0x40, base + 0x800];

        let mut c1 = Cache::new(CacheConfig::l1d());
        let mut fr = FlushReload::new(base, 4096);
        fr.prepare(&mut c1);
        victim_touch(&mut c1, &victim);
        let t1 = fr.measure(&mut c1);

        let mut c2 = Cache::new(CacheConfig::l1d());
        let mut er = EvictReload::new(base, 4096);
        er.prepare(&mut c2);
        victim_touch(&mut c2, &victim);
        let t2 = er.measure(&mut c2);

        assert_eq!(t1, t2, "§6.1: F+R and E+R traces are equivalent on a 4K sandbox");
    }

    #[test]
    fn prime_probe_and_flush_reload_equivalent_on_one_page() {
        // The paper argues the 64 lines of a 4 KiB sandbox map 1:1 onto the
        // 64 L1D sets, so P+P and F+R observe the same thing.
        let base = 0x10_0000u64;
        let victim = [base, base + 0x40 * 7, base + 0x40 * 63];

        let mut c1 = Cache::new(CacheConfig::l1d());
        let mut pp = PrimeProbe::new();
        pp.prepare(&mut c1);
        victim_touch(&mut c1, &victim);
        let t1 = pp.measure(&mut c1);

        let mut c2 = Cache::new(CacheConfig::l1d());
        let mut fr = FlushReload::new(base, 4096);
        fr.prepare(&mut c2);
        victim_touch(&mut c2, &victim);
        let t2 = fr.measure(&mut c2);

        assert_eq!(t1, t2);
    }

    #[test]
    fn channel_names() {
        assert_eq!(PrimeProbe::new().name(), "P+P");
        assert_eq!(FlushReload::new(0, 64).name(), "F+R");
        assert_eq!(EvictReload::new(0, 64).name(), "E+R");
    }
}
