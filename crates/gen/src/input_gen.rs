//! Pseudo-random input generation with reduced entropy (§5.2).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rvz_isa::reg::FlagSet;
use rvz_isa::{Input, Reg, TestCase};

/// Input generator: produces architectural states (registers, flags, sandbox
/// memory) from a 32-bit PRNG.
///
/// The paper deliberately reduces the entropy of the generated values by
/// masking PRNG output bits: with fewer distinct values, several inputs land
/// in the same contract-trace class, which is what makes them usable for
/// relational testing (input *effectiveness*, CH2).  Values are spread at
/// cache-line granularity so that distinct values map to distinct L1D sets
/// and are therefore distinguishable through the side channel.
#[derive(Debug, Clone)]
pub struct InputGenerator {
    entropy_bits: u32,
}

impl InputGenerator {
    /// Create a generator with the given value entropy (in bits).
    pub fn new(entropy_bits: u32) -> InputGenerator {
        InputGenerator { entropy_bits: entropy_bits.clamp(1, 32) }
    }

    /// The configured entropy.
    pub fn entropy_bits(&self) -> u32 {
        self.entropy_bits
    }

    /// Number of distinct values a single register/memory word can take.
    pub fn value_range(&self) -> u64 {
        1u64 << self.entropy_bits
    }

    /// Draw one masked value: `entropy_bits` of randomness, shifted to
    /// cache-line granularity.
    fn value(&self, rng: &mut SmallRng) -> u64 {
        let raw: u32 = rng.gen();
        ((raw as u64) & (self.value_range() - 1)) << 6
    }

    /// Generate one input for the test case's sandbox.
    pub fn generate_one(&self, tc: &TestCase, seed: u64) -> Input {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut input = Input::zeroed(tc.sandbox());
        input.seed_id = seed;
        for r in Reg::ALL {
            if !r.is_reserved() {
                input.set_reg(r, self.value(&mut rng));
            }
        }
        input.flags = FlagSet::from_bits(rng.gen::<u8>() & 0x1f);
        let words = tc.sandbox().data_size() as usize / 8;
        for w in 0..words {
            let v = self.value(&mut rng);
            input.write_mem_u64(w * 8, v);
        }
        input
    }

    /// Generate a batch of `count` inputs; the batch is deterministic in
    /// `seed`.
    pub fn generate(&self, tc: &TestCase, seed: u64, count: usize) -> Vec<Input> {
        (0..count as u64).map(|k| self.generate_one(tc, seed.wrapping_add(k * 0x9e37_79b9))).collect()
    }
}

impl Default for InputGenerator {
    fn default() -> Self {
        InputGenerator::new(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_isa::builder::TestCaseBuilder;
    use std::collections::HashSet;

    fn tc() -> TestCase {
        TestCaseBuilder::new().block("entry", |b| b.exit()).build()
    }

    #[test]
    fn generation_is_deterministic() {
        let g = InputGenerator::new(2);
        let tc = tc();
        assert_eq!(g.generate(&tc, 5, 10), g.generate(&tc, 5, 10));
        assert_ne!(g.generate(&tc, 5, 10), g.generate(&tc, 6, 10));
    }

    #[test]
    fn entropy_limits_distinct_values() {
        let g = InputGenerator::new(2);
        let tc = tc();
        let inputs = g.generate(&tc, 1, 50);
        let mut values = HashSet::new();
        for i in &inputs {
            for r in Reg::ALL {
                values.insert(i.reg(r));
            }
        }
        // 2 bits of entropy -> at most 4 distinct non-reserved values (plus 0
        // for the reserved registers which stay zeroed).
        assert!(values.len() <= 5, "got {} distinct values", values.len());
        for v in values {
            assert_eq!(v % 64, 0, "values are cache-line aligned");
            assert!(v < 4 * 64 || v == 0);
        }
    }

    #[test]
    fn higher_entropy_gives_more_distinct_values() {
        let tc = tc();
        let low: HashSet<u64> = InputGenerator::new(1)
            .generate(&tc, 1, 40)
            .iter()
            .map(|i| i.reg(Reg::Rax))
            .collect();
        let high: HashSet<u64> = InputGenerator::new(6)
            .generate(&tc, 1, 40)
            .iter()
            .map(|i| i.reg(Reg::Rax))
            .collect();
        assert!(high.len() > low.len());
    }

    #[test]
    fn memory_is_initialized_with_masked_values() {
        let g = InputGenerator::new(3);
        let tc = tc();
        let input = g.generate_one(&tc, 9);
        let mut nonzero = 0;
        for w in 0..(tc.sandbox().data_size() as usize / 8) {
            let v = input.read_mem_u64(w * 8);
            assert_eq!(v % 64, 0);
            assert!(v < 8 * 64);
            if v != 0 {
                nonzero += 1;
            }
        }
        assert!(nonzero > 0, "memory should not be all zeros");
    }

    #[test]
    fn reserved_registers_left_to_the_runtime() {
        let g = InputGenerator::new(4);
        let input = g.generate_one(&tc(), 3);
        assert_eq!(input.reg(Reg::R14), 0);
        assert_eq!(input.reg(Reg::Rsp), 0);
    }

    #[test]
    fn seed_id_recorded() {
        let g = InputGenerator::new(2);
        assert_eq!(g.generate_one(&tc(), 77).seed_id, 77);
    }

    #[test]
    fn entropy_is_clamped() {
        assert_eq!(InputGenerator::new(0).entropy_bits(), 1);
        assert_eq!(InputGenerator::new(64).entropy_bits(), 32);
        assert_eq!(InputGenerator::new(2).value_range(), 4);
    }

    #[test]
    fn batch_count_respected() {
        let g = InputGenerator::default();
        assert_eq!(g.generate(&tc(), 0, 17).len(), 17);
    }
}
