//! Multi-host mode: the worker-host side of the worker protocol.
//!
//! A worker (`revizor-worker`) dials the coordinator's worker port,
//! registers, and then processes one assignment at a time: it resolves the
//! job's [`JobSpec`] into a [`CampaignMatrix`], resumes from the shipped
//! checkpoint (or starts fresh), and steps the resulting
//! [`MatrixRun`](revizor::orchestrator::MatrixRun) wave by wave.  After
//! every wave it streams the checkpoint (plus digest and progress events)
//! to the coordinator and blocks for the `ack` — so the coordinator's
//! spool replica is never more than one wave behind, and a worker that
//! dies mid-job loses at most the wave it was computing.
//!
//! Cancellation is cooperative: a `cancel` frame is honored at the next
//! wave boundary, answered with a final `cancelled` frame carrying the
//! stopping checkpoint.
//!
//! ## Fault injection (test-only)
//!
//! [`Worker::with_fault_hook`] installs a hook that fires at every wave
//! boundary with `(job id, wave index)` and decides a [`FaultAction`]:
//! continue, delay (models a slow host / delayed checkpoint ack), drop the
//! coordinator connection (models a network partition — the worker
//! reconnects and re-registers), or die (models a worker kill).  The chaos
//! harness (`tests/chaos.rs`) drives seeded schedules of these actions and
//! asserts the coordinator's final verdicts stay byte-identical through
//! all of them.  Production binaries never install a hook.
//!
//! [`CampaignMatrix`]: revizor::orchestrator::CampaignMatrix

use crate::core::{job_result_json, EventCollector};
use crate::framing;
use crate::job::JobSpec;
use rvz_bench::json::{parse, Json};
use rvz_bench::report::{checkpoint_transfer_to_json, matrix_checkpoint_from_json};
use std::io::{self, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// What the fault hook tells the worker loop to do at a wave boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault: keep going.
    Continue,
    /// Sleep before proceeding (a slow host; since waves are ack-gated,
    /// this is also what a delayed checkpoint ack looks like end-to-end).
    Delay(Duration),
    /// Drop the coordinator connection mid-job, then reconnect and
    /// re-register.  The coordinator requeues the abandoned job from its
    /// last replicated checkpoint.
    DropConnection,
    /// Terminate the worker loop for good (a worker-host kill).
    Die,
}

/// The fault hook signature: `(job id, wave index about to run)`.
pub type FaultHook = Box<dyn FnMut(&str, usize) -> FaultAction + Send>;

/// Configuration of one worker host.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator worker-port address (`host:port`).
    pub coordinator: String,
    /// The name this worker registers under (shows up in job status).
    pub name: String,
    /// How long to keep retrying a failed connect (initial *and*
    /// reconnect) before giving up.  Lets workers start before the
    /// coordinator and survive coordinator restarts.
    pub retry_for: Duration,
}

impl WorkerConfig {
    /// A worker config with a process-unique default name.
    pub fn new(coordinator: impl Into<String>) -> WorkerConfig {
        WorkerConfig {
            coordinator: coordinator.into(),
            name: format!("worker-{}", std::process::id()),
            retry_for: Duration::from_secs(10),
        }
    }
}

/// How an assignment ended, steering the outer connection loop.
enum Flow {
    /// Frame handled (or assignment finished): keep serving this
    /// connection.
    Continue,
    /// The connection is unusable (or a fault dropped it): reconnect.
    Reconnect,
    /// Shut down the worker loop.
    Exit,
}

/// A line-framed JSON connection to the coordinator.
struct FrameConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl FrameConn {
    /// Connect, retrying for up to `retry_for`.
    fn connect(addr: &str, retry_for: Duration) -> io::Result<FrameConn> {
        let deadline = Instant::now() + retry_for;
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => return Ok(FrameConn { stream, buf: Vec::new() }),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Send one frame.
    fn send(&mut self, doc: &Json) -> io::Result<()> {
        let mut line = doc.render();
        line.push('\n');
        self.stream.write_all(line.as_bytes())
    }

    /// Read one frame, blocking until a full line arrives.
    fn read_frame(&mut self) -> io::Result<Json> {
        loop {
            if let Some(line) = framing::next_line(&mut self.buf) {
                return parse(&line)
                    .map_err(|e| io::Error::new(ErrorKind::InvalidData, e));
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Read one frame if one is already available, without blocking (used
    /// between waves to notice cancels promptly).
    fn try_read_frame(&mut self) -> io::Result<Option<Json>> {
        if !self.buf.contains(&b'\n') {
            // No complete line buffered: drain whatever the socket has.
            self.stream.set_nonblocking(true)?;
            let (_, closed) = framing::read_available(&mut self.stream, &mut self.buf);
            self.stream.set_nonblocking(false)?;
            if closed {
                return Err(ErrorKind::UnexpectedEof.into());
            }
        }
        match framing::next_line(&mut self.buf) {
            None => Ok(None),
            Some(line) => parse(&line)
                .map(Some)
                .map_err(|e| io::Error::new(ErrorKind::InvalidData, e)),
        }
    }
}

/// A worker host: connects to a coordinator and runs assigned jobs (see
/// the module docs).
pub struct Worker {
    config: WorkerConfig,
    hook: Option<FaultHook>,
}

impl Worker {
    /// A worker for the given configuration.
    pub fn new(config: WorkerConfig) -> Worker {
        Worker { config, hook: None }
    }

    /// Install a fault-injection hook (test-only; see the module docs).
    #[must_use]
    pub fn with_fault_hook(mut self, hook: FaultHook) -> Worker {
        self.hook = Some(hook);
        self
    }

    /// Run the worker loop: connect (with retries), register, and serve
    /// assignments until the coordinator shuts it down, the retry window
    /// closes with the coordinator unreachable, or a `Die` fault fires.
    ///
    /// # Errors
    /// Returns the final connect error once the retry window closes.
    pub fn run(mut self) -> io::Result<()> {
        loop {
            let mut conn = FrameConn::connect(&self.config.coordinator, self.config.retry_for)?;
            let register = Json::obj()
                .field("op", "register")
                .field("worker", self.config.name.as_str());
            if conn.send(&register).is_err() {
                continue;
            }
            // Serve frames until the connection is lost (then reconnect).
            while let Ok(frame) = conn.read_frame() {
                match frame.get("op").and_then(Json::as_str) {
                    Some("assign") => match self.run_assignment(&mut conn, &frame) {
                        Flow::Continue => {}
                        Flow::Reconnect => break,
                        Flow::Exit => return Ok(()),
                    },
                    Some("shutdown") => return Ok(()),
                    // `registered` acks and stale cancels (for a job this
                    // worker no longer holds) need no action.
                    _ => {}
                }
            }
        }
    }

    /// Drive one assigned job: step, replicate, ack-gate, honor cancels
    /// and injected faults.
    fn run_assignment(&mut self, conn: &mut FrameConn, frame: &Json) -> Flow {
        let Some(job) = frame.get("job").and_then(Json::as_str).map(str::to_string) else {
            return Flow::Continue;
        };
        let spec = match frame.get("spec") {
            None => return self.report_bad_assignment(conn, &job, "assign carries no spec"),
            Some(s) => match JobSpec::from_json(s) {
                Ok(spec) => spec,
                Err(e) => return self.report_bad_assignment(conn, &job, &e),
            },
        };
        let checkpoint = match frame.get("checkpoint") {
            None | Some(Json::Null) => None,
            Some(cp) => match matrix_checkpoint_from_json(cp) {
                Ok(cp) => Some(cp),
                Err(e) => return self.report_bad_assignment(conn, &job, &e),
            },
        };
        let matrix = match spec.to_matrix() {
            Ok(matrix) => matrix,
            Err(e) => return self.report_bad_assignment(conn, &job, &e),
        };
        let mut run = match &checkpoint {
            Some(cp) => match matrix.resume(cp) {
                Ok(run) => run,
                Err(e) => {
                    eprintln!("worker: job {job}: stale checkpoint ({e}); restarting");
                    matrix.start()
                }
            },
            None => matrix.start(),
        };

        let mut collector = EventCollector { job: job.clone(), events: Vec::new() };
        let mut cancelled = false;
        loop {
            match self.fault(&job, run.wave()) {
                FaultAction::Continue => {}
                FaultAction::Delay(d) => std::thread::sleep(d),
                FaultAction::DropConnection => return Flow::Reconnect,
                FaultAction::Die => return Flow::Exit,
            }
            // Notice cancels that arrived since the last ack.
            loop {
                match conn.try_read_frame() {
                    Ok(None) => break,
                    Ok(Some(f)) => Self::note_cancel(&f, &job, &mut cancelled),
                    Err(_) => return Flow::Reconnect,
                }
            }
            if cancelled {
                let stop = checkpoint_transfer_to_json(&job, &run.checkpoint())
                    .field("op", "cancelled");
                return match conn.send(&stop) {
                    Ok(()) => Flow::Continue,
                    Err(_) => Flow::Reconnect,
                };
            }
            let more = run.step(&mut collector);
            if !more {
                break;
            }
            // Replicate the wave and block for the coordinator's ack (the
            // spool replica stays at most one wave behind).
            let wave = run.wave();
            let transfer = checkpoint_transfer_to_json(&job, &run.checkpoint())
                .field("op", "wave")
                .field("events", Json::Arr(std::mem::take(&mut collector.events)));
            if conn.send(&transfer).is_err() {
                return Flow::Reconnect;
            }
            loop {
                let reply = match conn.read_frame() {
                    Ok(reply) => reply,
                    Err(_) => return Flow::Reconnect,
                };
                match reply.get("op").and_then(Json::as_str) {
                    Some("ack")
                        if reply.get("wave").and_then(Json::as_u64)
                            == Some(wave as u64) =>
                    {
                        break
                    }
                    Some("shutdown") => return Flow::Exit,
                    _ => Self::note_cancel(&reply, &job, &mut cancelled),
                }
            }
        }
        let report = run.finish(&mut collector);
        let done = Json::obj()
            .field("op", "done")
            .field("job", job.as_str())
            .field("events", Json::Arr(std::mem::take(&mut collector.events)))
            .field("result", job_result_json(&job, &spec, &report));
        match conn.send(&done) {
            Ok(()) => Flow::Continue,
            Err(_) => Flow::Reconnect,
        }
    }

    /// Record a cancel frame for the current job.
    fn note_cancel(frame: &Json, job: &str, cancelled: &mut bool) {
        if frame.get("op").and_then(Json::as_str) == Some("cancel")
            && frame.get("job").and_then(Json::as_str) == Some(job)
        {
            *cancelled = true;
        }
    }

    /// Consult the fault hook (production workers always continue).
    fn fault(&mut self, job: &str, wave: usize) -> FaultAction {
        match &mut self.hook {
            Some(hook) => hook(job, wave),
            None => FaultAction::Continue,
        }
    }

    /// An assignment this worker cannot run (undecodable spec — only a
    /// hand-edited spool can produce one): report it as the job's result
    /// so it fails visibly instead of bouncing between workers forever.
    fn report_bad_assignment(&self, conn: &mut FrameConn, job: &str, error: &str) -> Flow {
        let done = Json::obj()
            .field("op", "done")
            .field("job", job)
            .field("result", Json::obj().field("job", job).field("error", error));
        match conn.send(&done) {
            Ok(()) => Flow::Continue,
            Err(_) => Flow::Reconnect,
        }
    }
}
