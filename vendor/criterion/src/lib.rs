//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of criterion's API its benches use: `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and `Bencher::iter`.  Instead of
//! criterion's statistical machinery it reports the mean wall-clock time
//! per iteration over `sample_size` timed iterations (after one warm-up),
//! which is enough to compare configurations — e.g. the parallel-fuzzing
//! speedup — without external dependencies.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard black box, like `criterion::black_box`.
pub use std::hint::black_box;

/// Identifier for a parameterized benchmark (subset of
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Benchmark id rendered from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Benchmark id rendered from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Per-benchmark timing loop (subset of `criterion::Bencher`).
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`: one untimed warm-up call, then `sample_size` timed
    /// iterations whose mean the harness reports.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = self.sample_size as u64;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<50} (no measurement)");
            return;
        }
        let per_iter = self.total / self.iters as u32;
        println!("{name:<50} {:>12} /iter ({} iters)", fmt_duration(per_iter), self.iters);
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} us", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// A named group of related benchmarks (subset of
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.should_run(&full) {
            let mut b = Bencher { sample_size: self.sample_size, total: Duration::ZERO, iters: 0 };
            f(&mut b);
            b.report(&full);
        }
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (a no-op in the stub, kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Criterion {
    /// Parse harness arguments the way cargo invokes bench binaries:
    /// `--bench` selects bench mode, `--test` selects cargo-test's
    /// compile-check mode (benches are skipped), anything not starting with
    /// `-` is a name filter.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                self.test_mode = true;
            } else if !arg.starts_with('-') {
                self.filter = Some(arg);
            }
        }
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Benchmark a closure directly on the harness (no group).
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.to_string();
        if self.should_run(&full) {
            let mut b = Bencher { sample_size: 10, total: Duration::ZERO, iters: 0 };
            f(&mut b);
            b.report(&full);
        }
        self
    }

    fn should_run(&self, name: &str) -> bool {
        if self.test_mode {
            return false;
        }
        match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        }
    }
}

/// Declare a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.finish();
        // 1 warm-up + 3 timed iterations.
        assert_eq!(runs, 4);
    }

    #[test]
    fn test_mode_skips_measurement() {
        let mut c = Criterion { filter: None, test_mode: true };
        let mut ran = false;
        c.bench_function("f", |b| {
            ran = true;
            b.iter(|| ())
        });
        assert!(!ran);
    }
}
