//! # rvz-bench
//!
//! Benchmark and experiment-regeneration harness.
//!
//! Every table and figure of the paper's evaluation has a regeneration
//! target here (see `DESIGN.md` for the full index):
//!
//! | Paper artefact | Binary (`cargo run --release -p rvz-bench --bin <name>`) |
//! |---|---|
//! | Table 2 (experimental setups)          | `table2` |
//! | Table 3 (violations per target/contract) | `table3` |
//! | Table 4 (detection times)              | `table4` |
//! | Table 5 (inputs to violation, handwritten gadgets) | `table5` |
//! | §6.4 (speculative store eviction)      | `store_eviction` |
//! | §6.5 (fuzzing speed)                   | `fuzzing_speed_report` |
//! | §6.6 / Figure 6 (contract sensitivity) | `contract_sensitivity` |
//! | Figures 3 & 4 (generated / minimized test case) | `figures` |
//!
//! Criterion benches (`cargo bench -p rvz-bench`) measure the throughput of
//! the pipeline stages and the wall-clock detection time of the headline
//! vulnerabilities.
//!
//! The table binaries accept an optional budget argument (test cases per
//! cell / samples per row) so that quick smoke runs and longer, more
//! paper-like runs use the same code.

use std::time::Duration;

/// Parse the first CLI argument as a budget, with a default.
pub fn budget_from_args(default: usize) -> usize {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Render a duration as the paper does (`4m 51s` / `5.3s`).
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 60.0 {
        format!("{}m {:02.0}s", (secs / 60.0) as u64, secs % 60.0)
    } else if secs >= 1.0 {
        format!("{secs:.1}s")
    } else {
        format!("{:.0}ms", secs * 1000.0)
    }
}

/// Render a table row with fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:<w$}"))
        .collect::<Vec<_>>()
        .join(" | ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_millis(250)), "250ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(5.25)), "5.2s");
        assert_eq!(fmt_duration(Duration::from_secs(300)), "5m 00s");
    }

    #[test]
    fn row_formatting() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "a   | bb  ");
    }

    #[test]
    fn default_budget_used_without_args() {
        assert_eq!(budget_from_args(42), 42);
    }
}
