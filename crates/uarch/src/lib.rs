//! # rvz-uarch
//!
//! The **black-box CPU under test**.
//!
//! The paper measures real Intel Skylake and Coffee Lake parts through a
//! kernel-module executor.  This reproduction substitutes a deterministic
//! speculative micro-architecture simulator that contains the same leak
//! mechanisms the paper's targets contain, behind the same black-box
//! interface the executor uses (run a binary with an input, then observe the
//! cache through a side channel):
//!
//! * an L1D cache (from [`rvz_cache`]) observable via Prime+Probe etc.;
//! * a conditional-branch predictor, BTB and RSB (Spectre V1/V2/V5-ret);
//! * a store buffer with speculative store-bypass (Spectre V4) and a
//!   microcode-patch toggle (SSBD);
//! * a line-fill buffer with microcode-assist forwarding (MDS) and
//!   zero-injection on MDS-patched parts (LVI-Null);
//! * variable-latency division and a data-flow timing model, which together
//!   produce the latency races behind the paper's novel V1-var/V4-var
//!   findings (§6.3);
//! * per-CPU presets ([`UarchConfig::skylake`], [`UarchConfig::coffee_lake`])
//!   including the Coffee Lake behaviour where speculative stores already
//!   modify the cache (§6.4).
//!
//! Revizor itself never looks inside this crate's state: it only compares
//! hardware traces to hardware traces, exactly as MRT prescribes.
//!
//! # Example
//!
//! ```
//! use rvz_isa::{builder::TestCaseBuilder, Input, Reg};
//! use rvz_uarch::{CpuUnderTest, RunOptions, SpecCpu, UarchConfig};
//!
//! let tc = TestCaseBuilder::new()
//!     .block("entry", |b| {
//!         b.and_imm(Reg::Rax, 0b111111000000);
//!         b.load(Reg::Rbx, Reg::R14, Reg::Rax);
//!         b.exit();
//!     })
//!     .build();
//! let mut cpu = SpecCpu::new(UarchConfig::skylake());
//! let mut input = Input::zeroed(tc.sandbox());
//! input.set_reg(Reg::Rax, 0x80);
//! let outcome = cpu.run(&tc, &input, &RunOptions::default()).unwrap();
//! assert!(outcome.executed_instructions > 0);
//! assert!(cpu.cache_mut().is_cached(tc.sandbox().base + 0x80));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cpu;
pub mod predictors;
pub mod store_buffer;
pub mod timing;

pub use config::UarchConfig;
pub use cpu::{RunOptions, RunOutcome, SpecCpu};
pub use predictors::{
    BranchPredictor, Btb, CyclicRsb, DirectionKind, DirectionPredictor, LoopPredictor,
    PredictorConfig, ReturnKind, ReturnPredictor, Rsb, SetAssocBtb, Tage, TargetKind,
    TargetPredictor,
};
pub use store_buffer::{StoreBuffer, StoreBufferEntry};
pub use timing::Timing;

use rvz_cache::Cache;
use rvz_emu::Fault;
use rvz_isa::{DecodedProgram, Input, TestCase};

/// The black-box interface of a CPU under test, as seen by the executor.
///
/// Microarchitectural state (cache, predictors, buffers) persists across
/// [`CpuUnderTest::run`] calls until [`CpuUnderTest::reset_uarch`] is called;
/// this persistence is exactly what the executor's *priming* technique
/// exploits to set the context deterministically (§5.3).
pub trait CpuUnderTest {
    /// Human-readable name of the part, e.g. `"Skylake (V4 patch off)"`.
    fn name(&self) -> String;

    /// Execute the test case with the given input in the current
    /// microarchitectural context.
    ///
    /// # Errors
    /// Returns a [`Fault`] if the program faults architecturally; generated
    /// test cases never do.
    fn run(&mut self, tc: &TestCase, input: &Input, opts: &RunOptions) -> Result<RunOutcome, Fault>;

    /// Execute a pre-decoded program in the current microarchitectural
    /// context.  The executor decodes each test case once and reuses the
    /// program across warm-up, repetitions and inputs; implementations that
    /// step the decoded representation directly (like [`SpecCpu`]) override
    /// this to skip the per-run AST walk.
    ///
    /// # Errors
    /// Same as [`CpuUnderTest::run`].
    fn run_decoded(
        &mut self,
        prog: &DecodedProgram,
        input: &Input,
        opts: &RunOptions,
    ) -> Result<RunOutcome, Fault> {
        self.run(prog.source(), input, opts)
    }

    /// The L1D cache, which the executor's side channel primes and probes.
    fn cache_mut(&mut self) -> &mut Cache;

    /// Reset every microarchitectural structure to power-on state.
    fn reset_uarch(&mut self);
}
