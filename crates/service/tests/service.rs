//! Integration tests for the campaign service: determinism of served
//! verdicts against in-process runs, kill + resume through the spool, and
//! client isolation.

use rvz_bench::json::Json;
use rvz_bench::report::matrix_cells_json;
use rvz_service::{
    deterministic_result, Client, JobSpec, ServiceConfig, ServiceHandle, Spool,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rvz-service-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small Table-3 slice: Target 5 against three contracts (V1 violates
/// CT-SEQ and CT-BPAS within this budget; CT-COND runs to exhaustion).
fn slice_spec(seed: u64) -> JobSpec {
    JobSpec::new(seed)
        .with_budget(40)
        .add_cell(5, "CT-SEQ")
        .add_cell(5, "CT-BPAS")
        .add_cell(5, "CT-COND")
}

#[test]
fn served_job_is_byte_identical_to_an_in_process_matrix_run() {
    let handle = ServiceHandle::start(ServiceConfig {
        shards: 2,
        spool: None,
        checkpoint_every: 1,
        listen: Some("127.0.0.1:0".to_string()),
    })
    .expect("service starts");
    let addr = handle.local_addr().expect("TCP front-end attached");

    let spec = slice_spec(7);
    let mut client = Client::connect(addr).expect("client connects");
    let job = client.submit(&spec).expect("job accepted");

    let mut rounds = 0usize;
    let mut cells = 0usize;
    let result = client
        .watch(&job, |event| match event.get("event").and_then(Json::as_str) {
            Some("round") => rounds += 1,
            Some("cell") => cells += 1,
            _ => {}
        })
        .expect("job completes");
    assert!(rounds >= 2, "budget 40 / round 10 must stream several round events");
    assert_eq!(cells, 3, "every cell reports exactly one cell event");

    // Acceptance criterion: the served result's deterministic section is
    // byte-identical to an in-process CampaignMatrix::run of the same seed
    // — same cells, verdicts, unit seeds, test-case counts, down to the
    // full violation reports.
    let baseline = spec.to_matrix().expect("spec resolves").run();
    assert_eq!(
        result.get("cells").expect("result has cells").render(),
        matrix_cells_json(&baseline).render(),
    );
    assert_eq!(
        result.get("measured_test_cases").and_then(Json::as_u64),
        Some(baseline.test_cases as u64)
    );

    // Submitting the identical spec again yields the identical
    // deterministic payload (fresh job id and timing differ).
    let job2 = client.submit(&spec).expect("second submission accepted");
    assert_ne!(job, job2);
    let result2 = client.watch(&job2, |_| {}).expect("second job completes");
    assert_eq!(
        deterministic_result(&result).render(),
        deterministic_result(&result2).render()
    );

    handle.shutdown();
}

#[test]
fn killed_server_resumes_from_the_spool_byte_identically() {
    let dir = scratch_dir("resume");
    // Target 1 never violates CT-SEQ, so its group consumes the whole
    // budget (many waves) — plenty of room to kill the server mid-job.
    // Target 5 contributes a violation so the resumed result also carries a
    // full ViolationReport.
    let spec = JobSpec::new(7)
        .with_budget(200)
        .add_cell(1, "CT-SEQ")
        .add_cell(5, "CT-SEQ")
        .add_cell(5, "CT-BPAS");
    let config = |listen: Option<String>| ServiceConfig {
        shards: 1,
        spool: Some(dir.clone()),
        checkpoint_every: 1,
        listen,
    };

    // First server: submit, let it make progress, then kill it mid-job.
    let first = ServiceHandle::start(config(None)).expect("first server starts");
    let job = first.submit(spec.clone()).expect("job accepted");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let rounds = first
            .core()
            .events_from(&job, 0)
            .expect("job known")
            .iter()
            .filter(|e| e.get("event").and_then(Json::as_str) == Some("round"))
            .count();
        if rounds >= 2 {
            break;
        }
        assert!(Instant::now() < deadline, "job made no progress");
        std::thread::sleep(Duration::from_millis(5));
    }
    first.shutdown(); // stops at the next wave boundary, like a kill

    // The spool must hold the interrupted job with a mid-stream checkpoint.
    let records = Spool::open(&dir).expect("spool opens").load_all();
    assert_eq!(records.len(), 1);
    let record = &records[0];
    assert_eq!(record.job, job);
    assert!(record.result.is_none(), "the job must not have finished before the kill");
    let checkpoint = record.checkpoint.as_ref().expect("checkpoint persisted");
    let progressed: usize = checkpoint.groups.iter().map(|g| g.next_index).sum();
    assert!(progressed > 0, "checkpoint must carry real progress");
    assert!(
        checkpoint.groups.iter().any(|g| g.next_index < 200),
        "the kill must land mid-stream"
    );

    // Second server over the same spool: the job resumes automatically and
    // completes with byte-identical verdicts.
    let second = ServiceHandle::start(config(None)).expect("second server starts");
    let result = second.wait(&job).expect("resumed job completes");
    second.shutdown();

    let baseline = spec.to_matrix().expect("spec resolves").run();
    assert_eq!(
        result.get("cells").expect("result has cells").render(),
        matrix_cells_json(&baseline).render(),
        "kill + resume must not change a single byte of the verdict section"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_do_not_perturb_each_others_verdicts() {
    let handle = ServiceHandle::start(ServiceConfig {
        shards: 2,
        spool: None,
        checkpoint_every: 1,
        listen: Some("127.0.0.1:0".to_string()),
    })
    .expect("service starts");
    let addr = handle.local_addr().expect("TCP front-end attached");

    // Two clients, two different jobs, submitted before either result is
    // read so the campaigns overlap in the service.
    let spec_a = slice_spec(7);
    let spec_b = JobSpec::new(19).with_budget(40).add_cell(5, "CT-SEQ").add_cell(1, "CT-SEQ");
    let mut client_a = Client::connect(addr).expect("client A connects");
    let mut client_b = Client::connect(addr).expect("client B connects");
    let job_a = client_a.submit(&spec_a).expect("job A accepted");
    let job_b = client_b.submit(&spec_b).expect("job B accepted");

    let watcher = {
        let spec = spec_b.clone();
        std::thread::spawn(move || {
            let result = client_b.watch(&job_b, |_| {}).expect("job B completes");
            (spec, result)
        })
    };
    let result_a = client_a.watch(&job_a, |_| {}).expect("job A completes");
    let (spec_b, result_b) = watcher.join().expect("watcher thread");

    for (spec, result) in [(&spec_a, &result_a), (&spec_b, &result_b)] {
        let baseline = spec.to_matrix().expect("spec resolves").run();
        assert_eq!(
            result.get("cells").expect("result has cells").render(),
            matrix_cells_json(&baseline).render(),
            "a concurrent neighbor job must not perturb verdicts"
        );
    }

    handle.shutdown();
}

#[test]
fn restart_preserves_results_and_never_reuses_job_ids() {
    let dir = scratch_dir("restart-ids");
    let config = || ServiceConfig {
        shards: 1,
        spool: Some(dir.clone()),
        checkpoint_every: 1,
        listen: None,
    };
    let spec = JobSpec::new(3).with_budget(4).add_cell(1, "CT-SEQ");

    let first = ServiceHandle::start(config()).expect("first server starts");
    let job1 = first.submit(spec.clone()).expect("job accepted");
    let result1 = first.wait(&job1).expect("job completes");
    first.shutdown();

    let second = ServiceHandle::start(config()).expect("second server starts");
    // The restored done job still answers with its result, and its event
    // log terminates a watch (the `done` event is reconstructed).
    assert_eq!(
        second.core().result(&job1).expect("job known").map(|r| deterministic_result(&r).render()),
        Some(deterministic_result(&result1).render())
    );
    let events = second.core().events_from(&job1, 0).expect("job known");
    assert!(
        events.iter().any(|e| e.get("event").and_then(Json::as_str) == Some("done")),
        "restored job must carry a terminating done event"
    );
    // Resubmitting the identical spec must mint a fresh id (the old
    // counter collided here before) — and must not clobber job1's result.
    let job2 = second.submit(spec).expect("resubmission accepted");
    assert_ne!(job1, job2, "job ids must never be reused across restarts");
    let result2 = second.wait(&job2).expect("resubmitted job completes");
    assert_eq!(
        deterministic_result(&result1).render(),
        deterministic_result(&result2).render()
    );
    assert!(second.core().result(&job1).expect("job1 still known").is_some());
    second.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let handle = ServiceHandle::start(ServiceConfig {
        shards: 1,
        spool: None,
        checkpoint_every: 1,
        listen: Some("127.0.0.1:0".to_string()),
    })
    .expect("service starts");
    let addr = handle.local_addr().expect("TCP front-end attached");
    let mut client = Client::connect(addr).expect("client connects");

    // Unknown op, unknown job, invalid spec: each comes back as an error
    // response on a connection that stays usable.
    assert!(client.request(&Json::obj().field("op", "frobnicate")).is_err());
    assert!(client.status("j-nope").is_err());
    let err = client
        .submit(&JobSpec::new(1).add_cell(42, "CT-SEQ"))
        .expect_err("invalid spec rejected");
    assert!(err.contains("unknown target"), "{err}");
    let pong = client.request(&Json::obj().field("op", "ping")).expect("still usable");
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

    handle.shutdown();
}
