//! # rvz-analyzer
//!
//! Relational analysis (§4, §5.5): partition inputs into classes by
//! contract-trace equality, then require that hardware traces agree within
//! every class.  A class with diverging hardware traces is a contract
//! counterexample.
//!
//! Hardware traces are compared with the subset relation rather than strict
//! equality, because the executor merges traces collected in different
//! microarchitectural contexts: a missing speculative path produces a strict
//! subset, whereas a secret-dependent access produces incomparable traces
//! (§5.5).
//!
//! # Example
//!
//! ```
//! use rvz_analyzer::Analyzer;
//! use rvz_cache::SetVector;
//! use rvz_executor::HTrace;
//! use rvz_model::{CTrace, Observation};
//!
//! let ct = |a: u64| CTrace::new(vec![Observation::MemAddr(a)]);
//! let ht = |sets: &[usize]| HTrace::from_sets(SetVector::from_sets(sets.iter().copied()));
//!
//! // Two inputs with the same contract trace but different hardware traces:
//! // a counterexample.
//! let ctraces = vec![ct(0x100), ct(0x100), ct(0x200)];
//! let htraces = vec![ht(&[4]), ht(&[9]), ht(&[8])];
//! let result = Analyzer::new().check(&ctraces, &htraces);
//! assert!(result.has_violation());
//! let v = &result.violations[0];
//! assert_eq!((v.input_a, v.input_b), (0, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;

pub use analysis::{AnalysisResult, Analyzer, EffectivenessStats, InputClass, Violation};
