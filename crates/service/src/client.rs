//! A small blocking client for the JSON-lines protocol, used by
//! `revizor-submit` and the integration tests.

use crate::job::JobSpec;
use rvz_bench::json::{parse, Json};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a backpressure-aware [`Client::try_submit`] did not queue a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The fleet's unit queue is at its watermark; the server asks the
    /// client to retry after the hint instead of queueing unbounded work.
    Backpressure {
        /// The server's suggested wait before retrying.
        retry_after: Duration,
    },
    /// Any other rejection: invalid spec, transport failure, protocol
    /// error.
    Rejected(String),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Backpressure { retry_after } => {
                write!(f, "server backpressured the submission; retry in {retry_after:.1?}")
            }
            SubmitError::Rejected(message) => f.write_str(message),
        }
    }
}

/// How a [`Client::watch`] ended without a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchError {
    /// The connection died mid-watch.  This is **not** a job failure: the
    /// server spools jobs durably, so the job resumes (with byte-identical
    /// verdicts) once a server restarts over the same spool — reconnect
    /// and `watch`/`result` the same job id again.
    ServerGone {
        /// The job that was being watched.
        job: String,
    },
    /// Any other failure: protocol errors, server-reported errors, or a
    /// failure before the watch subscription was established.
    Other(String),
}

impl fmt::Display for WatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatchError::ServerGone { job } => write!(
                f,
                "server gone mid-watch; job {job} is spooled and resumes on the next \
                 server start — query it again with `result` or `watch`"
            ),
            WatchError::Other(message) => f.write_str(message),
        }
    }
}

/// A connected client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    token: Option<String>,
}

/// Why a response line could not be read (internal; callers fold this
/// into their own error types).
enum ReadError {
    /// The connection is dead (EOF or a transport error).
    Gone(String),
    /// The connection delivered a line that is not valid JSON.
    Malformed(String),
}

impl ReadError {
    fn message(self) -> String {
        match self {
            ReadError::Gone(m) | ReadError::Malformed(m) => m,
        }
    }
}

impl Client {
    /// Connect to a running `revizor-serve`.
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader, token: None })
    }

    /// Builder: authenticate every request with `token` (required by
    /// servers running with `--token-file`; harmless on open servers).
    pub fn with_token(mut self, token: &str) -> Client {
        self.token = Some(token.to_string());
        self
    }

    /// A request skeleton for `op`, carrying the client token when set.
    fn op(&self, op: &str) -> Json {
        let request = Json::obj().field("op", op);
        match &self.token {
            Some(token) => request.field("token", token.as_str()),
            None => request,
        }
    }

    fn read_line(&mut self) -> Result<Json, ReadError> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| ReadError::Gone(e.to_string()))?;
        if n == 0 {
            return Err(ReadError::Gone("server closed the connection".to_string()));
        }
        if !line.ends_with('\n') {
            // EOF mid-line: the server died after a partial write — that
            // is a dead connection, not a malformed frame.
            return Err(ReadError::Gone("server closed the connection mid-line".to_string()));
        }
        parse(line.trim_end()).map_err(ReadError::Malformed)
    }

    /// Send one request line and read one response line, transport-level
    /// only: `ok: false` responses come back as `Ok` documents for the
    /// caller to interpret (used where the error shape carries structured
    /// fields, e.g. backpressure hints).
    fn request_raw(&mut self, request: &Json) -> Result<Json, String> {
        let mut line = request.render();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).map_err(|e| e.to_string())?;
        self.read_line().map_err(ReadError::message)
    }

    /// Send one request line and read one response line.
    ///
    /// # Errors
    /// Returns transport errors or the server's `error` field.
    pub fn request(&mut self, request: &Json) -> Result<Json, String> {
        let response = self.request_raw(request)?;
        if response.get("ok").and_then(Json::as_bool) == Some(false) {
            let message = response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown server error");
            return Err(message.to_string());
        }
        Ok(response)
    }

    /// Submit a job; returns its id.
    ///
    /// # Errors
    /// Propagates transport/validation errors.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<String, String> {
        let response = self.request(&self.op("submit").field("spec", spec.to_json()))?;
        response
            .get("job")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or("submit response carried no job id".to_string())
    }

    /// Submit a job, surfacing server backpressure as a typed variant:
    /// when the fleet's unit queue is at its watermark the server defers
    /// the submission with a retry-after hint instead of queueing it —
    /// wait that long and call again.
    ///
    /// # Errors
    /// [`SubmitError::Backpressure`] with the server's retry hint, or
    /// [`SubmitError::Rejected`] for anything else.
    pub fn try_submit(&mut self, spec: &JobSpec) -> Result<String, SubmitError> {
        let request = self.op("submit").field("spec", spec.to_json());
        let response = self.request_raw(&request).map_err(SubmitError::Rejected)?;
        if response.get("ok").and_then(Json::as_bool) == Some(false) {
            if let Some(retry_ms) = response.get("retry_after_ms").and_then(Json::as_u64) {
                return Err(SubmitError::Backpressure {
                    retry_after: Duration::from_millis(retry_ms),
                });
            }
            let message = response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown server error");
            return Err(SubmitError::Rejected(message.to_string()));
        }
        response
            .get("job")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or(SubmitError::Rejected("submit response carried no job id".to_string()))
    }

    /// Fetch a job's status summary.
    ///
    /// # Errors
    /// Propagates transport errors and unknown-job errors.
    pub fn status(&mut self, job: &str) -> Result<Json, String> {
        let response = self.request(&self.op("status").field("job", job))?;
        response.get("status").cloned().ok_or("status response carried no status".to_string())
    }

    /// Fetch a finished job's result payload (`None` while it runs).
    ///
    /// # Errors
    /// Propagates transport errors and unknown-job errors.
    pub fn result(&mut self, job: &str) -> Result<Option<Json>, String> {
        let response = self.request(&self.op("result").field("job", job))?;
        match response.get("done").and_then(Json::as_bool) {
            Some(true) => Ok(response.get("result").cloned()),
            _ => Ok(None),
        }
    }

    /// Request a job's cancellation.  Returns the server's `state`:
    /// `"cancelled"` (was queued, terminally cancelled) or `"cancelling"`
    /// (running; it stops at its next wave boundary and then publishes a
    /// `done` event with `"cancelled": true`).
    ///
    /// # Errors
    /// Propagates transport errors, unknown-job and already-finished
    /// errors.
    pub fn cancel(&mut self, job: &str) -> Result<String, String> {
        let response = self.request(&self.op("cancel").field("job", job))?;
        response
            .get("state")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or("cancel response carried no state".to_string())
    }

    /// Subscribe to a job's event stream and block until its `done` event;
    /// every streamed event (including `done`) is passed to `on_event`.
    /// Returns the result payload.
    ///
    /// # Errors
    /// [`WatchError::ServerGone`] when the connection dies mid-stream (the
    /// job itself survives in the server's spool); [`WatchError::Other`]
    /// for anything else.
    pub fn watch(
        &mut self,
        job: &str,
        mut on_event: impl FnMut(&Json),
    ) -> Result<Json, WatchError> {
        self.request(&self.op("watch").field("job", job))
            .map_err(WatchError::Other)?;
        loop {
            // Once the subscription is live, a dead connection means the
            // server went away — report it distinctly: the job is spooled
            // server-side, not lost.  A malformed frame on a *live*
            // connection is a protocol failure, not a gone server.
            let event = self.read_line().map_err(|e| match e {
                ReadError::Gone(_) => WatchError::ServerGone { job: job.to_string() },
                ReadError::Malformed(m) => WatchError::Other(format!("malformed event: {m}")),
            })?;
            on_event(&event);
            if event.get("event").and_then(Json::as_str) == Some("done") {
                return event
                    .get("result")
                    .cloned()
                    .ok_or(WatchError::Other("done event carried no result".to_string()));
            }
        }
    }
}
