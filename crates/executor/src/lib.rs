//! # rvz-executor
//!
//! Hardware-trace collection on the CPU under test (the *Executor* of MRT,
//! §5.3).
//!
//! The executor has three tasks:
//!
//! 1. **Collect hardware traces** by running each test case with each input
//!    and observing the cache through a side channel (Prime+Probe,
//!    Flush+Reload or Evict+Reload, optionally with microcode assists);
//! 2. **Set the microarchitectural context** through *priming*: inputs are
//!    executed in sequence so that earlier inputs deterministically train
//!    the predictors for later ones, and suspected violations are re-checked
//!    by swapping the two diverging inputs in the priming sequence;
//! 3. **Eliminate measurement noise** by warming up, repeating every
//!    measurement, discarding one-off traces and merging the rest by union.
//!
//! The real tool does this in a kernel module on bare metal; here the CPU is
//! the [`rvz_uarch`] simulator, and an optional noise model injects the same
//! kinds of disturbances (one-off outliers, SMI-polluted samples) so the
//! filtering machinery is exercised.
//!
//! Measurements run inside a reusable session: the side channel (with its
//! precomputed attacker/victim address lists) and the per-input sample
//! buffers live across repetitions, inputs, and test cases, and
//! [`Executor::collect_htraces_batch`] measures a whole slate of test cases
//! through one session.  The §5.3 priming-swap check
//! ([`Executor::is_measurement_artifact`]) takes the already-collected
//! baseline traces, so it re-measures only the two swapped sequences.
//!
//! # Example
//!
//! ```
//! use rvz_executor::{Executor, ExecutorConfig, MeasurementMode};
//! use rvz_isa::{builder::TestCaseBuilder, Input, Reg};
//! use rvz_uarch::{SpecCpu, UarchConfig};
//!
//! let tc = TestCaseBuilder::new()
//!     .block("entry", |b| {
//!         b.and_imm(Reg::Rax, 0b111111000000);
//!         b.load(Reg::Rbx, Reg::R14, Reg::Rax);
//!         b.exit();
//!     })
//!     .build();
//! let cpu = SpecCpu::new(UarchConfig::skylake());
//! let mut executor = Executor::new(cpu, ExecutorConfig::fast(MeasurementMode::prime_probe()));
//! let mut a = Input::zeroed(tc.sandbox());
//! a.set_reg(Reg::Rax, 0x80);
//! let mut b = Input::zeroed(tc.sandbox());
//! b.set_reg(Reg::Rax, 0x440);
//! let traces = executor.collect_htraces(&tc, &[a, b]).unwrap();
//! assert_ne!(traces[0], traces[1]); // different lines touched
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod htrace;
pub mod mode;

pub use executor::{Executor, ExecutorConfig, NoiseCheckpoint};
pub use htrace::HTrace;
pub use mode::{MeasurementMode, NoiseConfig, SideChannelKind};
