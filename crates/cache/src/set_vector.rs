//! Bit vectors over cache sets — the hardware-trace alphabet.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A vector of up to 64 cache sets, one bit per set.
///
/// This is exactly the paper's hardware-trace representation for the L1D
/// Prime+Probe mode: "a sequence of bits, each representing whether a
/// specific cache set was accessed by the test case or not" (§5.3), printed
/// most-significant set first, e.g. `10001100...` for sets 0, 4 and 5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SetVector(u64);

impl SetVector {
    /// Number of sets representable.
    pub const SETS: usize = 64;

    /// Empty vector.
    pub const EMPTY: SetVector = SetVector(0);

    /// Construct from a raw bit mask (bit *i* = set *i*).
    pub fn from_bits(bits: u64) -> SetVector {
        SetVector(bits)
    }

    /// Raw bit mask.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Construct from an iterator of set indices.
    ///
    /// # Panics
    /// Panics if a set index is `>= 64`.
    pub fn from_sets<I: IntoIterator<Item = usize>>(sets: I) -> SetVector {
        let mut v = SetVector::EMPTY;
        for s in sets {
            v.insert(s);
        }
        v
    }

    /// Mark a set as observed.
    ///
    /// # Panics
    /// Panics if `set >= 64`.
    pub fn insert(&mut self, set: usize) {
        assert!(set < Self::SETS, "set index {set} out of range");
        self.0 |= 1 << set;
    }

    /// Is the set marked?
    pub fn contains(self, set: usize) -> bool {
        set < Self::SETS && self.0 & (1 << set) != 0
    }

    /// Number of marked sets.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Is the vector empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Union of two vectors (used when merging traces from repeated
    /// measurements, §5.3 "we then take the union of all traces").
    pub fn union(self, other: SetVector) -> SetVector {
        SetVector(self.0 | other.0)
    }

    /// Intersection.
    pub fn intersection(self, other: SetVector) -> SetVector {
        SetVector(self.0 & other.0)
    }

    /// Sets present in `self` but not in `other`.
    pub fn difference(self, other: SetVector) -> SetVector {
        SetVector(self.0 & !other.0)
    }

    /// Is `self` a subset of `other`?  The analyzer's trace-equivalence
    /// check uses the subset relation rather than equality (§5.5).
    pub fn is_subset_of(self, other: SetVector) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterate over marked set indices in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..Self::SETS).filter(move |&s| self.contains(s))
    }
}

impl fmt::Display for SetVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for set in 0..Self::SETS {
            write!(f, "{}", if self.contains(set) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl std::ops::BitOr for SetVector {
    type Output = SetVector;
    fn bitor(self, rhs: SetVector) -> SetVector {
        self.union(rhs)
    }
}

impl std::ops::BitAnd for SetVector {
    type Output = SetVector;
    fn bitand(self, rhs: SetVector) -> SetVector {
        self.intersection(rhs)
    }
}

impl FromIterator<usize> for SetVector {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> SetVector {
        SetVector::from_sets(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut v = SetVector::EMPTY;
        assert!(v.is_empty());
        v.insert(0);
        v.insert(4);
        v.insert(5);
        assert!(v.contains(0) && v.contains(4) && v.contains(5));
        assert!(!v.contains(1));
        assert_eq!(v.count(), 3);
    }

    #[test]
    fn display_matches_paper_format() {
        let v = SetVector::from_sets([0, 4, 5]);
        let s = format!("{v}");
        assert_eq!(s.len(), 64);
        assert_eq!(&s[..8], "10001100");
        assert!(s[8..].chars().all(|c| c == '0'));
    }

    #[test]
    fn union_intersection_difference() {
        let a = SetVector::from_sets([1, 2, 3]);
        let b = SetVector::from_sets([3, 4]);
        assert_eq!(a.union(b), SetVector::from_sets([1, 2, 3, 4]));
        assert_eq!(a.intersection(b), SetVector::from_sets([3]));
        assert_eq!(a.difference(b), SetVector::from_sets([1, 2]));
        assert_eq!(a | b, a.union(b));
        assert_eq!(a & b, a.intersection(b));
    }

    #[test]
    fn subset_relation() {
        let small = SetVector::from_sets([2, 7]);
        let big = SetVector::from_sets([2, 7, 9]);
        assert!(small.is_subset_of(big));
        assert!(!big.is_subset_of(small));
        assert!(small.is_subset_of(small));
        assert!(SetVector::EMPTY.is_subset_of(small));
    }

    #[test]
    fn iter_ascending() {
        let v = SetVector::from_sets([9, 3, 63]);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![3, 9, 63]);
    }

    #[test]
    fn collect_from_iterator() {
        let v: SetVector = [1usize, 1, 2].into_iter().collect();
        assert_eq!(v.count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut v = SetVector::EMPTY;
        v.insert(64);
    }

    #[test]
    fn from_bits_roundtrip() {
        let v = SetVector::from_bits(0b1010);
        assert_eq!(v.bits(), 0b1010);
        assert!(v.contains(1) && v.contains(3));
    }
}
