//! Contract sensitivity (§6.6, Figure 6): CT-SEQ vs ARCH-SEQ.
//!
//! ARCH-SEQ permits exposure of non-speculatively loaded values, so it can
//! be used to test STT-like defences: it is violated by the classic V1
//! gadget (speculative load + use) but not by a gadget that only leaks a
//! non-speculatively loaded value.
//!
//! Run with: `cargo run --release --example contract_sensitivity`

use revizor_suite::prelude::*;

fn main() {
    let target = Target::target5();
    let cases = [
        ("Figure 6a: non-speculative load, speculative use", gadgets::arch_seq_insensitive()),
        ("Figure 6b: classic V1 (speculative load + use)", gadgets::arch_seq_sensitive()),
    ];

    for (name, gadget) in &cases {
        println!("=== {name} ===");
        println!("{}", gadget.to_asm());
        for contract in [Contract::ct_seq(), Contract::arch_seq()] {
            let mut verdict = "complies (no violation within 150 inputs)".to_string();
            for seed in 0..5u64 {
                if let Some(n) = detection::inputs_to_violation(
                    &target,
                    contract.clone(),
                    gadget,
                    seed * 31 + 7,
                    150,
                ) {
                    verdict = format!("VIOLATED after {n} random inputs");
                    break;
                }
            }
            println!("  {:9} -> {verdict}", contract.name());
        }
        println!();
    }
    println!("Expected: both violate CT-SEQ; only Figure 6b violates ARCH-SEQ.");
}
