//! Deterministic fault-injection harness for the elastic-fleet campaign
//! service.
//!
//! A [`FaultPlan`] is a seeded schedule of worker faults — kills,
//! connection drops and delays — keyed by `(worker, job, wave)` and
//! injected through the worker loop's test-only hook
//! ([`Worker::with_fault_hook`]).  Each plan runs a coordinator plus a
//! small worker fleet over loopback TCP and lets the scheduled faults
//! fire: workers die mid-unit, partitions drop replication connections,
//! slow hosts stall between waves, the coordinator steals leases from
//! stalled owners.  The harness then asserts the service's **one**
//! externally visible contract: the final `result.cells` section is
//! byte-identical to an in-process [`CampaignMatrix::run`] of the same
//! spec, for *every* plan in the sweep.  Directed tests below cover the
//! named races one by one: steal racing a kill, a stale owner double-
//! driving a stolen lease, and a worker departing between its lease and
//! its first checkpoint.
//!
//! Why this is sound to assert at all: unit seeds derive from
//! `(matrix seed, target id, index)` alone, and the coordinator replicates
//! a checkpoint after every wave, so any re-lease resumes the identical
//! stream suffix from *some* replicated wave boundary — which produces
//! identical verdicts no matter where the fault landed — and lease
//! tokens fence every frame a deposed owner might still send.
//!
//! [`CampaignMatrix::run`]: revizor::orchestrator::CampaignMatrix

use rvz_bench::report::matrix_cells_json;
use rvz_service::{
    FaultAction, JobSpec, ServiceConfig, ServiceHandle, Worker, WorkerConfig,
};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rvz-chaos-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// splitmix64: the plan's deterministic randomness.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// A seeded schedule of faults keyed by `(worker index, job index, wave)`.
///
/// The schedule is a pure function of its seed, so every sweep failure is
/// reproducible by seed alone.  Disruptive actions (drop / die) fire **at
/// most once per key**: a reassigned job revisiting the same wave on the
/// same worker must not re-trip the same partition forever (faults model
/// events in time, not curses on wave numbers).
#[derive(Debug, Clone)]
struct FaultPlan {
    seed: u64,
    /// Wave horizon: waves beyond this never fault.
    horizon: usize,
}

impl FaultPlan {
    fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, horizon: 12 }
    }

    /// The action scheduled for `(worker, job, wave)`.
    fn action(&self, worker: usize, job: usize, wave: usize) -> FaultAction {
        if wave >= self.horizon {
            return FaultAction::Continue;
        }
        let roll = mix(
            self.seed ^ (worker as u64) << 40 ^ (job as u64) << 20 ^ wave as u64,
        ) % 100;
        match roll {
            // ~8%: the worker host dies (kill -9).
            0..=7 => FaultAction::Die,
            // ~10%: a network partition drops the coordinator connection.
            8..=17 => FaultAction::DropConnection,
            // ~12%: a slow host stalls between waves (ack-gated, so this
            // is what a delayed checkpoint ack looks like end to end).
            18..=29 => FaultAction::Delay(Duration::from_millis(1 + roll % 5)),
            _ => FaultAction::Continue,
        }
    }
}

/// Shared job-id → submission-index registry: fault keys use submission
/// indices (stable across runs), while the hook sees server-minted ids.
type JobIndex = Arc<Mutex<HashMap<String, usize>>>;

/// Spawn one worker host whose hook executes `plan` for `worker_idx`.
/// Returns the thread handle; the worker exits when the coordinator does.
fn spawn_faulty_worker(
    addr: String,
    worker_idx: usize,
    plan: FaultPlan,
    jobs: JobIndex,
) -> std::thread::JoinHandle<()> {
    let mut config = WorkerConfig::new(addr);
    config.name = format!("chaos-w{worker_idx}");
    config.retry_for = Duration::from_secs(3);
    let mut consumed: HashSet<(usize, usize)> = HashSet::new();
    let hook = Box::new(move |job: &str, wave: usize| -> FaultAction {
        // The submission index lands in the registry right after submit —
        // before the job can reach a worker — but spin briefly anyway.
        let deadline = Instant::now() + Duration::from_secs(1);
        let job_idx = loop {
            if let Some(idx) = jobs.lock().unwrap().get(job) {
                break *idx;
            }
            if Instant::now() >= deadline {
                return FaultAction::Continue;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        match plan.action(worker_idx, job_idx, wave) {
            FaultAction::Continue => FaultAction::Continue,
            delay @ FaultAction::Delay(_) => delay,
            disruptive => {
                // Once per key (see the FaultPlan docs).
                if consumed.insert((job_idx, wave)) {
                    disruptive
                } else {
                    FaultAction::Continue
                }
            }
        }
    });
    std::thread::spawn(move || {
        let _ = Worker::new(config).with_fault_hook(hook).run();
    })
}

/// The two jobs every plan serves, and their in-process baselines.  The
/// second job mixes a predictor-zoo cell (target 9: TAGE direction
/// predictor) into the sweep, so kill/steal/resume must reproduce
/// byte-identical verdicts for non-default predictor configurations too.
fn sweep_specs() -> Vec<JobSpec> {
    vec![
        JobSpec::new(7)
            .with_budget(40)
            .add_cell(5, "CT-SEQ")
            .add_cell(5, "CT-BPAS")
            .add_cell(5, "CT-COND"),
        JobSpec::new(19)
            .with_budget(30)
            .add_cell(5, "CT-SEQ")
            .add_cell(1, "CT-SEQ")
            .add_cell(9, "CT-SEQ"),
    ]
}

/// Serve `specs` under `plan` and return each job's final `cells` section.
fn serve_under_plan(plan: &FaultPlan, specs: &[JobSpec]) -> Vec<String> {
    let dir = scratch_dir(&format!("plan-{}", plan.seed));
    let handle = ServiceHandle::start(ServiceConfig {
        shards: 1,
        spool: Some(dir.clone()),
        checkpoint_every: 1,
        listen: None,
        worker_listen: Some("127.0.0.1:0".to_string()),
        ..ServiceConfig::default()
    })
    .expect("coordinator starts");
    let addr = handle.worker_addr().expect("worker port bound").to_string();

    let jobs: JobIndex = Arc::new(Mutex::new(HashMap::new()));
    // Worker 0 is immortal (the plan never faults it), so the fleet always
    // retains capacity; workers 1 and 2 fault per plan.
    let immortal = {
        let mut config = WorkerConfig::new(addr.clone());
        config.name = "chaos-w0".to_string();
        config.retry_for = Duration::from_secs(3);
        std::thread::spawn(move || {
            let _ = Worker::new(config).run();
        })
    };
    let faulty: Vec<_> = (1..3)
        .map(|i| spawn_faulty_worker(addr.clone(), i, plan.clone(), Arc::clone(&jobs)))
        .collect();

    let mut ids = Vec::new();
    for (idx, spec) in specs.iter().enumerate() {
        let job = handle.submit(spec.clone()).expect("job accepted");
        jobs.lock().unwrap().insert(job.clone(), idx);
        ids.push(job);
    }
    let cells: Vec<String> = ids
        .iter()
        .map(|job| {
            let result = handle.wait(job).expect("job completes despite faults");
            result.get("cells").expect("result has cells").render()
        })
        .collect();
    handle.shutdown();
    let _ = immortal.join();
    for worker in faulty {
        let _ = worker.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
    cells
}

/// A mixed-format fleet — one binary worker, one `force_json` worker
/// (the `revizor-worker --wire-format=json` compatibility path), with a
/// fault plan killing and delaying across both — still produces verdict
/// sections byte-identical to in-process runs.  The wire encoding and
/// the fault interleaving are transport concerns; neither may leak into
/// a single verdict byte.
#[test]
fn mixed_format_fleet_keeps_verdicts_byte_identical() {
    let specs = sweep_specs();
    let baselines: Vec<String> = specs
        .iter()
        .map(|spec| matrix_cells_json(&spec.to_matrix().expect("spec resolves").run()).render())
        .collect();

    let dir = scratch_dir("mixed-format");
    let handle = ServiceHandle::start(ServiceConfig {
        shards: 1,
        spool: Some(dir.clone()),
        checkpoint_every: 1,
        listen: None,
        worker_listen: Some("127.0.0.1:0".to_string()),
        ..ServiceConfig::default()
    })
    .expect("coordinator starts");
    let addr = handle.worker_addr().expect("worker port bound").to_string();

    let jobs: JobIndex = Arc::new(Mutex::new(HashMap::new()));
    // Worker 0: immortal, binary frames (the negotiated default).
    let immortal = {
        let mut config = WorkerConfig::new(addr.clone());
        config.name = "mixed-w0".to_string();
        config.retry_for = Duration::from_secs(3);
        std::thread::spawn(move || {
            let _ = Worker::new(config).run();
        })
    };
    // Worker 1: an old JSON-only host under a fault plan — it registers
    // without binary support, faults mid-job, and rejoins speaking JSON
    // while its peers stream binary.
    let json_worker = {
        let mut config = WorkerConfig::new(addr.clone());
        config.name = "mixed-w1-json".to_string();
        config.retry_for = Duration::from_secs(3);
        config.force_json = true;
        let plan = FaultPlan::new(5);
        let jobs = Arc::clone(&jobs);
        let mut consumed: HashSet<(usize, usize)> = HashSet::new();
        let hook = Box::new(move |job: &str, wave: usize| -> FaultAction {
            let job_idx = match jobs.lock().unwrap().get(job) {
                Some(idx) => *idx,
                None => return FaultAction::Continue,
            };
            match plan.action(1, job_idx, wave) {
                FaultAction::Continue => FaultAction::Continue,
                delay @ FaultAction::Delay(_) => delay,
                disruptive if consumed.insert((job_idx, wave)) => disruptive,
                _ => FaultAction::Continue,
            }
        });
        std::thread::spawn(move || {
            let _ = Worker::new(config).with_fault_hook(hook).run();
        })
    };

    let mut ids = Vec::new();
    for (idx, spec) in specs.iter().enumerate() {
        let job = handle.submit(spec.clone()).expect("job accepted");
        jobs.lock().unwrap().insert(job.clone(), idx);
        ids.push(job);
    }
    for (job_idx, (job, baseline)) in ids.iter().zip(&baselines).enumerate() {
        let result = handle.wait(job).expect("job completes despite faults");
        assert_eq!(
            result.get("cells").expect("result has cells").render(),
            *baseline,
            "job {job_idx}: a mixed-format fleet changed the verdicts"
        );
    }
    handle.shutdown();
    let _ = immortal.join();
    let _ = json_worker.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance sweep: for every seeded fault plan, the coordinator's
/// final verdict sections are byte-identical to in-process matrix runs.
#[test]
fn seeded_fault_plans_never_change_a_single_verdict_byte() {
    let specs = sweep_specs();
    let baselines: Vec<String> = specs
        .iter()
        .map(|spec| matrix_cells_json(&spec.to_matrix().expect("spec resolves").run()).render())
        .collect();

    // A small fixed seed set so CI stays fast; grow it for deeper local
    // sweeps (every failure reproduces from its seed alone).
    for plan_seed in [1u64, 2, 3, 4, 5, 6, 7, 8] {
        let plan = FaultPlan::new(plan_seed);
        let served = serve_under_plan(&plan, &specs);
        for (job_idx, (served, baseline)) in served.iter().zip(&baselines).enumerate() {
            assert_eq!(
                served, baseline,
                "plan seed {plan_seed}, job {job_idx}: a fault interleaving changed the verdicts"
            );
        }
    }
}

/// A silently partitioned worker (socket open, no frames — a pulled
/// cable or frozen host, which `DropConnection` cannot model because it
/// delivers an orderly close) trips the coordinator's inactivity timeout:
/// the job is requeued and finished by a healthy worker, byte-identically.
#[test]
fn silently_stalled_worker_times_out_and_the_job_moves_on() {
    let spec = JobSpec::new(7).with_budget(40).add_cell(1, "CT-SEQ").add_cell(5, "CT-SEQ");
    let baseline = matrix_cells_json(&spec.to_matrix().expect("spec resolves").run()).render();

    let handle = ServiceHandle::start(ServiceConfig {
        shards: 1,
        spool: None,
        checkpoint_every: 1,
        listen: None,
        worker_listen: Some("127.0.0.1:0".to_string()),
        worker_timeout: Duration::from_millis(300),
        ..ServiceConfig::default()
    })
    .expect("coordinator starts");
    let addr = handle.worker_addr().expect("worker port bound").to_string();

    // The victim freezes for far longer than the timeout after its first
    // wave, without closing its connection.
    let frozen = {
        let mut config = WorkerConfig::new(addr.clone());
        config.name = "frozen".to_string();
        config.retry_for = Duration::from_secs(2);
        std::thread::spawn(move || {
            let hook = Box::new(move |_job: &str, wave: usize| {
                if wave == 1 {
                    FaultAction::Delay(Duration::from_secs(4))
                } else {
                    FaultAction::Continue
                }
            });
            let _ = Worker::new(config).with_fault_hook(hook).run();
        })
    };
    let job = handle.submit(spec).expect("job accepted");
    // Give the frozen worker time to take the job and stall...
    std::thread::sleep(Duration::from_millis(600));
    // ...then bring up a healthy worker; the coordinator must have (or
    // will) time the stalled one out and reassign.
    let healthy = {
        let mut config = WorkerConfig::new(addr);
        config.name = "healthy".to_string();
        config.retry_for = Duration::from_secs(2);
        std::thread::spawn(move || {
            let _ = Worker::new(config).run();
        })
    };
    let result = handle.wait(&job).expect("job completes despite the frozen worker");
    assert_eq!(
        result.get("cells").expect("result has cells").render(),
        baseline,
        "a timed-out worker must not change a single verdict byte"
    );
    handle.shutdown();
    let _ = (frozen.join(), healthy.join());
}

/// The directed acceptance case: a job starts on one worker host, that
/// host is killed mid-matrix, and the job is reassigned to a second host
/// which resumes it from the last replicated wave — not from scratch —
/// with byte-identical verdicts.
#[test]
fn killed_worker_mid_matrix_is_reassigned_and_resumes_from_replicated_wave() {
    let spec = JobSpec::new(7).with_budget(60).add_cell(1, "CT-SEQ").add_cell(5, "CT-SEQ");
    let baseline = matrix_cells_json(&spec.to_matrix().expect("spec resolves").run()).render();

    let dir = scratch_dir("directed-kill");
    let handle = ServiceHandle::start(ServiceConfig {
        shards: 1,
        spool: Some(dir.clone()),
        checkpoint_every: 1,
        listen: None,
        worker_listen: Some("127.0.0.1:0".to_string()),
        ..ServiceConfig::default()
    })
    .expect("coordinator starts");
    let addr = handle.worker_addr().expect("worker port bound").to_string();

    // The victim dies right before computing wave 3 (waves 1 and 2 were
    // replicated and acked by then — the ack gate guarantees it).
    let victim_waves: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let victim = {
        let mut config = WorkerConfig::new(addr.clone());
        config.name = "victim".to_string();
        let seen = Arc::clone(&victim_waves);
        std::thread::spawn(move || {
            let hook = Box::new(move |_job: &str, wave: usize| {
                seen.lock().unwrap().push(wave);
                if wave >= 2 {
                    FaultAction::Die
                } else {
                    FaultAction::Continue
                }
            });
            let _ = Worker::new(config).with_fault_hook(hook).run();
        })
    };

    let job = handle.submit(spec).expect("job accepted");
    // The victim (the only worker) takes the job and dies mid-matrix.
    victim.join().expect("victim thread ends (Die)");
    assert_eq!(
        *victim_waves.lock().unwrap(),
        vec![0, 1, 2],
        "the victim must have computed exactly waves 1 and 2 before dying"
    );

    // A second host joins; the coordinator reassigns the interrupted job.
    let survivor_waves: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let survivor = {
        let mut config = WorkerConfig::new(addr);
        config.name = "survivor".to_string();
        let seen = Arc::clone(&survivor_waves);
        std::thread::spawn(move || {
            let hook = Box::new(move |_job: &str, wave: usize| {
                seen.lock().unwrap().push(wave);
                FaultAction::Continue
            });
            let _ = Worker::new(config).with_fault_hook(hook).run();
        })
    };

    let result = handle.wait(&job).expect("reassigned job completes");
    assert_eq!(
        result.get("cells").expect("result has cells").render(),
        baseline,
        "kill + reassignment must not change a single verdict byte"
    );
    assert_eq!(
        survivor_waves.lock().unwrap().first(),
        Some(&2),
        "the survivor must resume from the last replicated wave, not from scratch"
    );
    handle.shutdown();
    let _ = survivor.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawn one wave-recording worker; `hook_of(wave)` picks its fault.
fn spawn_recording_worker(
    addr: String,
    name: &str,
    waves: Arc<Mutex<Vec<usize>>>,
    hook_of: impl Fn(usize) -> FaultAction + Send + 'static,
) -> std::thread::JoinHandle<()> {
    let mut config = WorkerConfig::new(addr);
    config.name = name.to_string();
    config.retry_for = Duration::from_secs(3);
    std::thread::spawn(move || {
        let hook = Box::new(move |_job: &str, wave: usize| {
            waves.lock().unwrap().push(wave);
            hook_of(wave)
        });
        let _ = Worker::new(config).with_fault_hook(hook).run();
    })
}

/// Block until `waves` records `wave`, panicking after five seconds.
fn await_wave(waves: &Arc<Mutex<Vec<usize>>>, wave: usize) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !waves.lock().unwrap().contains(&wave) {
        assert!(Instant::now() < deadline, "worker never reached wave {wave}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A steal racing a kill: the unit's owner stalls far past the steal
/// threshold, a thief steals the lease at the last replicated wave, and
/// the deposed owner then dies outright mid-race.  The verdicts must not
/// notice any of it.
#[test]
fn steal_racing_a_kill_keeps_verdicts_byte_identical() {
    let spec = JobSpec::new(7).with_budget(40).add_cell(5, "CT-SEQ");
    let baseline = matrix_cells_json(&spec.to_matrix().expect("spec resolves").run()).render();

    let handle = ServiceHandle::start(ServiceConfig {
        shards: 1,
        spool: None,
        checkpoint_every: 1,
        listen: None,
        worker_listen: Some("127.0.0.1:0".to_string()),
        steal_after: Duration::from_millis(200),
        ..ServiceConfig::default()
    })
    .expect("coordinator starts");
    let addr = handle.worker_addr().expect("worker port bound").to_string();

    // The victim stalls for 900ms at wave 1 (far past the 200ms steal
    // threshold) and dies if it ever gets to compute another wave.
    let victim_waves: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let victim =
        spawn_recording_worker(addr.clone(), "victim", Arc::clone(&victim_waves), |wave| {
            match wave {
                1 => FaultAction::Delay(Duration::from_millis(900)),
                2.. => FaultAction::Die,
                _ => FaultAction::Continue,
            }
        });
    let job = handle.submit(spec).expect("job accepted");
    // Only once the victim owns the unit and is stalling may the thief
    // join — otherwise it would simply lease the unit first.
    await_wave(&victim_waves, 1);
    let thief_waves: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let thief = spawn_recording_worker(addr, "thief", Arc::clone(&thief_waves), |_| {
        FaultAction::Continue
    });

    let result = handle.wait(&job).expect("job completes despite the mid-steal kill");
    assert_eq!(
        result.get("cells").expect("result has cells").render(),
        baseline,
        "a steal racing a kill must not change a single verdict byte"
    );
    let first = *thief_waves.lock().unwrap().first().expect("the thief ran the unit");
    assert!(first >= 1, "the thief must resume from a replicated wave, not from scratch");
    handle.shutdown();
    let _ = (victim.join(), thief.join());
}

/// A double-lease attempt: the deposed owner *survives* its stall and
/// keeps driving the stolen unit with its stale lease.  Every frame it
/// sends is fenced by the lease token (the coordinator answers `revoked`),
/// the thief's run alone decides the verdicts, and the job finishes once.
#[test]
fn stale_owner_double_driving_a_stolen_lease_is_fenced() {
    let spec = JobSpec::new(13).with_budget(40).add_cell(5, "CT-SEQ");
    let baseline = matrix_cells_json(&spec.to_matrix().expect("spec resolves").run()).render();

    let handle = ServiceHandle::start(ServiceConfig {
        shards: 1,
        spool: None,
        checkpoint_every: 1,
        listen: None,
        worker_listen: Some("127.0.0.1:0".to_string()),
        steal_after: Duration::from_millis(200),
        ..ServiceConfig::default()
    })
    .expect("coordinator starts");
    let addr = handle.worker_addr().expect("worker port bound").to_string();

    // The deposed owner never dies: after its stall it races the thief,
    // attempting to keep computing and shipping waves under its old lease.
    let owner_waves: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let owner = spawn_recording_worker(addr.clone(), "owner", Arc::clone(&owner_waves), |wave| {
        if wave == 1 {
            FaultAction::Delay(Duration::from_millis(900))
        } else {
            FaultAction::Continue
        }
    });
    let job = handle.submit(spec).expect("job accepted");
    await_wave(&owner_waves, 1);
    let thief_waves: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let thief = spawn_recording_worker(addr, "thief", Arc::clone(&thief_waves), |_| {
        FaultAction::Continue
    });

    let result = handle.wait(&job).expect("job completes exactly once");
    assert_eq!(
        result.get("cells").expect("result has cells").render(),
        baseline,
        "a fenced double-lease must not change a single verdict byte"
    );
    let first = *thief_waves.lock().unwrap().first().expect("the thief ran the unit");
    assert!(first >= 1, "the thief must resume from a replicated wave, not from scratch");
    handle.shutdown();
    let _ = (owner.join(), thief.join());
}

/// A worker that departs between taking a lease and shipping its first
/// checkpoint: nothing was replicated, so the unit simply requeues with
/// no progress and the next worker runs it from scratch.
#[test]
fn departure_between_lease_and_first_checkpoint_requeues_from_scratch() {
    let spec = JobSpec::new(11).with_budget(30).add_cell(5, "CT-SEQ");
    let baseline = matrix_cells_json(&spec.to_matrix().expect("spec resolves").run()).render();

    let handle = ServiceHandle::start(ServiceConfig {
        shards: 1,
        spool: None,
        checkpoint_every: 1,
        listen: None,
        worker_listen: Some("127.0.0.1:0".to_string()),
        ..ServiceConfig::default()
    })
    .expect("coordinator starts");
    let addr = handle.worker_addr().expect("worker port bound").to_string();

    // The victim dies before computing wave 0 — it leased the unit but
    // never shipped a single checkpoint.
    let victim_waves: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let victim =
        spawn_recording_worker(addr.clone(), "victim", Arc::clone(&victim_waves), |_| {
            FaultAction::Die
        });
    let job = handle.submit(spec).expect("job accepted");
    victim.join().expect("victim thread ends (Die)");
    assert_eq!(*victim_waves.lock().unwrap(), vec![0], "the victim died holding a fresh lease");

    let survivor_waves: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let survivor = spawn_recording_worker(addr, "survivor", Arc::clone(&survivor_waves), |_| {
        FaultAction::Continue
    });
    let result = handle.wait(&job).expect("requeued job completes");
    assert_eq!(
        result.get("cells").expect("result has cells").render(),
        baseline,
        "a checkpoint-less departure must not change a single verdict byte"
    );
    assert_eq!(
        survivor_waves.lock().unwrap().first(),
        Some(&0),
        "with nothing replicated, the survivor must start from scratch"
    );
    handle.shutdown();
    let _ = survivor.join();
}
