//! # rvz-emu
//!
//! Architectural (functional) emulator for the Revizor-reproduction ISA.
//!
//! The original tool builds its contract model on top of the Unicorn x86
//! emulator (§5.4); this crate is the from-scratch substitute.  It provides:
//!
//! * [`ArchState`] — registers, flags and the sandbox memory image;
//! * [`Emulator`] — instruction-level execution with memory-event reporting,
//!   fault detection and cheap checkpoint/restore (the mechanism the contract
//!   model uses to explore and roll back speculative paths);
//! * [`Runner`] — convenience sequential execution of a whole test case;
//! * [`Fault`] — architectural faults (division by zero, sandbox escapes).
//!
//! The emulator is purely architectural: it has no caches, predictors or
//! timing.  Microarchitectural behaviour lives in `rvz-uarch`.
//!
//! # Example
//!
//! ```
//! use rvz_isa::{builder::TestCaseBuilder, Input, Reg, SandboxLayout};
//! use rvz_emu::Runner;
//!
//! let tc = TestCaseBuilder::new()
//!     .block("entry", |b| {
//!         b.mov_imm(Reg::Rax, 2);
//!         b.add_imm(Reg::Rax, 3);
//!         b.exit();
//!     })
//!     .build();
//! let input = Input::zeroed(tc.sandbox());
//! let exec = Runner::new(&tc).run(&input).expect("no faults");
//! assert_eq!(exec.final_state.reg(Reg::Rax), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emulator;
pub mod fault;
pub mod runner;
pub mod sink;
pub mod state;

pub use emulator::{Emulator, InstrEffects, MemEvent, MemEventKind, SpecCheckpoint};
pub use fault::Fault;
pub use runner::{ExecStep, ExecTrace, Runner};
pub use sink::{EventBuf, NoTrace, TraceSink};
pub use state::ArchState;
