//! Ergonomic construction of handwritten test cases (gadgets).
//!
//! The paper's Table 5 measures detection speed on manually written test
//! cases representing known vulnerabilities; this builder is how such
//! gadgets are written in the reproduction.

use crate::block::{BasicBlock, BlockId, Terminator};
use crate::inst::{AluOp, Cond, Instr, ShiftOp, UnaryOp};
use crate::operand::{MemOperand, Operand};
use crate::reg::{Reg, Width};
use crate::sandbox::SandboxLayout;
use crate::testcase::TestCase;
use std::collections::HashMap;

/// Builder for a [`TestCase`].
///
/// Blocks are referenced by string labels; labels are resolved to
/// [`BlockId`]s in declaration order when [`TestCaseBuilder::build`] is
/// called.
///
/// # Example
/// ```
/// use rvz_isa::builder::TestCaseBuilder;
/// use rvz_isa::Reg;
/// let tc = TestCaseBuilder::new()
///     .block("entry", |b| {
///         b.mov_imm(Reg::Rax, 64);
///         b.exit();
///     })
///     .build();
/// assert_eq!(tc.instruction_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct TestCaseBuilder {
    blocks: Vec<(String, BlockBuilder)>,
    sandbox: Option<SandboxLayout>,
    origin: String,
}

/// Builder for a single basic block; obtained through
/// [`TestCaseBuilder::block`].
#[derive(Debug, Default)]
pub struct BlockBuilder {
    instrs: Vec<Instr>,
    terminator: Option<PendingTerminator>,
}

#[derive(Debug, Clone)]
enum PendingTerminator {
    Exit,
    Jmp(String),
    CondJmp { cond: Cond, taken: String, not_taken: String },
    IndirectJmp { src: Reg, table: Vec<String> },
    Call { target: String, return_to: String },
    Ret,
}

impl TestCaseBuilder {
    /// Create an empty builder.
    pub fn new() -> TestCaseBuilder {
        TestCaseBuilder::default()
    }

    /// Use a specific sandbox layout (default: one page).
    pub fn sandbox(mut self, layout: SandboxLayout) -> TestCaseBuilder {
        self.sandbox = Some(layout);
        self
    }

    /// Set the origin note.
    pub fn origin(mut self, origin: impl Into<String>) -> TestCaseBuilder {
        self.origin = origin.into();
        self
    }

    /// Add a block with the given label, configured by `f`.  The first added
    /// block is the entry block.
    ///
    /// # Panics
    /// Panics if a block with the same label already exists.
    pub fn block(mut self, label: impl Into<String>, f: impl FnOnce(&mut BlockBuilder)) -> Self {
        let label = label.into();
        assert!(
            !self.blocks.iter().any(|(l, _)| *l == label),
            "duplicate block label {label:?}"
        );
        let mut bb = BlockBuilder::default();
        f(&mut bb);
        self.blocks.push((label, bb));
        self
    }

    /// Resolve labels and produce the test case.
    ///
    /// # Panics
    /// Panics if a terminator refers to an unknown label or a block has no
    /// terminator.
    pub fn build(self) -> TestCase {
        let mut ids: HashMap<String, BlockId> = HashMap::new();
        for (i, (label, _)) in self.blocks.iter().enumerate() {
            ids.insert(label.clone(), BlockId(i));
        }
        let resolve = |label: &str| -> BlockId {
            *ids.get(label).unwrap_or_else(|| panic!("unknown block label {label:?}"))
        };
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, (label, bb)) in self.blocks.into_iter().enumerate() {
            let terminator = match bb
                .terminator
                .unwrap_or_else(|| panic!("block {label:?} has no terminator"))
            {
                PendingTerminator::Exit => Terminator::Exit,
                PendingTerminator::Jmp(t) => Terminator::Jmp { target: resolve(&t) },
                PendingTerminator::CondJmp { cond, taken, not_taken } => Terminator::CondJmp {
                    cond,
                    taken: resolve(&taken),
                    not_taken: resolve(&not_taken),
                },
                PendingTerminator::IndirectJmp { src, table } => Terminator::IndirectJmp {
                    src,
                    table: table.iter().map(|t| resolve(t)).collect(),
                },
                PendingTerminator::Call { target, return_to } => Terminator::Call {
                    target: resolve(&target),
                    return_to: resolve(&return_to),
                },
                PendingTerminator::Ret => Terminator::Ret,
            };
            blocks.push(BasicBlock {
                id: BlockId(i),
                label: Some(label),
                instrs: bb.instrs,
                terminator,
            });
        }
        TestCase::new(blocks, self.sandbox.unwrap_or_else(SandboxLayout::one_page))
            .with_origin(self.origin)
    }
}

impl BlockBuilder {
    /// Append an arbitrary instruction.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    // --- moves --------------------------------------------------------------

    /// `MOV dst, imm`.
    pub fn mov_imm(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.push(Instr::Mov { dest: Operand::reg(dst), src: Operand::imm(imm) })
    }

    /// `MOV dst, src` (register to register).
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Mov { dest: Operand::reg(dst), src: Operand::reg(src) })
    }

    /// Load: `MOV dst, qword ptr [base + index]`.
    pub fn load(&mut self, dst: Reg, base: Reg, index: Reg) -> &mut Self {
        self.push(Instr::Mov {
            dest: Operand::reg(dst),
            src: Operand::mem(MemOperand::base_index(base, index)),
        })
    }

    /// Load with displacement: `MOV dst, qword ptr [base + disp]`.
    pub fn load_disp(&mut self, dst: Reg, base: Reg, disp: i64) -> &mut Self {
        self.push(Instr::Mov {
            dest: Operand::reg(dst),
            src: Operand::mem(MemOperand::base_disp(base, disp)),
        })
    }

    /// Store: `MOV qword ptr [base + index], src`.
    pub fn store(&mut self, base: Reg, index: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Mov {
            dest: Operand::mem(MemOperand::base_index(base, index)),
            src: Operand::reg(src),
        })
    }

    /// Store with displacement: `MOV qword ptr [base + disp], src`.
    pub fn store_disp(&mut self, base: Reg, disp: i64, src: Reg) -> &mut Self {
        self.push(Instr::Mov {
            dest: Operand::mem(MemOperand::base_disp(base, disp)),
            src: Operand::reg(src),
        })
    }

    /// Store an immediate: `MOV qword ptr [base + disp], imm`.
    pub fn store_imm_disp(&mut self, base: Reg, disp: i64, imm: i64) -> &mut Self {
        self.push(Instr::Mov {
            dest: Operand::mem(MemOperand::base_disp(base, disp)),
            src: Operand::imm(imm),
        })
    }

    // --- arithmetic ----------------------------------------------------------

    /// `ADD dst, src`.
    pub fn add(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.alu(AluOp::Add, dst, src)
    }

    /// `SUB dst, src`.
    pub fn sub(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.alu(AluOp::Sub, dst, src)
    }

    /// `XOR dst, src`.
    pub fn xor(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.alu(AluOp::Xor, dst, src)
    }

    /// Generic register-register ALU operation.
    pub fn alu(&mut self, op: AluOp, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Alu {
            op,
            dest: Operand::reg(dst),
            src: Operand::reg(src),
            lock: false,
        })
    }

    /// Generic register-immediate ALU operation.
    pub fn alu_imm(&mut self, op: AluOp, dst: Reg, imm: i64) -> &mut Self {
        self.push(Instr::Alu { op, dest: Operand::reg(dst), src: Operand::imm(imm), lock: false })
    }

    /// `AND dst, imm` — the sandbox-masking idiom.
    pub fn and_imm(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::And, dst, imm)
    }

    /// `ADD dst, imm`.
    pub fn add_imm(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::Add, dst, imm)
    }

    /// `SHL dst, imm`.
    pub fn shl_imm(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.push(Instr::Shift {
            op: ShiftOp::Shl,
            dest: Operand::reg(dst),
            amount: Operand::imm(imm),
        })
    }

    /// `CMP a, imm`.
    pub fn cmp_imm(&mut self, a: Reg, imm: i64) -> &mut Self {
        self.push(Instr::Cmp { a: Operand::reg(a), b: Operand::imm(imm) })
    }

    /// `CMP a, b`.
    pub fn cmp(&mut self, a: Reg, b: Reg) -> &mut Self {
        self.push(Instr::Cmp { a: Operand::reg(a), b: Operand::reg(b) })
    }

    /// `IMUL dst, imm`.
    pub fn imul_imm(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.push(Instr::Imul { dest: dst, src: Operand::imm(imm) })
    }

    /// `NEG dst`.
    pub fn neg(&mut self, dst: Reg) -> &mut Self {
        self.push(Instr::Unary { op: UnaryOp::Neg, dest: Operand::reg(dst) })
    }

    /// `DIV src` (RDX:RAX / src).
    pub fn div(&mut self, src: Reg) -> &mut Self {
        self.push(Instr::Div { src: Operand::reg(src) })
    }

    /// `CMOVcc dst, src`.
    pub fn cmov(&mut self, cond: Cond, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Cmov { cond, dest: dst, src: Operand::reg(src), width: Width::Qword })
    }

    /// `LFENCE`.
    pub fn lfence(&mut self) -> &mut Self {
        self.push(Instr::Lfence)
    }

    /// `NOP`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    // --- terminators ----------------------------------------------------------

    /// End the test case here.
    pub fn exit(&mut self) {
        self.terminator = Some(PendingTerminator::Exit);
    }

    /// Unconditional jump to `target`.
    pub fn jmp(&mut self, target: impl Into<String>) {
        self.terminator = Some(PendingTerminator::Jmp(target.into()));
    }

    /// Conditional jump: to `taken` if `cond`, else to `not_taken`.
    pub fn jcc(&mut self, cond: Cond, taken: impl Into<String>, not_taken: impl Into<String>) {
        self.terminator = Some(PendingTerminator::CondJmp {
            cond,
            taken: taken.into(),
            not_taken: not_taken.into(),
        });
    }

    /// Indirect jump through `src`, restricted to the given label table.
    pub fn jmp_indirect(&mut self, src: Reg, table: Vec<&str>) {
        self.terminator = Some(PendingTerminator::IndirectJmp {
            src,
            table: table.into_iter().map(|s| s.to_string()).collect(),
        });
    }

    /// Call `target`, returning to `return_to`.
    pub fn call(&mut self, target: impl Into<String>, return_to: impl Into<String>) {
        self.terminator =
            Some(PendingTerminator::Call { target: target.into(), return_to: return_to.into() });
    }

    /// Return through the in-sandbox stack.
    pub fn ret(&mut self) {
        self.terminator = Some(PendingTerminator::Ret);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_dag() {
        let tc = TestCaseBuilder::new()
            .origin("unit-test")
            .block("entry", |b| {
                b.and_imm(Reg::Rax, 0b111111000000);
                b.cmp_imm(Reg::Rbx, 4);
                b.jcc(Cond::B, "spec", "end");
            })
            .block("spec", |b| {
                b.load(Reg::Rcx, Reg::R14, Reg::Rax);
                b.jmp("end");
            })
            .block("end", |b| b.exit())
            .build();
        assert_eq!(tc.blocks().len(), 3);
        assert_eq!(tc.validate(), Ok(()));
        assert_eq!(tc.origin(), "unit-test");
        assert_eq!(tc.conditional_branch_count(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown block label")]
    fn unknown_label_panics() {
        let _ = TestCaseBuilder::new()
            .block("entry", |b| b.jmp("nowhere"))
            .build();
    }

    #[test]
    #[should_panic(expected = "no terminator")]
    fn missing_terminator_panics() {
        let _ = TestCaseBuilder::new()
            .block("entry", |b| {
                b.nop();
            })
            .build();
    }

    #[test]
    #[should_panic(expected = "duplicate block label")]
    fn duplicate_label_panics() {
        let _ = TestCaseBuilder::new()
            .block("a", |b| b.exit())
            .block("a", |b| b.exit())
            .build();
    }

    #[test]
    fn call_ret_structure() {
        let tc = TestCaseBuilder::new()
            .block("entry", |b| b.call("callee", "after"))
            .block("callee", |b| b.ret())
            .block("after", |b| b.exit())
            .build();
        assert!(matches!(tc.blocks()[0].terminator, Terminator::Call { .. }));
        assert!(matches!(tc.blocks()[1].terminator, Terminator::Ret));
    }

    #[test]
    fn indirect_jump_table_resolved() {
        let tc = TestCaseBuilder::new()
            .block("entry", |b| b.jmp_indirect(Reg::Rax, vec!["t1", "t2"]))
            .block("t1", |b| b.exit())
            .block("t2", |b| b.exit())
            .build();
        match &tc.blocks()[0].terminator {
            Terminator::IndirectJmp { table, .. } => {
                assert_eq!(table, &vec![BlockId(1), BlockId(2)])
            }
            t => panic!("unexpected terminator {t:?}"),
        }
    }

    #[test]
    fn builder_helpers_emit_expected_instructions() {
        let tc = TestCaseBuilder::new()
            .block("entry", |b| {
                b.mov_imm(Reg::Rax, 1);
                b.add(Reg::Rax, Reg::Rbx);
                b.store_disp(Reg::R14, 64, Reg::Rax);
                b.div(Reg::Rcx);
                b.lfence();
                b.exit();
            })
            .build();
        let instrs = &tc.blocks()[0].instrs;
        assert_eq!(instrs.len(), 5);
        assert!(instrs[2].writes_mem());
        assert!(instrs[3].is_variable_latency());
        assert!(instrs[4].is_fence());
    }
}
