//! Registry-free JSON export/import of fuzzing reports.
//!
//! The vendored `serde` stand-ins have no-op derives, so the `Serialize`
//! attributes sprinkled over the workspace never produced a wire format.
//! This module is the real serialization seam: explicit `to_json` /
//! `from_json` codecs for [`ViolationReport`] and [`FuzzReport`] (and every
//! structure they embed, down to instructions and inputs), built on
//! [`crate::json`].  The schema is also the result payload of the campaign
//! service (`rvz-service`), and [`matrix_checkpoint_*`] is its spool format.
//!
//! Design rules:
//!
//! * `u64` values (campaign seeds, sandbox addresses, ctrace digests) are
//!   written as [`Json::UInt`] and therefore survive exactly — no `f64`
//!   detour (the same rule the `table3 --json` document follows).
//! * Enumerations are written as their canonical display labels (`"ADD"`,
//!   `"RAX"`, `"CT-SEQ"`, `"V1"`), so documents stay greppable.
//! * Sandbox memory is hex-encoded into one string per input.
//! * Decoding validates shapes and reports a path-qualified error message;
//!   it never panics on malformed documents.

use crate::json::Json;
use revizor::diversity::{Pattern, PatternCoverage};
use revizor::fuzzer::{FuzzReport, ViolationReport};
use revizor::staticanalysis::{GadgetSignature, SourceKind, TransmitterKind};
use revizor::VulnClass;
use rvz_analyzer::{EffectivenessStats, Violation};
use rvz_cache::SetVector;
use rvz_executor::HTrace;
use rvz_isa::{
    AluOp, BasicBlock, BlockId, Cond, FlagSet, Input, Instr, MemOperand, Operand, Reg,
    SandboxLayout, ShiftOp, Terminator, TestCase, UnaryOp, Width,
};
use rvz_model::{Contract, ExecutionClause, ObservationClause};
use std::collections::BTreeSet;
use std::time::Duration;

/// Decoding errors are human-readable path + message strings.
pub type DecodeError = String;

// The compact binary forms of the same structures (length-prefixed frames
// with a format-version byte; see `crate::binfmt` for the layout).  JSON
// stays the debug/interop form — these are the hot-path codecs the
// campaign service's worker wire and spool use.
pub use crate::binfmt::{
    checkpoint_transfer_from_binary, checkpoint_transfer_to_binary, matrix_checkpoint_from_binary,
    matrix_checkpoint_to_binary, violation_report_from_binary, violation_report_to_binary,
    BinaryTransfer, FORMAT_VERSION as BINARY_FORMAT_VERSION,
};

// ---------------------------------------------------------------------------
// Small shared accessors.

fn get<'a>(v: &'a Json, key: &str) -> Result<&'a Json, DecodeError> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, DecodeError> {
    get(v, key)?.as_str().ok_or_else(|| format!("field `{key}` is not a string"))
}

fn get_u64(v: &Json, key: &str) -> Result<u64, DecodeError> {
    get(v, key)?.as_u64().ok_or_else(|| format!("field `{key}` is not an integer"))
}

fn get_usize(v: &Json, key: &str) -> Result<usize, DecodeError> {
    Ok(get_u64(v, key)? as usize)
}

fn get_bool(v: &Json, key: &str) -> Result<bool, DecodeError> {
    get(v, key)?.as_bool().ok_or_else(|| format!("field `{key}` is not a boolean"))
}

fn get_f64(v: &Json, key: &str) -> Result<f64, DecodeError> {
    get(v, key)?.as_f64().ok_or_else(|| format!("field `{key}` is not a number"))
}

fn get_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], DecodeError> {
    get(v, key)?.as_array().ok_or_else(|| format!("field `{key}` is not an array"))
}

fn get_int<T: TryFrom<u64>>(v: &Json, key: &str) -> Result<T, DecodeError> {
    let n = get_u64(v, key)?;
    T::try_from(n).map_err(|_| format!("field `{key}` value {n} is out of range"))
}

fn in_field<T>(key: &str, r: Result<T, DecodeError>) -> Result<T, DecodeError> {
    r.map_err(|e| format!("{key}: {e}"))
}

/// Exact `i64` codec: non-negative values ride the exact `UInt` channel;
/// negatives are written as plain JSON numbers while exactly
/// representable (|v| ≤ 9·10¹⁵ — the same bound as [`Json::as_u64`]), so
/// third-party clients read the shape they would write; only larger
/// magnitudes (e.g. `i64::MIN` displacements) fall back to storing the
/// magnitude as `{"neg": …}` to survive without an `f64` detour.  Public
/// because the campaign service's wire format reuses it for signed job
/// priorities.
pub fn i64_to_json(v: i64) -> Json {
    if v >= 0 {
        Json::UInt(v as u64)
    } else if v >= -9_000_000_000_000_000 {
        Json::Num(v as f64)
    } else {
        Json::obj().field("neg", v.unsigned_abs())
    }
}

/// Decode a value written by [`i64_to_json`] — plus the plain negative
/// integer form (`-3`) every standard JSON emitter produces, so
/// third-party clients can write `"priority": -3` directly (accepted up
/// to ±9·10¹⁵, the same exactness bound as [`Json::as_u64`]; larger
/// magnitudes need the `{"neg": …}` form).
///
/// # Errors
/// Returns a message for non-integers and out-of-range magnitudes.
pub fn i64_from_json(v: &Json) -> Result<i64, DecodeError> {
    if let Some(n) = v.as_u64() {
        return i64::try_from(n).map_err(|_| format!("integer {n} overflows i64"));
    }
    if let Json::Num(f) = v {
        if f.fract() == 0.0 && f.abs() <= 9e15 {
            return Ok(*f as i64);
        }
    }
    if let Some(m) = v.get("neg").and_then(Json::as_u64) {
        if m == i64::MIN.unsigned_abs() {
            return Ok(i64::MIN);
        }
        let m = i64::try_from(m).map_err(|_| format!("magnitude {m} overflows i64"))?;
        return Ok(-m);
    }
    Err("expected an integer (or {\"neg\": magnitude})".to_string())
}

fn duration_to_json(d: Duration) -> Json {
    Json::UInt(d.as_nanos().min(u128::from(u64::MAX)) as u64)
}

fn duration_from_json(v: &Json) -> Result<Duration, DecodeError> {
    v.as_u64().map(Duration::from_nanos).ok_or_else(|| "duration is not an integer".to_string())
}

// ---------------------------------------------------------------------------
// ISA-level codecs.

fn reg_to_json(r: Reg) -> Json {
    Json::Str(r.name(Width::Qword))
}

fn reg_from_json(v: &Json) -> Result<Reg, DecodeError> {
    let name = v.as_str().ok_or("register is not a string")?;
    Reg::ALL
        .into_iter()
        .find(|r| r.name(Width::Qword) == name)
        .ok_or_else(|| format!("unknown register `{name}`"))
}

fn width_label(w: Width) -> &'static str {
    match w {
        Width::Byte => "byte",
        Width::Word => "word",
        Width::Dword => "dword",
        Width::Qword => "qword",
    }
}

fn width_from_label(s: &str) -> Result<Width, DecodeError> {
    Width::ALL
        .into_iter()
        .find(|w| width_label(*w) == s)
        .ok_or_else(|| format!("unknown width `{s}`"))
}

fn cond_from_suffix(s: &str) -> Result<Cond, DecodeError> {
    Cond::ALL
        .into_iter()
        .find(|c| c.suffix() == s)
        .ok_or_else(|| format!("unknown condition code `{s}`"))
}

fn mem_operand_to_json(m: &MemOperand) -> Json {
    Json::obj()
        .field("base", reg_to_json(m.base))
        .field("index", m.index.map(reg_to_json))
        .field("scale", u64::from(m.scale))
        .field("disp", i64_to_json(m.disp))
}

fn mem_operand_from_json(v: &Json) -> Result<MemOperand, DecodeError> {
    let index = match get(v, "index")? {
        Json::Null => None,
        r => Some(reg_from_json(r)?),
    };
    Ok(MemOperand {
        base: reg_from_json(get(v, "base")?)?,
        index,
        scale: get_int(v, "scale")?,
        disp: in_field("disp", i64_from_json(get(v, "disp")?))?,
    })
}

fn operand_to_json(o: &Operand) -> Json {
    match o {
        Operand::Reg(r, w) => Json::obj()
            .field("kind", "reg")
            .field("reg", reg_to_json(*r))
            .field("width", width_label(*w)),
        Operand::Imm(v) => Json::obj().field("kind", "imm").field("value", i64_to_json(*v)),
        Operand::Mem(m, w) => Json::obj()
            .field("kind", "mem")
            .field("mem", mem_operand_to_json(m))
            .field("width", width_label(*w)),
    }
}

fn operand_from_json(v: &Json) -> Result<Operand, DecodeError> {
    match get_str(v, "kind")? {
        "reg" => Ok(Operand::Reg(
            reg_from_json(get(v, "reg")?)?,
            width_from_label(get_str(v, "width")?)?,
        )),
        "imm" => Ok(Operand::Imm(in_field("value", i64_from_json(get(v, "value")?))?)),
        "mem" => Ok(Operand::Mem(
            mem_operand_from_json(get(v, "mem")?)?,
            width_from_label(get_str(v, "width")?)?,
        )),
        k => Err(format!("unknown operand kind `{k}`")),
    }
}

fn instr_to_json(i: &Instr) -> Json {
    match i {
        Instr::Alu { op, dest, src, lock } => Json::obj()
            .field("op", "alu")
            .field("alu", op.mnemonic())
            .field("dest", operand_to_json(dest))
            .field("src", operand_to_json(src))
            .field("lock", *lock),
        Instr::Mov { dest, src } => Json::obj()
            .field("op", "mov")
            .field("dest", operand_to_json(dest))
            .field("src", operand_to_json(src)),
        Instr::Cmov { cond, dest, src, width } => Json::obj()
            .field("op", "cmov")
            .field("cond", cond.suffix())
            .field("dest", reg_to_json(*dest))
            .field("src", operand_to_json(src))
            .field("width", width_label(*width)),
        Instr::Setcc { cond, dest } => Json::obj()
            .field("op", "setcc")
            .field("cond", cond.suffix())
            .field("dest", reg_to_json(*dest)),
        Instr::Cmp { a, b } => Json::obj()
            .field("op", "cmp")
            .field("a", operand_to_json(a))
            .field("b", operand_to_json(b)),
        Instr::Test { a, b } => Json::obj()
            .field("op", "test")
            .field("a", operand_to_json(a))
            .field("b", operand_to_json(b)),
        Instr::Shift { op, dest, amount } => Json::obj()
            .field("op", "shift")
            .field("shift", op.mnemonic())
            .field("dest", operand_to_json(dest))
            .field("amount", operand_to_json(amount)),
        Instr::Unary { op, dest } => Json::obj()
            .field("op", "unary")
            .field("unary", op.mnemonic())
            .field("dest", operand_to_json(dest)),
        Instr::Div { src } => Json::obj().field("op", "div").field("src", operand_to_json(src)),
        Instr::Imul { dest, src } => Json::obj()
            .field("op", "imul")
            .field("dest", reg_to_json(*dest))
            .field("src", operand_to_json(src)),
        Instr::Lea { dest, addr } => Json::obj()
            .field("op", "lea")
            .field("dest", reg_to_json(*dest))
            .field("addr", mem_operand_to_json(addr)),
        Instr::Bswap { dest } => Json::obj().field("op", "bswap").field("dest", reg_to_json(*dest)),
        Instr::Xchg { dest, src } => Json::obj()
            .field("op", "xchg")
            .field("dest", reg_to_json(*dest))
            .field("src", operand_to_json(src)),
        Instr::Lfence => Json::obj().field("op", "lfence"),
        Instr::Mfence => Json::obj().field("op", "mfence"),
        Instr::Nop => Json::obj().field("op", "nop"),
    }
}

fn instr_from_json(v: &Json) -> Result<Instr, DecodeError> {
    let op = get_str(v, "op")?;
    match op {
        "alu" => {
            let mn = get_str(v, "alu")?;
            let alu = AluOp::ALL
                .into_iter()
                .find(|a| a.mnemonic() == mn)
                .ok_or_else(|| format!("unknown ALU op `{mn}`"))?;
            Ok(Instr::Alu {
                op: alu,
                dest: operand_from_json(get(v, "dest")?)?,
                src: operand_from_json(get(v, "src")?)?,
                lock: get_bool(v, "lock")?,
            })
        }
        "mov" => Ok(Instr::Mov {
            dest: operand_from_json(get(v, "dest")?)?,
            src: operand_from_json(get(v, "src")?)?,
        }),
        "cmov" => Ok(Instr::Cmov {
            cond: cond_from_suffix(get_str(v, "cond")?)?,
            dest: reg_from_json(get(v, "dest")?)?,
            src: operand_from_json(get(v, "src")?)?,
            width: width_from_label(get_str(v, "width")?)?,
        }),
        "setcc" => Ok(Instr::Setcc {
            cond: cond_from_suffix(get_str(v, "cond")?)?,
            dest: reg_from_json(get(v, "dest")?)?,
        }),
        "cmp" => Ok(Instr::Cmp {
            a: operand_from_json(get(v, "a")?)?,
            b: operand_from_json(get(v, "b")?)?,
        }),
        "test" => Ok(Instr::Test {
            a: operand_from_json(get(v, "a")?)?,
            b: operand_from_json(get(v, "b")?)?,
        }),
        "shift" => {
            let mn = get_str(v, "shift")?;
            let shift = ShiftOp::ALL
                .into_iter()
                .find(|s| s.mnemonic() == mn)
                .ok_or_else(|| format!("unknown shift op `{mn}`"))?;
            Ok(Instr::Shift {
                op: shift,
                dest: operand_from_json(get(v, "dest")?)?,
                amount: operand_from_json(get(v, "amount")?)?,
            })
        }
        "unary" => {
            let mn = get_str(v, "unary")?;
            let unary = UnaryOp::ALL
                .into_iter()
                .find(|u| u.mnemonic() == mn)
                .ok_or_else(|| format!("unknown unary op `{mn}`"))?;
            Ok(Instr::Unary { op: unary, dest: operand_from_json(get(v, "dest")?)? })
        }
        "div" => Ok(Instr::Div { src: operand_from_json(get(v, "src")?)? }),
        "imul" => Ok(Instr::Imul {
            dest: reg_from_json(get(v, "dest")?)?,
            src: operand_from_json(get(v, "src")?)?,
        }),
        "lea" => Ok(Instr::Lea {
            dest: reg_from_json(get(v, "dest")?)?,
            addr: mem_operand_from_json(get(v, "addr")?)?,
        }),
        "bswap" => Ok(Instr::Bswap { dest: reg_from_json(get(v, "dest")?)? }),
        "xchg" => Ok(Instr::Xchg {
            dest: reg_from_json(get(v, "dest")?)?,
            src: operand_from_json(get(v, "src")?)?,
        }),
        "lfence" => Ok(Instr::Lfence),
        "mfence" => Ok(Instr::Mfence),
        "nop" => Ok(Instr::Nop),
        k => Err(format!("unknown instruction op `{k}`")),
    }
}

fn terminator_to_json(t: &Terminator) -> Json {
    match t {
        Terminator::Exit => Json::obj().field("kind", "exit"),
        Terminator::Jmp { target } => Json::obj().field("kind", "jmp").field("target", target.0),
        Terminator::CondJmp { cond, taken, not_taken } => Json::obj()
            .field("kind", "condjmp")
            .field("cond", cond.suffix())
            .field("taken", taken.0)
            .field("not_taken", not_taken.0),
        Terminator::IndirectJmp { src, table } => Json::obj()
            .field("kind", "indirectjmp")
            .field("src", reg_to_json(*src))
            .field("table", table.iter().map(|b| b.0).collect::<Vec<_>>()),
        Terminator::Call { target, return_to } => Json::obj()
            .field("kind", "call")
            .field("target", target.0)
            .field("return_to", return_to.0),
        Terminator::Ret => Json::obj().field("kind", "ret"),
    }
}

fn terminator_from_json(v: &Json) -> Result<Terminator, DecodeError> {
    match get_str(v, "kind")? {
        "exit" => Ok(Terminator::Exit),
        "jmp" => Ok(Terminator::Jmp { target: BlockId(get_usize(v, "target")?) }),
        "condjmp" => Ok(Terminator::CondJmp {
            cond: cond_from_suffix(get_str(v, "cond")?)?,
            taken: BlockId(get_usize(v, "taken")?),
            not_taken: BlockId(get_usize(v, "not_taken")?),
        }),
        "indirectjmp" => {
            let table = get_arr(v, "table")?
                .iter()
                .map(|b| {
                    b.as_u64()
                        .map(|n| BlockId(n as usize))
                        .ok_or_else(|| "jump-table entry is not an integer".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Terminator::IndirectJmp { src: reg_from_json(get(v, "src")?)?, table })
        }
        "call" => Ok(Terminator::Call {
            target: BlockId(get_usize(v, "target")?),
            return_to: BlockId(get_usize(v, "return_to")?),
        }),
        "ret" => Ok(Terminator::Ret),
        k => Err(format!("unknown terminator kind `{k}`")),
    }
}

fn sandbox_to_json(s: &SandboxLayout) -> Json {
    Json::obj()
        .field("base", s.base)
        .field("data_pages", s.data_pages)
        .field("assist_page", s.assist_page)
        .field("line_offset", s.line_offset)
}

fn sandbox_from_json(v: &Json) -> Result<SandboxLayout, DecodeError> {
    let assist_page = match get(v, "assist_page")? {
        Json::Null => None,
        n => Some(n.as_u64().ok_or("assist_page is not an integer")?),
    };
    Ok(SandboxLayout {
        base: get_u64(v, "base")?,
        data_pages: get_u64(v, "data_pages")?,
        assist_page,
        line_offset: get_u64(v, "line_offset")?,
    })
}

/// Serialize a test case (blocks, sandbox, origin note).
pub fn test_case_to_json(tc: &TestCase) -> Json {
    let blocks: Vec<Json> = tc
        .blocks()
        .iter()
        .map(|b| {
            Json::obj()
                .field("id", b.id.0)
                .field("label", b.label.clone())
                .field("instrs", Json::Arr(b.instrs.iter().map(instr_to_json).collect()))
                .field("terminator", terminator_to_json(&b.terminator))
        })
        .collect();
    Json::obj()
        .field("origin", tc.origin())
        .field("sandbox", sandbox_to_json(&tc.sandbox()))
        .field("blocks", Json::Arr(blocks))
}

/// Deserialize a test case written by [`test_case_to_json`].
pub fn test_case_from_json(v: &Json) -> Result<TestCase, DecodeError> {
    let sandbox = in_field("sandbox", sandbox_from_json(get(v, "sandbox")?))?;
    let mut blocks = Vec::new();
    for (i, b) in get_arr(v, "blocks")?.iter().enumerate() {
        let block = (|| -> Result<BasicBlock, DecodeError> {
            let label = match get(b, "label")? {
                Json::Null => None,
                l => Some(l.as_str().ok_or("label is not a string")?.to_string()),
            };
            let instrs = get_arr(b, "instrs")?
                .iter()
                .enumerate()
                .map(|(k, inst)| in_field(&format!("instrs[{k}]"), instr_from_json(inst)))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(BasicBlock {
                id: BlockId(get_usize(b, "id")?),
                label,
                instrs,
                terminator: in_field(
                    "terminator",
                    terminator_from_json(get(b, "terminator")?),
                )?,
            })
        })();
        blocks.push(in_field(&format!("blocks[{i}]"), block)?);
    }
    let origin = get_str(v, "origin")?.to_string();
    Ok(TestCase::new(blocks, sandbox).with_origin(origin))
}

/// Serialize one architectural input (registers, flags, hex-encoded sandbox
/// memory).
pub fn input_to_json(input: &Input) -> Json {
    let mut mem = String::with_capacity(input.mem.len() * 2);
    for byte in &input.mem {
        mem.push_str(&format!("{byte:02x}"));
    }
    Json::obj()
        .field("regs", input.regs.to_vec())
        .field("flags", u64::from(input.flags.bits()))
        .field("mem", mem)
        .field("seed_id", input.seed_id)
}

/// Deserialize an input written by [`input_to_json`].
pub fn input_from_json(v: &Json) -> Result<Input, DecodeError> {
    let regs_json = get_arr(v, "regs")?;
    if regs_json.len() != 16 {
        return Err(format!("expected 16 registers, found {}", regs_json.len()));
    }
    let mut regs = [0u64; 16];
    for (i, r) in regs_json.iter().enumerate() {
        regs[i] = r.as_u64().ok_or_else(|| format!("regs[{i}] is not an integer"))?;
    }
    let hex = get_str(v, "mem")?;
    if hex.len() % 2 != 0 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err("mem is not an even-length hex string".to_string());
    }
    let mem = hex
        .as_bytes()
        .chunks(2)
        .map(|pair| {
            u8::from_str_radix(std::str::from_utf8(pair).expect("ascii hex"), 16)
                .expect("validated hex digits")
        })
        .collect();
    Ok(Input {
        regs,
        flags: FlagSet::from_bits(get_int(v, "flags")?),
        mem,
        seed_id: get_u64(v, "seed_id")?,
    })
}

fn htrace_to_json(t: &HTrace) -> Json {
    Json::obj().field("sets", t.sets().bits()).field("samples", u64::from(t.samples()))
}

fn htrace_from_json(v: &Json) -> Result<HTrace, DecodeError> {
    Ok(HTrace::from_parts(
        SetVector::from_bits(get_u64(v, "sets")?),
        get_int(v, "samples")?,
    ))
}

fn violation_to_json(violation: &Violation) -> Json {
    Json::obj()
        .field("input_a", violation.input_a)
        .field("input_b", violation.input_b)
        .field("htrace_a", htrace_to_json(&violation.htrace_a))
        .field("htrace_b", htrace_to_json(&violation.htrace_b))
        .field("ctrace_digest", violation.ctrace_digest)
}

fn violation_from_json(v: &Json) -> Result<Violation, DecodeError> {
    Ok(Violation {
        input_a: get_usize(v, "input_a")?,
        input_b: get_usize(v, "input_b")?,
        htrace_a: in_field("htrace_a", htrace_from_json(get(v, "htrace_a")?))?,
        htrace_b: in_field("htrace_b", htrace_from_json(get(v, "htrace_b")?))?,
        ctrace_digest: get_u64(v, "ctrace_digest")?,
    })
}

// ---------------------------------------------------------------------------
// Contract / vulnerability codecs.

/// Serialize a contract structurally (the name alone would lose the window /
/// nesting parameters).
pub fn contract_to_json(c: &Contract) -> Json {
    Json::obj()
        .field("observation", c.observation.name())
        .field("execution", c.execution.name())
        .field("speculation_window", c.speculation_window)
        .field("nested_speculation", c.nested_speculation)
        .field("expose_speculative_stores", c.expose_speculative_stores)
}

/// Deserialize a contract written by [`contract_to_json`].
pub fn contract_from_json(v: &Json) -> Result<Contract, DecodeError> {
    let obs = get_str(v, "observation")?;
    let observation = [ObservationClause::Mem, ObservationClause::Ct, ObservationClause::Arch]
        .into_iter()
        .find(|o| o.name() == obs)
        .ok_or_else(|| format!("unknown observation clause `{obs}`"))?;
    let exe = get_str(v, "execution")?;
    let execution = [
        ExecutionClause::Seq,
        ExecutionClause::Cond,
        ExecutionClause::Bpas,
        ExecutionClause::CondBpas,
    ]
    .into_iter()
    .find(|e| e.name() == exe)
    .ok_or_else(|| format!("unknown execution clause `{exe}`"))?;
    Ok(Contract {
        observation,
        execution,
        speculation_window: get_usize(v, "speculation_window")?,
        nested_speculation: get_bool(v, "nested_speculation")?,
        expose_speculative_stores: get_bool(v, "expose_speculative_stores")?,
    })
}

/// Resolve a canonical contract name (`"CT-SEQ"`, `"ARCH-SEQ"`,
/// `"CT-COND-NOSPECSTORE"`, ...) to the contract with default parameters —
/// the ergonomic form job submissions use.
pub fn contract_from_name(name: &str) -> Option<Contract> {
    [
        Contract::ct_seq(),
        Contract::ct_bpas(),
        Contract::ct_cond(),
        Contract::ct_cond_bpas(),
        Contract::mem_seq(),
        Contract::mem_cond(),
        Contract::arch_seq(),
        Contract::ct_cond_no_spec_store(),
    ]
    .into_iter()
    .find(|c| c.name() == name)
}

fn vuln_class_from_label(s: &str) -> Result<VulnClass, DecodeError> {
    [
        VulnClass::SpectreV1,
        VulnClass::SpectreV1Var,
        VulnClass::SpectreV4,
        VulnClass::SpectreV4Var,
        VulnClass::Mds,
        VulnClass::LviNull,
        VulnClass::SpeculativeStoreEviction,
        VulnClass::Unknown,
        VulnClass::SpectreV2,
        VulnClass::SpectreV5Ret,
    ]
    .into_iter()
    .find(|v| v.to_string() == s)
    .ok_or_else(|| format!("unknown vulnerability class `{s}`"))
}

// ---------------------------------------------------------------------------
// Reports.

/// Serialize a [`GadgetSignature`] (the static gadget classifier's output).
/// The derived `class` label rides along for consumers that only want the
/// leak-class string; decoding ignores it.
pub fn gadget_signature_to_json(g: &GadgetSignature) -> Json {
    Json::obj()
        .field("source", g.source.to_string())
        .field("transmitter", g.transmitter.to_string())
        .field("through_load", g.through_load)
        .field("var_latency", g.var_latency)
        .field("class", g.label())
}

/// Deserialize a signature written by [`gadget_signature_to_json`].
pub fn gadget_signature_from_json(v: &Json) -> Result<GadgetSignature, DecodeError> {
    let src = get_str(v, "source")?;
    let source = [
        SourceKind::CondBranch,
        SourceKind::IndirectBranch,
        SourceKind::Return,
        SourceKind::StoreBypass,
        SourceKind::AssistLoad,
        SourceKind::VarLatency,
    ]
    .into_iter()
    .find(|k| k.to_string() == src)
    .ok_or_else(|| format!("unknown source kind `{src}`"))?;
    let tx = get_str(v, "transmitter")?;
    let transmitter = [TransmitterKind::Load, TransmitterKind::Store]
        .into_iter()
        .find(|k| k.to_string() == tx)
        .ok_or_else(|| format!("unknown transmitter kind `{tx}`"))?;
    Ok(GadgetSignature {
        source,
        transmitter,
        through_load: get_bool(v, "through_load")?,
        var_latency: get_bool(v, "var_latency")?,
    })
}

/// Serialize the integer-sum [`EffectivenessStats`] aggregate (§5.2).
pub fn effectiveness_stats_to_json(e: &EffectivenessStats) -> Json {
    Json::obj()
        .field("total_inputs", e.total_inputs)
        .field("effective_inputs", e.effective_inputs)
        .field("classes", e.classes)
        .field("singleton_classes", e.singleton_classes)
}

/// Deserialize statistics written by [`effectiveness_stats_to_json`].
pub fn effectiveness_stats_from_json(v: &Json) -> Result<EffectivenessStats, DecodeError> {
    Ok(EffectivenessStats {
        total_inputs: get_usize(v, "total_inputs")?,
        effective_inputs: get_usize(v, "effective_inputs")?,
        classes: get_usize(v, "classes")?,
        singleton_classes: get_usize(v, "singleton_classes")?,
    })
}

/// Serialize a [`ViolationReport`]: the full counterexample (test case,
/// inputs, diverging trace pair), the violated contract, the exact `u64`
/// campaign seed and the detection counters.
pub fn violation_report_to_json(r: &ViolationReport) -> Json {
    Json::obj()
        .field("test_case", test_case_to_json(&r.test_case))
        .field("inputs", Json::Arr(r.inputs.iter().map(input_to_json).collect()))
        .field("violation", violation_to_json(&r.violation))
        .field("contract", contract_to_json(&r.contract))
        .field("test_case_seed", r.test_case_seed)
        .field("vulnerability", r.vulnerability.to_string())
        .field("gadget", r.gadget.as_ref().map(gadget_signature_to_json))
        .field("test_cases_until_detection", r.test_cases_until_detection)
        .field("inputs_until_detection", r.inputs_until_detection)
}

/// Deserialize a report written by [`violation_report_to_json`].
pub fn violation_report_from_json(v: &Json) -> Result<ViolationReport, DecodeError> {
    let inputs = get_arr(v, "inputs")?
        .iter()
        .enumerate()
        .map(|(i, input)| in_field(&format!("inputs[{i}]"), input_from_json(input)))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ViolationReport {
        test_case: in_field("test_case", test_case_from_json(get(v, "test_case")?))?,
        inputs,
        violation: in_field("violation", violation_from_json(get(v, "violation")?))?,
        contract: in_field("contract", contract_from_json(get(v, "contract")?))?,
        test_case_seed: get_u64(v, "test_case_seed")?,
        vulnerability: vuln_class_from_label(get_str(v, "vulnerability")?)?,
        // Absent in reports exported before the static classifier existed.
        gadget: match v.get("gadget") {
            None | Some(Json::Null) => None,
            Some(g) => Some(in_field("gadget", gadget_signature_from_json(g))?),
        },
        test_cases_until_detection: get_usize(v, "test_cases_until_detection")?,
        inputs_until_detection: get_usize(v, "inputs_until_detection")?,
    })
}

fn coverage_to_json(c: &PatternCoverage) -> Json {
    let pairs: Vec<Json> = c
        .covered_pairs()
        .iter()
        .map(|(a, b)| Json::Arr(vec![Json::Str(a.to_string()), Json::Str(b.to_string())]))
        .collect();
    Json::obj()
        .field("patterns", c.covered().iter().map(|p| p.to_string()).collect::<Vec<_>>())
        .field("pairs", Json::Arr(pairs))
}

fn coverage_from_json(v: &Json) -> Result<PatternCoverage, DecodeError> {
    let mut covered = BTreeSet::new();
    for p in get_arr(v, "patterns")? {
        let name = p.as_str().ok_or("pattern is not a string")?;
        covered
            .insert(Pattern::from_name(name).ok_or_else(|| format!("unknown pattern `{name}`"))?);
    }
    let mut covered_pairs = BTreeSet::new();
    for pair in get_arr(v, "pairs")? {
        let items = pair.as_array().ok_or("pair is not an array")?;
        let [a, b] = items else { return Err("pair is not a 2-element array".to_string()) };
        let parse = |p: &Json| -> Result<Pattern, DecodeError> {
            let name = p.as_str().ok_or("pattern is not a string")?;
            Pattern::from_name(name).ok_or_else(|| format!("unknown pattern `{name}`"))
        };
        covered_pairs.insert((parse(a)?, parse(b)?));
    }
    Ok(PatternCoverage::from_parts(covered, covered_pairs))
}

/// Serialize a [`FuzzReport`].  The duration is stored in exact nanoseconds;
/// `mean_effectiveness` round-trips through Rust's shortest-representation
/// float formatting.
pub fn fuzz_report_to_json(r: &FuzzReport) -> Json {
    Json::obj()
        .field("violation", r.violation.as_ref().map(violation_report_to_json))
        .field("test_cases", r.test_cases)
        .field("generated", r.generated)
        .field("statically_filtered", r.statically_filtered)
        .field("total_inputs", r.total_inputs)
        .field("rounds", r.rounds)
        .field("escalations", r.escalations)
        .field("duration_ns", duration_to_json(r.duration))
        .field("mean_effectiveness", r.mean_effectiveness)
        .field("coverage", coverage_to_json(&r.coverage))
}

/// Deserialize a report written by [`fuzz_report_to_json`].
pub fn fuzz_report_from_json(v: &Json) -> Result<FuzzReport, DecodeError> {
    let violation = match get(v, "violation")? {
        Json::Null => None,
        r => Some(in_field("violation", violation_report_from_json(r))?),
    };
    let test_cases = get_usize(v, "test_cases")?;
    Ok(FuzzReport {
        violation,
        test_cases,
        // Absent in reports exported before the static pre-filter existed,
        // where every generated test case was measured.
        generated: match v.get("generated") {
            None => test_cases,
            Some(_) => get_usize(v, "generated")?,
        },
        statically_filtered: match v.get("statically_filtered") {
            None => 0,
            Some(_) => get_usize(v, "statically_filtered")?,
        },
        total_inputs: get_usize(v, "total_inputs")?,
        rounds: get_usize(v, "rounds")?,
        escalations: get_usize(v, "escalations")?,
        duration: in_field("duration_ns", duration_from_json(get(v, "duration_ns")?))?,
        mean_effectiveness: get_f64(v, "mean_effectiveness")?,
        coverage: in_field("coverage", coverage_from_json(get(v, "coverage")?))?,
    })
}

// ---------------------------------------------------------------------------
// Matrix checkpoints and result payloads (the campaign service's spool and
// wire formats).

use revizor::orchestrator::{
    CellProgress, CellReport, GroupProgress, MatrixCheckpoint, MatrixReport,
};

fn cell_progress_to_json(c: &CellProgress) -> Json {
    Json::obj()
        .field("violation", c.violation.as_ref().map(violation_report_to_json))
        .field("test_cases", c.test_cases)
        .field("filtered", c.filtered)
        .field("total_inputs", c.total_inputs)
        .field("effectiveness", effectiveness_stats_to_json(&c.effectiveness))
        .field("detection_ns", duration_to_json(c.detection_time))
}

fn cell_progress_from_json(v: &Json) -> Result<CellProgress, DecodeError> {
    let violation = match get(v, "violation")? {
        Json::Null => None,
        r => Some(in_field("violation", violation_report_from_json(r))?),
    };
    Ok(CellProgress {
        violation,
        test_cases: get_usize(v, "test_cases")?,
        // Absent in pre-filter spools: nothing was ever filtered, and
        // effectiveness sums were not yet tracked.
        filtered: match v.get("filtered") {
            None => 0,
            Some(_) => get_usize(v, "filtered")?,
        },
        total_inputs: get_usize(v, "total_inputs")?,
        effectiveness: match v.get("effectiveness") {
            None => EffectivenessStats::default(),
            Some(e) => in_field("effectiveness", effectiveness_stats_from_json(e))?,
        },
        detection_time: in_field("detection_ns", duration_from_json(get(v, "detection_ns")?))?,
    })
}

fn group_progress_to_json(g: &GroupProgress) -> Json {
    Json::obj()
        .field("target_id", g.target_id)
        .field("next_index", g.next_index)
        .field("test_cases", g.test_cases)
        .field("filtered", g.filtered)
        .field("total_inputs", g.total_inputs)
        .field("effectiveness", Json::Arr(g.effectiveness.iter().map(effectiveness_stats_to_json).collect()))
        .field("round", g.round)
        .field("work_ns", duration_to_json(g.work))
        .field("escalations", g.escalations)
        .field("coverage_level", g.coverage_level)
        .field("round_improved", g.round_improved)
        .field("coverage", coverage_to_json(&g.coverage))
}

fn group_progress_from_json(v: &Json) -> Result<GroupProgress, DecodeError> {
    Ok(GroupProgress {
        target_id: get_int(v, "target_id")?,
        next_index: get_usize(v, "next_index")?,
        test_cases: get_usize(v, "test_cases")?,
        // Absent in pre-filter spools (see `cell_progress_from_json`).
        filtered: match v.get("filtered") {
            None => 0,
            Some(_) => get_usize(v, "filtered")?,
        },
        total_inputs: get_usize(v, "total_inputs")?,
        effectiveness: match v.get("effectiveness") {
            None => Vec::new(),
            Some(_) => get_arr(v, "effectiveness")?
                .iter()
                .enumerate()
                .map(|(i, e)| in_field(&format!("effectiveness[{i}]"), effectiveness_stats_from_json(e)))
                .collect::<Result<Vec<_>, _>>()?,
        },
        round: get_usize(v, "round")?,
        work: in_field("work_ns", duration_from_json(get(v, "work_ns")?))?,
        escalations: get_usize(v, "escalations")?,
        coverage_level: get_usize(v, "coverage_level")?,
        round_improved: get_bool(v, "round_improved")?,
        coverage: in_field("coverage", coverage_from_json(get(v, "coverage")?))?,
    })
}

/// Serialize a [`MatrixCheckpoint`] — the campaign service's spool format.
pub fn matrix_checkpoint_to_json(cp: &MatrixCheckpoint) -> Json {
    Json::obj()
        .field("wave", cp.wave)
        .field("seed", cp.seed)
        .field("budget", cp.budget)
        .field("round_size", cp.round_size)
        .field("escalation", cp.escalation)
        .field("config_digest", cp.config_digest)
        .field(
            "cells",
            Json::Arr(
                cp.cells.iter().map(|c| c.as_ref().map(cell_progress_to_json).into()).collect(),
            ),
        )
        .field("groups", Json::Arr(cp.groups.iter().map(group_progress_to_json).collect()))
}

/// Deserialize a checkpoint written by [`matrix_checkpoint_to_json`].
pub fn matrix_checkpoint_from_json(v: &Json) -> Result<MatrixCheckpoint, DecodeError> {
    let mut cells = Vec::new();
    for (i, c) in get_arr(v, "cells")?.iter().enumerate() {
        cells.push(match c {
            Json::Null => None,
            c => Some(in_field(&format!("cells[{i}]"), cell_progress_from_json(c))?),
        });
    }
    let groups = get_arr(v, "groups")?
        .iter()
        .enumerate()
        .map(|(i, g)| in_field(&format!("groups[{i}]"), group_progress_from_json(g)))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(MatrixCheckpoint {
        // Absent in pre-multi-host spools; those resume at wave 0 (the
        // counter is informational, never verdict-relevant).
        wave: match v.get("wave") {
            None => 0,
            Some(_) => get_usize(v, "wave")?,
        },
        seed: get_u64(v, "seed")?,
        budget: get_usize(v, "budget")?,
        round_size: get_usize(v, "round_size")?,
        escalation: get_bool(v, "escalation")?,
        config_digest: get_u64(v, "config_digest")?,
        cells,
        groups,
    })
}

/// A decoded checkpoint-transfer frame (see
/// [`checkpoint_transfer_to_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointTransfer {
    /// The job the checkpoint belongs to.
    pub job: String,
    /// The sender's [`MatrixCheckpoint::digest`], computed **before**
    /// encoding.  Compare against `checkpoint.digest()` after decoding: a
    /// mismatch means the codec dropped or distorted state in transit.
    pub digest: u64,
    /// The transferred snapshot (its `wave` field is the replication
    /// cursor: a job's transfers must arrive strictly increasing).
    pub checkpoint: MatrixCheckpoint,
}

impl CheckpointTransfer {
    /// Does the sender's digest match the decoded checkpoint?
    pub fn validates(&self) -> bool {
        self.digest == self.checkpoint.digest()
    }
}

/// Serialize one checkpoint transfer — the payload a worker host streams to
/// the coordinator after every wave so the coordinator's spool replica
/// stays current enough to reassign the job if the worker dies.  The
/// sender's digest rides along for end-to-end replication validation.
pub fn checkpoint_transfer_to_json(job: &str, cp: &MatrixCheckpoint) -> Json {
    Json::obj()
        .field("job", job)
        .field("wave", cp.wave)
        .field("digest", cp.digest())
        .field("checkpoint", matrix_checkpoint_to_json(cp))
}

/// Decode a transfer written by [`checkpoint_transfer_to_json`].  Decoding
/// does **not** verify the digest (callers decide how to handle a
/// replication mismatch); use [`CheckpointTransfer::validates`].
///
/// # Errors
/// Returns a message for missing/ill-formed fields.
pub fn checkpoint_transfer_from_json(v: &Json) -> Result<CheckpointTransfer, DecodeError> {
    let checkpoint =
        in_field("checkpoint", matrix_checkpoint_from_json(get(v, "checkpoint")?))?;
    let wave = get_usize(v, "wave")?;
    if wave != checkpoint.wave {
        return Err(format!(
            "transfer wave {wave} disagrees with the checkpoint's wave {}",
            checkpoint.wave
        ));
    }
    Ok(CheckpointTransfer {
        job: get_str(v, "job")?.to_string(),
        digest: get_u64(v, "digest")?,
        checkpoint,
    })
}

/// The **deterministic** part of a matrix result: one object per cell with
/// the verdict, counters, exact unit seed and the full violation report —
/// and no wall-clock fields.  Two runs of the same matrix seed render this
/// byte-identically, which is the campaign service's result contract (kill
/// + resume included); timing lives separately in [`matrix_timing_json`].
pub fn matrix_cells_json(report: &MatrixReport) -> Json {
    Json::Arr(report.cells.iter().map(cell_report_to_json).collect())
}

fn cell_report_to_json(cell: &CellReport) -> Json {
    Json::obj()
        .field("target", cell.target.id)
        .field("contract", cell.contract.name())
        .field("found", cell.found())
        .field("vulnerability", cell.vulnerability().map(|v| v.to_string()))
        .field("gadget_class", cell.violation.as_ref().and_then(|v| v.gadget.map(|g| g.label())))
        .field("test_cases", cell.test_cases)
        .field("statically_filtered", cell.filtered)
        .field("total_inputs", cell.total_inputs)
        .field("effectiveness", effectiveness_stats_to_json(&cell.effectiveness))
        .field("violation", cell.violation.as_ref().map(violation_report_to_json))
}

/// The wall-clock side channel of a matrix result: total duration plus the
/// per-cell attributed detection times, in milliseconds.  Nondeterministic
/// by nature, hence kept out of [`matrix_cells_json`].
pub fn matrix_timing_json(report: &MatrixReport) -> Json {
    Json::obj()
        .field("duration_ms", report.duration.as_secs_f64() * 1000.0)
        .field(
            "cells_ms",
            report
                .cells
                .iter()
                .map(|c| c.detection_time.as_secs_f64() * 1000.0)
                .collect::<Vec<_>>(),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use revizor::orchestrator::CampaignMatrix;
    use revizor::targets::Target;
    use revizor::{FuzzerConfig, Revizor};
    use rvz_executor::ExecutorConfig;
    use rvz_isa::builder::TestCaseBuilder;

    /// A campaign report with a real V1 violation (Target 5 × CT-SEQ).
    fn v1_report() -> ViolationReport {
        let report = CampaignMatrix::new(7)
            .with_budget(60)
            .add_cell(Target::target5(), Contract::ct_seq())
            .run();
        report.cells[0].violation.clone().expect("V1 found within 60 test cases")
    }

    #[test]
    fn violation_report_round_trips_on_a_real_v1_violation() {
        let report = v1_report();
        let doc = violation_report_to_json(&report);
        // Through the writer and parser: the decoded report is identical,
        // including the exact u64 seed and every input byte.
        let parsed = parse(&doc.render()).unwrap();
        let decoded = violation_report_from_json(&parsed).unwrap();
        assert_eq!(decoded, report);
        // The pretty and ASCII renderings carry the same document.
        assert_eq!(parse(&doc.render_pretty()).unwrap(), doc);
        assert_eq!(parse(&doc.render_ascii()).unwrap(), doc);
    }

    #[test]
    fn violation_report_replays_after_the_round_trip() {
        // The decoded counterexample is not just structurally equal — it
        // still reproduces the violation through the public API.
        let report = v1_report();
        let doc = violation_report_to_json(&report).render();
        let decoded = violation_report_from_json(&parse(&doc).unwrap()).unwrap();

        let target = Target::target5();
        let config = FuzzerConfig::for_target(&target, decoded.contract.clone())
            .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2));
        let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());
        let outcome = fuzzer.test_with_inputs(&decoded.test_case, &decoded.inputs).unwrap();
        let confirmed = outcome.confirmed_violation.expect("violation must replay");
        assert_eq!(
            (confirmed.input_a, confirmed.input_b),
            (report.violation.input_a, report.violation.input_b)
        );
    }

    #[test]
    fn fuzz_report_round_trips() {
        let target = Target::target5();
        let generator = rvz_gen::GeneratorConfig::for_subset(target.isa)
            .with_basic_blocks(4)
            .with_instructions(14);
        let config = FuzzerConfig::for_target(&target, Contract::ct_seq())
            .with_generator(generator)
            .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2))
            .with_inputs_per_test_case(20)
            .with_max_test_cases(40)
            .with_seed(1);
        let report = Revizor::new(target.cpu(), config).with_target(target.clone()).run();
        let doc = fuzz_report_to_json(&report).render();
        let decoded = fuzz_report_from_json(&parse(&doc).unwrap()).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn handwritten_gadget_with_every_terminator_round_trips() {
        // Gadgets exercise Call/Ret/IndirectJmp, which generated code does
        // not; round-trip them explicitly.
        for tc in [
            revizor::gadgets::spectre_v1(),
            revizor::gadgets::spectre_v4(),
            revizor::gadgets::mds_lfb(),
        ] {
            let doc = test_case_to_json(&tc).render();
            let decoded = test_case_from_json(&parse(&doc).unwrap()).unwrap();
            assert_eq!(decoded, tc);
        }
    }

    #[test]
    fn exotic_operands_round_trip() {
        use rvz_isa::Reg;
        let tc = TestCaseBuilder::new()
            .block("entry", |b| {
                b.push(Instr::Alu {
                    op: AluOp::Sbb,
                    dest: Operand::Mem(
                        MemOperand::full(Reg::R14, Reg::Rax, 8, -4096),
                        Width::Word,
                    ),
                    src: Operand::Imm(i64::MIN),
                    lock: true,
                });
                b.push(Instr::Lea { dest: Reg::Rcx, addr: MemOperand::base_disp(Reg::R14, -1) });
                b.exit();
            })
            .build();
        let doc = test_case_to_json(&tc).render();
        assert_eq!(test_case_from_json(&parse(&doc).unwrap()).unwrap(), tc);
    }

    #[test]
    fn contract_codec_covers_every_clause_combination() {
        for c in [
            Contract::ct_seq(),
            Contract::ct_bpas(),
            Contract::ct_cond(),
            Contract::ct_cond_bpas(),
            Contract::mem_seq(),
            Contract::mem_cond(),
            Contract::arch_seq(),
            Contract::ct_cond_no_spec_store(),
            Contract::ct_cond().with_speculation_window(17).with_nesting(true),
        ] {
            let doc = contract_to_json(&c).render();
            assert_eq!(contract_from_json(&parse(&doc).unwrap()).unwrap(), c);
        }
    }

    #[test]
    fn contract_names_resolve() {
        assert_eq!(contract_from_name("CT-SEQ"), Some(Contract::ct_seq()));
        assert_eq!(contract_from_name("CT-COND-BPAS"), Some(Contract::ct_cond_bpas()));
        assert_eq!(contract_from_name("ARCH-SEQ"), Some(Contract::arch_seq()));
        assert_eq!(contract_from_name("bogus"), None);
    }

    #[test]
    fn matrix_checkpoint_round_trips_mid_run() {
        use revizor::campaign::NoopObserver;
        let matrix = CampaignMatrix::new(7)
            .with_budget(40)
            .with_escalation(true)
            .add_cells(Target::target5(), Contract::table3_contracts());
        let mut run = matrix.start();
        run.step(&mut NoopObserver);
        run.step(&mut NoopObserver);
        let snapshot = run.checkpoint();
        let doc = matrix_checkpoint_to_json(&snapshot).render();
        let decoded = matrix_checkpoint_from_json(&parse(&doc).unwrap()).unwrap();
        assert_eq!(decoded, snapshot);
        // The decoded checkpoint is accepted by resume and completes to the
        // same verdicts as the uninterrupted run.
        let baseline = matrix.run();
        let mut resumed = matrix.resume(&decoded).expect("decoded checkpoint resumes");
        while resumed.step(&mut NoopObserver) {}
        let report = resumed.finish(&mut NoopObserver);
        assert_eq!(
            matrix_cells_json(&baseline).render(),
            matrix_cells_json(&report).render(),
            "deterministic payloads must be byte-identical"
        );
    }

    #[test]
    fn checkpoint_transfer_round_trips_and_validates_mid_run() {
        use revizor::campaign::NoopObserver;
        let matrix = CampaignMatrix::new(7)
            .with_budget(40)
            .add_cells(Target::target5(), Contract::table3_contracts());
        let mut run = matrix.start();
        run.step(&mut NoopObserver);
        run.step(&mut NoopObserver);
        let snapshot = run.checkpoint();
        // Through the writer and parser, as the worker protocol sends it.
        let doc = checkpoint_transfer_to_json("j-test-1", &snapshot).render();
        let transfer = checkpoint_transfer_from_json(&parse(&doc).unwrap()).unwrap();
        assert_eq!(transfer.job, "j-test-1");
        assert_eq!(transfer.checkpoint, snapshot);
        assert_eq!(transfer.checkpoint.wave, 2);
        // End-to-end replication validation: the digest computed before
        // encoding matches the digest of the decoded snapshot.
        assert!(transfer.validates(), "encode→decode must preserve the digest");
        // Tampering with the payload (or a codec regression) is caught.
        let mut tampered = transfer.clone();
        tampered.checkpoint.groups[0].next_index += 1;
        assert!(!tampered.validates());
        // A transfer whose wave header disagrees with its payload is
        // rejected at decode time.
        let bad = Json::obj()
            .field("job", "j")
            .field("wave", snapshot.wave + 7)
            .field("digest", snapshot.digest())
            .field("checkpoint", matrix_checkpoint_to_json(&snapshot));
        assert!(checkpoint_transfer_from_json(&bad).is_err());
    }

    #[test]
    fn i64_codec_round_trips_priorities() {
        for v in [
            0i64,
            1,
            -1,
            42,
            -42,
            -9_000_000_000_000_000,
            -9_000_000_000_000_001,
            i64::MAX,
            i64::MIN,
        ] {
            let doc = i64_to_json(v).render();
            assert_eq!(i64_from_json(&parse(&doc).unwrap()).unwrap(), v, "{v}");
        }
        // Small negatives are written as the plain number standard
        // consumers expect — not the {"neg": …} escape hatch.
        assert_eq!(i64_to_json(-3).render(), "-3");
        // The plain negative form standard emitters produce (serde_json,
        // python json) decodes too — the documented "any signed integer".
        assert_eq!(i64_from_json(&parse("-3").unwrap()).unwrap(), -3);
        assert_eq!(
            i64_from_json(&parse("-9000000000000000").unwrap()).unwrap(),
            -9_000_000_000_000_000
        );
        assert!(i64_from_json(&parse("-3.5").unwrap()).is_err());
        assert!(i64_from_json(&Json::Str("high".into())).is_err());
    }

    #[test]
    fn malformed_documents_error_instead_of_panicking() {
        let cases = [
            "{}",
            r#"{"test_case": 3}"#,
            r#"{"regs": [1,2], "flags": 0, "mem": "zz", "seed_id": 0}"#,
        ];
        for text in cases {
            let doc = parse(text).unwrap();
            assert!(violation_report_from_json(&doc).is_err());
        }
        assert!(input_from_json(&parse(r#"{"regs":[],"flags":0,"mem":"","seed_id":0}"#).unwrap())
            .is_err());
        assert!(input_from_json(
            &parse(r#"{"regs":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],"flags":0,"mem":"0g","seed_id":0}"#)
                .unwrap()
        )
        .is_err());
    }
}
