//! Job specifications: the submittable form of a [`CampaignMatrix`].
//!
//! A job names its cells by `(target id, contract name)` and carries the
//! scalar matrix parameters; [`JobSpec::to_matrix`] resolves it against the
//! Table 2 targets and the canonical contracts.  The JSON codec is the
//! submit side of the wire protocol (see the crate docs).

use revizor::orchestrator::CampaignMatrix;
use revizor::targets::Target;
use rvz_bench::json::Json;
use rvz_bench::report::{contract_from_name, i64_from_json, i64_to_json};

/// A submittable fuzzing job: the parameters of one [`CampaignMatrix`].
///
/// The defaults mirror [`CampaignMatrix::new`]; every field can be
/// overridden in the submitted JSON document.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Matrix seed (verdicts are a pure function of it and the cell list).
    pub seed: u64,
    /// Test-case budget per cell group.
    pub budget: usize,
    /// Test cases per scheduling round (one checkpointable wave unit).
    pub round_size: usize,
    /// Worker threads of the job's shared measurement pool.
    pub parallelism: usize,
    /// Inputs generated per test case.
    pub inputs_per_test_case: usize,
    /// Measurement repetitions per input sequence.
    pub repetitions: usize,
    /// Generator basic-block count.
    pub basic_blocks: usize,
    /// Generator instruction count.
    pub instructions: usize,
    /// Branch-then-load placement bias (see
    /// [`rvz_gen::GeneratorConfig::branch_then_load_bias`]).
    pub branch_then_load_bias: bool,
    /// §5.6 diversity escalation per cell group.
    pub escalation: bool,
    /// Scheduling priority: among queued jobs, higher drains first (FIFO
    /// within a priority).  Does not preempt a job that already runs.
    pub priority: i64,
    /// Owning tenant, stamped by the server from the authenticated token
    /// (never trusted from the submitted document — the front-end
    /// overwrites it).  `None` on open-mode servers; tenantless jobs are
    /// visible to every authenticated client.  Carried in the spec so
    /// ownership survives spool restarts; it never affects verdicts.
    pub tenant: Option<String>,
    /// The matrix cells: `(target id, canonical contract name)`.  Target
    /// ids resolve against [`Target::catalog`] — Table 2 (1-8) plus the
    /// predictor zoo (9-13).
    pub cells: Vec<(u8, String)>,
}

impl JobSpec {
    /// A job with the default matrix parameters and no cells.
    pub fn new(seed: u64) -> JobSpec {
        JobSpec {
            seed,
            budget: 200,
            round_size: 10,
            parallelism: 1,
            inputs_per_test_case: 20,
            repetitions: 2,
            basic_blocks: 4,
            instructions: 14,
            branch_then_load_bias: true,
            escalation: false,
            priority: 0,
            tenant: None,
            cells: Vec::new(),
        }
    }

    /// The full Table 3 job: every target against every CT-* contract.
    pub fn table3(seed: u64) -> JobSpec {
        let mut spec = JobSpec::new(seed);
        for target in Target::all() {
            for contract in rvz_model::Contract::table3_contracts() {
                spec.cells.push((target.id, contract.name()));
            }
        }
        spec
    }

    /// Builder: add one `(target id, contract name)` cell.
    pub fn add_cell(mut self, target_id: u8, contract: &str) -> JobSpec {
        self.cells.push((target_id, contract.to_string()));
        self
    }

    /// Builder: set the per-group budget.
    pub fn with_budget(mut self, budget: usize) -> JobSpec {
        self.budget = budget;
        self
    }

    /// Builder: set the matrix seed.
    pub fn with_seed(mut self, seed: u64) -> JobSpec {
        self.seed = seed;
        self
    }

    /// Builder: set the scheduling priority (higher drains first).
    pub fn with_priority(mut self, priority: i64) -> JobSpec {
        self.priority = priority;
        self
    }

    /// Builder: set the owning tenant (see [`JobSpec::tenant`]).
    pub fn with_tenant(mut self, tenant: &str) -> JobSpec {
        self.tenant = Some(tenant.to_string());
        self
    }

    /// The distinct target ids of the spec's cells, in first-seen order —
    /// the job's work-unit layout.  One unit per target group: this is
    /// exactly the order [`CampaignMatrix::group_matrices`] splits the
    /// resolved matrix in, so unit `i` always names `group_targets()[i]`.
    pub fn group_targets(&self) -> Vec<u8> {
        let mut targets: Vec<u8> = Vec::new();
        for (target, _) in &self.cells {
            if !targets.contains(target) {
                targets.push(*target);
            }
        }
        targets
    }

    /// Resolve the spec into a runnable matrix.
    ///
    /// # Errors
    /// Returns a message for unknown target ids or contract names.
    pub fn to_matrix(&self) -> Result<CampaignMatrix, String> {
        let targets = Target::catalog();
        let mut matrix = CampaignMatrix::new(self.seed)
            .with_budget(self.budget)
            .with_round_size(self.round_size)
            .with_parallelism(self.parallelism)
            .with_inputs_per_test_case(self.inputs_per_test_case)
            .with_repetitions(self.repetitions)
            .with_generator_size(self.basic_blocks, self.instructions)
            .with_branch_then_load_bias(self.branch_then_load_bias)
            .with_escalation(self.escalation);
        for (target_id, contract_name) in &self.cells {
            let target = targets
                .iter()
                .find(|t| t.id == *target_id)
                .ok_or_else(|| {
                    format!("unknown target id {target_id} (Table 2 has 1-8, the predictor zoo 9-13)")
                })?;
            let contract = contract_from_name(contract_name)
                .ok_or_else(|| format!("unknown contract `{contract_name}`"))?;
            matrix = matrix.add_cell(target.clone(), contract);
        }
        Ok(matrix)
    }

    /// Serialize the spec (the `spec` field of a `submit` request).  The
    /// tenant field is emitted only when set, so tenantless spool records
    /// and submissions keep their pre-auth shape byte-for-byte.
    pub fn to_json(&self) -> Json {
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|(t, c)| Json::obj().field("target", *t).field("contract", c.as_str()))
            .collect();
        let mut doc = Json::obj();
        if let Some(tenant) = &self.tenant {
            doc = doc.field("tenant", tenant.as_str());
        }
        doc.field("seed", self.seed)
            .field("budget", self.budget)
            .field("round_size", self.round_size)
            .field("parallelism", self.parallelism)
            .field("inputs_per_test_case", self.inputs_per_test_case)
            .field("repetitions", self.repetitions)
            .field("basic_blocks", self.basic_blocks)
            .field("instructions", self.instructions)
            .field("branch_then_load_bias", self.branch_then_load_bias)
            .field("escalation", self.escalation)
            .field("priority", i64_to_json(self.priority))
            .field("cells", Json::Arr(cells))
    }

    /// Deserialize a spec.  Only `seed` and `cells` are required; every
    /// other field falls back to the [`JobSpec::new`] default, so
    /// hand-written submissions stay short.
    ///
    /// # Errors
    /// Returns a message for missing/ill-typed fields.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let seed = v
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("spec needs an integer `seed` field")?;
        let mut spec = JobSpec::new(seed);
        let usize_field = |key: &str, default: usize| -> Result<usize, String> {
            match v.get(key) {
                None => Ok(default),
                Some(n) => n
                    .as_u64()
                    .map(|n| n as usize)
                    .ok_or_else(|| format!("spec field `{key}` is not an integer")),
            }
        };
        spec.budget = usize_field("budget", spec.budget)?;
        spec.round_size = usize_field("round_size", spec.round_size)?;
        spec.parallelism = usize_field("parallelism", spec.parallelism)?;
        spec.inputs_per_test_case =
            usize_field("inputs_per_test_case", spec.inputs_per_test_case)?;
        spec.repetitions = usize_field("repetitions", spec.repetitions)?;
        spec.basic_blocks = usize_field("basic_blocks", spec.basic_blocks)?;
        spec.instructions = usize_field("instructions", spec.instructions)?;
        let bool_field = |key: &str, default: bool| -> Result<bool, String> {
            match v.get(key) {
                None => Ok(default),
                Some(b) => {
                    b.as_bool().ok_or_else(|| format!("spec field `{key}` is not a boolean"))
                }
            }
        };
        spec.branch_then_load_bias =
            bool_field("branch_then_load_bias", spec.branch_then_load_bias)?;
        spec.escalation = bool_field("escalation", spec.escalation)?;
        spec.priority = match v.get("priority") {
            None => 0,
            Some(p) => i64_from_json(p).map_err(|e| format!("spec field `priority`: {e}"))?,
        };
        spec.tenant = match v.get("tenant") {
            None | Some(Json::Null) => None,
            Some(t) => Some(
                t.as_str()
                    .map(str::to_string)
                    .ok_or("spec field `tenant` is not a string")?,
            ),
        };
        let cells = v
            .get("cells")
            .and_then(Json::as_array)
            .ok_or("spec needs a `cells` array")?;
        for (i, cell) in cells.iter().enumerate() {
            let target = cell
                .get("target")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("cells[{i}] needs an integer `target`"))?;
            // Reject out-of-range ids here: `as u8` truncation would
            // silently fuzz a *different* target (261 -> 5).
            let target = u8::try_from(target)
                .map_err(|_| format!("cells[{i}]: target id {target} is out of range"))?;
            let contract = cell
                .get("contract")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("cells[{i}] needs a string `contract`"))?;
            spec.cells.push((target, contract.to_string()));
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_bench::json::parse;

    #[test]
    fn spec_round_trips() {
        for priority in [0i64, 7, -3, i64::MIN] {
            let spec = JobSpec::new(7)
                .with_budget(40)
                .with_priority(priority)
                .add_cell(5, "CT-SEQ")
                .add_cell(5, "CT-BPAS")
                .add_cell(1, "ARCH-SEQ");
            let doc = spec.to_json().render();
            assert_eq!(JobSpec::from_json(&parse(&doc).unwrap()).unwrap(), spec);
            let owned = spec.with_tenant("acme");
            let doc = owned.to_json().render();
            assert_eq!(JobSpec::from_json(&parse(&doc).unwrap()).unwrap(), owned);
        }
    }

    #[test]
    fn minimal_submission_uses_defaults() {
        let doc = parse(r#"{"seed": 3, "cells": [{"target": 5, "contract": "CT-SEQ"}]}"#).unwrap();
        let spec = JobSpec::from_json(&doc).unwrap();
        assert_eq!(spec.budget, 200);
        assert_eq!(spec.cells, vec![(5, "CT-SEQ".to_string())]);
        assert!(spec.to_matrix().is_ok());
    }

    #[test]
    fn resolution_rejects_unknown_names() {
        assert!(JobSpec::new(1).add_cell(99, "CT-SEQ").to_matrix().is_err());
        assert!(JobSpec::new(1).add_cell(5, "CT-NOPE").to_matrix().is_err());
    }

    #[test]
    fn group_targets_follow_cell_discovery_order() {
        let spec = JobSpec::new(1)
            .add_cell(5, "CT-SEQ")
            .add_cell(1, "CT-SEQ")
            .add_cell(5, "CT-BPAS")
            .add_cell(4, "CT-SEQ");
        assert_eq!(spec.group_targets(), vec![5, 1, 4]);
        // The unit layout matches the matrix's group split exactly.
        let subs = spec.to_matrix().unwrap().group_matrices();
        let sub_targets: Vec<u8> =
            subs.iter().map(|m| m.cells()[0].target.id).collect();
        assert_eq!(spec.group_targets(), sub_targets);
    }

    #[test]
    fn table3_spec_resolves_to_32_cells() {
        let matrix = JobSpec::table3(30).to_matrix().unwrap();
        assert_eq!(matrix.cells().len(), 32);
    }

    #[test]
    fn zoo_target_ids_resolve() {
        // Predictor-zoo cells are addressable through the same job codec;
        // the resolved targets carry their predictor config and scenario.
        let matrix = JobSpec::new(4)
            .add_cell(9, "CT-SEQ")
            .add_cell(12, "CT-COND-BPAS")
            .to_matrix()
            .unwrap();
        assert_eq!(matrix.cells().len(), 2);
        assert!(matrix.cells()[0].target.cpu_config.name.contains("TAGE"));
        assert!(matrix.cells()[1].target.scenario.is_some());
        assert!(JobSpec::new(4).add_cell(14, "CT-SEQ").to_matrix().is_err());
    }
}
