//! The executor: priming, repeated measurement and noise filtering.

use crate::htrace::HTrace;
use crate::mode::{MeasurementMode, NoiseConfig, SideChannelKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rvz_cache::{EvictReload, FlushReload, PrimeProbe, SetVector, SideChannel};
use rvz_emu::Fault;
use rvz_isa::{DecodedProgram, Input, TestCase};
use rvz_uarch::{CpuUnderTest, RunOptions};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Measurement mode (cache attack + assists).
    pub mode: MeasurementMode,
    /// Number of measurement rounds per input sequence (the paper repeats
    /// each measurement 50 times).
    pub repetitions: usize,
    /// Warm-up rounds executed before recording starts.
    pub warmup_rounds: usize,
    /// Minimum number of occurrences for a distinct trace to be kept; the
    /// paper discards traces observed only once ("one-off traces").
    pub outlier_min_count: usize,
    /// Reset the microarchitectural state before each test case (but not
    /// between the inputs of one test case — priming relies on the state
    /// carrying over between inputs).
    pub reset_between_test_cases: bool,
    /// Synthetic noise injection.
    pub noise: NoiseConfig,
}

impl ExecutorConfig {
    /// The paper's configuration: 50 repetitions, a few warm-up rounds,
    /// one-off traces discarded.
    pub fn paper(mode: MeasurementMode) -> ExecutorConfig {
        ExecutorConfig {
            mode,
            repetitions: 50,
            warmup_rounds: 3,
            outlier_min_count: 2,
            reset_between_test_cases: true,
            noise: NoiseConfig::none(),
        }
    }

    /// A fast configuration for unit tests and benchmarks on the (noise-free
    /// by default) simulator: fewer repetitions, same structure.
    pub fn fast(mode: MeasurementMode) -> ExecutorConfig {
        ExecutorConfig {
            mode,
            repetitions: 3,
            warmup_rounds: 1,
            outlier_min_count: 2,
            reset_between_test_cases: true,
            noise: NoiseConfig::none(),
        }
    }

    /// Replace the noise model.
    pub fn with_noise(mut self, noise: NoiseConfig) -> ExecutorConfig {
        self.noise = noise;
        self
    }

    /// Replace the repetition count.
    pub fn with_repetitions(mut self, repetitions: usize) -> ExecutorConfig {
        self.repetitions = repetitions.max(1);
        self
    }
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig::fast(MeasurementMode::prime_probe())
    }
}

/// Reusable per-executor measurement state: the side channel and the
/// per-input sample buffers.
///
/// Constructing a boxed channel and growing fresh sample vectors for every
/// single measurement used to dominate `collect_htraces`; the session is
/// built once and reused across all repetitions, inputs and — as long as the
/// channel key (attack kind + victim sandbox) stays the same — across whole
/// test cases and batches.
#[derive(Debug)]
struct MeasurementSession {
    /// What the channel was built for: the attack kind plus the victim
    /// sandbox `(base, size)` it monitors.
    key: (SideChannelKind, u64, u64),
    channel: Box<dyn SideChannel>,
    /// Per-input sample buffers, cleared (but not deallocated) per
    /// collection.
    samples: Vec<Vec<SetVector>>,
}

impl MeasurementSession {
    /// Session key for a measurement of `tc` under `kind`.  Prime+Probe
    /// never reads the victim sandbox, so its sessions are shared across
    /// all test cases; the reload channels monitor the sandbox and are
    /// keyed by it.
    fn key_for(kind: SideChannelKind, tc: &TestCase) -> (SideChannelKind, u64, u64) {
        match kind {
            SideChannelKind::PrimeProbe => (kind, 0, 0),
            SideChannelKind::FlushReload | SideChannelKind::EvictReload => {
                let sandbox = tc.sandbox();
                (kind, sandbox.base, sandbox.size())
            }
        }
    }

    fn new(kind: SideChannelKind, tc: &TestCase) -> MeasurementSession {
        let sandbox = tc.sandbox();
        let channel: Box<dyn SideChannel> = match kind {
            SideChannelKind::PrimeProbe => Box::new(PrimeProbe::new()),
            SideChannelKind::FlushReload => Box::new(FlushReload::new(sandbox.base, sandbox.size())),
            SideChannelKind::EvictReload => Box::new(EvictReload::new(sandbox.base, sandbox.size())),
        };
        MeasurementSession { key: Self::key_for(kind, tc), channel, samples: Vec::new() }
    }

    /// Clear the sample buffers for a fresh collection over `inputs` inputs,
    /// keeping their allocations.
    fn begin_collection(&mut self, inputs: usize) {
        self.channel.reset();
        self.samples.resize_with(inputs, Vec::new);
        for s in &mut self.samples {
            s.clear();
        }
    }
}

/// Opaque snapshot of the executor's synthetic-noise stream, taken with
/// [`Executor::noise_checkpoint`].
///
/// Restoring it rewinds the noise PRNG to the snapshot position without
/// touching the seed configuration.  The campaign pipeline uses this to
/// check one collected set of hardware traces against a whole contract
/// slate: each contract's false-positive filters re-measure (priming swap,
/// §5.3) starting from the stream position right after the shared baseline
/// collection — exactly where an independent single-contract evaluation
/// would stand — so verdicts do not depend on the slate's composition.
#[derive(Debug, Clone)]
pub struct NoiseCheckpoint {
    rng: SmallRng,
}

/// The executor: collects hardware traces from a [`CpuUnderTest`].
#[derive(Debug)]
pub struct Executor<C: CpuUnderTest> {
    cpu: C,
    config: ExecutorConfig,
    noise_rng: SmallRng,
    session: Option<MeasurementSession>,
    collections: u64,
}

impl<C: CpuUnderTest> Executor<C> {
    /// Create an executor around a CPU under test.
    pub fn new(cpu: C, config: ExecutorConfig) -> Executor<C> {
        Executor {
            cpu,
            config,
            noise_rng: SmallRng::seed_from_u64(config.noise.seed),
            session: None,
            collections: 0,
        }
    }

    /// The CPU under test.
    pub fn cpu(&self) -> &C {
        &self.cpu
    }

    /// Mutable access to the CPU under test.
    pub fn cpu_mut(&mut self) -> &mut C {
        &mut self.cpu
    }

    /// The configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// Number of [`collect_htraces`](Executor::collect_htraces) sequence
    /// collections performed so far (each collection runs the full
    /// warm-up + repetition schedule over one priming sequence).
    pub fn collection_count(&self) -> u64 {
        self.collections
    }

    /// Replace the noise model and restart its stream from the new seed.
    ///
    /// Campaign round workers derive one noise stream per test case (see
    /// [`NoiseConfig::for_test_case_seed`]) so that a measurement never
    /// depends on which worker — or in which order — it runs; this hook lets
    /// the sequential replay APIs do the same on a long-lived executor.
    pub fn reseed_noise(&mut self, noise: NoiseConfig) {
        self.config.noise = noise;
        self.noise_rng = SmallRng::seed_from_u64(noise.seed);
    }

    /// Snapshot the current position of the synthetic-noise stream.
    pub fn noise_checkpoint(&self) -> NoiseCheckpoint {
        NoiseCheckpoint { rng: self.noise_rng.clone() }
    }

    /// Rewind the synthetic-noise stream to a snapshot taken with
    /// [`Executor::noise_checkpoint`] on this (or an identically seeded)
    /// executor.  The noise configuration itself is left untouched.
    pub fn restore_noise_checkpoint(&mut self, checkpoint: &NoiseCheckpoint) {
        self.noise_rng = checkpoint.rng.clone();
    }

    /// Take (or build) the measurement session for this test case.
    fn session_for(&mut self, tc: &TestCase) -> MeasurementSession {
        let key = MeasurementSession::key_for(self.config.mode.channel, tc);
        match self.session.take() {
            Some(session) if session.key == key => session,
            _ => MeasurementSession::new(self.config.mode.channel, tc),
        }
    }

    fn run_options(&self) -> RunOptions {
        RunOptions { enable_assists: self.config.mode.assists }
    }

    /// Perform a single measurement of one input: prepare the side channel,
    /// run the test case, probe.  Returns `None` when the sample is
    /// discarded (simulated SMI pollution).
    fn measure_once(
        &mut self,
        channel: &mut dyn SideChannel,
        prog: &DecodedProgram,
        input: &Input,
    ) -> Result<Option<SetVector>, Fault> {
        channel.prepare(self.cpu.cache_mut());
        let opts = self.run_options();
        self.cpu.run_decoded(prog, input, &opts)?;
        let mut sets = channel.measure(self.cpu.cache_mut());

        if self.config.noise.is_enabled() {
            if self.noise_rng.gen_bool(self.config.noise.smi_probability) {
                // An SMI polluted the measurement; the executor detects it
                // via the SMI counter and discards the sample (§5.3).
                return Ok(None);
            }
            if self.noise_rng.gen_bool(self.config.noise.one_off_probability) {
                let spurious = self.noise_rng.gen_range(0..SetVector::SETS);
                sets = sets.union(SetVector::from_sets([spurious]));
            }
        }
        Ok(Some(sets))
    }

    /// Collect one merged hardware trace per input (§5.3).
    ///
    /// The inputs are executed in sequence (priming), the whole sequence is
    /// repeated after warm-up rounds, one-off traces are discarded, and the
    /// remaining traces of each input are merged by union.
    ///
    /// # Errors
    /// Propagates architectural faults from the CPU under test.
    ///
    /// # Panics
    /// Panics if the test case fails decode-time validation.
    pub fn collect_htraces(&mut self, tc: &TestCase, inputs: &[Input]) -> Result<Vec<HTrace>, Fault> {
        let prog =
            DecodedProgram::decode(tc).unwrap_or_else(|e| panic!("malformed test case: {e}"));
        self.collect_htraces_decoded(&prog, inputs)
    }

    /// [`Executor::collect_htraces`] over a pre-decoded program.
    ///
    /// The decode cost is paid once and amortized over the whole warm-up +
    /// repetition schedule (`(warmup + repetitions) × inputs` runs); callers
    /// that re-measure the same test case — the priming-swap artifact check,
    /// the campaign's nesting re-check — reuse the program across
    /// collections too.
    ///
    /// # Errors
    /// Propagates architectural faults from the CPU under test.
    pub fn collect_htraces_decoded(
        &mut self,
        prog: &DecodedProgram,
        inputs: &[Input],
    ) -> Result<Vec<HTrace>, Fault> {
        self.collections += 1;
        if self.config.reset_between_test_cases {
            self.cpu.reset_uarch();
        }
        let mut session = self.session_for(prog.source());
        session.begin_collection(inputs.len());
        let result = self.collect_into_session(&mut session, prog, inputs);
        let traces = result.map(|()| {
            session.samples.iter().map(|s| self.merge_samples(s)).collect()
        });
        // Keep the session (channel caches, buffers) for the next collection
        // even on a faulting test case.
        self.session = Some(session);
        traces
    }

    /// The warm-up + repetition schedule of one collection, filling the
    /// session's per-input sample buffers.
    fn collect_into_session(
        &mut self,
        session: &mut MeasurementSession,
        prog: &DecodedProgram,
        inputs: &[Input],
    ) -> Result<(), Fault> {
        for _ in 0..self.config.warmup_rounds {
            for input in inputs {
                let _ = self.measure_once(session.channel.as_mut(), prog, input)?;
            }
        }
        for _ in 0..self.config.repetitions.max(1) {
            for (i, input) in inputs.iter().enumerate() {
                if let Some(sets) = self.measure_once(session.channel.as_mut(), prog, input)? {
                    session.samples[i].push(sets);
                }
            }
        }
        Ok(())
    }

    /// Collect hardware traces for a batch of test cases in one call,
    /// reusing the measurement session (side channel and sample buffers)
    /// across the whole batch.
    ///
    /// The batch is measured in order and produces byte-identical traces to
    /// calling [`collect_htraces`](Executor::collect_htraces) once per entry
    /// on the same executor — including under synthetic noise, which draws
    /// from a single stream across the batch.
    ///
    /// # Errors
    /// Propagates architectural faults from the CPU under test.
    pub fn collect_htraces_batch(
        &mut self,
        batch: &[(&TestCase, &[Input])],
    ) -> Result<Vec<Vec<HTrace>>, Fault> {
        let mut out = Vec::with_capacity(batch.len());
        for &(tc, inputs) in batch {
            out.push(self.collect_htraces(tc, inputs)?);
        }
        Ok(out)
    }

    /// Discard one-off traces and merge the rest by union.
    ///
    /// When every distinct sample falls below the outlier threshold, the
    /// most frequent sample is kept (ties broken toward the greater set
    /// vector, so the merge is a deterministic function of the sample
    /// multiset rather than of hash order).
    pub fn merge_samples(&self, samples: &[SetVector]) -> HTrace {
        if samples.is_empty() {
            return HTrace::empty();
        }
        let mut counts: HashMap<SetVector, usize> = HashMap::new();
        for s in samples {
            *counts.entry(*s).or_insert(0) += 1;
        }
        let threshold = if samples.len() >= self.config.outlier_min_count {
            self.config.outlier_min_count
        } else {
            1
        };
        let mut kept: Vec<SetVector> =
            counts.iter().filter(|(_, &c)| c >= threshold).map(|(s, _)| *s).collect();
        if kept.is_empty() {
            // Everything looked like noise; fall back to the most frequent
            // sample so the input still has a trace.  Ties are broken by the
            // set vector itself: `HashMap` iteration order must not leak
            // into the merged trace.
            kept = counts
                .iter()
                .max_by_key(|(s, &c)| (c, *s))
                .map(|(s, _)| vec![*s])
                .unwrap_or_default();
        }
        let mut merged = HTrace::empty();
        for s in kept {
            merged.merge(HTrace::from_sets(s));
        }
        merged
    }

    /// The priming-swap check of §5.3: given two inputs (by index) whose
    /// already-collected traces (`baseline`) diverge, swap them in the
    /// priming sequence and re-measure.  If each input reproduces the
    /// other's trace in the other's context, the divergence was caused by
    /// the microarchitectural context — a measurement artifact, not a leak.
    ///
    /// `baseline` must be the traces collected from the unswapped `inputs`
    /// (the caller already has them from the collection that surfaced the
    /// divergence).  Reusing them cuts the check from three sequence
    /// collections to two, and — under synthetic noise — keeps the verdict
    /// independent of measurement order: re-measuring the baseline would
    /// advance the noise stream, so the same divergence could produce
    /// different verdicts depending on how many checks ran before it.
    ///
    /// Returns `true` when the divergence is an artifact (false positive).
    ///
    /// # Panics
    /// If `i`/`j` are out of range or `baseline` does not cover `inputs`.
    ///
    /// # Errors
    /// Propagates architectural faults from the CPU under test.
    pub fn is_measurement_artifact(
        &mut self,
        tc: &TestCase,
        inputs: &[Input],
        baseline: &[HTrace],
        i: usize,
        j: usize,
    ) -> Result<bool, Fault> {
        let prog =
            DecodedProgram::decode(tc).unwrap_or_else(|e| panic!("malformed test case: {e}"));
        self.is_measurement_artifact_decoded(&prog, inputs, baseline, i, j)
    }

    /// [`Executor::is_measurement_artifact`] over a pre-decoded program.
    ///
    /// # Panics
    /// If `i`/`j` are out of range or `baseline` does not cover `inputs`.
    ///
    /// # Errors
    /// Propagates architectural faults from the CPU under test.
    pub fn is_measurement_artifact_decoded(
        &mut self,
        prog: &DecodedProgram,
        inputs: &[Input],
        baseline: &[HTrace],
        i: usize,
        j: usize,
    ) -> Result<bool, Fault> {
        assert!(i < inputs.len() && j < inputs.len(), "input indices out of range");
        assert_eq!(baseline.len(), inputs.len(), "baseline must cover every input");

        // Data_j measured in Ctx_i.
        let mut seq_i = inputs.to_vec();
        seq_i[i] = inputs[j].clone();
        let swapped_i = self.collect_htraces_decoded(prog, &seq_i)?;

        // Data_i measured in Ctx_j.
        let mut seq_j = inputs.to_vec();
        seq_j[j] = inputs[i].clone();
        let swapped_j = self.collect_htraces_decoded(prog, &seq_j)?;

        let same_in_ctx_i = swapped_i[i].equivalent(&baseline[i]);
        let same_in_ctx_j = swapped_j[j].equivalent(&baseline[j]);
        Ok(same_in_ctx_i && same_in_ctx_j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_isa::builder::TestCaseBuilder;
    use rvz_isa::{Cond, Reg};
    use rvz_uarch::{SpecCpu, UarchConfig};

    fn direct_load_tc() -> TestCase {
        TestCaseBuilder::new()
            .block("entry", |b| {
                b.and_imm(Reg::Rax, 0b111111000000);
                b.load(Reg::Rbx, Reg::R14, Reg::Rax);
                b.exit();
            })
            .build()
    }

    fn v1_tc() -> TestCase {
        TestCaseBuilder::new()
            .block("entry", |b| {
                b.cmp_imm(Reg::Rax, 8);
                b.jcc(Cond::B, "in", "out");
            })
            .block("in", |b| {
                b.and_imm(Reg::Rbx, 0b111111000000);
                b.load(Reg::Rcx, Reg::R14, Reg::Rbx);
                b.jmp("out");
            })
            .block("out", |b| b.exit())
            .build()
    }

    fn input_with(tc: &TestCase, f: impl FnOnce(&mut Input)) -> Input {
        let mut i = Input::zeroed(tc.sandbox());
        f(&mut i);
        i
    }

    fn executor(config: ExecutorConfig) -> Executor<SpecCpu> {
        Executor::new(SpecCpu::new(UarchConfig::skylake()), config)
    }

    #[test]
    fn different_addresses_give_different_traces() {
        let tc = direct_load_tc();
        let mut ex = executor(ExecutorConfig::fast(MeasurementMode::prime_probe()));
        let a = input_with(&tc, |i| i.set_reg(Reg::Rax, 0x80));
        let b = input_with(&tc, |i| i.set_reg(Reg::Rax, 0x800));
        let traces = ex.collect_htraces(&tc, &[a, b]).unwrap();
        assert_ne!(traces[0], traces[1]);
        assert!(traces[0].sets().contains(2));
        assert!(traces[1].sets().contains(32));
    }

    #[test]
    fn collection_is_reproducible() {
        let tc = direct_load_tc();
        let inputs =
            vec![input_with(&tc, |i| i.set_reg(Reg::Rax, 0x100)), input_with(&tc, |i| i.set_reg(Reg::Rax, 0x140))];
        let mut ex = executor(ExecutorConfig::fast(MeasurementMode::prime_probe()));
        let t1 = ex.collect_htraces(&tc, &inputs).unwrap();
        let t2 = ex.collect_htraces(&tc, &inputs).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn flush_reload_matches_prime_probe_on_one_page() {
        let tc = direct_load_tc();
        let inputs = vec![input_with(&tc, |i| i.set_reg(Reg::Rax, 0x240))];
        let mut pp = executor(ExecutorConfig::fast(MeasurementMode::prime_probe()));
        let mut fr = executor(ExecutorConfig::fast(MeasurementMode::flush_reload()));
        let a = pp.collect_htraces(&tc, &inputs).unwrap();
        let b = fr.collect_htraces(&tc, &inputs).unwrap();
        assert_eq!(a[0].sets(), b[0].sets(), "§6.1: equivalent traces on a 4K sandbox");
    }

    #[test]
    fn priming_trains_the_predictor_for_later_inputs() {
        let tc = v1_tc();
        // Several in-bounds inputs followed by an out-of-bounds one: the
        // trained predictor speculates into the load for the last input.
        let mut inputs: Vec<Input> = (0..6)
            .map(|k| {
                input_with(&tc, |i| {
                    i.set_reg(Reg::Rax, 1);
                    i.set_reg(Reg::Rbx, 0x40 * k);
                })
            })
            .collect();
        inputs.push(input_with(&tc, |i| {
            i.set_reg(Reg::Rax, 100);
            i.set_reg(Reg::Rbx, 0x7c0);
        }));
        let mut ex = executor(ExecutorConfig::fast(MeasurementMode::prime_probe()));
        let traces = ex.collect_htraces(&tc, &inputs).unwrap();
        let victim = traces.last().unwrap();
        assert!(victim.sets().contains(31), "speculative access to line 0x7c0 (set 31) observed");

        // Without priming (victim alone after reset), no misprediction and
        // therefore no speculative trace.
        let alone = ex.collect_htraces(&tc, &inputs[6..]).unwrap();
        assert!(!alone[0].sets().contains(31));
    }

    #[test]
    fn one_off_noise_is_filtered_out() {
        let tc = direct_load_tc();
        let inputs = vec![input_with(&tc, |i| i.set_reg(Reg::Rax, 0x80))];
        let clean = executor(ExecutorConfig::fast(MeasurementMode::prime_probe()))
            .collect_htraces(&tc, &inputs)
            .unwrap();
        let noisy_cfg = ExecutorConfig::fast(MeasurementMode::prime_probe())
            .with_repetitions(20)
            .with_noise(NoiseConfig { one_off_probability: 0.3, smi_probability: 0.0, seed: 7 });
        let noisy = executor(noisy_cfg).collect_htraces(&tc, &inputs).unwrap();
        assert_eq!(clean[0].sets(), noisy[0].sets(), "one-off outliers are discarded");
    }

    #[test]
    fn smi_polluted_samples_are_discarded_but_trace_survives() {
        let tc = direct_load_tc();
        let inputs = vec![input_with(&tc, |i| i.set_reg(Reg::Rax, 0x80))];
        let cfg = ExecutorConfig::fast(MeasurementMode::prime_probe())
            .with_repetitions(20)
            .with_noise(NoiseConfig { one_off_probability: 0.0, smi_probability: 0.5, seed: 3 });
        let traces = executor(cfg).collect_htraces(&tc, &inputs).unwrap();
        assert!(traces[0].sets().contains(2));
        assert!(traces[0].samples() > 0);
    }

    #[test]
    fn assists_mode_sets_run_options() {
        let cfg = ExecutorConfig::fast(MeasurementMode::prime_probe_assist());
        let ex = executor(cfg);
        assert!(ex.run_options().enable_assists);
        let ex = executor(ExecutorConfig::fast(MeasurementMode::prime_probe()));
        assert!(!ex.run_options().enable_assists);
    }

    #[test]
    fn swap_check_reports_artifact_for_identical_inputs() {
        let tc = v1_tc();
        let a = input_with(&tc, |i| {
            i.set_reg(Reg::Rax, 1);
            i.set_reg(Reg::Rbx, 0x80);
        });
        let inputs = vec![a.clone(), a];
        let mut ex = executor(ExecutorConfig::fast(MeasurementMode::prime_probe()));
        let baseline = ex.collect_htraces(&tc, &inputs).unwrap();
        assert!(ex.is_measurement_artifact(&tc, &inputs, &baseline, 0, 1).unwrap());
    }

    #[test]
    fn swap_check_performs_exactly_two_collections() {
        // §5.3 with baseline reuse: the check itself must only collect the
        // two swapped sequences — the unswapped baseline comes from the
        // caller.
        let tc = direct_load_tc();
        let a = input_with(&tc, |i| i.set_reg(Reg::Rax, 0x80));
        let b = input_with(&tc, |i| i.set_reg(Reg::Rax, 0x800));
        let inputs = vec![a, b];
        let mut ex = executor(ExecutorConfig::fast(MeasurementMode::prime_probe()));
        let baseline = ex.collect_htraces(&tc, &inputs).unwrap();
        let before = ex.collection_count();
        ex.is_measurement_artifact(&tc, &inputs, &baseline, 0, 1).unwrap();
        assert_eq!(ex.collection_count() - before, 2);
    }

    #[test]
    fn swap_check_confirms_genuine_input_dependent_leak() {
        let tc = direct_load_tc();
        // Two inputs whose architectural accesses differ: the difference is
        // carried by the inputs, so swapping contexts cannot explain it.
        let a = input_with(&tc, |i| i.set_reg(Reg::Rax, 0x80));
        let b = input_with(&tc, |i| i.set_reg(Reg::Rax, 0x800));
        let inputs = vec![a, b];
        let mut ex = executor(ExecutorConfig::fast(MeasurementMode::prime_probe()));
        let baseline = ex.collect_htraces(&tc, &inputs).unwrap();
        assert!(!ex.is_measurement_artifact(&tc, &inputs, &baseline, 0, 1).unwrap());
    }

    #[test]
    fn batch_collection_matches_repeated_single_calls() {
        // The batch API must be byte-identical to sequential single calls on
        // one executor, including under synthetic noise (one shared stream).
        let v1 = v1_tc();
        let direct = direct_load_tc();
        let v1_inputs: Vec<Input> = (0..4)
            .map(|k| {
                input_with(&v1, |i| {
                    i.set_reg(Reg::Rax, 1);
                    i.set_reg(Reg::Rbx, 0x40 * k);
                })
            })
            .collect();
        let direct_inputs = vec![
            input_with(&direct, |i| i.set_reg(Reg::Rax, 0x80)),
            input_with(&direct, |i| i.set_reg(Reg::Rax, 0x800)),
        ];
        let cfg = ExecutorConfig::fast(MeasurementMode::prime_probe())
            .with_repetitions(6)
            .with_noise(NoiseConfig { one_off_probability: 0.2, smi_probability: 0.1, seed: 21 });

        let mut single = executor(cfg);
        let expected = vec![
            single.collect_htraces(&v1, &v1_inputs).unwrap(),
            single.collect_htraces(&direct, &direct_inputs).unwrap(),
        ];
        let mut batched = executor(cfg);
        let got = batched
            .collect_htraces_batch(&[(&v1, &v1_inputs), (&direct, &direct_inputs)])
            .unwrap();
        assert_eq!(expected, got);
    }

    #[test]
    fn session_is_reused_across_collections() {
        // Back-to-back collections (and batches) must not rebuild the side
        // channel; the session key only changes with the sandbox or mode.
        let tc = direct_load_tc();
        let inputs = vec![input_with(&tc, |i| i.set_reg(Reg::Rax, 0x80))];
        let mut ex = executor(ExecutorConfig::fast(MeasurementMode::flush_reload()));
        let t1 = ex.collect_htraces(&tc, &inputs).unwrap();
        let t2 = ex.collect_htraces(&tc, &inputs).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(ex.collection_count(), 2);
        assert!(ex.session.is_some(), "session survives between collections");
    }

    #[test]
    fn prime_probe_session_is_shared_across_sandboxes() {
        // P+P never reads the victim sandbox, so mixing sandbox sizes in a
        // batch must not rotate the session key (and with it the channel's
        // precomputed attacker tags).
        use rvz_isa::SandboxLayout;
        let one_page = direct_load_tc();
        let two_pages = TestCaseBuilder::new()
            .sandbox(SandboxLayout::two_pages())
            .block("entry", |b| {
                b.and_imm(Reg::Rax, 0b111111000000);
                b.load(Reg::Rbx, Reg::R14, Reg::Rax);
                b.exit();
            })
            .build();
        let inputs_one = vec![input_with(&one_page, |i| i.set_reg(Reg::Rax, 0x80))];
        let inputs_two = vec![input_with(&two_pages, |i| i.set_reg(Reg::Rax, 0x80))];
        let mut ex = executor(ExecutorConfig::fast(MeasurementMode::prime_probe()));
        ex.collect_htraces(&one_page, &inputs_one).unwrap();
        let key = ex.session.as_ref().unwrap().key;
        ex.collect_htraces(&two_pages, &inputs_two).unwrap();
        assert_eq!(ex.session.as_ref().unwrap().key, key, "P+P session key is sandbox-free");
    }

    #[test]
    fn noise_checkpoint_rewinds_the_stream() {
        // Two collections from the same stream position must draw identical
        // noise: checkpoint after the first, restore, repeat.
        let tc = direct_load_tc();
        let inputs = vec![input_with(&tc, |i| i.set_reg(Reg::Rax, 0x80))];
        let cfg = ExecutorConfig::fast(MeasurementMode::prime_probe())
            .with_repetitions(8)
            .with_noise(NoiseConfig { one_off_probability: 0.4, smi_probability: 0.2, seed: 5 });
        let mut ex = executor(cfg);
        let mark = ex.noise_checkpoint();
        let first = ex.collect_htraces(&tc, &inputs).unwrap();
        // Without the restore the stream has advanced and the raw samples
        // would differ; with it the collection replays exactly.
        ex.restore_noise_checkpoint(&mark);
        let replay = ex.collect_htraces(&tc, &inputs).unwrap();
        assert_eq!(first, replay);
    }

    #[test]
    fn empty_sample_handling() {
        let ex = executor(ExecutorConfig::fast(MeasurementMode::prime_probe()));
        assert!(ex.merge_samples(&[]).is_empty());
    }
}
