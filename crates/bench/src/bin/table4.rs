//! Regenerates Table 4: detection time until the first violation for the
//! targets that exhibit violations (Targets 2, 5, 7, 8), for different
//! amounts of contract-permitted leakage.
//!
//! Usage: `cargo run --release -p rvz-bench --bin table4 [samples per cell]`

use revizor::detection::detection_stats;
use revizor::targets::Target;
use rvz_bench::{budget_from_args, fmt_duration, row};
use rvz_model::Contract;

fn main() {
    let samples = budget_from_args(5);
    let max_test_cases = 300;
    println!("Table 4: detection time (mean over {samples} runs, coefficient of variation in parentheses)");
    println!();

    // Rows: contract-permitted leakage (None = CT-SEQ, V4 = CT-BPAS, V1 = CT-COND).
    let rows: Vec<(&str, Contract)> = vec![
        ("None", Contract::ct_seq()),
        ("V4", Contract::ct_bpas()),
        ("V1", Contract::ct_cond()),
    ];
    // Columns: the vulnerable targets and their headline vulnerability type.
    let columns: Vec<(&str, Target)> = vec![
        ("V4-type (Target 2)", Target::target2()),
        ("V1-type (Target 5)", Target::target5()),
        ("MDS-type (Target 7)", Target::target7()),
        ("LVI-type (Target 8)", Target::target8()),
    ];

    let widths = [10, 24, 24, 24, 24];
    let mut header = vec!["Permitted".to_string()];
    header.extend(columns.iter().map(|(n, _)| n.to_string()));
    println!("{}", row(&header, &widths));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 3 * widths.len()));

    for (label, contract) in rows {
        let mut line = vec![label.to_string()];
        for (col_label, target) in &columns {
            // N/A cells of the paper: a contract that already permits the
            // target's headline leak.
            let na = (label == "V4" && col_label.starts_with("V4"))
                || (label == "V1" && col_label.starts_with("V1"));
            if na {
                line.push("N/A".to_string());
                continue;
            }
            let stats = detection_stats(target, contract.clone(), samples, max_test_cases);
            if stats.detected == 0 {
                line.push(format!("not found ({} runs)", stats.samples));
            } else {
                line.push(format!(
                    "{} ({:.1}) [{} of {}]",
                    fmt_duration(stats.mean_duration),
                    stats.coefficient_of_variation,
                    stats.detected,
                    stats.samples
                ));
            }
        }
        println!("{}", row(&line, &widths));
    }

    println!();
    println!(
        "Paper reference (absolute times are not comparable — the CPU under test here is a \
         simulator): most vulnerabilities detected within minutes; V4-type detection is the \
         slowest; permitting one leakage type does not prevent detection of the others."
    );
}
