//! # revizor
//!
//! A Rust reproduction of **Revizor** (Oleksenko, Fetzer, Köpf, Silberstein —
//! *"Revizor: Testing Black-Box CPUs against Speculation Contracts"*,
//! ASPLOS 2022): Model-based Relational Testing (MRT) of black-box CPUs
//! against speculation contracts.
//!
//! The crate ties the substrates together into the end-to-end fuzzing flow
//! of Figure 2:
//!
//! ```text
//!  test-case generator ──┐
//!  input generator ──────┼──► contract Model ──► contract traces ──┐
//!                        │                                         ├─► relational
//!                        └──► Executor (CPU under test) ─► htraces ┘    Analyzer
//!                                                                        │
//!            diversity analysis ◄── pattern coverage                 violation?
//!            (reconfigure generator)                                    │
//!                                                              postprocessor (minimize)
//! ```
//!
//! Main entry points:
//!
//! * [`Revizor`] — the fuzzer: rounds of test-case generation, trace
//!   collection, relational analysis and diversity feedback (§5.6);
//! * [`campaign`] — the reusable per-test-case pipeline: evaluate one test
//!   case against a whole *slate* of contracts, collecting hardware traces
//!   once (plus the [`ProgressObserver`] live-progress hook);
//! * [`orchestrator`] — [`CampaignMatrix`]: a matrix of (target, contract)
//!   cells (e.g. all of Table 3) over one shared worker pool with
//!   cross-contract trace sharing and per-cell early stop;
//! * [`targets`] — the eight experimental setups of Table 2;
//! * [`gadgets`] — handwritten test cases for the known vulnerabilities of
//!   Table 5 and the paper's figures;
//! * [`minimize`] — the postprocessor that shrinks counterexamples (§5.7);
//! * [`detection`] — harnesses that reproduce the detection-time and
//!   inputs-to-violation measurements (Tables 4 and 5).
//!
//! # Example: detect Spectre V1 as a CT-SEQ violation
//!
//! Compiled but not executed by `cargo test --doc` — it runs a full
//! (unoptimized) fuzzing campaign; the same property is exercised by the
//! `tests/pipeline.rs` integration tests in release-speed test runs.
//!
//! ```no_run
//! use revizor::detection::detection_time;
//! use revizor::targets::Target;
//! use rvz_model::Contract;
//!
//! // Target 5 of the paper: Skylake, AR+MEM+CB, Prime+Probe.
//! let outcome = detection_time(&Target::target5(), Contract::ct_seq(), 9, 60);
//! assert!(outcome.found, "CT-SEQ must be violated by a Spectre-V1-capable CPU");
//! assert_eq!(outcome.vulnerability.as_deref(), Some("V1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod classify;
pub mod config;
pub mod detection;
pub mod diversity;
pub mod fuzzer;
pub mod gadgets;
pub mod minimize;
pub mod orchestrator;
pub mod staticanalysis;
pub mod targets;

pub use campaign::{CellEvent, ContractOutcome, NoopObserver, ProgressObserver, RoundEvent};
pub use classify::VulnClass;
pub use config::FuzzerConfig;
pub use diversity::{Pattern, PatternCoverage};
pub use fuzzer::{FuzzReport, Revizor, TestCaseOutcome, ViolationReport};
pub use minimize::Postprocessor;
pub use orchestrator::{
    CampaignMatrix, CellProgress, CellReport, GroupProgress, MatrixCheckpoint, MatrixReport,
    MatrixRun,
};
pub use staticanalysis::{GadgetSignature, SourceKind, TaintReport, TransmitterKind};
pub use targets::Target;
// Part of the public API through `CellReport`/`GroupProgress`.
pub use rvz_analyzer::EffectivenessStats;
