//! # revizor-suite
//!
//! Umbrella crate for the Revizor reproduction: it re-exports every
//! workspace crate under one roof so that the examples in `examples/` and
//! the integration tests in `tests/` can exercise the whole system through a
//! single dependency.
//!
//! The individual crates are:
//!
//! * [`isa`] (`rvz-isa`) — the instruction set, test cases and inputs;
//! * [`emu`] (`rvz-emu`) — the architectural emulator (Unicorn substitute);
//! * [`cache`] (`rvz-cache`) — the L1D model and cache side channels;
//! * [`uarch`] (`rvz-uarch`) — the speculative CPU under test;
//! * [`model`] (`rvz-model`) — speculation contracts and contract traces;
//! * [`executor`] (`rvz-executor`) — hardware-trace collection with priming;
//! * [`gen`] (`rvz-gen`) — test-case and input generation;
//! * [`analyzer`] (`rvz-analyzer`) — the relational analysis;
//! * [`revizor`] — the fuzzer, targets, gadgets, minimizer and detection
//!   harnesses;
//! * [`bench`] (`rvz-bench`) — experiment regeneration, the hand-rolled
//!   JSON tree and the report export/import codecs;
//! * [`store`] (`rvz-store`) — the indexed violation store
//!   (`revizor-query`);
//! * [`service`] (`rvz-service`) — the sharded campaign service
//!   (`revizor-serve` / `revizor-submit`).
//!
//! ```
//! use revizor_suite::prelude::*;
//!
//! let found = detection::inputs_to_violation(
//!     &Target::target5(),
//!     Contract::ct_seq(),
//!     &gadgets::spectre_v1(),
//!     1,
//!     64,
//! );
//! assert!(found.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rvz_analyzer as analyzer;
pub use rvz_cache as cache;
pub use rvz_emu as emu;
pub use rvz_executor as executor;
pub use rvz_gen as gen;
pub use rvz_isa as isa;
pub use rvz_model as model;
pub use rvz_uarch as uarch;

pub use revizor;
pub use rvz_bench as bench;
pub use rvz_service as service;
pub use rvz_store as store;

/// Convenient single import for examples and integration tests.
pub mod prelude {
    pub use revizor::campaign;
    pub use revizor::detection;
    pub use revizor::gadgets;
    pub use revizor::orchestrator::{CampaignMatrix, MatrixRun};
    pub use revizor::targets::Target;
    pub use rvz_service::{JobPhase, JobSpec, ServiceConfig, ServiceHandle, Worker, WorkerConfig};
    pub use revizor::{
        CellEvent, FuzzReport, FuzzerConfig, Postprocessor, ProgressObserver, Revizor, RoundEvent,
        VulnClass,
    };
    pub use rvz_analyzer::Analyzer;
    pub use rvz_emu::Runner;
    pub use rvz_executor::{Executor, ExecutorConfig, HTrace, MeasurementMode};
    pub use rvz_gen::{GeneratorConfig, InputGenerator, ProgramGenerator};
    pub use rvz_isa::{builder::TestCaseBuilder, Input, IsaSubset, Reg, TestCase};
    pub use rvz_model::{Contract, ContractModel};
    pub use rvz_uarch::{CpuUnderTest, RunOptions, SpecCpu, UarchConfig};
}
