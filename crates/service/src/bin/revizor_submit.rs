//! Submit fuzzing jobs to a running `revizor-serve` (and watch/query them).
//!
//! ```text
//! # Submit a two-cell job and stream progress until the result:
//! revizor-submit --addr=127.0.0.1:15790 --target=5 --contracts=CT-SEQ,CT-BPAS \
//!                --seed=7 --budget=60 --wait
//!
//! # Submit the full Table 3 matrix without waiting (prints the job id):
//! revizor-submit --addr=127.0.0.1:15790 --table3 --seed=30 --budget=300
//!
//! # Query (or cancel) an earlier job:
//! revizor-submit --addr=127.0.0.1:15790 --status=JOBID
//! revizor-submit --addr=127.0.0.1:15790 --result=JOBID
//! revizor-submit --addr=127.0.0.1:15790 --cancel=JOBID
//! ```
//!
//! Flags: `--target=N` (repeatable via `--targets=5,6`), `--contracts=A,B`
//! (default `CT-SEQ`), `--seed`, `--budget`, `--round-size`,
//! `--parallelism`, `--priority` (higher starts first on a saturated
//! service), `--inputs` (inputs per test case), `--reps` (measurement
//! repetitions), `--escalation`, `--table3`, `--token=TOK` (client
//! token, required by servers running with `--token-file`).  With
//! `--wait` the job's events stream to stderr and the result JSON is
//! printed to stdout.
//!
//! If the server dies mid-`--wait`, the exit code is 3 and the job id is
//! printed: the job is spooled server-side and resumes on the next server
//! start — re-query it with `--result=JOBID`.

use rvz_bench::json::Json;
use rvz_bench::{flag_from_args, flag_value_from_args};
use rvz_service::{Client, JobSpec, WatchError};

fn fail(message: &str) -> ! {
    eprintln!("revizor-submit: {message}");
    std::process::exit(1)
}

fn main() {
    let addr =
        flag_value_from_args::<String>("--addr").unwrap_or_else(|| "127.0.0.1:15790".to_string());
    let mut client = match Client::connect(&addr) {
        Ok(client) => client,
        Err(e) => fail(&format!("cannot connect to {addr}: {e}")),
    };
    if let Some(token) = flag_value_from_args::<String>("--token") {
        client = client.with_token(&token);
    }

    // Query modes.
    if let Some(job) = flag_value_from_args::<String>("--status") {
        match client.status(&job) {
            Ok(status) => println!("{}", status.render_pretty()),
            Err(e) => fail(&e),
        }
        return;
    }
    if let Some(job) = flag_value_from_args::<String>("--result") {
        match client.result(&job) {
            Ok(Some(result)) => println!("{}", result.render_pretty()),
            Ok(None) => println!("{}", Json::obj().field("done", false).render()),
            Err(e) => fail(&e),
        }
        return;
    }
    if let Some(job) = flag_value_from_args::<String>("--cancel") {
        match client.cancel(&job) {
            Ok(state) => {
                eprintln!("revizor-submit: job {job}: {state}");
                println!("{}", Json::obj().field("job", job.as_str()).field("state", state).render());
            }
            Err(e) => fail(&e),
        }
        return;
    }

    // Submission mode.
    let seed = flag_value_from_args::<u64>("--seed").unwrap_or(7);
    let mut spec = if flag_from_args("--table3") {
        JobSpec::table3(seed)
    } else {
        let mut targets: Vec<u8> = Vec::new();
        if let Some(t) = flag_value_from_args::<u8>("--target") {
            targets.push(t);
        }
        if let Some(list) = flag_value_from_args::<String>("--targets") {
            for part in list.split(',') {
                match part.trim().parse::<u8>() {
                    Ok(t) => targets.push(t),
                    Err(_) => fail(&format!("bad target `{part}` in --targets")),
                }
            }
        }
        if targets.is_empty() {
            fail("nothing to submit: pass --target=N / --targets=…, or --table3");
        }
        let contracts = flag_value_from_args::<String>("--contracts")
            .unwrap_or_else(|| "CT-SEQ".to_string());
        let mut spec = JobSpec::new(seed);
        for target in &targets {
            for contract in contracts.split(',') {
                spec = spec.add_cell(*target, contract.trim());
            }
        }
        spec
    };
    if let Some(budget) = flag_value_from_args::<usize>("--budget") {
        spec.budget = budget;
    }
    if let Some(round_size) = flag_value_from_args::<usize>("--round-size") {
        spec.round_size = round_size;
    }
    if let Some(parallelism) = flag_value_from_args::<usize>("--parallelism") {
        spec.parallelism = parallelism;
    }
    if let Some(priority) = flag_value_from_args::<i64>("--priority") {
        spec.priority = priority;
    }
    if let Some(inputs) = flag_value_from_args::<usize>("--inputs") {
        spec.inputs_per_test_case = inputs;
    }
    if let Some(reps) = flag_value_from_args::<usize>("--reps") {
        spec.repetitions = reps;
    }
    if flag_from_args("--escalation") {
        spec.escalation = true;
    }

    let job = match client.submit(&spec) {
        Ok(job) => job,
        Err(e) => fail(&e),
    };
    eprintln!("revizor-submit: job {job} submitted ({} cells)", spec.cells.len());

    if !flag_from_args("--wait") {
        println!("{job}");
        return;
    }
    let result = client.watch(&job, |event| {
        if event.get("event").and_then(Json::as_str) != Some("done") {
            eprintln!("{}", event.render());
        }
    });
    match result {
        Ok(result) => println!("{}", result.render_pretty()),
        Err(WatchError::ServerGone { job }) => {
            // Distinct exit path: the job is NOT lost — it sits in the
            // server's spool and resumes when a server restarts over it.
            eprintln!("revizor-submit: {}", WatchError::ServerGone { job: job.clone() });
            println!("{}", Json::obj().field("job", job).field("server_gone", true).render());
            std::process::exit(3);
        }
        Err(WatchError::Other(e)) => fail(&e),
    }
}
