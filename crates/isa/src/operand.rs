//! Instruction operands: registers, immediates and memory references.

use crate::reg::{Reg, Width};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A memory operand of the form `[base + index*scale + disp]`.
///
/// Generated test cases always use the sandbox base register
/// ([`Reg::R14`](crate::Reg::R14)) as `base` after the masking
/// instrumentation (§5.1), but handwritten gadgets and the emulator support
/// the general form.
///
/// # Example
/// ```
/// use rvz_isa::{MemOperand, Reg, Width};
/// let m = MemOperand::base_index(Reg::R14, Reg::Rax);
/// assert_eq!(format!("{}", m.display(Width::Byte)), "byte ptr [R14 + RAX]");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemOperand {
    /// Base register.
    pub base: Reg,
    /// Optional index register.
    pub index: Option<Reg>,
    /// Scale applied to the index register (1, 2, 4 or 8).
    pub scale: u8,
    /// Constant displacement.
    pub disp: i64,
}

impl MemOperand {
    /// `[base]`
    pub fn base(base: Reg) -> MemOperand {
        MemOperand { base, index: None, scale: 1, disp: 0 }
    }

    /// `[base + index]`
    pub fn base_index(base: Reg, index: Reg) -> MemOperand {
        MemOperand { base, index: Some(index), scale: 1, disp: 0 }
    }

    /// `[base + disp]`
    pub fn base_disp(base: Reg, disp: i64) -> MemOperand {
        MemOperand { base, index: None, scale: 1, disp }
    }

    /// `[base + index*scale + disp]`
    pub fn full(base: Reg, index: Reg, scale: u8, disp: i64) -> MemOperand {
        MemOperand { base, index: Some(index), scale, disp }
    }

    /// Registers read when computing the effective address.
    pub fn address_regs(&self) -> Vec<Reg> {
        let mut v = vec![self.base];
        if let Some(i) = self.index {
            v.push(i);
        }
        v
    }

    /// Wrap with a width for display purposes.
    pub fn display(self, width: Width) -> MemOperandDisplay {
        MemOperandDisplay { mem: self, width }
    }
}

/// Helper returned by [`MemOperand::display`].
#[derive(Debug, Clone, Copy)]
pub struct MemOperandDisplay {
    mem: MemOperand,
    width: Width,
}

impl fmt::Display for MemOperandDisplay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}", self.width.ptr_keyword(), self.mem.base)?;
        if let Some(idx) = self.mem.index {
            if self.mem.scale != 1 {
                write!(f, " + {}*{}", idx, self.mem.scale)?;
            } else {
                write!(f, " + {idx}")?;
            }
        }
        if self.mem.disp != 0 {
            if self.mem.disp > 0 {
                write!(f, " + {}", self.mem.disp)?;
            } else {
                write!(f, " - {}", -self.mem.disp)?;
            }
        }
        write!(f, "]")
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A register accessed at the given width.
    Reg(Reg, Width),
    /// An immediate value.
    Imm(i64),
    /// A memory reference accessed at the given width.
    Mem(MemOperand, Width),
}

impl Operand {
    /// Full-width register operand.
    pub fn reg(r: Reg) -> Operand {
        Operand::Reg(r, Width::Qword)
    }

    /// Register operand at an explicit width.
    pub fn reg_w(r: Reg, w: Width) -> Operand {
        Operand::Reg(r, w)
    }

    /// Immediate operand.
    pub fn imm(v: i64) -> Operand {
        Operand::Imm(v)
    }

    /// Memory operand at qword width.
    pub fn mem(m: MemOperand) -> Operand {
        Operand::Mem(m, Width::Qword)
    }

    /// Memory operand at an explicit width.
    pub fn mem_w(m: MemOperand, w: Width) -> Operand {
        Operand::Mem(m, w)
    }

    /// Returns the access width of the operand (immediates count as qword).
    pub fn width(&self) -> Width {
        match self {
            Operand::Reg(_, w) | Operand::Mem(_, w) => *w,
            Operand::Imm(_) => Width::Qword,
        }
    }

    /// Is this a memory operand?
    pub fn is_mem(&self) -> bool {
        matches!(self, Operand::Mem(..))
    }

    /// Is this a register operand?
    pub fn is_reg(&self) -> bool {
        matches!(self, Operand::Reg(..))
    }

    /// Is this an immediate operand?
    pub fn is_imm(&self) -> bool {
        matches!(self, Operand::Imm(_))
    }

    /// The memory operand, if any.
    pub fn as_mem(&self) -> Option<(MemOperand, Width)> {
        match self {
            Operand::Mem(m, w) => Some((*m, *w)),
            _ => None,
        }
    }

    /// The register, if this is a register operand.
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r, _) => Some(*r),
            _ => None,
        }
    }

    /// Registers read when this operand is used as a *source*.
    pub fn source_regs(&self) -> Vec<Reg> {
        match self {
            Operand::Reg(r, _) => vec![*r],
            Operand::Imm(_) => vec![],
            Operand::Mem(m, _) => m.address_regs(),
        }
    }

    /// Registers read when this operand is used as a *destination*
    /// (address registers for memory destinations; read-modify-write register
    /// destinations are handled at the instruction level).
    pub fn dest_addr_regs(&self) -> Vec<Reg> {
        match self {
            Operand::Mem(m, _) => m.address_regs(),
            _ => vec![],
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r, w) => write!(f, "{}", r.name(*w)),
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::Mem(m, w) => write!(f, "{}", m.display(*w)),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v)
    }
}

impl From<MemOperand> for Operand {
    fn from(m: MemOperand) -> Operand {
        Operand::mem(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_operand_constructors() {
        let m = MemOperand::base(Reg::R14);
        assert_eq!(m.index, None);
        assert_eq!(m.disp, 0);
        let m = MemOperand::full(Reg::R14, Reg::Rax, 8, -16);
        assert_eq!(m.scale, 8);
        assert_eq!(m.disp, -16);
        assert_eq!(m.address_regs(), vec![Reg::R14, Reg::Rax]);
    }

    #[test]
    fn mem_operand_display() {
        let m = MemOperand::full(Reg::R14, Reg::Rbx, 4, 8);
        assert_eq!(format!("{}", m.display(Width::Qword)), "qword ptr [R14 + RBX*4 + 8]");
        let m = MemOperand::base_disp(Reg::R14, -64);
        assert_eq!(format!("{}", m.display(Width::Dword)), "dword ptr [R14 - 64]");
    }

    #[test]
    fn operand_kinds() {
        let r = Operand::reg(Reg::Rax);
        let i = Operand::imm(3);
        let m = Operand::mem(MemOperand::base(Reg::R14));
        assert!(r.is_reg() && !r.is_mem() && !r.is_imm());
        assert!(i.is_imm());
        assert!(m.is_mem());
        assert_eq!(r.as_reg(), Some(Reg::Rax));
        assert_eq!(m.as_mem().unwrap().0.base, Reg::R14);
        assert_eq!(i.as_reg(), None);
    }

    #[test]
    fn operand_source_regs() {
        let m = Operand::mem(MemOperand::base_index(Reg::R14, Reg::Rcx));
        assert_eq!(m.source_regs(), vec![Reg::R14, Reg::Rcx]);
        assert_eq!(Operand::imm(1).source_regs(), Vec::<Reg>::new());
        assert_eq!(Operand::reg(Reg::Rbx).source_regs(), vec![Reg::Rbx]);
    }

    #[test]
    fn operand_display() {
        assert_eq!(format!("{}", Operand::reg_w(Reg::Rbx, Width::Word)), "BX");
        assert_eq!(format!("{}", Operand::imm(-5)), "-5");
    }

    #[test]
    fn operand_from_conversions() {
        let o: Operand = Reg::Rdx.into();
        assert_eq!(o, Operand::reg(Reg::Rdx));
        let o: Operand = 7i64.into();
        assert_eq!(o, Operand::imm(7));
        let o: Operand = MemOperand::base(Reg::R14).into();
        assert!(o.is_mem());
    }
}
