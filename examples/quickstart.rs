//! Quickstart: the smallest end-to-end use of the library.
//!
//! Builds the paper's Figure 1 program, shows what the MEM-SEQ and MEM-COND
//! contracts expose for it (Table 1 / §2.2), and then checks a Spectre-V1
//! capable CPU against CT-SEQ with a handful of inputs.
//!
//! Run with: `cargo run --release --example quickstart`

use revizor_suite::prelude::*;
use rvz_isa::Cond;

fn main() {
    // --- 1. A program: Figure 1 of the paper --------------------------------
    // z = array1[x]; if (y < 10) z = array2[y];
    let tc = TestCaseBuilder::new()
        .origin("quickstart:figure-1")
        .block("entry", |b| {
            b.and_imm(Reg::Rax, 0b111111000000); // x, masked into the sandbox
            b.load(Reg::Rbx, Reg::R14, Reg::Rax); // z = array1[x]
            b.cmp_imm(Reg::Rcx, 10); // y < 10 ?
            b.jcc(Cond::B, "then", "end");
        })
        .block("then", |b| {
            b.and_imm(Reg::Rcx, 0b111111000000);
            b.load(Reg::Rdx, Reg::R14, Reg::Rcx); // z = array2[y]
            b.jmp("end");
        })
        .block("end", |b| b.exit())
        .build();
    println!("=== Test case (Figure 1) ===\n{}", tc.to_asm());

    // --- 2. Contract traces (the Model, §5.4) --------------------------------
    let mut input = Input::zeroed(tc.sandbox());
    input.set_reg(Reg::Rax, 0x100);
    input.set_reg(Reg::Rcx, 20); // branch architecturally not taken

    for contract in [Contract::mem_seq(), Contract::mem_cond(), Contract::ct_seq()] {
        let trace = ContractModel::new(contract.clone()).collect_trace(&tc, &input).unwrap();
        println!("{:>9} trace ({} observations): {}", contract.name(), trace.len(), trace);
    }
    println!();

    // --- 3. Hardware traces (the Executor, §5.3) -----------------------------
    let cpu = SpecCpu::new(UarchConfig::skylake());
    let mut executor =
        Executor::new(cpu, ExecutorConfig::fast(MeasurementMode::prime_probe()));
    let inputs = InputGenerator::new(2).generate(&tc, 42, 16);
    let htraces = executor.collect_htraces(&tc, &inputs).unwrap();
    println!("=== Hardware traces (Prime+Probe, 64 L1D sets) ===");
    for (i, h) in htraces.iter().enumerate().take(4) {
        println!("input {i:2}: {h}");
    }
    println!("...\n");

    // --- 4. Relational analysis (§5.5) ---------------------------------------
    let model = ContractModel::new(Contract::ct_seq());
    let ctraces: Vec<_> =
        inputs.iter().map(|i| model.collect_trace(&tc, i).unwrap()).collect();
    let result = Analyzer::new().check(&ctraces, &htraces);
    println!("=== Relational analysis against CT-SEQ ===");
    println!("input classes: {} ({} effective inputs of {})",
        result.stats.classes, result.stats.effective_inputs, result.stats.total_inputs);
    match result.violations.first() {
        Some(v) => println!("counterexample found:\n{v}"),
        None => println!("no counterexample in this input batch (try more inputs or the fuzzer)"),
    }
}
