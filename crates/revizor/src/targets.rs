//! The experimental setups of Table 2.

use rvz_executor::MeasurementMode;
use rvz_gen::Scenario;
use rvz_isa::IsaSubset;
use rvz_uarch::{PredictorConfig, SpecCpu, UarchConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One testing target: a CPU (with its microcode-patch state), an ISA subset
/// for test-case generation, and an executor measurement mode — one column
/// of Table 2.  Predictor-zoo targets (9+) additionally select non-default
/// prediction structures and may pin generation to a scenario gadget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Target {
    /// Target number: 1-8 as in Table 2, 9+ for the predictor zoo.
    pub id: u8,
    /// The micro-architecture configuration of the CPU under test.
    pub cpu_config: UarchConfig,
    /// ISA subset used by the test-case generator.
    pub isa: IsaSubset,
    /// Executor measurement mode.
    pub mode: MeasurementMode,
    /// Pin the generator to a handwritten scenario gadget instead of random
    /// programs.  `None` (all Table 2 targets, and the value pre-zoo
    /// serialized targets decode to) keeps random generation.
    #[serde(default)]
    pub scenario: Option<Scenario>,
}

impl Target {
    /// Target 1: Skylake (V4 patch off), `AR`, Prime+Probe — the baseline
    /// that should comply with every contract.
    pub fn target1() -> Target {
        Target {
            id: 1,
            cpu_config: UarchConfig::skylake(),
            isa: IsaSubset::AR,
            mode: MeasurementMode::prime_probe(),
            scenario: None,
        }
    }

    /// Target 2: Skylake (V4 patch off), `AR+MEM`, Prime+Probe — surfaces
    /// Spectre V4.
    pub fn target2() -> Target {
        Target { isa: IsaSubset::AR_MEM, id: 2, ..Target::target1() }
    }

    /// Target 3: Skylake (V4 patch off), `AR+MEM+VAR`, Prime+Probe —
    /// surfaces the novel V4 latency variant.
    pub fn target3() -> Target {
        Target { isa: IsaSubset::AR_MEM_VAR, id: 3, ..Target::target1() }
    }

    /// Target 4: Skylake with the V4 patch enabled, `AR+MEM+VAR` — expected
    /// to comply (the patch is effective).
    pub fn target4() -> Target {
        Target {
            id: 4,
            cpu_config: UarchConfig::skylake_patched(),
            isa: IsaSubset::AR_MEM_VAR,
            mode: MeasurementMode::prime_probe(),
            scenario: None,
        }
    }

    /// Target 5: Skylake (V4 patch on), `AR+MEM+CB` — surfaces Spectre V1.
    pub fn target5() -> Target {
        Target { isa: IsaSubset::AR_MEM_CB, id: 5, ..Target::target4() }
    }

    /// Target 6: Skylake (V4 patch on), `AR+MEM+CB+VAR` — surfaces the novel
    /// V1 latency variant.
    pub fn target6() -> Target {
        Target { isa: IsaSubset::AR_MEM_CB_VAR, id: 6, ..Target::target4() }
    }

    /// Target 7: Skylake (V4 patch on), `AR+MEM`, Prime+Probe+Assist —
    /// surfaces MDS.
    pub fn target7() -> Target {
        Target {
            id: 7,
            cpu_config: UarchConfig::skylake_patched(),
            isa: IsaSubset::AR_MEM,
            mode: MeasurementMode::prime_probe_assist(),
            scenario: None,
        }
    }

    /// Target 8: Coffee Lake (hardware MDS patch), `AR+MEM`,
    /// Prime+Probe+Assist — surfaces LVI-Null.
    pub fn target8() -> Target {
        Target {
            id: 8,
            cpu_config: UarchConfig::coffee_lake(),
            isa: IsaSubset::AR_MEM,
            mode: MeasurementMode::prime_probe_assist(),
            scenario: None,
        }
    }

    /// All eight targets in Table 2 order.
    pub fn all() -> Vec<Target> {
        vec![
            Target::target1(),
            Target::target2(),
            Target::target3(),
            Target::target4(),
            Target::target5(),
            Target::target6(),
            Target::target7(),
            Target::target8(),
        ]
    }

    /// Target 9: Skylake (V4 patch on) with a TAGE direction predictor,
    /// `AR+MEM+CB` — the history-sensitive counterpart of Target 5.
    pub fn target9() -> Target {
        Target {
            id: 9,
            cpu_config: UarchConfig::skylake_patched()
                .with_predictors(PredictorConfig::tage()),
            ..Target::target5()
        }
    }

    /// Target 10: Skylake (V4 patch on) with a loop predictor, `AR+MEM+CB`.
    pub fn target10() -> Target {
        Target {
            id: 10,
            cpu_config: UarchConfig::skylake_patched()
                .with_predictors(PredictorConfig::loop_predictor()),
            ..Target::target5()
        }
    }

    /// Target 11: Skylake with an aliasing set-associative BTB, pinned to
    /// the cross-site BTB-aliasing V2 scenario.
    pub fn target11() -> Target {
        Target {
            id: 11,
            cpu_config: UarchConfig::skylake_patched()
                .with_predictors(PredictorConfig::aliasing_btb()),
            scenario: Some(Scenario::BtbAliasingV2),
            ..Target::target5()
        }
    }

    /// Target 12: Skylake with a cyclic (wrap-around) RSB, pinned to the
    /// deep RSB over/underflow chain scenario.
    pub fn target12() -> Target {
        Target {
            id: 12,
            cpu_config: UarchConfig::skylake_patched()
                .with_predictors(PredictorConfig::cyclic_rsb(16)),
            scenario: Some(Scenario::DeepRsbChain { depth: 20 }),
            ..Target::target5()
        }
    }

    /// Target 13: Skylake with a TAGE predictor, pinned to the
    /// predictor-state-dependent leak scenario.  This cell is expected
    /// *compliant*: TAGE's history tracks the scenario's history-correlated
    /// victim branch, while the same scenario violates CT-SEQ on the
    /// history-free default bimodal (the leak is pure predictor state).
    pub fn target13() -> Target {
        Target {
            id: 13,
            cpu_config: UarchConfig::skylake_patched()
                .with_predictors(PredictorConfig::tage()),
            scenario: Some(Scenario::PredictorStateLeak),
            ..Target::target5()
        }
    }

    /// The predictor-zoo targets (9+).
    pub fn zoo() -> Vec<Target> {
        vec![
            Target::target9(),
            Target::target10(),
            Target::target11(),
            Target::target12(),
            Target::target13(),
        ]
    }

    /// Every known target: Table 2 (1-8) followed by the predictor zoo.
    pub fn catalog() -> Vec<Target> {
        let mut targets = Target::all();
        targets.extend(Target::zoo());
        targets
    }

    /// Instantiate the CPU under test for this target.
    pub fn cpu(&self) -> SpecCpu {
        SpecCpu::new(self.cpu_config.clone())
    }

    /// The vulnerability the paper associates with violations of this target
    /// (the parenthesised labels of Table 3), if any.
    pub fn expected_vulnerability(&self) -> Option<&'static str> {
        match self.id {
            1 | 4 => None,
            2 => Some("V4"),
            3 => Some("V4-var"),
            5 => Some("V1"),
            6 => Some("V1-var"),
            7 => Some("MDS"),
            8 => Some("LVI-Null"),
            9 | 10 => Some("V1"),
            11 => Some("V2-BTB"),
            12 => Some("V5-ret"),
            // Target 13 is the zoo's negative cell: TAGE tracks the
            // history-correlated branch, so no violation is expected.
            13 => None,
            _ => None,
        }
    }

    /// Does Table 3 report a violation for this target against the given
    /// contract name (e.g. `"CT-SEQ"`)?  Cells marked `×*` in the paper
    /// (not repeated because a stronger contract was already satisfied) are
    /// reported as `false`.
    pub fn paper_expects_violation(&self, contract_name: &str) -> bool {
        if self.id == 0 || self.id > 8 {
            // Zoo targets have no Table 3 row in the paper.
            return false;
        }
        let row = match contract_name {
            "CT-SEQ" => [false, true, true, false, true, true, true, true],
            "CT-BPAS" => [false, false, true, false, true, true, true, true],
            "CT-COND" => [false, true, true, false, false, true, true, true],
            "CT-COND-BPAS" => [false, false, true, false, false, true, true, true],
            _ => return false,
        };
        row[(self.id - 1) as usize]
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The scenario suffix appears only when set, so the rendering of
        // Table 2 targets — and with it every pre-zoo cell digest — is
        // unchanged.
        write!(
            f,
            "Target {}: {} | {} | {}",
            self.id, self.cpu_config.name, self.isa, self.mode
        )?;
        if let Some(s) = &self.scenario {
            write!(f, " | {}", s.label())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_targets_in_order() {
        let all = Target::all();
        assert_eq!(all.len(), 8);
        for (i, t) in all.iter().enumerate() {
            assert_eq!(t.id as usize, i + 1);
        }
    }

    #[test]
    fn table2_rows_match_paper() {
        assert_eq!(Target::target1().isa, IsaSubset::AR);
        assert_eq!(Target::target2().isa, IsaSubset::AR_MEM);
        assert_eq!(Target::target3().isa, IsaSubset::AR_MEM_VAR);
        assert_eq!(Target::target6().isa, IsaSubset::AR_MEM_CB_VAR);
        assert!(!Target::target3().cpu_config.ssbd_patch, "targets 1-3 have the V4 patch off");
        assert!(Target::target4().cpu_config.ssbd_patch, "targets 4-7 have the V4 patch on");
        assert!(Target::target8().cpu_config.name.contains("Coffee Lake"));
        assert!(Target::target7().mode.assists);
        assert!(!Target::target5().mode.assists);
    }

    #[test]
    fn expected_vulnerabilities_match_table3() {
        assert_eq!(Target::target1().expected_vulnerability(), None);
        assert_eq!(Target::target2().expected_vulnerability(), Some("V4"));
        assert_eq!(Target::target5().expected_vulnerability(), Some("V1"));
        assert_eq!(Target::target7().expected_vulnerability(), Some("MDS"));
        assert_eq!(Target::target8().expected_vulnerability(), Some("LVI-Null"));
    }

    #[test]
    fn table3_expected_cells() {
        assert!(!Target::target1().paper_expects_violation("CT-SEQ"));
        assert!(Target::target2().paper_expects_violation("CT-SEQ"));
        assert!(!Target::target2().paper_expects_violation("CT-BPAS"));
        assert!(Target::target5().paper_expects_violation("CT-SEQ"));
        assert!(!Target::target5().paper_expects_violation("CT-COND"));
        assert!(Target::target6().paper_expects_violation("CT-COND-BPAS"));
        assert!(Target::target8().paper_expects_violation("CT-COND-BPAS"));
        assert!(!Target::target4().paper_expects_violation("CT-SEQ"));
    }

    #[test]
    fn cpu_instantiation_uses_config() {
        use rvz_uarch::CpuUnderTest;
        let cpu = Target::target8().cpu();
        assert!(cpu.name().contains("Coffee Lake"));
    }

    #[test]
    fn display_contains_all_fields() {
        let s = format!("{}", Target::target7());
        assert!(s.contains("Target 7"));
        assert!(s.contains("AR+MEM"));
        assert!(s.contains("Assist"));
    }

    #[test]
    fn catalog_extends_table2_with_the_zoo() {
        let catalog = Target::catalog();
        assert_eq!(catalog.len(), 13);
        assert_eq!(&catalog[..8], &Target::all()[..]);
        for (i, t) in catalog.iter().enumerate() {
            assert_eq!(t.id as usize, i + 1);
        }
    }

    #[test]
    fn zoo_targets_use_non_default_predictors() {
        for t in Target::zoo() {
            assert!(
                !t.cpu_config.predictors.is_default(),
                "target {} must select a zoo predictor",
                t.id
            );
            assert!(t.cpu_config.name.contains('['), "target {} name: {}", t.id, t.cpu_config.name);
        }
        assert!(Target::target11().scenario.is_some());
        assert!(Target::target12().scenario.is_some());
        assert!(Target::target13().scenario.is_some());
        assert_eq!(Target::target9().scenario, None, "target 9 fuzzes random programs");
    }

    #[test]
    fn zoo_display_appends_scenario_and_table2_display_is_unchanged() {
        let t5 = format!("{}", Target::target5());
        assert_eq!(t5, "Target 5: Skylake (V4 patch on) | AR+MEM+CB | Prime+Probe");
        let t11 = format!("{}", Target::target11());
        assert!(t11.contains("[btb2x2t1]"), "{t11}");
        assert!(t11.ends_with("| V2-btb-alias"), "{t11}");
    }

    #[test]
    fn zoo_targets_have_no_paper_row() {
        for t in Target::zoo() {
            for c in ["CT-SEQ", "CT-BPAS", "CT-COND", "CT-COND-BPAS"] {
                assert!(!t.paper_expects_violation(c));
            }
        }
    }
}
