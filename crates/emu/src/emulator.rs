//! Instruction-level architectural emulation.

use crate::fault::Fault;
use crate::sink::TraceSink;
use crate::state::ArchState;
use rvz_isa::reg::FlagSet;
use rvz_isa::{
    AluOp, Cond, DecodedOp, DstOp, Flag, Input, Instr, MemOperand, Operand, Reg, SandboxLayout,
    ShiftOp, SrcOp, UnaryOp, Width,
};
use serde::{Deserialize, Serialize};

/// Kind of a memory event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemEventKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// A memory access performed by one instruction.
///
/// The contract model turns these into contract-trace observations:
/// `MEM`/`CT` expose `addr`, `ARCH` additionally exposes `value` for reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemEvent {
    /// Virtual address accessed.
    pub addr: u64,
    /// Access width.
    pub width: Width,
    /// Read or write.
    pub kind: MemEventKind,
    /// Value loaded (for reads) or stored (for writes).
    pub value: u64,
}

/// The externally visible effects of executing one instruction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstrEffects {
    /// Memory accesses, in program order within the instruction.
    pub mem_events: Vec<MemEvent>,
}

/// A delta checkpoint taken by [`Emulator::begin_speculation`].
///
/// Registers and flags are snapshot eagerly (128 bytes + 1); memory is
/// rolled back lazily through the write journal, so restore cost is
/// proportional to what the speculative window actually wrote instead of
/// the whole sandbox.
#[derive(Debug, Clone)]
pub struct SpecCheckpoint {
    regs: [u64; 16],
    flags: FlagSet,
    journal_mark: usize,
}

/// The architectural emulator: executes instructions against an
/// [`ArchState`].
///
/// Two checkpoint mechanisms exist: [`Emulator::checkpoint`] clones the whole
/// state (used by the reference walks), and
/// [`Emulator::begin_speculation`]/[`Emulator::rollback`] take delta
/// checkpoints whose restore cost is proportional to the speculative
/// footprint (used by the decoded fast paths, §5.4).
#[derive(Debug, Clone)]
pub struct Emulator {
    state: ArchState,
    /// Undo log of speculative memory writes: `(addr, width, old value)`.
    journal: Vec<(u64, Width, u64)>,
    /// Nesting depth of open speculative windows; journaling is active only
    /// while this is non-zero, so non-speculative execution pays nothing.
    spec_depth: u32,
}

impl Emulator {
    /// Create an emulator with the initial state for `input`.
    pub fn new(sandbox: SandboxLayout, input: &Input) -> Emulator {
        Emulator { state: ArchState::from_input(sandbox, input), journal: Vec::new(), spec_depth: 0 }
    }

    /// Create an emulator from an existing state (e.g. a checkpoint).
    pub fn from_state(state: ArchState) -> Emulator {
        Emulator { state, journal: Vec::new(), spec_depth: 0 }
    }

    /// Current architectural state.
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// Mutable architectural state.
    pub fn state_mut(&mut self) -> &mut ArchState {
        &mut self.state
    }

    /// Take a checkpoint of the current state.
    pub fn checkpoint(&self) -> ArchState {
        self.state.clone()
    }

    /// Consume the emulator, yielding the architectural state without the
    /// clone a [`Emulator::checkpoint`] would pay.
    pub fn into_state(self) -> ArchState {
        self.state
    }

    /// Restore a previously taken checkpoint.
    pub fn restore(&mut self, checkpoint: ArchState) {
        self.state = checkpoint;
    }

    /// Open a speculative window: snapshot registers and flags, mark the
    /// write journal.  Must be balanced by [`Emulator::rollback`].  Windows
    /// nest.
    pub fn begin_speculation(&mut self) -> SpecCheckpoint {
        self.spec_depth += 1;
        SpecCheckpoint {
            regs: self.state.regs_snapshot(),
            flags: self.state.flags(),
            journal_mark: self.journal.len(),
        }
    }

    /// Close a speculative window: undo every journaled memory write past
    /// the checkpoint's mark (newest first, so overlapping writes unwind
    /// correctly), then restore registers and flags.
    pub fn rollback(&mut self, cp: SpecCheckpoint) {
        while self.journal.len() > cp.journal_mark {
            let (addr, width, old) = self.journal.pop().expect("journal entry past mark");
            self.state.write_mem(addr, width, old).expect("journaled address stays in sandbox");
        }
        self.state.restore_regs(cp.regs);
        self.state.set_flags(cp.flags);
        self.spec_depth -= 1;
    }

    /// Write memory, journaling the old value while a speculative window is
    /// open so [`Emulator::rollback`] can undo it.
    ///
    /// # Errors
    /// Returns [`Fault::OutOfSandbox`] if the access leaves the sandbox; no
    /// journal entry is recorded for a faulting write.
    pub fn write_mem(&mut self, addr: u64, width: Width, value: u64) -> Result<(), Fault> {
        if self.spec_depth > 0 {
            // The read performs the same range check as the write, so a
            // faulting access is rejected before any state changes.
            let old = self.state.read_mem(addr, width)?;
            self.state.write_mem(addr, width, value)?;
            self.journal.push((addr, width, old));
            Ok(())
        } else {
            self.state.write_mem(addr, width, value)
        }
    }

    /// Compute the effective address of a memory operand.
    pub fn effective_addr(&self, m: &MemOperand) -> u64 {
        let mut addr = self.state.reg(m.base);
        if let Some(idx) = m.index {
            addr = addr.wrapping_add(self.state.reg(idx).wrapping_mul(m.scale as u64));
        }
        addr.wrapping_add(m.disp as u64)
    }

    /// Evaluate a condition code against the current flags.
    pub fn eval_cond(&self, c: Cond) -> bool {
        let f = |fl: Flag| self.state.flag(fl);
        match c {
            Cond::O => f(Flag::Of),
            Cond::No => !f(Flag::Of),
            Cond::B => f(Flag::Cf),
            Cond::Nb => !f(Flag::Cf),
            Cond::E => f(Flag::Zf),
            Cond::Ne => !f(Flag::Zf),
            Cond::Be => f(Flag::Cf) || f(Flag::Zf),
            Cond::Nbe => !(f(Flag::Cf) || f(Flag::Zf)),
            Cond::S => f(Flag::Sf),
            Cond::Ns => !f(Flag::Sf),
            Cond::P => f(Flag::Pf),
            Cond::Np => !f(Flag::Pf),
            Cond::L => f(Flag::Sf) != f(Flag::Of),
            Cond::Nl => f(Flag::Sf) == f(Flag::Of),
            Cond::Le => f(Flag::Zf) || (f(Flag::Sf) != f(Flag::Of)),
            Cond::Nle => !f(Flag::Zf) && (f(Flag::Sf) == f(Flag::Of)),
        }
    }

    /// Read an operand as a source at the given width, recording the memory
    /// event if it is a memory operand.
    fn read_operand(
        &mut self,
        op: &Operand,
        width: Width,
        effects: &mut InstrEffects,
    ) -> Result<u64, Fault> {
        match op {
            Operand::Reg(r, w) => Ok(width.truncate(self.state.reg_w(*r, *w))),
            Operand::Imm(v) => Ok(width.truncate(*v as u64)),
            Operand::Mem(m, w) => {
                let addr = self.effective_addr(m);
                let value = self.state.read_mem(addr, *w)?;
                effects.mem_events.push(MemEvent {
                    addr,
                    width: *w,
                    kind: MemEventKind::Read,
                    value,
                });
                Ok(width.truncate(value))
            }
        }
    }

    /// Write an operand as a destination, recording the memory event if it
    /// is a memory operand.
    fn write_operand(
        &mut self,
        op: &Operand,
        value: u64,
        effects: &mut InstrEffects,
    ) -> Result<(), Fault> {
        match op {
            Operand::Reg(r, w) => {
                self.state.set_reg_w(*r, *w, value);
                Ok(())
            }
            Operand::Imm(_) => panic!("immediate used as destination"),
            Operand::Mem(m, w) => {
                let addr = self.effective_addr(m);
                let value = w.truncate(value);
                self.state.write_mem(addr, *w, value)?;
                effects.mem_events.push(MemEvent {
                    addr,
                    width: *w,
                    kind: MemEventKind::Write,
                    value,
                });
                Ok(())
            }
        }
    }

    fn set_result_flags(&mut self, result: u64, width: Width) {
        let r = width.truncate(result);
        self.state.set_flag(Flag::Zf, r == 0);
        self.state.set_flag(Flag::Sf, r & width.sign_bit() != 0);
        self.state.set_flag(Flag::Pf, (r as u8).count_ones().is_multiple_of(2));
    }

    fn exec_alu(
        &mut self,
        op: AluOp,
        dest: &Operand,
        src: &Operand,
        effects: &mut InstrEffects,
    ) -> Result<(), Fault> {
        let width = dest.width();
        let a = self.read_operand(dest, width, effects)?;
        let b = self.read_operand(src, width, effects)?;
        let carry_in = if op.reads_carry() && self.state.flag(Flag::Cf) { 1u64 } else { 0 };
        let mask = width.mask();
        let sign = width.sign_bit();
        let (result, cf, of) = match op {
            AluOp::Add | AluOp::Adc => {
                let full = (a as u128) + (b as u128) + (carry_in as u128);
                let r = (full as u64) & mask;
                let cf = full > mask as u128;
                let of = ((a ^ r) & (b ^ r) & sign) != 0;
                (r, cf, of)
            }
            AluOp::Sub | AluOp::Sbb => {
                let rhs = (b as u128) + (carry_in as u128);
                let cf = (a as u128) < rhs;
                let r = (a.wrapping_sub(b).wrapping_sub(carry_in)) & mask;
                let of = ((a ^ b) & (a ^ r) & sign) != 0;
                (r, cf, of)
            }
            AluOp::And => ((a & b) & mask, false, false),
            AluOp::Or => ((a | b) & mask, false, false),
            AluOp::Xor => ((a ^ b) & mask, false, false),
        };
        self.write_operand(dest, result, effects)?;
        self.set_result_flags(result, width);
        self.state.set_flag(Flag::Cf, cf);
        self.state.set_flag(Flag::Of, of);
        Ok(())
    }

    fn exec_shift(
        &mut self,
        op: ShiftOp,
        dest: &Operand,
        amount: &Operand,
        effects: &mut InstrEffects,
    ) -> Result<(), Fault> {
        let width = dest.width();
        let a = self.read_operand(dest, width, effects)?;
        let amt_raw = self.read_operand(amount, Width::Byte, effects)?;
        let bits = width.bits() as u64;
        let amt = amt_raw % bits.max(1);
        let mask = width.mask();
        let (result, cf) = if amt == 0 {
            (a, self.state.flag(Flag::Cf))
        } else {
            match op {
                ShiftOp::Shl => {
                    let r = (a << amt) & mask;
                    let cf = (a >> (bits - amt)) & 1 == 1;
                    (r, cf)
                }
                ShiftOp::Shr => {
                    let r = (a & mask) >> amt;
                    let cf = (a >> (amt - 1)) & 1 == 1;
                    (r, cf)
                }
                ShiftOp::Sar => {
                    let signed = ((a & mask) as i64) << (64 - bits) >> (64 - bits);
                    let r = ((signed >> amt) as u64) & mask;
                    let cf = (a >> (amt - 1)) & 1 == 1;
                    (r, cf)
                }
                ShiftOp::Rol => {
                    let r = ((a << amt) | ((a & mask) >> (bits - amt))) & mask;
                    (r, r & 1 == 1)
                }
                ShiftOp::Ror => {
                    let r = (((a & mask) >> amt) | (a << (bits - amt))) & mask;
                    (r, r & width.sign_bit() != 0)
                }
            }
        };
        self.write_operand(dest, result, effects)?;
        if amt != 0 {
            self.set_result_flags(result, width);
            self.state.set_flag(Flag::Cf, cf);
            self.state.set_flag(Flag::Of, false);
        }
        Ok(())
    }

    /// Execute a single straight-line instruction.
    ///
    /// # Errors
    /// Returns a [`Fault`] on division errors or sandbox escapes; the state
    /// is left partially updated exactly as a faulting instruction would
    /// leave it before the fault is delivered.
    pub fn exec_instr(&mut self, instr: &Instr) -> Result<InstrEffects, Fault> {
        let mut effects = InstrEffects::default();
        match instr {
            Instr::Alu { op, dest, src, .. } => self.exec_alu(*op, dest, src, &mut effects)?,
            Instr::Mov { dest, src } => {
                let width = dest.width();
                let v = self.read_operand(src, width, &mut effects)?;
                self.write_operand(dest, v, &mut effects)?;
            }
            Instr::Cmov { cond, dest, src, width } => {
                // x86 CMOV always performs the source read (and can fault on
                // it) even when the condition is false.
                let v = self.read_operand(src, *width, &mut effects)?;
                if self.eval_cond(*cond) {
                    self.state.set_reg_w(*dest, *width, v);
                }
            }
            Instr::Setcc { cond, dest } => {
                let v = if self.eval_cond(*cond) { 1 } else { 0 };
                self.state.set_reg_w(*dest, Width::Byte, v);
            }
            Instr::Cmp { a, b } => {
                let width = a.width();
                let x = self.read_operand(a, width, &mut effects)?;
                let y = self.read_operand(b, width, &mut effects)?;
                let mask = width.mask();
                let sign = width.sign_bit();
                let r = x.wrapping_sub(y) & mask;
                self.set_result_flags(r, width);
                self.state.set_flag(Flag::Cf, x < y);
                self.state.set_flag(Flag::Of, ((x ^ y) & (x ^ r) & sign) != 0);
            }
            Instr::Test { a, b } => {
                let width = a.width();
                let x = self.read_operand(a, width, &mut effects)?;
                let y = self.read_operand(b, width, &mut effects)?;
                let r = (x & y) & width.mask();
                self.set_result_flags(r, width);
                self.state.set_flag(Flag::Cf, false);
                self.state.set_flag(Flag::Of, false);
            }
            Instr::Shift { op, dest, amount } => self.exec_shift(*op, dest, amount, &mut effects)?,
            Instr::Unary { op, dest } => {
                let width = dest.width();
                let a = self.read_operand(dest, width, &mut effects)?;
                let mask = width.mask();
                let result = match op {
                    UnaryOp::Not => !a & mask,
                    UnaryOp::Neg => a.wrapping_neg() & mask,
                    UnaryOp::Inc => a.wrapping_add(1) & mask,
                    UnaryOp::Dec => a.wrapping_sub(1) & mask,
                };
                self.write_operand(dest, result, &mut effects)?;
                if op.writes_flags() {
                    self.set_result_flags(result, width);
                    match op {
                        UnaryOp::Neg => self.state.set_flag(Flag::Cf, a != 0),
                        UnaryOp::Inc | UnaryOp::Dec => {
                            self.state.set_flag(Flag::Of, result & width.sign_bit() != a & width.sign_bit())
                        }
                        UnaryOp::Not => {}
                    }
                }
            }
            Instr::Div { src } => {
                let width = src.width();
                let divisor = self.read_operand(src, width, &mut effects)?;
                if divisor == 0 {
                    return Err(Fault::DivideError);
                }
                let dividend =
                    ((self.state.reg_w(Reg::Rdx, width) as u128) << width.bits())
                        | self.state.reg_w(Reg::Rax, width) as u128;
                let q = dividend / divisor as u128;
                let rem = dividend % divisor as u128;
                if q > width.mask() as u128 {
                    return Err(Fault::DivideError);
                }
                self.state.set_reg_w(Reg::Rax, width, q as u64);
                self.state.set_reg_w(Reg::Rdx, width, rem as u64);
            }
            Instr::Imul { dest, src } => {
                let width = Width::Qword;
                let a = self.state.reg(*dest) as i64;
                let b = self.read_operand(src, width, &mut effects)? as i64;
                let full = (a as i128) * (b as i128);
                let r = full as i64 as u64;
                self.state.set_reg(*dest, r);
                let overflow = full != (r as i64) as i128;
                self.set_result_flags(r, width);
                self.state.set_flag(Flag::Cf, overflow);
                self.state.set_flag(Flag::Of, overflow);
            }
            Instr::Lea { dest, addr } => {
                let a = self.effective_addr(addr);
                self.state.set_reg(*dest, a);
            }
            Instr::Bswap { dest } => {
                let v = self.state.reg(*dest);
                self.state.set_reg(*dest, v.swap_bytes());
            }
            Instr::Xchg { dest, src } => {
                let width = src.width();
                let a = self.state.reg_w(*dest, width);
                let b = self.read_operand(src, width, &mut effects)?;
                self.state.set_reg_w(*dest, width, b);
                self.write_operand(src, a, &mut effects)?;
            }
            Instr::Lfence | Instr::Mfence | Instr::Nop => {}
        }
        Ok(effects)
    }

    /// Read a decoded source operand at the given use width, reporting the
    /// memory event to the sink.
    #[inline]
    fn read_src<S: TraceSink>(
        &mut self,
        op: &SrcOp,
        width: Width,
        sink: &mut S,
    ) -> Result<u64, Fault> {
        match op {
            SrcOp::Reg(r, w) => Ok(width.truncate(self.state.reg_w(*r, *w))),
            SrcOp::Imm(v) => Ok(width.truncate(*v)),
            SrcOp::Mem(m, w) => {
                let addr = self.effective_addr(m);
                let value = self.state.read_mem(addr, *w)?;
                sink.mem_event(MemEvent { addr, width: *w, kind: MemEventKind::Read, value });
                Ok(width.truncate(value))
            }
        }
    }

    /// Read a decoded destination operand (for read-modify-write ops).
    #[inline]
    fn read_dst<S: TraceSink>(
        &mut self,
        op: &DstOp,
        width: Width,
        sink: &mut S,
    ) -> Result<u64, Fault> {
        match op {
            DstOp::Reg(r, w) => Ok(width.truncate(self.state.reg_w(*r, *w))),
            DstOp::Mem(m, w) => {
                let addr = self.effective_addr(m);
                let value = self.state.read_mem(addr, *w)?;
                sink.mem_event(MemEvent { addr, width: *w, kind: MemEventKind::Read, value });
                Ok(width.truncate(value))
            }
        }
    }

    /// Write a decoded destination operand, reporting the memory event.
    #[inline]
    fn write_dst<S: TraceSink>(
        &mut self,
        op: &DstOp,
        value: u64,
        sink: &mut S,
    ) -> Result<(), Fault> {
        match op {
            DstOp::Reg(r, w) => {
                self.state.set_reg_w(*r, *w, value);
                Ok(())
            }
            DstOp::Mem(m, w) => {
                let addr = self.effective_addr(m);
                let value = w.truncate(value);
                self.write_mem(addr, *w, value)?;
                sink.mem_event(MemEvent { addr, width: *w, kind: MemEventKind::Write, value });
                Ok(())
            }
        }
    }

    fn exec_alu_decoded<S: TraceSink>(
        &mut self,
        op: AluOp,
        width: Width,
        dest: &DstOp,
        src: &SrcOp,
        sink: &mut S,
    ) -> Result<(), Fault> {
        let a = self.read_dst(dest, width, sink)?;
        let b = self.read_src(src, width, sink)?;
        let carry_in = if op.reads_carry() && self.state.flag(Flag::Cf) { 1u64 } else { 0 };
        let mask = width.mask();
        let sign = width.sign_bit();
        let (result, cf, of) = match op {
            AluOp::Add | AluOp::Adc => {
                let full = (a as u128) + (b as u128) + (carry_in as u128);
                let r = (full as u64) & mask;
                let cf = full > mask as u128;
                let of = ((a ^ r) & (b ^ r) & sign) != 0;
                (r, cf, of)
            }
            AluOp::Sub | AluOp::Sbb => {
                let rhs = (b as u128) + (carry_in as u128);
                let cf = (a as u128) < rhs;
                let r = (a.wrapping_sub(b).wrapping_sub(carry_in)) & mask;
                let of = ((a ^ b) & (a ^ r) & sign) != 0;
                (r, cf, of)
            }
            AluOp::And => ((a & b) & mask, false, false),
            AluOp::Or => ((a | b) & mask, false, false),
            AluOp::Xor => ((a ^ b) & mask, false, false),
        };
        self.write_dst(dest, result, sink)?;
        self.set_result_flags(result, width);
        self.state.set_flag(Flag::Cf, cf);
        self.state.set_flag(Flag::Of, of);
        Ok(())
    }

    fn exec_shift_decoded<S: TraceSink>(
        &mut self,
        op: ShiftOp,
        width: Width,
        dest: &DstOp,
        amount: &SrcOp,
        sink: &mut S,
    ) -> Result<(), Fault> {
        let a = self.read_dst(dest, width, sink)?;
        let amt_raw = self.read_src(amount, Width::Byte, sink)?;
        let bits = width.bits() as u64;
        let amt = amt_raw % bits.max(1);
        let mask = width.mask();
        let (result, cf) = if amt == 0 {
            (a, self.state.flag(Flag::Cf))
        } else {
            match op {
                ShiftOp::Shl => {
                    let r = (a << amt) & mask;
                    let cf = (a >> (bits - amt)) & 1 == 1;
                    (r, cf)
                }
                ShiftOp::Shr => {
                    let r = (a & mask) >> amt;
                    let cf = (a >> (amt - 1)) & 1 == 1;
                    (r, cf)
                }
                ShiftOp::Sar => {
                    let signed = ((a & mask) as i64) << (64 - bits) >> (64 - bits);
                    let r = ((signed >> amt) as u64) & mask;
                    let cf = (a >> (amt - 1)) & 1 == 1;
                    (r, cf)
                }
                ShiftOp::Rol => {
                    let r = ((a << amt) | ((a & mask) >> (bits - amt))) & mask;
                    (r, r & 1 == 1)
                }
                ShiftOp::Ror => {
                    let r = (((a & mask) >> amt) | (a << (bits - amt))) & mask;
                    (r, r & width.sign_bit() != 0)
                }
            }
        };
        self.write_dst(dest, result, sink)?;
        if amt != 0 {
            self.set_result_flags(result, width);
            self.state.set_flag(Flag::Cf, cf);
            self.state.set_flag(Flag::Of, false);
        }
        Ok(())
    }

    /// Execute a single decoded instruction, reporting memory events to the
    /// sink.
    ///
    /// Observably byte-identical to [`Emulator::exec_instr`] on the
    /// corresponding AST instruction (enforced by the differential property
    /// tests), but with operand widths pre-resolved and no per-instruction
    /// heap allocation.  Memory writes are journaled while a speculative
    /// window is open.
    ///
    /// # Errors
    /// Returns a [`Fault`] exactly as [`Emulator::exec_instr`] would; events
    /// already reported to the sink before the fault must be discarded by
    /// the caller (clear the buffer per instruction, consume on success).
    pub fn exec_decoded<S: TraceSink>(
        &mut self,
        op: &DecodedOp,
        sink: &mut S,
    ) -> Result<(), Fault> {
        match op {
            DecodedOp::Alu { op, width, dest, src } => {
                self.exec_alu_decoded(*op, *width, dest, src, sink)?
            }
            DecodedOp::Mov { width, dest, src } => {
                let v = self.read_src(src, *width, sink)?;
                self.write_dst(dest, v, sink)?;
            }
            DecodedOp::Cmov { cond, dest, width, src } => {
                // x86 CMOV always performs the source read (and can fault on
                // it) even when the condition is false.
                let v = self.read_src(src, *width, sink)?;
                if self.eval_cond(*cond) {
                    self.state.set_reg_w(*dest, *width, v);
                }
            }
            DecodedOp::Setcc { cond, dest } => {
                let v = if self.eval_cond(*cond) { 1 } else { 0 };
                self.state.set_reg_w(*dest, Width::Byte, v);
            }
            DecodedOp::Cmp { width, a, b } => {
                let x = self.read_src(a, *width, sink)?;
                let y = self.read_src(b, *width, sink)?;
                let mask = width.mask();
                let sign = width.sign_bit();
                let r = x.wrapping_sub(y) & mask;
                self.set_result_flags(r, *width);
                self.state.set_flag(Flag::Cf, x < y);
                self.state.set_flag(Flag::Of, ((x ^ y) & (x ^ r) & sign) != 0);
            }
            DecodedOp::Test { width, a, b } => {
                let x = self.read_src(a, *width, sink)?;
                let y = self.read_src(b, *width, sink)?;
                let r = (x & y) & width.mask();
                self.set_result_flags(r, *width);
                self.state.set_flag(Flag::Cf, false);
                self.state.set_flag(Flag::Of, false);
            }
            DecodedOp::Shift { op, width, dest, amount } => {
                self.exec_shift_decoded(*op, *width, dest, amount, sink)?
            }
            DecodedOp::Unary { op, width, dest } => {
                let a = self.read_dst(dest, *width, sink)?;
                let mask = width.mask();
                let result = match op {
                    UnaryOp::Not => !a & mask,
                    UnaryOp::Neg => a.wrapping_neg() & mask,
                    UnaryOp::Inc => a.wrapping_add(1) & mask,
                    UnaryOp::Dec => a.wrapping_sub(1) & mask,
                };
                self.write_dst(dest, result, sink)?;
                if op.writes_flags() {
                    self.set_result_flags(result, *width);
                    match op {
                        UnaryOp::Neg => self.state.set_flag(Flag::Cf, a != 0),
                        UnaryOp::Inc | UnaryOp::Dec => self.state.set_flag(
                            Flag::Of,
                            result & width.sign_bit() != a & width.sign_bit(),
                        ),
                        UnaryOp::Not => {}
                    }
                }
            }
            DecodedOp::Div { width, src } => {
                let divisor = self.read_src(src, *width, sink)?;
                if divisor == 0 {
                    return Err(Fault::DivideError);
                }
                let dividend = ((self.state.reg_w(Reg::Rdx, *width) as u128) << width.bits())
                    | self.state.reg_w(Reg::Rax, *width) as u128;
                let q = dividend / divisor as u128;
                let rem = dividend % divisor as u128;
                if q > width.mask() as u128 {
                    return Err(Fault::DivideError);
                }
                self.state.set_reg_w(Reg::Rax, *width, q as u64);
                self.state.set_reg_w(Reg::Rdx, *width, rem as u64);
            }
            DecodedOp::Imul { dest, src } => {
                let width = Width::Qword;
                let a = self.state.reg(*dest) as i64;
                let b = self.read_src(src, width, sink)? as i64;
                let full = (a as i128) * (b as i128);
                let r = full as i64 as u64;
                self.state.set_reg(*dest, r);
                let overflow = full != (r as i64) as i128;
                self.set_result_flags(r, width);
                self.state.set_flag(Flag::Cf, overflow);
                self.state.set_flag(Flag::Of, overflow);
            }
            DecodedOp::Lea { dest, addr } => {
                let a = self.effective_addr(addr);
                self.state.set_reg(*dest, a);
            }
            DecodedOp::Bswap { dest } => {
                let v = self.state.reg(*dest);
                self.state.set_reg(*dest, v.swap_bytes());
            }
            DecodedOp::Xchg { dest, width, src } => {
                let a = self.state.reg_w(*dest, *width);
                let b = self.read_dst(src, *width, sink)?;
                self.state.set_reg_w(*dest, *width, b);
                self.write_dst(src, a, sink)?;
            }
            DecodedOp::Fence | DecodedOp::Nop => {}
        }
        Ok(())
    }

    /// Push a return value for `CALL` onto the in-sandbox stack.
    ///
    /// # Errors
    /// Returns [`Fault::StackFault`] if the stack leaves its dedicated area.
    pub fn push_ret(&mut self, value: u64) -> Result<MemEvent, Fault> {
        let rsp = self.state.reg(Reg::Rsp).wrapping_sub(8);
        if rsp < self.state.sandbox().stack_base() {
            return Err(Fault::StackFault { rsp });
        }
        self.state.set_reg(Reg::Rsp, rsp);
        self.write_mem(rsp, Width::Qword, value)?;
        Ok(MemEvent { addr: rsp, width: Width::Qword, kind: MemEventKind::Write, value })
    }

    /// Pop a return value for `RET` from the in-sandbox stack.
    ///
    /// # Errors
    /// Returns [`Fault::StackFault`] if the stack leaves its dedicated area.
    pub fn pop_ret(&mut self) -> Result<(u64, MemEvent), Fault> {
        let rsp = self.state.reg(Reg::Rsp);
        if rsp + 8 > self.state.sandbox().base + self.state.sandbox().size() {
            return Err(Fault::StackFault { rsp });
        }
        let value = self.state.read_mem(rsp, Width::Qword)?;
        self.state.set_reg(Reg::Rsp, rsp + 8);
        Ok((value, MemEvent { addr: rsp, width: Width::Qword, kind: MemEventKind::Read, value }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_isa::MemOperand;

    fn emu() -> Emulator {
        let sb = SandboxLayout::one_page();
        Emulator::new(sb, &Input::zeroed(sb))
    }

    fn emu_with(f: impl FnOnce(&mut Input)) -> Emulator {
        let sb = SandboxLayout::one_page();
        let mut input = Input::zeroed(sb);
        f(&mut input);
        Emulator::new(sb, &input)
    }

    #[test]
    fn add_sets_flags() {
        let mut e = emu_with(|i| i.set_reg(Reg::Rax, u64::MAX));
        let i = Instr::Alu {
            op: AluOp::Add,
            dest: Operand::reg(Reg::Rax),
            src: Operand::imm(1),
            lock: false,
        };
        e.exec_instr(&i).unwrap();
        assert_eq!(e.state().reg(Reg::Rax), 0);
        assert!(e.state().flag(Flag::Zf));
        assert!(e.state().flag(Flag::Cf));
        assert!(!e.state().flag(Flag::Of));
    }

    #[test]
    fn sub_borrow_and_overflow() {
        let mut e = emu_with(|i| i.set_reg(Reg::Rax, 0));
        let i = Instr::Alu {
            op: AluOp::Sub,
            dest: Operand::reg(Reg::Rax),
            src: Operand::imm(1),
            lock: false,
        };
        e.exec_instr(&i).unwrap();
        assert_eq!(e.state().reg(Reg::Rax), u64::MAX);
        assert!(e.state().flag(Flag::Cf));
        assert!(e.state().flag(Flag::Sf));
    }

    #[test]
    fn adc_uses_carry() {
        let mut e = emu();
        e.state_mut().set_flag(Flag::Cf, true);
        let i = Instr::Alu {
            op: AluOp::Adc,
            dest: Operand::reg(Reg::Rbx),
            src: Operand::imm(1),
            lock: false,
        };
        e.exec_instr(&i).unwrap();
        assert_eq!(e.state().reg(Reg::Rbx), 2);
    }

    #[test]
    fn and_clears_carry() {
        let mut e = emu_with(|i| i.set_reg(Reg::Rax, 0b1010));
        e.state_mut().set_flag(Flag::Cf, true);
        let i = Instr::Alu {
            op: AluOp::And,
            dest: Operand::reg(Reg::Rax),
            src: Operand::imm(0b0110),
            lock: false,
        };
        e.exec_instr(&i).unwrap();
        assert_eq!(e.state().reg(Reg::Rax), 0b0010);
        assert!(!e.state().flag(Flag::Cf));
    }

    #[test]
    fn load_and_store_report_events() {
        let mut e = emu_with(|i| {
            i.write_mem_u64(64, 0x55);
            i.set_reg(Reg::Rax, 64);
        });
        let base = e.state().sandbox().base;
        let load = Instr::Mov {
            dest: Operand::reg(Reg::Rbx),
            src: Operand::mem(MemOperand::base_index(Reg::R14, Reg::Rax)),
        };
        let fx = e.exec_instr(&load).unwrap();
        assert_eq!(e.state().reg(Reg::Rbx), 0x55);
        assert_eq!(fx.mem_events.len(), 1);
        assert_eq!(fx.mem_events[0].addr, base + 64);
        assert_eq!(fx.mem_events[0].kind, MemEventKind::Read);
        assert_eq!(fx.mem_events[0].value, 0x55);

        let store = Instr::Mov {
            dest: Operand::mem(MemOperand::base_disp(Reg::R14, 128)),
            src: Operand::reg(Reg::Rbx),
        };
        let fx = e.exec_instr(&store).unwrap();
        assert_eq!(fx.mem_events[0].kind, MemEventKind::Write);
        assert_eq!(e.state().read_mem(base + 128, Width::Qword).unwrap(), 0x55);
    }

    #[test]
    fn rmw_alu_on_memory_reports_read_and_write() {
        let mut e = emu_with(|i| i.write_mem_u64(0, 10));
        let i = Instr::Alu {
            op: AluOp::Sub,
            dest: Operand::mem_w(MemOperand::base(Reg::R14), Width::Byte),
            src: Operand::imm(3),
            lock: true,
        };
        let fx = e.exec_instr(&i).unwrap();
        assert_eq!(fx.mem_events.len(), 2);
        assert_eq!(fx.mem_events[0].kind, MemEventKind::Read);
        assert_eq!(fx.mem_events[1].kind, MemEventKind::Write);
        assert_eq!(fx.mem_events[1].value, 7);
    }

    #[test]
    fn out_of_sandbox_load_faults() {
        let mut e = emu_with(|i| i.set_reg(Reg::Rax, 1 << 20));
        let load = Instr::Mov {
            dest: Operand::reg(Reg::Rbx),
            src: Operand::mem(MemOperand::base_index(Reg::R14, Reg::Rax)),
        };
        assert!(matches!(e.exec_instr(&load), Err(Fault::OutOfSandbox { .. })));
    }

    #[test]
    fn div_by_zero_faults() {
        let mut e = emu_with(|i| i.set_reg(Reg::Rax, 100));
        let i = Instr::Div { src: Operand::reg(Reg::Rcx) };
        assert_eq!(e.exec_instr(&i), Err(Fault::DivideError));
    }

    #[test]
    fn div_computes_quotient_and_remainder() {
        let mut e = emu_with(|i| {
            i.set_reg(Reg::Rax, 17);
            i.set_reg(Reg::Rdx, 0);
            i.set_reg(Reg::Rcx, 5);
        });
        let i = Instr::Div { src: Operand::reg(Reg::Rcx) };
        e.exec_instr(&i).unwrap();
        assert_eq!(e.state().reg(Reg::Rax), 3);
        assert_eq!(e.state().reg(Reg::Rdx), 2);
    }

    #[test]
    fn div_quotient_overflow_faults() {
        let mut e = emu_with(|i| {
            i.set_reg(Reg::Rdx, 1);
            i.set_reg(Reg::Rax, 0);
            i.set_reg(Reg::Rcx, 1);
        });
        let i = Instr::Div { src: Operand::reg(Reg::Rcx) };
        assert_eq!(e.exec_instr(&i), Err(Fault::DivideError));
    }

    #[test]
    fn cmov_moves_only_when_condition_holds() {
        let mut e = emu_with(|i| i.set_reg(Reg::Rbx, 7));
        e.state_mut().set_flag(Flag::Zf, true);
        let i = Instr::Cmov { cond: Cond::E, dest: Reg::Rax, src: Operand::reg(Reg::Rbx), width: Width::Qword };
        e.exec_instr(&i).unwrap();
        assert_eq!(e.state().reg(Reg::Rax), 7);
        e.state_mut().set_flag(Flag::Zf, false);
        let i = Instr::Cmov { cond: Cond::E, dest: Reg::Rcx, src: Operand::reg(Reg::Rbx), width: Width::Qword };
        e.exec_instr(&i).unwrap();
        assert_eq!(e.state().reg(Reg::Rcx), 0);
    }

    #[test]
    fn setcc_writes_byte() {
        let mut e = emu_with(|i| i.set_reg(Reg::Rax, 0xffff_ff00));
        e.state_mut().set_flag(Flag::Sf, true);
        let i = Instr::Setcc { cond: Cond::S, dest: Reg::Rax };
        e.exec_instr(&i).unwrap();
        assert_eq!(e.state().reg(Reg::Rax), 0xffff_ff01);
    }

    #[test]
    fn cmp_sets_flags_like_sub_without_writing() {
        let mut e = emu_with(|i| i.set_reg(Reg::Rax, 5));
        let i = Instr::Cmp { a: Operand::reg(Reg::Rax), b: Operand::imm(5) };
        e.exec_instr(&i).unwrap();
        assert!(e.state().flag(Flag::Zf));
        assert_eq!(e.state().reg(Reg::Rax), 5);
        assert!(e.eval_cond(Cond::E));
        assert!(!e.eval_cond(Cond::B));
        assert!(e.eval_cond(Cond::Be));
        assert!(e.eval_cond(Cond::Le));
    }

    #[test]
    fn signed_conditions() {
        let mut e = emu_with(|i| i.set_reg(Reg::Rax, 3));
        let i = Instr::Cmp { a: Operand::reg(Reg::Rax), b: Operand::imm(10) };
        e.exec_instr(&i).unwrap();
        assert!(e.eval_cond(Cond::L));
        assert!(e.eval_cond(Cond::B));
        assert!(!e.eval_cond(Cond::Nle));
    }

    #[test]
    fn shifts() {
        let mut e = emu_with(|i| i.set_reg(Reg::Rax, 0b1011));
        let i = Instr::Shift { op: ShiftOp::Shl, dest: Operand::reg(Reg::Rax), amount: Operand::imm(2) };
        e.exec_instr(&i).unwrap();
        assert_eq!(e.state().reg(Reg::Rax), 0b101100);
        let i = Instr::Shift { op: ShiftOp::Shr, dest: Operand::reg(Reg::Rax), amount: Operand::imm(3) };
        e.exec_instr(&i).unwrap();
        assert_eq!(e.state().reg(Reg::Rax), 0b101);
    }

    #[test]
    fn unary_ops() {
        let mut e = emu_with(|i| i.set_reg(Reg::Rax, 1));
        e.exec_instr(&Instr::Unary { op: UnaryOp::Dec, dest: Operand::reg(Reg::Rax) }).unwrap();
        assert_eq!(e.state().reg(Reg::Rax), 0);
        assert!(e.state().flag(Flag::Zf));
        e.exec_instr(&Instr::Unary { op: UnaryOp::Not, dest: Operand::reg(Reg::Rax) }).unwrap();
        assert_eq!(e.state().reg(Reg::Rax), u64::MAX);
        e.exec_instr(&Instr::Unary { op: UnaryOp::Neg, dest: Operand::reg(Reg::Rax) }).unwrap();
        assert_eq!(e.state().reg(Reg::Rax), 1);
        assert!(e.state().flag(Flag::Cf));
    }

    #[test]
    fn lea_and_bswap() {
        let mut e = emu_with(|i| i.set_reg(Reg::Rbx, 0x40));
        e.exec_instr(&Instr::Lea {
            dest: Reg::Rax,
            addr: MemOperand::full(Reg::R14, Reg::Rbx, 2, 8),
        })
        .unwrap();
        let expected = e.state().sandbox().base + 0x80 + 8;
        assert_eq!(e.state().reg(Reg::Rax), expected);
        e.state_mut().set_reg(Reg::Rcx, 0x0102_0304_0506_0708);
        e.exec_instr(&Instr::Bswap { dest: Reg::Rcx }).unwrap();
        assert_eq!(e.state().reg(Reg::Rcx), 0x0807_0605_0403_0201);
    }

    #[test]
    fn imul_two_operand() {
        let mut e = emu_with(|i| i.set_reg(Reg::Rax, 6));
        e.exec_instr(&Instr::Imul { dest: Reg::Rax, src: Operand::imm(7) }).unwrap();
        assert_eq!(e.state().reg(Reg::Rax), 42);
        assert!(!e.state().flag(Flag::Cf));
    }

    #[test]
    fn xchg_registers() {
        let mut e = emu_with(|i| {
            i.set_reg(Reg::Rax, 1);
            i.set_reg(Reg::Rbx, 2);
        });
        e.exec_instr(&Instr::Xchg { dest: Reg::Rax, src: Operand::reg(Reg::Rbx) }).unwrap();
        assert_eq!(e.state().reg(Reg::Rax), 2);
        assert_eq!(e.state().reg(Reg::Rbx), 1);
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let mut e = emu();
        let cp = e.checkpoint();
        e.exec_instr(&Instr::Mov { dest: Operand::reg(Reg::Rax), src: Operand::imm(9) }).unwrap();
        e.exec_instr(&Instr::Mov {
            dest: Operand::mem(MemOperand::base(Reg::R14)),
            src: Operand::imm(1),
        })
        .unwrap();
        assert_ne!(e.state().digest(), cp.digest());
        e.restore(cp.clone());
        assert_eq!(e.state().digest(), cp.digest());
    }

    #[test]
    fn call_ret_stack_roundtrip() {
        let mut e = emu();
        let ev = e.push_ret(3).unwrap();
        assert_eq!(ev.kind, MemEventKind::Write);
        let (v, ev) = e.pop_ret().unwrap();
        assert_eq!(v, 3);
        assert_eq!(ev.kind, MemEventKind::Read);
        assert_eq!(e.state().reg(Reg::Rsp), e.state().sandbox().initial_rsp());
    }

    #[test]
    fn stack_overflow_faults() {
        let mut e = emu();
        let depth = (SandboxLayout::STACK_SIZE / 8) as usize;
        let mut result = Ok(MemEvent {
            addr: 0,
            width: Width::Qword,
            kind: MemEventKind::Write,
            value: 0,
        });
        for i in 0..depth + 2 {
            result = e.push_ret(i as u64);
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(result, Err(Fault::StackFault { .. })));
    }

    #[test]
    fn delta_checkpoint_rolls_back_memory_and_registers() {
        let mut e = emu_with(|i| i.write_mem_u64(0, 0x11));
        let base = e.state().sandbox().base;
        let before = e.state().clone();
        let cp = e.begin_speculation();
        e.write_mem(base, Width::Qword, 0xdead).unwrap();
        e.write_mem(base + 4, Width::Byte, 0xff).unwrap();
        e.state_mut().set_reg(Reg::Rax, 99);
        e.state_mut().set_flag(Flag::Cf, true);
        assert_ne!(e.state().digest(), before.digest());
        e.rollback(cp);
        assert_eq!(e.state(), &before);
    }

    #[test]
    fn delta_checkpoints_nest() {
        let mut e = emu();
        let base = e.state().sandbox().base;
        let d0 = e.state().digest();
        let outer = e.begin_speculation();
        e.write_mem(base, Width::Qword, 1).unwrap();
        let mid = e.state().clone();
        let inner = e.begin_speculation();
        // Overlapping write inside the nested window.
        e.write_mem(base + 4, Width::Qword, 2).unwrap();
        e.push_ret(7).unwrap();
        e.rollback(inner);
        assert_eq!(e.state(), &mid, "inner rollback keeps outer writes");
        e.rollback(outer);
        assert_eq!(e.state().digest(), d0);
    }

    #[test]
    fn non_speculative_writes_are_not_journaled() {
        let mut e = emu();
        let base = e.state().sandbox().base;
        e.write_mem(base, Width::Qword, 5).unwrap();
        let cp = e.begin_speculation();
        e.rollback(cp);
        assert_eq!(e.state().read_mem(base, Width::Qword).unwrap(), 5);
    }

    #[test]
    fn speculative_faulting_write_leaves_no_journal_entry() {
        let mut e = emu();
        let cp = e.begin_speculation();
        assert!(e.write_mem(0x10, Width::Qword, 1).is_err());
        e.rollback(cp);
    }

    #[test]
    fn exec_decoded_matches_exec_instr_per_instruction() {
        use crate::sink::EventBuf;
        use rvz_isa::{BasicBlock, BlockId, DecodedProgram, TestCase};

        let instrs = vec![
            Instr::Alu {
                op: AluOp::Sub,
                dest: Operand::mem_w(MemOperand::base(Reg::R14), Width::Byte),
                src: Operand::imm(3),
                lock: true,
            },
            Instr::Mov {
                dest: Operand::reg(Reg::Rbx),
                src: Operand::mem(MemOperand::base_disp(Reg::R14, 64)),
            },
            Instr::Shift {
                op: ShiftOp::Rol,
                dest: Operand::reg_w(Reg::Rax, Width::Word),
                amount: Operand::imm(3),
            },
            Instr::Div { src: Operand::reg(Reg::Rcx) },
            Instr::Xchg {
                dest: Reg::Rdx,
                src: Operand::mem_w(MemOperand::base_disp(Reg::R14, 8), Width::Dword),
            },
            Instr::Imul { dest: Reg::Rbx, src: Operand::imm(-3) },
            Instr::Setcc { cond: Cond::Be, dest: Reg::Rsi },
            Instr::Unary { op: UnaryOp::Neg, dest: Operand::reg(Reg::Rdi) },
            Instr::Lfence,
        ];
        let mut block = BasicBlock::new(BlockId(0));
        block.instrs = instrs.clone();
        let tc = TestCase::new(vec![block], SandboxLayout::one_page());
        let prog = DecodedProgram::decode(&tc).unwrap();

        let mk = || {
            emu_with(|i| {
                i.set_reg(Reg::Rax, 0x1234_5678_9abc_def0);
                i.set_reg(Reg::Rcx, 7);
                i.set_reg(Reg::Rdx, 0);
                i.set_reg(Reg::Rdi, 5);
                i.write_mem_u64(0, 0x42);
                i.write_mem_u64(64, 0x55);
            })
        };
        let mut reference = mk();
        let mut decoded = mk();
        let mut buf = EventBuf::new();
        for (i, instr) in instrs.iter().enumerate() {
            let fx = reference.exec_instr(instr).unwrap();
            buf.clear();
            decoded.exec_decoded(&prog.body(BlockId(0))[i].op, &mut buf).unwrap();
            assert_eq!(buf.events(), &fx.mem_events[..], "events differ at instr {i}");
            assert_eq!(decoded.state(), reference.state(), "state differs after instr {i}");
        }
    }

    #[test]
    fn fences_and_nop_do_nothing() {
        let mut e = emu();
        let d = e.state().digest();
        e.exec_instr(&Instr::Lfence).unwrap();
        e.exec_instr(&Instr::Mfence).unwrap();
        e.exec_instr(&Instr::Nop).unwrap();
        assert_eq!(e.state().digest(), d);
    }
}
