//! Protocol round-trip properties: arbitrary client frames (submit with
//! priorities, status/result/watch/cancel) and worker-protocol
//! checkpoint-transfer payloads survive `rvz_bench::json` encode → decode
//! unchanged, and truncated or garbage frames yield clean errors — never
//! panics, never a stalled reactor.

use revizor::orchestrator::{CellProgress, GroupProgress, MatrixCheckpoint};
use revizor::diversity::PatternCoverage;
use revizor::EffectivenessStats;
use rvz_bench::json::{parse, Json};
use rvz_bench::report::{
    checkpoint_transfer_from_json, checkpoint_transfer_to_json, matrix_checkpoint_from_json,
    matrix_checkpoint_to_json,
};
use rvz_service::{Client, JobSpec, ServiceConfig, ServiceHandle};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// An arbitrary job id-ish string (including empty and non-ASCII).
fn job_string(bits: u64) -> String {
    const POOL: [&str; 6] = ["", "j1-2", "jdead-beef", "…uni≠code…", "j\u{10348}x", "-"];
    POOL[(bits % POOL.len() as u64) as usize].to_string()
}

/// Build an arbitrary-but-valid-shape JobSpec from raw bits.
fn spec_from(seed: u64, priority: i64, knobs: u64, cells: &[(u8, u64)]) -> JobSpec {
    let mut spec = JobSpec::new(seed).with_priority(priority);
    spec.budget = (knobs & 0xFFFF) as usize;
    spec.round_size = ((knobs >> 16) & 0xFF) as usize;
    spec.parallelism = ((knobs >> 24) & 0x7) as usize;
    spec.inputs_per_test_case = ((knobs >> 27) & 0x3F) as usize;
    spec.repetitions = ((knobs >> 33) & 0xF) as usize;
    spec.basic_blocks = ((knobs >> 37) & 0xF) as usize;
    spec.instructions = ((knobs >> 41) & 0x3F) as usize;
    spec.branch_then_load_bias = knobs & (1 << 47) != 0;
    spec.escalation = knobs & (1 << 48) != 0;
    const CONTRACTS: [&str; 5] = ["CT-SEQ", "CT-BPAS", "CT-COND", "ARCH-SEQ", "NOT-A-CONTRACT"];
    for (target, pick) in cells {
        // Codec round-trips do not require resolvable targets/contracts —
        // resolution happens later, at `to_matrix`.
        spec = spec.add_cell(*target, CONTRACTS[(pick % 5) as usize]);
    }
    spec
}

/// A synthetic checkpoint exercising the transfer codec's full shape
/// (violation-carrying cells are covered by the real-run round-trip tests
/// in `rvz_bench::report`).
fn checkpoint_from(scalars: [u64; 4], groups: &[(u8, u64)], cells: &[u64]) -> MatrixCheckpoint {
    MatrixCheckpoint {
        wave: (scalars[0] % 1000) as usize,
        seed: scalars[1],
        budget: (scalars[2] & 0xFFFF) as usize,
        round_size: (scalars[2] >> 16 & 0xFF) as usize,
        escalation: scalars[2] & (1 << 63) != 0,
        config_digest: scalars[3],
        cells: cells
            .iter()
            .map(|&c| {
                (c & 1 == 1).then(|| CellProgress {
                    violation: None,
                    test_cases: (c >> 1 & 0xFFFF) as usize,
                    filtered: (c >> 40 & 0xFF) as usize,
                    total_inputs: (c >> 17 & 0xFFFF) as usize,
                    effectiveness: EffectivenessStats {
                        total_inputs: (c >> 17 & 0xFFFF) as usize,
                        effective_inputs: (c >> 21 & 0xFFF) as usize,
                        classes: (c >> 48 & 0xFF) as usize,
                        singleton_classes: (c >> 52 & 0xFF) as usize,
                    },
                    detection_time: Duration::from_nanos(c >> 33),
                })
            })
            .collect(),
        groups: groups
            .iter()
            .map(|&(target_id, g)| GroupProgress {
                target_id,
                next_index: (g & 0xFFFF) as usize,
                test_cases: (g >> 16 & 0xFFFF) as usize,
                filtered: (g >> 24 & 0xFF) as usize,
                total_inputs: (g >> 32 & 0xFFFF) as usize,
                effectiveness: vec![EffectivenessStats {
                    total_inputs: (g >> 32 & 0xFFFF) as usize,
                    effective_inputs: (g >> 36 & 0xFFF) as usize,
                    classes: (g >> 8 & 0xFF) as usize,
                    singleton_classes: (g >> 12 & 0xFF) as usize,
                }],
                round: (g >> 48 & 0xFF) as usize,
                work: Duration::from_nanos(g.rotate_left(13)),
                escalations: (g >> 56 & 0xF) as usize,
                coverage_level: 1 + (g >> 60 & 0x3) as usize,
                round_improved: g & (1 << 63) != 0,
                coverage: PatternCoverage::new(),
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Submit specs — priorities (any i64), all knobs, arbitrary cell
    /// lists — survive render → parse → decode exactly, in both the UTF-8
    /// and the ASCII-escaped renderings.
    #[test]
    fn job_specs_round_trip(
        seed in any::<u64>(),
        priority in any::<i64>(),
        knobs in any::<u64>(),
        cells in proptest::collection::vec(any::<u64>(), 0..6),
    ) {
        let cells: Vec<(u8, u64)> = cells.iter().map(|&c| ((c >> 8) as u8, c)).collect();
        let spec = spec_from(seed, priority, knobs, &cells);
        let doc = spec.to_json();
        prop_assert_eq!(&JobSpec::from_json(&parse(&doc.render()).unwrap()).unwrap(), &spec);
        prop_assert_eq!(&JobSpec::from_json(&parse(&doc.render_ascii()).unwrap()).unwrap(), &spec);
        // Wrapped in a full submit frame, like the wire carries it.
        let frame = Json::obj().field("op", "submit").field("spec", doc.clone());
        let parsed = parse(&frame.render()).unwrap();
        prop_assert_eq!(parsed.get("op").and_then(Json::as_str), Some("submit"));
        prop_assert_eq!(&JobSpec::from_json(parsed.get("spec").unwrap()).unwrap(), &spec);
    }

    /// The query/cancel frames round-trip for arbitrary job ids (unicode
    /// included) through both renderings.
    #[test]
    fn query_frames_round_trip(bits in any::<u64>(), pick in 0usize..4) {
        let op = ["status", "result", "watch", "cancel"][pick];
        let frame = Json::obj().field("op", op).field("job", job_string(bits));
        prop_assert_eq!(&parse(&frame.render()).unwrap(), &frame);
        prop_assert_eq!(&parse(&frame.render_ascii()).unwrap(), &frame);
    }

    /// Checkpoint-transfer payloads round-trip exactly and their digests
    /// validate end to end — for arbitrary scalar loads, group sets and
    /// cell maps.
    #[test]
    fn checkpoint_transfers_round_trip_and_validate(
        s0 in any::<u64>(), s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>(),
        groups in proptest::collection::vec(any::<u64>(), 0..4),
        cells in proptest::collection::vec(any::<u64>(), 0..8),
        job_bits in any::<u64>(),
    ) {
        let groups: Vec<(u8, u64)> = groups.iter().map(|&g| ((g >> 5) as u8, g)).collect();
        let mut cp = checkpoint_from([s0, s1, s2, s3], &groups, &cells);
        // The transfer header must agree with the payload's wave.
        let job = job_string(job_bits);
        let doc = checkpoint_transfer_to_json(&job, &cp).render();
        let transfer = checkpoint_transfer_from_json(&parse(&doc).unwrap()).unwrap();
        prop_assert_eq!(&transfer.job, &job);
        prop_assert_eq!(&transfer.checkpoint, &cp);
        prop_assert!(transfer.validates(), "decode must preserve the digest");
        // The bare checkpoint codec agrees (the spool path).
        let bare = matrix_checkpoint_to_json(&cp).render();
        prop_assert_eq!(&matrix_checkpoint_from_json(&parse(&bare).unwrap()).unwrap(), &cp);
        // Sensitivity: a mutated payload no longer validates against the
        // original digest.
        cp.wave += 1;
        prop_assert!(cp.digest() != transfer.digest);
    }

    /// Every strict prefix of a rendered frame is a clean parse error —
    /// not a panic, not an accepted document.
    #[test]
    fn truncated_frames_error_cleanly(
        seed in any::<u64>(), knobs in any::<u64>(), cut in any::<u64>(),
    ) {
        let spec = spec_from(seed, -7, knobs, &[(5, 0), (1, 3)]);
        let frame = Json::obj().field("op", "submit").field("spec", spec.to_json()).render();
        let cut = (cut % frame.len() as u64) as usize;
        // Cut at a char boundary (frames are ASCII here, but stay safe).
        let mut cut = cut;
        while !frame.is_char_boundary(cut) {
            cut -= 1;
        }
        let err = parse(&frame[..cut]).expect_err("strict prefixes of an object are invalid");
        prop_assert!(!err.is_empty());
    }

    /// Arbitrary garbage never panics the parser; failures are described.
    #[test]
    fn garbage_never_panics_the_parser(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let garbage = String::from_utf8_lossy(&bytes).into_owned();
        if let Err(e) = parse(&garbage) {
            prop_assert!(!e.is_empty(), "errors must carry a message");
        }
    }
}

/// Live-reactor resilience: garbage, truncation-then-newline and unknown
/// ops come back as error responses on a connection that keeps working —
/// and the server keeps serving other clients (no reactor stall).
#[test]
fn garbage_frames_do_not_stall_the_reactor() {
    let handle = ServiceHandle::start(ServiceConfig {
        shards: 1,
        spool: None,
        checkpoint_every: 1,
        listen: Some("127.0.0.1:0".to_string()),
        worker_listen: None,
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let addr = handle.local_addr().expect("TCP front-end attached");

    let stream = TcpStream::connect(addr).expect("raw client connects");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let write = |line: &str| {
        (&stream).write_all(line.as_bytes()).expect("write");
        (&stream).write_all(b"\n").expect("write newline");
    };
    let mut read_response = || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("server responds");
        parse(line.trim_end()).expect("responses are valid JSON")
    };

    // Garbage bytes, a truncated frame, valid JSON of the wrong shape, an
    // unknown op: each yields {"ok": false} with a message.
    for bad in [
        "\u{7}notjson\u{3}",
        r#"{"op":"submit","spec":{"seed":3"#,
        r#"[1, 2, 3]"#,
        r#"{"op":"frobnicate"}"#,
        r#"{"op":"cancel"}"#,
    ] {
        write(bad);
        let response = read_response();
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(false),
            "bad frame must yield an error response: {bad}"
        );
        assert!(response.get("error").and_then(Json::as_str).is_some_and(|e| !e.is_empty()));
    }
    // The abused connection still works…
    write(r#"{"op":"ping"}"#);
    assert_eq!(read_response().get("pong").and_then(Json::as_bool), Some(true));
    // …and so does a fresh client doing real work through the reactor.
    let mut client = Client::connect(addr).expect("client connects");
    let job = client
        .submit(&JobSpec::new(3).with_budget(4).add_cell(1, "CT-SEQ"))
        .expect("submit still works");
    client.watch(&job, |_| {}).expect("job completes");
    handle.shutdown();
}

/// The coordinator's worker port drops peers that do not speak the
/// protocol instead of stalling on them.
#[test]
fn garbage_on_the_worker_port_drops_the_peer_not_the_coordinator() {
    let handle = ServiceHandle::start(ServiceConfig {
        shards: 1,
        spool: None,
        checkpoint_every: 1,
        listen: None,
        worker_listen: Some("127.0.0.1:0".to_string()),
        ..ServiceConfig::default()
    })
    .expect("coordinator starts");
    let worker_addr = handle.worker_addr().expect("worker port bound");

    // A peer speaking garbage gets disconnected.
    let garbage_peer = TcpStream::connect(worker_addr).expect("peer connects");
    (&garbage_peer).write_all(b"\x01\x02 not a frame\n").expect("write");
    garbage_peer
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    let mut buf = [0u8; 16];
    let n = std::io::Read::read(&mut (&garbage_peer), &mut buf).expect("read EOF");
    assert_eq!(n, 0, "the coordinator must close a non-protocol peer");

    // A real worker on the same port still serves jobs afterwards.
    let mut config = rvz_service::WorkerConfig::new(worker_addr.to_string());
    config.name = "post-garbage".to_string();
    let worker = std::thread::spawn(move || {
        let _ = rvz_service::Worker::new(config).run();
    });
    let job = handle
        .submit(JobSpec::new(3).with_budget(4).add_cell(1, "CT-SEQ"))
        .expect("job accepted");
    handle.wait(&job).expect("job completes after the garbage peer");
    handle.shutdown();
    let _ = worker.join();
}
