//! Pre-decoded test cases: the dense program representation stepped by the
//! measurement inner loops.
//!
//! Every verdict Revizor produces is computed by stepping the emulator (and
//! the uarch simulator on top of it) over every `(test case, input, rep)`
//! triple.  Re-walking the [`Instr`] AST per input means re-deriving operand
//! widths, register read/write sets and memory-operand lists — all of which
//! are static properties of the *program* — millions of times per campaign.
//!
//! [`DecodedProgram::decode`] resolves a [`TestCase`] once into a flat array
//! of [`DecodedInstr`]s: operands lowered to [`SrcOp`]/[`DstOp`] with use
//! widths fixed, branch targets validated, and per-instruction static
//! metadata (register sets, flag/memory behaviour, memory operands)
//! precomputed into inline slices.  Decoding is a pure representation change:
//! executing the decoded form is observably byte-identical to walking the
//! original AST — the differential property tests in `revizor` enforce this.
//!
//! Decode also *validates*: malformed programs (dangling branch targets,
//! empty jump tables, immediates used as destinations, bad index scales) are
//! rejected with a [`DecodeError`] up front instead of panicking in the
//! middle of a measurement.

use crate::block::{BlockId, Terminator};
use crate::inst::{AluOp, Cond, Instr, ShiftOp, UnaryOp};
use crate::operand::{MemOperand, Operand};
use crate::reg::{Reg, RegSet, Width};
use crate::sandbox::SandboxLayout;
use crate::testcase::TestCase;
use std::fmt;

/// A source operand with its access width resolved at decode time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcOp {
    /// Register read at the given width.
    Reg(Reg, Width),
    /// Immediate, already converted to its unsigned 64-bit representation.
    Imm(u64),
    /// Memory read at the given width.
    Mem(MemOperand, Width),
}

/// A destination operand (immediates are rejected at decode time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DstOp {
    /// Register written at the given width.
    Reg(Reg, Width),
    /// Memory written at the given width.
    Mem(MemOperand, Width),
}

impl DstOp {
    /// The access width of the destination.
    #[inline]
    pub fn width(self) -> Width {
        match self {
            DstOp::Reg(_, w) | DstOp::Mem(_, w) => w,
        }
    }
}

/// A straight-line instruction in decoded form.
///
/// Mirrors [`Instr`] with operand use-widths resolved (`width` is the width
/// the operation computes at, matching what the AST walk derives from
/// `dest.width()` / `a.width()` / `src.width()` per instruction).
/// `LFENCE`/`MFENCE` collapse to [`DecodedOp::Fence`]: nothing downstream
/// distinguishes them.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum DecodedOp {
    Alu { op: AluOp, width: Width, dest: DstOp, src: SrcOp },
    Mov { width: Width, dest: DstOp, src: SrcOp },
    Cmov { cond: Cond, dest: Reg, width: Width, src: SrcOp },
    Setcc { cond: Cond, dest: Reg },
    Cmp { width: Width, a: SrcOp, b: SrcOp },
    Test { width: Width, a: SrcOp, b: SrcOp },
    Shift { op: ShiftOp, width: Width, dest: DstOp, amount: SrcOp },
    Unary { op: UnaryOp, width: Width, dest: DstOp },
    Div { width: Width, src: SrcOp },
    Imul { dest: Reg, src: SrcOp },
    Lea { dest: Reg, addr: MemOperand },
    Bswap { dest: Reg },
    Xchg { dest: Reg, width: Width, src: DstOp },
    Fence,
    Nop,
}

/// A control-flow terminator in decoded form, targets validated.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum DecodedTerm {
    Exit,
    Jmp { target: BlockId },
    CondJmp { cond: Cond, taken: BlockId, not_taken: BlockId },
    IndirectJmp { src: Reg, table: Box<[BlockId]> },
    Call { target: BlockId, return_to: BlockId },
    Ret,
}

/// A decoded body instruction plus its precomputed static metadata.
///
/// The metadata fields are computed by calling the corresponding [`Instr`]
/// methods exactly once at decode time, so orderings (e.g. the order of
/// `reads_regs`) are identical to the per-step AST derivation by
/// construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedInstr {
    /// The operation.
    pub op: DecodedOp,
    /// Index of the instruction within its basic block.
    pub index: u32,
    /// Registers read (same order as [`Instr::reads_regs`]).
    pub reads_regs: Box<[Reg]>,
    /// Registers written (same order as [`Instr::writes_regs`]).
    pub writes_regs: Box<[Reg]>,
    /// `reads_regs` as an allocation-free bitmask.
    pub reads_set: RegSet,
    /// `writes_regs` as an allocation-free bitmask.
    pub writes_set: RegSet,
    /// Does the instruction read the status flags?
    pub reads_flags: bool,
    /// Does the instruction write the status flags?
    pub writes_flags: bool,
    /// Does the instruction read memory?
    pub reads_mem: bool,
    /// Does the instruction write memory?
    pub writes_mem: bool,
    /// Is this a speculation barrier?
    pub is_fence: bool,
    /// Is this a variable-latency instruction (the `VAR` class)?
    pub is_var_latency: bool,
    /// Memory operands `(operand, width, is_write)` in the same order as
    /// [`Instr::mem_operands`].
    pub mem_ops: Box<[(MemOperand, Width, bool)]>,
}

/// A decoded terminator plus its precomputed static metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedTerminator {
    /// The terminator.
    pub term: DecodedTerm,
    /// Registers read (same order as [`Terminator::reads_regs`]).
    pub reads_regs: Box<[Reg]>,
    /// `reads_regs` as an allocation-free bitmask.
    pub reads_set: RegSet,
    /// Does the terminator read the status flags?
    pub reads_flags: bool,
}

/// Errors rejected once at decode time.
///
/// Each variant corresponds to a malformation that would previously surface
/// as a mid-measurement panic or out-of-range indexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The test case has no basic blocks.
    Empty,
    /// Block ids are not dense and in order.
    MisnumberedBlock {
        /// Position in the block vector.
        expected: usize,
        /// Actual id found there.
        found: BlockId,
    },
    /// A terminator targets a block that does not exist.
    DanglingTarget {
        /// Block containing the bad terminator.
        from: BlockId,
        /// The missing target.
        to: BlockId,
    },
    /// An indirect jump has an empty target table (the selector would be
    /// reduced modulo zero).
    EmptyJumpTable {
        /// Block containing the indirect jump.
        block: BlockId,
    },
    /// An immediate operand is used as a destination.
    ImmediateDestination {
        /// Block containing the instruction.
        block: BlockId,
        /// Index of the instruction within the block.
        index: usize,
    },
    /// A scaled-index memory operand uses a scale other than 1, 2, 4 or 8.
    BadScale {
        /// Block containing the instruction.
        block: BlockId,
        /// Index of the instruction within the block.
        index: usize,
        /// The offending scale.
        scale: u8,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Empty => write!(f, "test case has no basic blocks"),
            DecodeError::MisnumberedBlock { expected, found } => {
                write!(f, "block at position {expected} has id {found}")
            }
            DecodeError::DanglingTarget { from, to } => {
                write!(f, "terminator of {from} targets non-existent block {to}")
            }
            DecodeError::EmptyJumpTable { block } => {
                write!(f, "indirect jump in {block} has an empty target table")
            }
            DecodeError::ImmediateDestination { block, index } => {
                write!(f, "instruction {index} of {block} uses an immediate as destination")
            }
            DecodeError::BadScale { block, index, scale } => {
                write!(
                    f,
                    "instruction {index} of {block} uses index scale {scale} (must be 1, 2, 4 or 8)"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// A test case decoded once into a dense, validated form.
///
/// Body instructions of all blocks live in one flat array; block `b`'s body
/// is `instrs[block_starts[b] .. block_starts[b + 1]]`.  Terminators are
/// stored per block alongside their static metadata.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    source: TestCase,
    sandbox: SandboxLayout,
    instrs: Vec<DecodedInstr>,
    block_starts: Vec<u32>,
    terms: Vec<DecodedTerminator>,
}

impl DecodedProgram {
    /// Decode and validate a test case.
    ///
    /// # Errors
    /// Returns the first [`DecodeError`] found.
    pub fn decode(tc: &TestCase) -> Result<DecodedProgram, DecodeError> {
        let blocks = tc.blocks();
        if blocks.is_empty() {
            return Err(DecodeError::Empty);
        }
        for (i, b) in blocks.iter().enumerate() {
            if b.id.index() != i {
                return Err(DecodeError::MisnumberedBlock { expected: i, found: b.id });
            }
        }
        let n = blocks.len();
        let total: usize = blocks.iter().map(|b| b.instrs.len()).sum();
        let mut instrs = Vec::with_capacity(total);
        let mut block_starts = Vec::with_capacity(n + 1);
        let mut terms = Vec::with_capacity(n);
        for b in blocks {
            block_starts.push(instrs.len() as u32);
            for (idx, ins) in b.instrs.iter().enumerate() {
                instrs.push(decode_instr(ins, b.id, idx)?);
            }
            terms.push(decode_terminator(&b.terminator, b.id, n)?);
        }
        block_starts.push(instrs.len() as u32);
        Ok(DecodedProgram {
            source: tc.clone(),
            sandbox: tc.sandbox(),
            instrs,
            block_starts,
            terms,
        })
    }

    /// The test case this program was decoded from.
    #[inline]
    pub fn source(&self) -> &TestCase {
        &self.source
    }

    /// The sandbox layout.
    #[inline]
    pub fn sandbox(&self) -> SandboxLayout {
        self.sandbox
    }

    /// Number of basic blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.terms.len()
    }

    /// The decoded body of a block.
    #[inline]
    pub fn body(&self, b: BlockId) -> &[DecodedInstr] {
        let i = b.index();
        &self.instrs[self.block_starts[i] as usize..self.block_starts[i + 1] as usize]
    }

    /// The decoded terminator of a block.
    #[inline]
    pub fn terminator(&self, b: BlockId) -> &DecodedTerminator {
        &self.terms[b.index()]
    }

    /// Total number of body instructions across all blocks.
    #[inline]
    pub fn body_len(&self) -> usize {
        self.instrs.len()
    }
}

fn check_mem(m: &MemOperand, block: BlockId, index: usize) -> Result<(), DecodeError> {
    if m.index.is_some() && !matches!(m.scale, 1 | 2 | 4 | 8) {
        return Err(DecodeError::BadScale { block, index, scale: m.scale });
    }
    Ok(())
}

fn lower_src(op: &Operand, block: BlockId, index: usize) -> Result<SrcOp, DecodeError> {
    match op {
        Operand::Reg(r, w) => Ok(SrcOp::Reg(*r, *w)),
        Operand::Imm(v) => Ok(SrcOp::Imm(*v as u64)),
        Operand::Mem(m, w) => {
            check_mem(m, block, index)?;
            Ok(SrcOp::Mem(*m, *w))
        }
    }
}

fn lower_dst(op: &Operand, block: BlockId, index: usize) -> Result<DstOp, DecodeError> {
    match op {
        Operand::Reg(r, w) => Ok(DstOp::Reg(*r, *w)),
        Operand::Imm(_) => Err(DecodeError::ImmediateDestination { block, index }),
        Operand::Mem(m, w) => {
            check_mem(m, block, index)?;
            Ok(DstOp::Mem(*m, *w))
        }
    }
}

fn decode_instr(ins: &Instr, block: BlockId, index: usize) -> Result<DecodedInstr, DecodeError> {
    let op = match ins {
        Instr::Alu { op, dest, src, .. } => {
            let d = lower_dst(dest, block, index)?;
            DecodedOp::Alu { op: *op, width: d.width(), dest: d, src: lower_src(src, block, index)? }
        }
        Instr::Mov { dest, src } => {
            let d = lower_dst(dest, block, index)?;
            DecodedOp::Mov { width: d.width(), dest: d, src: lower_src(src, block, index)? }
        }
        Instr::Cmov { cond, dest, src, width } => DecodedOp::Cmov {
            cond: *cond,
            dest: *dest,
            width: *width,
            src: lower_src(src, block, index)?,
        },
        Instr::Setcc { cond, dest } => DecodedOp::Setcc { cond: *cond, dest: *dest },
        Instr::Cmp { a, b } => DecodedOp::Cmp {
            width: a.width(),
            a: lower_src(a, block, index)?,
            b: lower_src(b, block, index)?,
        },
        Instr::Test { a, b } => DecodedOp::Test {
            width: a.width(),
            a: lower_src(a, block, index)?,
            b: lower_src(b, block, index)?,
        },
        Instr::Shift { op, dest, amount } => {
            let d = lower_dst(dest, block, index)?;
            DecodedOp::Shift {
                op: *op,
                width: d.width(),
                dest: d,
                amount: lower_src(amount, block, index)?,
            }
        }
        Instr::Unary { op, dest } => {
            let d = lower_dst(dest, block, index)?;
            DecodedOp::Unary { op: *op, width: d.width(), dest: d }
        }
        Instr::Div { src } => {
            DecodedOp::Div { width: src.width(), src: lower_src(src, block, index)? }
        }
        Instr::Imul { dest, src } => {
            DecodedOp::Imul { dest: *dest, src: lower_src(src, block, index)? }
        }
        Instr::Lea { dest, addr } => {
            check_mem(addr, block, index)?;
            DecodedOp::Lea { dest: *dest, addr: *addr }
        }
        Instr::Bswap { dest } => DecodedOp::Bswap { dest: *dest },
        Instr::Xchg { dest, src } => {
            // `src` is both read and written, so it takes the destination
            // lowering (which also rejects immediates, as the AST walk's
            // write would have panicked).
            let s = lower_dst(src, block, index)?;
            DecodedOp::Xchg { dest: *dest, width: s.width(), src: s }
        }
        Instr::Lfence | Instr::Mfence => DecodedOp::Fence,
        Instr::Nop => DecodedOp::Nop,
    };
    let reads_regs = ins.reads_regs();
    let writes_regs = ins.writes_regs();
    Ok(DecodedInstr {
        op,
        index: index as u32,
        reads_set: RegSet::of(&reads_regs),
        writes_set: RegSet::of(&writes_regs),
        reads_regs: reads_regs.into_boxed_slice(),
        writes_regs: writes_regs.into_boxed_slice(),
        reads_flags: ins.reads_flags(),
        writes_flags: ins.writes_flags(),
        reads_mem: ins.reads_mem(),
        writes_mem: ins.writes_mem(),
        is_fence: ins.is_fence(),
        is_var_latency: ins.is_variable_latency(),
        mem_ops: ins.mem_operands().into_boxed_slice(),
    })
}

fn decode_terminator(
    term: &Terminator,
    block: BlockId,
    num_blocks: usize,
) -> Result<DecodedTerminator, DecodeError> {
    let check = |to: BlockId| {
        if to.index() >= num_blocks {
            Err(DecodeError::DanglingTarget { from: block, to })
        } else {
            Ok(to)
        }
    };
    let t = match term {
        Terminator::Exit => DecodedTerm::Exit,
        Terminator::Jmp { target } => DecodedTerm::Jmp { target: check(*target)? },
        Terminator::CondJmp { cond, taken, not_taken } => DecodedTerm::CondJmp {
            cond: *cond,
            taken: check(*taken)?,
            not_taken: check(*not_taken)?,
        },
        Terminator::IndirectJmp { src, table } => {
            if table.is_empty() {
                return Err(DecodeError::EmptyJumpTable { block });
            }
            let table: Box<[BlockId]> =
                table.iter().map(|t| check(*t)).collect::<Result<_, _>>()?;
            DecodedTerm::IndirectJmp { src: *src, table }
        }
        Terminator::Call { target, return_to } => {
            DecodedTerm::Call { target: check(*target)?, return_to: check(*return_to)? }
        }
        Terminator::Ret => DecodedTerm::Ret,
    };
    let reads_regs = term.reads_regs();
    Ok(DecodedTerminator {
        term: t,
        reads_set: RegSet::of(&reads_regs),
        reads_regs: reads_regs.into_boxed_slice(),
        reads_flags: term.reads_flags(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BasicBlock;
    use crate::builder::TestCaseBuilder;

    fn v1_tc() -> TestCase {
        TestCaseBuilder::new()
            .block("entry", |b| {
                b.and_imm(Reg::Rax, 0b111111000000);
                b.load(Reg::Rbx, Reg::R14, Reg::Rax);
                b.cmp_imm(Reg::Rcx, 10);
                b.jcc(Cond::B, "in_bounds", "done");
            })
            .block("in_bounds", |b| {
                b.and_imm(Reg::Rbx, 0b111111000000);
                b.load(Reg::Rdx, Reg::R14, Reg::Rbx);
                b.jmp("done");
            })
            .block("done", |b| {
                b.exit();
            })
            .build()
    }

    #[test]
    fn decode_layout_matches_source() {
        let tc = v1_tc();
        let p = DecodedProgram::decode(&tc).unwrap();
        assert_eq!(p.num_blocks(), 3);
        assert_eq!(p.body(BlockId(0)).len(), 3);
        assert_eq!(p.body(BlockId(1)).len(), 2);
        assert_eq!(p.body(BlockId(2)).len(), 0);
        assert_eq!(p.body_len(), 5);
        assert!(matches!(p.terminator(BlockId(0)).term, DecodedTerm::CondJmp { .. }));
        assert!(matches!(p.terminator(BlockId(2)).term, DecodedTerm::Exit));
        assert_eq!(p.sandbox(), tc.sandbox());
        assert_eq!(p.source(), &tc);
    }

    #[test]
    fn decoded_metadata_matches_ast_walk() {
        let tc = v1_tc();
        let p = DecodedProgram::decode(&tc).unwrap();
        for b in tc.blocks() {
            for (i, ins) in b.instrs.iter().enumerate() {
                let d = &p.body(b.id)[i];
                assert_eq!(d.index as usize, i);
                assert_eq!(&*d.reads_regs, &ins.reads_regs()[..]);
                assert_eq!(&*d.writes_regs, &ins.writes_regs()[..]);
                assert_eq!(d.reads_flags, ins.reads_flags());
                assert_eq!(d.writes_flags, ins.writes_flags());
                assert_eq!(d.reads_mem, ins.reads_mem());
                assert_eq!(d.writes_mem, ins.writes_mem());
                assert_eq!(d.is_fence, ins.is_fence());
                assert_eq!(d.is_var_latency, ins.is_variable_latency());
                assert_eq!(&*d.mem_ops, &ins.mem_operands()[..]);
            }
            let t = p.terminator(b.id);
            assert_eq!(&*t.reads_regs, &b.terminator.reads_regs()[..]);
            assert_eq!(t.reads_flags, b.terminator.reads_flags());
        }
    }

    #[test]
    fn rejects_empty_program() {
        let tc = TestCase::new(vec![], SandboxLayout::one_page());
        assert!(matches!(DecodedProgram::decode(&tc), Err(DecodeError::Empty)));
    }

    #[test]
    fn rejects_misnumbered_blocks() {
        let tc = TestCase::new(vec![BasicBlock::new(BlockId(3))], SandboxLayout::one_page());
        assert!(matches!(
            DecodedProgram::decode(&tc),
            Err(DecodeError::MisnumberedBlock { expected: 0, found: BlockId(3) })
        ));
    }

    #[test]
    fn rejects_dangling_branch_target() {
        let mut tc = v1_tc();
        tc.blocks_mut()[1].terminator = Terminator::Jmp { target: BlockId(9) };
        assert!(matches!(
            DecodedProgram::decode(&tc),
            Err(DecodeError::DanglingTarget { from: BlockId(1), to: BlockId(9) })
        ));
    }

    #[test]
    fn rejects_dangling_jump_table_entry() {
        let mut tc = v1_tc();
        tc.blocks_mut()[0].terminator =
            Terminator::IndirectJmp { src: Reg::Rax, table: vec![BlockId(2), BlockId(7)] };
        assert!(matches!(
            DecodedProgram::decode(&tc),
            Err(DecodeError::DanglingTarget { from: BlockId(0), to: BlockId(7) })
        ));
    }

    #[test]
    fn rejects_empty_jump_table() {
        let mut tc = v1_tc();
        tc.blocks_mut()[0].terminator = Terminator::IndirectJmp { src: Reg::Rax, table: vec![] };
        assert!(matches!(
            DecodedProgram::decode(&tc),
            Err(DecodeError::EmptyJumpTable { block: BlockId(0) })
        ));
    }

    #[test]
    fn rejects_dangling_call_return_block() {
        let mut tc = v1_tc();
        tc.blocks_mut()[0].terminator =
            Terminator::Call { target: BlockId(1), return_to: BlockId(5) };
        assert!(matches!(
            DecodedProgram::decode(&tc),
            Err(DecodeError::DanglingTarget { from: BlockId(0), to: BlockId(5) })
        ));
    }

    #[test]
    fn rejects_immediate_destination() {
        let mut tc = v1_tc();
        tc.blocks_mut()[0]
            .instrs
            .push(Instr::Mov { dest: Operand::imm(3), src: Operand::reg(Reg::Rax) });
        assert!(matches!(
            DecodedProgram::decode(&tc),
            Err(DecodeError::ImmediateDestination { block: BlockId(0), index: 3 })
        ));
        let mut tc = v1_tc();
        tc.blocks_mut()[1].instrs[0] =
            Instr::Xchg { dest: Reg::Rax, src: Operand::imm(1) };
        assert!(matches!(
            DecodedProgram::decode(&tc),
            Err(DecodeError::ImmediateDestination { block: BlockId(1), index: 0 })
        ));
    }

    #[test]
    fn rejects_bad_index_scale() {
        let mut tc = v1_tc();
        tc.blocks_mut()[0].instrs[1] = Instr::Mov {
            dest: Operand::reg(Reg::Rbx),
            src: Operand::mem(MemOperand::full(Reg::R14, Reg::Rax, 3, 0)),
        };
        assert!(matches!(
            DecodedProgram::decode(&tc),
            Err(DecodeError::BadScale { block: BlockId(0), index: 1, scale: 3 })
        ));
    }

    #[test]
    fn accepts_scale_without_index() {
        // A degenerate scale is harmless when there is no index register;
        // the AST walk ignores it, so decode must too.
        let mut tc = v1_tc();
        tc.blocks_mut()[0].instrs[1] = Instr::Mov {
            dest: Operand::reg(Reg::Rbx),
            src: Operand::mem(MemOperand { base: Reg::R14, index: None, scale: 3, disp: 0 }),
        };
        assert!(DecodedProgram::decode(&tc).is_ok());
    }

    #[test]
    fn fences_collapse() {
        let mut tc = v1_tc();
        tc.blocks_mut()[0].instrs = vec![Instr::Lfence, Instr::Mfence, Instr::Nop];
        let p = DecodedProgram::decode(&tc).unwrap();
        assert_eq!(p.body(BlockId(0))[0].op, DecodedOp::Fence);
        assert_eq!(p.body(BlockId(0))[1].op, DecodedOp::Fence);
        assert_eq!(p.body(BlockId(0))[2].op, DecodedOp::Nop);
        assert!(p.body(BlockId(0))[0].is_fence);
    }

    #[test]
    fn error_display() {
        let e = DecodeError::EmptyJumpTable { block: BlockId(2) };
        assert!(format!("{e}").contains(".bb2"));
        let e = DecodeError::BadScale { block: BlockId(0), index: 4, scale: 5 };
        assert!(format!("{e}").contains("scale 5"));
    }
}
