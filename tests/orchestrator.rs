//! Integration tests for the campaign orchestrator: cross-contract trace
//! sharing must be invisible in the results, and the shared-pool scheduling
//! must be deterministic for any parallelism and matrix composition.

use revizor_suite::prelude::*;

/// The comparable (non-wall-clock) part of a cell report.
fn fingerprint(cell: &revizor::CellReport) -> (u8, String, bool, Option<u64>, usize, usize) {
    (
        cell.target.id,
        cell.contract.name(),
        cell.found(),
        cell.violation.as_ref().map(|v| v.test_case_seed),
        cell.test_cases,
        cell.total_inputs,
    )
}

#[test]
fn shared_htrace_groups_match_per_contract_recollection() {
    // Satellite property (b): a cell group that collects hardware traces
    // once per test case and checks them against all four contracts must
    // produce byte-identical verdicts to four independent campaigns that
    // re-collect the traces per contract (single-cell matrices share
    // nothing).
    let grouped = CampaignMatrix::new(7)
        .with_budget(40)
        .add_cells(Target::target5(), Contract::table3_contracts())
        .run();
    for contract in Contract::table3_contracts() {
        let solo = CampaignMatrix::new(7)
            .with_budget(40)
            .add_cell(Target::target5(), contract.clone())
            .run();
        let shared_cell = grouped.cell(5, &contract).unwrap();
        let solo_cell = solo.cell(5, &contract).unwrap();
        assert_eq!(fingerprint(shared_cell), fingerprint(solo_cell), "{}", contract.name());
        // The violating test case itself must match down to the inputs.
        match (&shared_cell.violation, &solo_cell.violation) {
            (Some(a), Some(b)) => {
                assert_eq!(a.test_case, b.test_case);
                assert_eq!(a.inputs, b.inputs);
                assert_eq!(a.violation, b.violation);
                assert_eq!(a.vulnerability, b.vulnerability);
            }
            (None, None) => {}
            _ => unreachable!("fingerprints matched"),
        }
    }
}

#[test]
fn matrix_results_are_parallelism_invariant_end_to_end() {
    // Satellite property (c): the same matrix over 1/2/4 worker threads is
    // verdict-for-verdict identical, across several targets at once.
    let build = |parallelism: usize| {
        CampaignMatrix::new(3)
            .with_budget(30)
            .with_parallelism(parallelism)
            .add_cells(Target::target1(), Contract::table3_contracts())
            .add_cells(Target::target5(), Contract::table3_contracts())
            .add_cell(Target::target8(), Contract::ct_cond_bpas())
            .run()
    };
    let one = build(1);
    let fingerprints: Vec<_> = one.cells.iter().map(fingerprint).collect();
    for parallelism in [2usize, 4] {
        let many = build(parallelism);
        let got: Vec<_> = many.cells.iter().map(fingerprint).collect();
        assert_eq!(fingerprints, got, "parallelism {parallelism}");
    }
}

#[test]
fn campaign_observer_reports_live_rounds() {
    // The fuzzer's observer hook: one event per completed round, counters
    // consistent with the final report.
    struct Recorder(Vec<(usize, usize)>);
    impl ProgressObserver for Recorder {
        fn round_completed(&mut self, event: &RoundEvent) {
            self.0.push((event.round, event.test_cases));
        }
    }
    let target = Target::target1();
    let config = FuzzerConfig::for_target(&target, Contract::ct_seq())
        .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2))
        .with_inputs_per_test_case(10)
        .with_max_test_cases(25);
    let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());
    let mut recorder = Recorder(Vec::new());
    let report = fuzzer.run_with_observer(&mut recorder);
    assert_eq!(report.rounds, recorder.0.len());
    assert_eq!(recorder.0.last().map(|&(r, _)| r), Some(report.rounds));
    assert_eq!(recorder.0.last().map(|&(_, t)| t), Some(report.test_cases));
    assert!(recorder.0.windows(2).all(|w| w[0].0 + 1 == w[1].0), "rounds arrive in order");
}

#[test]
fn matrix_violation_replays_through_the_sequential_api() {
    // A violation found by the orchestrator carries its test case, inputs
    // and per-test-case seed; replaying the recorded inputs through the
    // public single-campaign API must confirm the same violation.
    let report = CampaignMatrix::new(7)
        .with_budget(40)
        .add_cell(Target::target5(), Contract::ct_seq())
        .run();
    let cell = report.cell(5, &Contract::ct_seq()).expect("cell present");
    let v = cell.violation.as_ref().expect("V1 found within 40 test cases");

    let target = Target::target5();
    let config = FuzzerConfig::for_target(&target, Contract::ct_seq())
        .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2));
    let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());
    let outcome = fuzzer.test_with_inputs(&v.test_case, &v.inputs).unwrap();
    let confirmed = outcome.confirmed_violation.expect("violation must replay");
    assert_eq!((confirmed.input_a, confirmed.input_b), (v.violation.input_a, v.violation.input_b));
    assert_eq!(confirmed.htrace_a, v.violation.htrace_a);
    assert_eq!(confirmed.htrace_b, v.violation.htrace_b);
}

#[test]
fn slate_input_harness_matches_per_contract_runs() {
    // `inputs_to_violation_slate` measures each growing input batch once
    // for the whole slate; per-contract results must equal the independent
    // single-contract harness.
    let target = Target::target5();
    let contracts = [Contract::ct_seq(), Contract::arch_seq()];
    for (gadget_name, gadget) in [
        ("fig6a", gadgets::arch_seq_insensitive()),
        ("fig6b", gadgets::arch_seq_sensitive()),
    ] {
        for seed in [7u64, 38] {
            let slate =
                detection::inputs_to_violation_slate(&target, &contracts, &gadget, seed, 60);
            for (contract, got) in contracts.iter().zip(&slate) {
                let solo = detection::inputs_to_violation(
                    &target,
                    contract.clone(),
                    &gadget,
                    seed,
                    60,
                );
                assert_eq!(*got, solo, "{gadget_name} {} seed {seed}", contract.name());
            }
        }
    }
}
