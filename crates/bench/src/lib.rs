//! # rvz-bench
//!
//! Benchmark and experiment-regeneration harness.
//!
//! Every table and figure of the paper's evaluation has a regeneration
//! target here (see `DESIGN.md` for the full index):
//!
//! | Paper artefact | Binary (`cargo run --release -p rvz-bench --bin <name>`) |
//! |---|---|
//! | Table 2 (experimental setups)          | `table2` |
//! | Table 3 (violations per target/contract) | `table3` |
//! | Table 4 (detection times)              | `table4` |
//! | Table 5 (inputs to violation, handwritten gadgets) | `table5` |
//! | §6.4 (speculative store eviction)      | `store_eviction` |
//! | §6.5 (fuzzing speed)                   | `fuzzing_speed_report` |
//! | §6.6 / Figure 6 (contract sensitivity) | `contract_sensitivity` |
//! | Figures 3 & 4 (generated / minimized test case) | `figures` |
//!
//! Criterion benches (`cargo bench -p rvz-bench`) measure the throughput of
//! the pipeline stages and the wall-clock detection time of the headline
//! vulnerabilities.
//!
//! The table binaries accept an optional budget argument (test cases per
//! cell / samples per row) so that quick smoke runs and longer, more
//! paper-like runs use the same code.

pub mod binfmt;
pub mod json;
pub mod report;

use json::Json;
use report::effectiveness_stats_to_json;
use revizor::orchestrator::MatrixReport;
use std::time::Duration;

/// Parse the first positional numeric CLI argument as a budget, with a
/// default.  The table binaries take flags exclusively in `--name` /
/// `--name=value` form (see [`flag_value_from_args`]), so everything
/// starting with `--` is skipped — a flag's value can never be mistaken
/// for the budget.
pub fn budget_from_args(default: usize) -> usize {
    budget_from(std::env::args().skip(1), default)
}

/// Testable core of [`budget_from_args`].
fn budget_from(args: impl IntoIterator<Item = String>, default: usize) -> usize {
    args.into_iter()
        .filter(|arg| !arg.starts_with("--"))
        .find_map(|arg| arg.parse().ok())
        .unwrap_or(default)
}

/// Is a `--flag` present on the command line?
pub fn flag_from_args(flag: &str) -> bool {
    std::env::args().skip(1).any(|a| a == flag)
}

/// The parsed value of a `--name=value` flag, if present and parseable.
pub fn flag_value_from_args<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::args().skip(1).find_map(|arg| {
        arg.strip_prefix(name)
            .and_then(|rest| rest.strip_prefix('='))
            .and_then(|value| value.parse().ok())
    })
}

/// The machine-readable form of a matrix run (the `table3 --json` output):
/// one object per cell with `target`, `contract`, `found`, `vulnerability`,
/// `gadget_class`, `test_cases`, `statically_filtered`, `effectiveness`,
/// `duration_ms`, `seed`, `predictors` and `scenario` fields, plus the run
/// parameters and the generated / statically-filtered / measured totals.
/// `predictors` is `"default"` for the classic cells and the predictor
/// label (e.g. `"TAGE"`) for zoo cells; `scenario` is the pinned gadget
/// family or null.
/// A cell's `duration_ms` is its group's attributed evaluation time
/// ([`CellReport::detection_time`](revizor::CellReport)) — comparable to an
/// independent per-cell campaign's duration; the top-level `duration_ms` is
/// the matrix's wall clock.
pub fn matrix_report_json(report: &MatrixReport, budget: usize) -> Json {
    let cells: Vec<Json> = report
        .cells
        .iter()
        .map(|cell| {
            Json::obj()
                .field("target", cell.target.id)
                .field("contract", cell.contract.name())
                .field("found", cell.found())
                .field("vulnerability", cell.vulnerability().map(|v| v.to_string()))
                .field(
                    "gadget_class",
                    cell.violation.as_ref().and_then(|v| v.gadget.map(|g| g.label())),
                )
                .field("test_cases", cell.test_cases)
                .field("statically_filtered", cell.filtered)
                .field("effectiveness", effectiveness_stats_to_json(&cell.effectiveness))
                .field("duration_ms", cell.detection_time.as_secs_f64() * 1000.0)
                .field("seed", report.seed)
                .field(
                    "predictors",
                    match cell.target.cpu_config.predictors.label() {
                        l if l.is_empty() => "default".to_string(),
                        l => l,
                    },
                )
                .field("scenario", cell.target.scenario.as_ref().map(|s| s.label()))
        })
        .collect();
    Json::obj()
        .field("budget", budget)
        .field("seed", report.seed)
        .field("measured_test_cases", report.test_cases)
        .field("generated_test_cases", report.generated)
        .field("statically_filtered", report.statically_filtered)
        .field("duration_ms", report.duration.as_secs_f64() * 1000.0)
        .field("cells", Json::Arr(cells))
}

/// Render a duration as the paper does (`4m 51s` / `5.3s`).
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 60.0 {
        format!("{}m {:02.0}s", (secs / 60.0) as u64, secs % 60.0)
    } else if secs >= 1.0 {
        format!("{secs:.1}s")
    } else {
        format!("{:.0}ms", secs * 1000.0)
    }
}

/// Render a table row with fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:<w$}"))
        .collect::<Vec<_>>()
        .join(" | ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_millis(250)), "250ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(5.25)), "5.2s");
        assert_eq!(fmt_duration(Duration::from_secs(300)), "5m 00s");
    }

    #[test]
    fn row_formatting() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "a   | bb  ");
    }

    #[test]
    fn default_budget_used_without_args() {
        assert_eq!(budget_from_args(42), 42);
    }

    #[test]
    fn budget_parsing_skips_flags() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(budget_from(args(&["120"]), 42), 120);
        assert_eq!(budget_from(args(&["--json", "120"]), 42), 120);
        assert_eq!(budget_from(args(&["120", "--json"]), 42), 120);
        // A flag's value (`--name=value` form) is never read as the budget.
        assert_eq!(budget_from(args(&["--threads=4"]), 42), 42);
        assert_eq!(budget_from(args(&["--json", "--threads=4"]), 42), 42);
        assert_eq!(budget_from(args(&["--threads=4", "120"]), 42), 120);
        assert_eq!(budget_from(args(&["garbage"]), 42), 42);
    }
}
