//! Microcode-assist leaks (Targets 7 and 8): MDS on an unpatched part and
//! LVI-Null on an MDS-patched part, detected with the `Prime+Probe+Assist`
//! executor mode.
//!
//! Run with: `cargo run --release --example assist_leaks`

use revizor_suite::prelude::*;

fn main() {
    let cases = [
        ("MDS-LFB gadget on Target 7 (Skylake, MDS-vulnerable)", Target::target7(), gadgets::mds_lfb()),
        ("MDS-SB gadget on Target 7 (Skylake, MDS-vulnerable)", Target::target7(), gadgets::mds_sb()),
        ("LVI-Null gadget on Target 8 (Coffee Lake, MDS-patched)", Target::target8(), gadgets::lvi_null()),
    ];

    for (name, target, gadget) in cases {
        println!("=== {name} ===");
        println!("executor mode: {}", target.mode);
        match detection::inputs_to_violation(&target, Contract::ct_seq(), &gadget, 5, 100) {
            Some(n) => println!("CT-SEQ violated after {n} random inputs\n"),
            None => println!("no violation within 100 inputs\n"),
        }
    }

    // The same assist-mode fuzzing, but with randomly generated test cases —
    // the paper's actual Target 7 experiment.
    let target = Target::target7();
    println!("=== Random fuzzing of {target} against CT-COND-BPAS ===");
    let outcome = detection::detection_time(&target, Contract::ct_cond_bpas(), 3, 100);
    match outcome.found {
        true => println!(
            "violation found after {} test cases ({:?}), classified as {}",
            outcome.test_cases,
            outcome.duration,
            outcome.vulnerability.unwrap_or_default()
        ),
        false => println!("no violation within {} test cases", outcome.test_cases),
    }
    println!(
        "\nNote how the violation survives even the most permissive CT-* contract: assist-based \
         leaks (MDS/LVI) expose values, which no CT contract permits (Table 3, Targets 7-8)."
    );
}
