//! Differential testing of the pre-decoded inner loop.
//!
//! Decoding a test case into a [`DecodedProgram`] is a pure representation
//! change, never a semantic one.  This property test is the executable
//! statement of that invariant: random generated programs × random inputs
//! run through the pre-decoded loop and through the retained reference
//! interpreters (the old per-step AST walk with full-state-clone
//! checkpoints), asserting byte-identical contract traces, hardware traces,
//! fault outcomes and final architectural state — including nested
//! speculation and microcode assists.
//!
//! [`DecodedProgram`]: rvz_isa::DecodedProgram

use proptest::prelude::*;
use revizor::targets::Target;
use rvz_cache::Cache;
use rvz_emu::{Fault, Runner};
use rvz_executor::{Executor, ExecutorConfig};
use rvz_gen::{GeneratorConfig, InputGenerator, ProgramGenerator};
use rvz_isa::{Input, TestCase};
use rvz_model::{Contract, ContractModel};
use rvz_uarch::{CpuUnderTest, RunOptions, RunOutcome, SpecCpu};

/// A CPU under test that routes everything through the reference (AST-walk)
/// run loop.  It deliberately does not override
/// [`CpuUnderTest::run_decoded`], so an [`Executor`] around it exercises the
/// trait's default decoded→reference fallback and measures the old path.
struct ReferenceCpu(SpecCpu);

impl CpuUnderTest for ReferenceCpu {
    fn name(&self) -> String {
        self.0.name()
    }

    fn run(&mut self, tc: &TestCase, input: &Input, opts: &RunOptions) -> Result<RunOutcome, Fault> {
        self.0.run_reference(tc, input, opts)
    }

    fn cache_mut(&mut self) -> &mut Cache {
        self.0.cache_mut()
    }

    fn reset_uarch(&mut self) {
        self.0.reset_uarch();
    }
}

fn target_for(choice: usize) -> Target {
    // A spread of ISA subsets and parts: no speculation (AR), store-bypass
    // only (AR+MEM), conditional branches, the assist-mode Coffee Lake row
    // with the full instruction set — and the predictor zoo (TAGE and loop
    // directions, aliasing BTB, cyclic RSB), whose prediction structures
    // must agree between the decoded and reference step paths too.
    match choice % 8 {
        0 => Target::target1(),
        1 => Target::target2(),
        2 => Target::target5(),
        3 => Target::target8(),
        4 => Target::target9(),
        5 => Target::target10(),
        6 => Target::target11(),
        _ => Target::target12(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random programs and inputs produce byte-identical results through
    /// the pre-decoded loop and the reference interpreters, at every layer:
    /// architectural runner, contract model (with and without nesting) and
    /// speculative CPU + executor (with assists on the target-8 rows).
    #[test]
    fn decoded_loop_is_byte_identical_to_reference(
        choice in 0usize..8,
        seed in any::<u64>(),
        input_seed in any::<u64>(),
    ) {
        let target = target_for(choice);
        // Random programs never emit calls, returns or indirect jumps, so
        // the zoo targets' pinned scenarios (BTB aliasing, deep call
        // chains, history-correlated branches) stand in for them: they
        // drive the target/return predictors through both step paths.
        let tc = match &target.scenario {
            Some(scenario) => scenario.build(),
            None => ProgramGenerator::new(
                GeneratorConfig::for_subset(target.isa).with_basic_blocks(4).with_instructions(12),
            )
            .generate(seed),
        };
        let inputs = InputGenerator::new(4).generate(&tc, input_seed, 6);

        // Architectural runner: steps, events, block order, final state —
        // plus the trace-free (NoTrace-sink) pass, which must agree on the
        // fault outcome and final state.
        let prog = rvz_isa::DecodedProgram::decode(&tc).expect("generated programs decode");
        for input in &inputs {
            let dec = Runner::new(&tc).run(input);
            let reference = Runner::new(&tc).run_reference(input);
            let quiet = Runner::run_final_decoded(&prog, input, 4096);
            match (dec, reference) {
                (Ok(d), Ok(r)) => {
                    prop_assert_eq!(quiet.as_ref().ok(), Some(&r.final_state));
                    prop_assert_eq!(d.steps, r.steps);
                    prop_assert_eq!(d.block_order, r.block_order);
                    prop_assert_eq!(d.final_state, r.final_state);
                }
                (Err(d), Err(r)) => {
                    prop_assert_eq!(quiet.as_ref().err(), Some(&r));
                    prop_assert_eq!(d, r);
                }
                (d, r) => prop_assert!(
                    false,
                    "fault outcome differs: decoded ok={} reference ok={}",
                    d.is_ok(),
                    r.is_ok()
                ),
            }
        }

        // Contract model: traces, execution info and faults per contract,
        // including delta-checkpointed nested speculation.
        let contracts = [
            Contract::ct_seq(),
            Contract::arch_seq(),
            Contract::ct_cond_bpas(),
            Contract::ct_cond().with_nesting(true),
            Contract::ct_cond_no_spec_store(),
        ];
        for input in &inputs {
            for c in &contracts {
                let m = ContractModel::new(c.clone());
                prop_assert_eq!(m.collect(&tc, input), m.collect_reference(&tc, input));
            }
        }

        // Speculative CPU: persistent predictor/cache state across the
        // priming sequence, assists on when the target's mode says so.
        let opts = RunOptions { enable_assists: target.mode.assists };
        let mut dec_cpu = target.cpu();
        let mut ref_cpu = target.cpu();
        for input in &inputs {
            let d = dec_cpu.run(&tc, input, &opts);
            let r = ref_cpu.run_reference(&tc, input, &opts);
            prop_assert_eq!(d, r);
        }
        prop_assert!(dec_cpu.cache() == ref_cpu.cache(), "cache state differs");

        // Executor: merged hardware traces of the full warm-up + repetition
        // schedule.
        let cfg = ExecutorConfig::fast(target.mode);
        let mut dec_ex = Executor::new(target.cpu(), cfg);
        let mut ref_ex = Executor::new(ReferenceCpu(target.cpu()), cfg);
        prop_assert_eq!(
            dec_ex.collect_htraces(&tc, &inputs),
            ref_ex.collect_htraces(&tc, &inputs)
        );
    }
}
