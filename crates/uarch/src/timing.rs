//! Data-flow timing model.
//!
//! A lightweight scoreboard: every register and the flags have a
//! *ready cycle*; an instruction issues when its sources are ready and its
//! result becomes ready after its latency.  This is not a cycle-accurate
//! pipeline model — it only needs to order events well enough to reproduce
//! the races the paper describes: how long a mispredicted path runs before
//! the squash, and whether a dependent load can issue inside that window
//! (§6.3, Figure 5).

use rvz_isa::Reg;
use serde::{Deserialize, Serialize};

/// Scoreboard of register/flag readiness plus the current issue cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timing {
    cycle: u64,
    reg_ready: [u64; 16],
    flags_ready: u64,
}

impl Timing {
    /// Fresh scoreboard at cycle zero with everything ready.
    pub fn new() -> Timing {
        Timing { cycle: 0, reg_ready: [0; 16], flags_ready: 0 }
    }

    /// Current issue cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Cycle at which a register's value is available.
    pub fn reg_ready(&self, r: Reg) -> u64 {
        self.reg_ready[r.index()]
    }

    /// Cycle at which the flags are available.
    pub fn flags_ready(&self) -> u64 {
        self.flags_ready
    }

    /// Mark a register as becoming ready at `cycle`.
    pub fn set_reg_ready(&mut self, r: Reg, cycle: u64) {
        self.reg_ready[r.index()] = cycle;
    }

    /// Mark the flags as becoming ready at `cycle`.
    pub fn set_flags_ready(&mut self, cycle: u64) {
        self.flags_ready = cycle;
    }

    /// Earliest cycle at which an instruction reading `sources` (and the
    /// flags if `reads_flags`) can issue, assuming one instruction issues
    /// per cycle.
    pub fn issue_cycle(&self, sources: &[Reg], reads_flags: bool) -> u64 {
        let mut ready = self.cycle + 1;
        for r in sources {
            ready = ready.max(self.reg_ready(*r));
        }
        if reads_flags {
            ready = ready.max(self.flags_ready);
        }
        ready
    }

    /// Record that an instruction issued at `issue` with latency `latency`,
    /// writing `dests` (and the flags if `writes_flags`).  Returns the
    /// completion cycle.
    ///
    /// The dispatch counter advances by one per instruction regardless of
    /// the issue cycle, modelling an out-of-order core where independent
    /// younger instructions are not delayed by a stalled older one.  This is
    /// what allows a quickly resolving branch to race a slow division
    /// (Figure 5 of the paper).
    pub fn retire(
        &mut self,
        issue: u64,
        latency: u64,
        dests: &[Reg],
        writes_flags: bool,
    ) -> u64 {
        let done = issue + latency;
        for r in dests {
            self.set_reg_ready(*r, done);
        }
        if writes_flags {
            self.flags_ready = done;
        }
        self.cycle += 1;
        done
    }

    /// Execute a full serialization (LFENCE/MFENCE): the next instruction
    /// cannot issue before everything currently in flight has completed.
    pub fn barrier(&mut self) {
        let max = self
            .reg_ready
            .iter()
            .copied()
            .chain(std::iter::once(self.flags_ready))
            .max()
            .unwrap_or(self.cycle);
        self.cycle = self.cycle.max(max);
    }

    /// Advance the issue cycle to at least `cycle` (used when re-issuing an
    /// instruction after an assist or squash).
    pub fn advance_to(&mut self, cycle: u64) {
        self.cycle = self.cycle.max(cycle);
    }
}

impl Default for Timing {
    fn default() -> Self {
        Timing::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_instructions_issue_back_to_back() {
        let mut t = Timing::new();
        let i1 = t.issue_cycle(&[], false);
        t.retire(i1, 1, &[Reg::Rax], true);
        let i2 = t.issue_cycle(&[], false);
        assert_eq!(i2, i1 + 1);
    }

    #[test]
    fn dependent_instruction_waits_for_source() {
        let mut t = Timing::new();
        let i1 = t.issue_cycle(&[], false);
        let done = t.retire(i1, 40, &[Reg::Rax], false); // slow load into RAX
        let i2 = t.issue_cycle(&[Reg::Rax], false);
        assert_eq!(i2, done);
        let i3 = t.issue_cycle(&[Reg::Rbx], false);
        assert!(i3 < i2, "independent instruction need not wait");
    }

    #[test]
    fn flags_dependency_tracked() {
        let mut t = Timing::new();
        let i1 = t.issue_cycle(&[], false);
        t.retire(i1, 12, &[], true); // e.g. a CMP fed by a slow value
        let br = t.issue_cycle(&[], true);
        assert_eq!(br, i1 + 12);
    }

    #[test]
    fn serialize_waits_for_everything() {
        let mut t = Timing::new();
        let i1 = t.issue_cycle(&[], false);
        t.retire(i1, 100, &[Reg::Rcx], false);
        t.barrier();
        assert!(t.cycle() >= i1 + 100);
        let next = t.issue_cycle(&[], false);
        assert!(next > i1 + 100);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let mut t = Timing::new();
        t.advance_to(50);
        assert_eq!(t.cycle(), 50);
        t.advance_to(10);
        assert_eq!(t.cycle(), 50);
    }

    #[test]
    fn clone_is_an_independent_checkpoint() {
        let mut t = Timing::new();
        let i = t.issue_cycle(&[], false);
        t.retire(i, 5, &[Reg::Rax], false);
        let snapshot = t.clone();
        t.retire(10, 5, &[Reg::Rbx], false);
        assert_ne!(t, snapshot);
        assert_eq!(snapshot.reg_ready(Reg::Rbx), 0);
    }
}
