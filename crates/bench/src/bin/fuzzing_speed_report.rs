//! Regenerates the §6.5 fuzzing-speed measurement: how many test cases per
//! hour Revizor processes in a configuration that does not find violations.
//!
//! Usage: `cargo run --release -p rvz-bench --bin fuzzing_speed_report [test cases]`

use revizor::{FuzzerConfig, Revizor};
use revizor::targets::Target;
use rvz_bench::budget_from_args;
use rvz_executor::ExecutorConfig;
use rvz_model::Contract;

fn main() {
    let test_cases = budget_from_args(200);
    // Target 1 (AR only) never violates CT-SEQ, so the whole budget is spent
    // fuzzing — the same setup the paper uses to measure throughput.
    let target = Target::target1();
    let config = FuzzerConfig::for_target(&target, Contract::ct_seq())
        .with_executor(ExecutorConfig::fast(target.mode))
        .with_inputs_per_test_case(50)
        .with_max_test_cases(test_cases)
        .with_seed(1);
    let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());
    let report = fuzzer.run();

    println!("Fuzzing speed (§6.5), target: {target}");
    println!("  test cases executed : {}", report.test_cases);
    println!("  inputs executed     : {}", report.total_inputs);
    println!("  wall-clock time     : {:?}", report.duration);
    println!("  test cases / second : {:.1}", report.test_cases_per_second());
    println!("  test cases / hour   : {:.0}", report.test_cases_per_second() * 3600.0);
    println!("  mean input effectiveness: {:.2}", report.mean_effectiveness);
    println!("  pattern coverage    : {}", report.coverage);
    println!();
    println!(
        "Paper reference: over 200 test cases per hour on real hardware with complex \
         contracts and several hundred inputs per test case; the simulator is much faster, \
         so the number to compare is the *shape*: throughput is dominated by the number of \
         inputs per test case and by trace collection, not by the analysis."
    );
}
