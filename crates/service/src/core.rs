//! The service core: job table, sharded workers and event fan-out.
//!
//! The core is transport-agnostic — the TCP front-end ([`crate::server`])
//! and the in-process [`ServiceHandle`](crate::ServiceHandle) both drive
//! this API.  Jobs drain through `shards` long-lived worker threads, all
//! pulling from one global queue (highest priority first, FIFO within a
//! priority — never inverted by placement); each worker
//! drives its job as an incremental
//! [`MatrixRun`](revizor::orchestrator::MatrixRun), persisting a
//! checkpoint to the spool between waves and publishing progress events to
//! the job's event log.  Subscribers (watchers) replay that log from any
//! cursor, so late subscribers see the full history and event delivery can
//! never perturb verdicts.

use crate::job::JobSpec;
use crate::spool::{JobPhase, Spool, SpoolRecord, UnitPhase, UnitRecord};
use revizor::campaign::{CellEvent, ProgressObserver, RoundEvent};
use revizor::orchestrator::{MatrixCheckpoint, MatrixReport};
use rvz_bench::json::Json;
use rvz_bench::report::{matrix_cells_json, matrix_timing_json};
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Configuration of a service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shard worker threads.  All of them drain **one** shared
    /// queue — highest priority first, FIFO within a priority — each
    /// running one job at a time.
    pub shards: usize,
    /// Spool directory for durable job state; `None` keeps everything in
    /// memory (jobs are lost when the process exits).
    pub spool: Option<PathBuf>,
    /// Keep at most this many terminal (done / cancelled) job records in
    /// the spool; `None` keeps all of them.  A long-lived server otherwise
    /// accretes one record per finished job forever (see
    /// [`crate::spool::Spool::with_retain`]).
    pub spool_retain: Option<usize>,
    /// Waves between spool checkpoints (1 = checkpoint after every wave).
    /// In-process mode only: multi-host replication always persists every
    /// ack'd wave — the "spool replica is at most one wave behind" failover
    /// guarantee is built on it.
    pub checkpoint_every: usize,
    /// TCP listen address for the JSON-lines front-end (e.g.
    /// `"127.0.0.1:0"` for an ephemeral port); `None` runs in-process only.
    pub listen: Option<String>,
    /// Multi-host mode: TCP listen address for **worker hosts**
    /// (`revizor-worker`).  When set, the service runs as a *coordinator*:
    /// no local shard threads are spawned, and jobs are dispatched to
    /// connected workers instead (see [`crate::coordinator`]).
    pub worker_listen: Option<String>,
    /// Multi-host mode: how long a worker driving a work unit may go
    /// without sending any frame before the coordinator declares it
    /// silently partitioned — the connection is dropped and its units
    /// requeued from their last replicated sub-checkpoints.  Workers
    /// produce at least one frame per wave, so set this well above the
    /// longest expected wave; a spurious trip is *safe* (resume is
    /// byte-identical), it only wastes the stalled worker's wave.  Idle
    /// (leaseless) workers are exempt.
    pub worker_timeout: Duration,
    /// Fleet mode: how long a leased unit may go without an *accepted*
    /// checkpoint before an idle worker is allowed to steal it.  The
    /// original owner's lease is revoked and the unit resumes on the
    /// thief from the last replicated sub-checkpoint; the owner's
    /// now-stale frames are fenced by the lease token, so a slow host
    /// racing its own thief can never corrupt state (verdicts are
    /// byte-identical either way).
    pub steal_after: Duration,
    /// Backpressure watermark: [`ServiceCore::try_submit`] defers new jobs
    /// (with a retry-after hint) while the queued work-unit count is at or
    /// above this.  Leased units do not count — they are being worked.
    pub queue_watermark: usize,
    /// Indexed violation store directory (see [`rvz_store::Store`]): every
    /// finished job's violation cells are appended to it, deduplicated by
    /// minimized-gadget equivalence and queryable with `revizor-query`.
    /// `None` disables indexing.  Store writes happen *after* the result is
    /// computed and never touch it, so indexing can never perturb verdicts.
    pub store: Option<PathBuf>,
    /// Token-auth file for the client front-end: one `<token> <tenant>`
    /// pair per line (`#` comments and blank lines ignored).  When set,
    /// every client op except `ping` requires a valid token, submitted
    /// jobs are stamped with the token's tenant, and `list`/`status`
    /// (and every other job-addressed op) are scoped to that tenant.
    /// `None` runs the front-end open, exactly as before.
    pub token_file: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 2,
            spool: None,
            spool_retain: None,
            checkpoint_every: 1,
            listen: None,
            worker_listen: None,
            worker_timeout: Duration::from_secs(120),
            steal_after: Duration::from_secs(30),
            queue_watermark: 1024,
            store: None,
            token_file: None,
        }
    }
}

/// One relocatable work unit: one target group of its job's matrix,
/// independently leasable, steppable and stealable (fleet mode).
struct UnitState {
    /// The Table 2 target id whose cell group this unit drives.
    target: u8,
    phase: UnitPhase,
    /// The worker host currently holding the lease.
    worker: Option<String>,
    /// Current lease token.  Minted fresh on every lease; every unit frame
    /// must quote it, so a stolen/released lease fences the old owner's
    /// in-flight frames (`0` = never leased).
    lease: u64,
    /// Last replicated sub-run checkpoint (the final one once `Done`).
    checkpoint: Option<MatrixCheckpoint>,
}

/// One job's in-memory state.
struct JobEntry {
    spec: JobSpec,
    shard: usize,
    phase: JobPhase,
    /// Append-only event log; watchers replay it by cursor.
    events: Vec<Json>,
    checkpoint: Option<MatrixCheckpoint>,
    /// The job's work units, one per target group (fleet mode; lazily
    /// materialized at the first lease).  `None` on the shard path, where
    /// the whole job is one unit of work.
    units: Option<Vec<UnitState>>,
    result: Option<Json>,
    /// A client asked for cancellation while the job was running; the
    /// driver (shard worker or remote worker host) honors it at the next
    /// wave boundary.
    cancel_requested: bool,
    /// The worker host that most recently leased part of the job
    /// (fleet mode only; per-unit placement lives in `units`).
    worker: Option<String>,
    /// Bumped (under the core lock) every time a durable record of this
    /// job is built; persists are ordered by it so a stale record built
    /// just before a newer one can never overwrite it on disk.
    record_version: u64,
}

/// Everything behind the core's one lock.
struct CoreState {
    jobs: BTreeMap<String, JobEntry>,
    /// Submission order (the claim scan walks it; FIFO tie-break).
    order: Vec<String>,
    /// Jobs currently in [`JobPhase::Queued`] — maintained at every phase
    /// transition so the idle paths (the coordinator polls for work every
    /// 2ms, shard workers every 100ms) can skip the O(all jobs ever)
    /// claim scan when nothing is queued.
    queued: usize,
}


/// Per-unit placement of a fleet job, for `status` responses.
#[derive(Debug, Clone)]
pub struct UnitStatus {
    /// The Table 2 target id whose cell group this unit drives.
    pub target: u8,
    /// Unit lifecycle phase.
    pub phase: UnitPhase,
    /// The worker host currently holding the lease, if any.
    pub worker: Option<String>,
    /// Last replicated sub-run wave (0 before the first checkpoint).
    pub wave: usize,
}

/// A summary of one job, for `status` / `list` responses.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job identifier.
    pub job: String,
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Informational placement label (job-id hash bucket; always 0 in
    /// fleet mode).  Scheduling is a single global priority queue —
    /// jobs are never pinned.
    pub shard: usize,
    /// Scheduling priority (higher drains first).
    pub priority: i64,
    /// The worker host that most recently leased part of the job
    /// (fleet mode only; see `units` for per-unit placement).
    pub worker: Option<String>,
    /// Number of matrix cells.
    pub cells: usize,
    /// Cells already finished (violation found; budget-exhausted cells
    /// close only when the whole job does).
    pub cells_finished: usize,
    /// Events published so far.
    pub events: usize,
    /// Per-unit placement, once the job's work units have materialized
    /// (fleet mode); empty on the shard path.
    pub units: Vec<UnitStatus>,
    /// Owning tenant (token-auth mode; see [`crate::job::JobSpec::tenant`]).
    /// `None` for tenantless jobs, which every client may see.
    pub tenant: Option<String>,
}

impl JobStatus {
    /// The wire form of the summary.  The tenant field is emitted only
    /// when set, keeping open-mode responses in their pre-auth shape.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj()
            .field("job", self.job.as_str())
            .field("state", self.phase.label());
        if let Some(tenant) = &self.tenant {
            doc = doc.field("tenant", tenant.as_str());
        }
        let mut doc = doc
            .field("shard", self.shard)
            .field("priority", rvz_bench::report::i64_to_json(self.priority))
            .field("worker", self.worker.as_deref())
            .field("cells", self.cells)
            .field("cells_finished", self.cells_finished)
            .field("events", self.events);
        if !self.units.is_empty() {
            doc = doc.field(
                "units",
                Json::Arr(
                    self.units
                        .iter()
                        .map(|u| {
                            Json::obj()
                                .field("target", u.target)
                                .field("state", u.phase.label())
                                .field("worker", u.worker.as_deref())
                                .field("wave", u.wave)
                        })
                        .collect(),
                ),
            );
        }
        doc
    }
}

/// The backpressure hint attached to a deferred submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backpressure {
    /// Work units queued (not leased) across all live jobs at the time of
    /// the submission attempt.
    pub queued_units: usize,
    /// The configured watermark the count reached.
    pub watermark: usize,
    /// How long the client should wait before retrying.
    pub retry_after: Duration,
}

/// Why [`ServiceCore::try_submit`] did not accept a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitRejection {
    /// The spec does not resolve (unknown target/contract).
    Invalid(String),
    /// The fleet's queue is at the watermark: retry later.
    Backpressure(Backpressure),
}

/// A leased work unit, as handed to the coordinator for granting: the
/// unit's identity (job + target + lease token), the job spec the worker
/// resolves locally, and the sub-run checkpoint to resume from.
pub(crate) struct UnitGrant {
    pub(crate) job: String,
    pub(crate) target: u8,
    pub(crate) lease: u64,
    pub(crate) spec: JobSpec,
    pub(crate) checkpoint: Option<MatrixCheckpoint>,
}

/// How the core disposed of a unit-scoped worker frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UnitDisposition {
    /// Stored/processed.
    Accepted,
    /// The quoted lease is no longer current (stolen, released, or the
    /// job went terminal): the sender must abandon the unit.
    Revoked,
    /// Valid lease but the frame is unacceptable (e.g. a wave replay);
    /// nothing was stored.
    Ignored,
}

/// The transport-agnostic service core (see the module docs).
pub struct ServiceCore {
    config: ServiceConfig,
    spool: Option<Spool>,
    /// Indexed violation store ([`ServiceConfig::store`]); written after a
    /// job's result is computed, off the verdict path.
    store: Option<rvz_store::Store>,
    /// Parsed [`ServiceConfig::token_file`]: token → tenant.  `None` runs
    /// the client front-end open (no auth).
    auth: Option<BTreeMap<String, String>>,
    state: Mutex<CoreState>,
    /// Notified on every state change: submissions (wakes workers), events
    /// and completions (wakes watchers / waiters).
    changed: Condvar,
    stop: AtomicBool,
    counter: AtomicU64,
    /// Lease tokens (fleet mode), minted fresh per lease.  Process-global
    /// so a token can never repeat across jobs or steals — a stale frame
    /// quoting an old token is always detectably stale.
    lease_counter: AtomicU64,
    /// Global event sequence: every published event is stamped with a
    /// strictly increasing `seq`, so cross-job scheduling order (e.g.
    /// "the high-priority job started first") is observable from the logs.
    event_seq: AtomicU64,
    /// Per-job persist locks carrying the highest
    /// [`JobEntry::record_version`] written to the spool (see
    /// [`ServiceCore::persist`]).  Per job, not global: only same-job
    /// writes need ordering, and a single lock across file I/O would
    /// serialize every job's checkpoints behind each other.
    persisted: Mutex<BTreeMap<String, Arc<Mutex<u64>>>>,
}

impl ServiceCore {
    /// Create a core, loading (and re-queuing) any unfinished jobs from the
    /// spool.
    ///
    /// # Errors
    /// Propagates spool-directory creation failures.
    pub fn new(config: ServiceConfig) -> io::Result<Arc<ServiceCore>> {
        // In fleet mode jobs are dispatched to worker hosts, not
        // pinned to local shard threads: collapse to one nominal shard so
        // the wire-visible `shard` field is always 0 there.
        let mut config = config;
        if config.worker_listen.is_some() {
            config.shards = 1;
        }
        let spool = match &config.spool {
            Some(dir) => Some(Spool::open(dir)?.with_retain(config.spool_retain)),
            None => None,
        };
        let store = match &config.store {
            Some(dir) => Some(rvz_store::Store::open(dir)?),
            None => None,
        };
        let auth = match &config.token_file {
            Some(path) => Some(load_tokens(path)?),
            None => None,
        };
        let mut state = CoreState { jobs: BTreeMap::new(), order: Vec::new(), queued: 0 };
        let mut next_counter = 1u64;
        if let Some(spool) = &spool {
            let mut records = spool.load_all();
            // The directory scan is lexicographic, which is digest order,
            // not submission order (ids are `j<digest>-<counter hex>`, and
            // the unpadded hex counter itself misorders across widths).
            // Re-sort by the counter — it increases per submission — so
            // the restored `order` preserves the FIFO-within-priority
            // claim guarantee and the event `seq` re-stamp below really is
            // submission order.  Ids without a parseable counter sort
            // first, by name.
            records.sort_by_key(|r| (id_counter(&r.job), r.job.clone()));
            for record in records {
                let shard = shard_of(&record.job, config.shards);
                // Job ids end in `-<counter hex>`; keep allocating above the
                // highest loaded one so a restarted server can never reuse
                // (and overwrite) an existing job's id.
                if let Some(n) = id_counter(&record.job) {
                    next_counter = next_counter.max(n + 1);
                }
                let events = restored_events(&record);
                if record.phase == JobPhase::Queued {
                    state.queued += 1;
                }
                // Restored units come back leaseless (their owners died
                // with the server; the spool already demoted Leased to
                // Queued) with the lease counter reset — tokens only fence
                // frames within one server lifetime.
                let units = record.units.map(|units| {
                    units
                        .into_iter()
                        .map(|u| UnitState {
                            target: u.target,
                            phase: u.phase,
                            worker: None,
                            lease: 0,
                            checkpoint: u.checkpoint,
                        })
                        .collect()
                });
                state.order.push(record.job.clone());
                state.jobs.insert(
                    record.job.clone(),
                    JobEntry {
                        spec: record.spec,
                        shard,
                        phase: record.phase,
                        events,
                        checkpoint: record.checkpoint,
                        units,
                        result: record.result,
                        cancel_requested: record.cancel_requested,
                        worker: None,
                        record_version: 0,
                    },
                );
            }
        }
        // Restored event logs are re-stamped from 0 in submission order.
        let mut seq = 0u64;
        for job in &state.order {
            if let Some(entry) = state.jobs.get_mut(job) {
                for event in &mut entry.events {
                    *event = std::mem::replace(event, Json::Null).field("seq", seq);
                    seq += 1;
                }
            }
        }
        let core = Arc::new(ServiceCore {
            config,
            spool,
            store,
            auth,
            state: Mutex::new(state),
            changed: Condvar::new(),
            stop: AtomicBool::new(false),
            counter: AtomicU64::new(next_counter),
            lease_counter: AtomicU64::new(1),
            event_seq: AtomicU64::new(seq),
            persisted: Mutex::new(BTreeMap::new()),
        });
        // A restored job whose cancel arrived just before the previous
        // server died comes back as Queued + cancel_requested; honor the
        // cancellation now instead of re-running (or stranding) the job.
        let pending_cancels: Vec<String> = {
            let state = core.state.lock().expect("core lock");
            state
                .jobs
                .iter()
                .filter(|(_, e)| e.phase == JobPhase::Queued && e.cancel_requested)
                .map(|(job, _)| job.clone())
                .collect()
        };
        for job in pending_cancels {
            core.finish_cancelled(&job, None);
        }
        // A job restored with every unit already Done died between its
        // last unit finishing and the result persisting; nothing will ever
        // lease it again, so reconstruct and complete it now.
        let pending_done: Vec<String> = {
            let state = core.state.lock().expect("core lock");
            state
                .jobs
                .iter()
                .filter(|(_, e)| {
                    !e.phase.terminal()
                        && e.units.as_ref().is_some_and(|units| {
                            !units.is_empty()
                                && units.iter().all(|u| u.phase == UnitPhase::Done)
                        })
                })
                .map(|(job, _)| job.clone())
                .collect()
        };
        for job in pending_done {
            core.finalize_units(&job);
        }
        Ok(core)
    }

    /// The instance configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Has [`ServiceCore::stop`] been requested?
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Ask workers (and the front-end) to stop.  Workers finish their
    /// current wave, persist a checkpoint and exit; unfinished jobs stay
    /// resumable in the spool.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _guard = self.state.lock().expect("core lock");
        self.changed.notify_all();
    }

    /// Submit a job.  The spec is validated (targets/contracts must
    /// resolve) and persisted before the job id is returned.  Never
    /// backpressured — admin/in-process submissions bypass the watermark;
    /// clients racing fleet capacity go through
    /// [`ServiceCore::try_submit`].
    ///
    /// # Errors
    /// Returns a message for invalid specs.
    pub fn submit(&self, spec: JobSpec) -> Result<String, String> {
        // Resolve eagerly so a bad spec fails at the submission boundary,
        // not inside a worker.
        spec.to_matrix()?;
        Ok(self.accept_submission(spec))
    }

    /// Submit a job, honoring the backpressure watermark: while the queued
    /// (not leased) work-unit count across live jobs is at or above
    /// [`ServiceConfig::queue_watermark`], the submission is deferred with
    /// a retry-after hint instead of queueing unbounded work.
    ///
    /// # Errors
    /// [`SubmitRejection::Invalid`] for bad specs,
    /// [`SubmitRejection::Backpressure`] for a full queue.
    pub fn try_submit(&self, spec: JobSpec) -> Result<String, SubmitRejection> {
        spec.to_matrix().map_err(SubmitRejection::Invalid)?;
        let queued_units = {
            let state = self.state.lock().expect("core lock");
            state
                .jobs
                .values()
                .filter(|e| !e.phase.terminal())
                .map(|e| match &e.units {
                    // Materialized: exactly the units still waiting.
                    Some(units) =>
                        units.iter().filter(|u| u.phase == UnitPhase::Queued).count(),
                    // Not yet materialized: a queued job will split into
                    // one unit per target group; a running one (shard
                    // path) is being worked, so it exerts no pressure.
                    None if e.phase == JobPhase::Queued => e.spec.group_targets().len(),
                    None => 0,
                })
                .sum::<usize>()
        };
        let watermark = self.config.queue_watermark.max(1);
        if queued_units >= watermark {
            // The hint scales with the overshoot (capped at a minute):
            // deeper queues take longer to drain, and a fixed hint would
            // make every deferred client retry in lockstep.
            let overshoot = (queued_units - watermark + 1).min(240);
            return Err(SubmitRejection::Backpressure(Backpressure {
                queued_units,
                watermark,
                retry_after: Duration::from_millis(250 * overshoot as u64),
            }));
        }
        Ok(self.accept_submission(spec))
    }

    /// Queue a pre-validated spec: mint the id, persist, insert.
    fn accept_submission(&self, spec: JobSpec) -> String {
        let digest = fnv(spec.to_json().render().as_bytes());
        let job = loop {
            // The counter is process-unique and seeded above every id
            // loaded from the spool, so collisions are only possible with
            // hand-named spool files — skip over those too.
            let job = format!("j{digest:x}-{:x}", self.counter.fetch_add(1, Ordering::SeqCst));
            if !self.state.lock().expect("core lock").jobs.contains_key(&job) {
                break job;
            }
        };
        let shard = shard_of(&job, self.config.shards);
        let mut entry = JobEntry {
            spec,
            shard,
            phase: JobPhase::Queued,
            events: Vec::new(),
            checkpoint: None,
            units: None,
            result: None,
            cancel_requested: false,
            worker: None,
            record_version: 0,
        };
        let (record, version) = Self::record_of(&job, &mut entry);
        self.persist(&record, version);
        let mut state = self.state.lock().expect("core lock");
        state.order.push(job.clone());
        state.jobs.insert(job.clone(), entry);
        state.queued += 1;
        self.changed.notify_all();
        job
    }

    /// A summary of one job, if known.
    pub fn status(&self, job: &str) -> Option<JobStatus> {
        let state = self.state.lock().expect("core lock");
        state.jobs.get(job).map(|e| summarize(job, e))
    }

    /// Just a job's lifecycle phase — one lock, no event-log scan (the
    /// drive loop polls this every wave; [`ServiceCore::status`] counts
    /// cell events and would make that O(log length) per wave).
    pub fn job_phase(&self, job: &str) -> Option<JobPhase> {
        let state = self.state.lock().expect("core lock");
        state.jobs.get(job).map(|e| e.phase)
    }

    /// Summaries of all jobs, in submission order.
    pub fn list(&self) -> Vec<JobStatus> {
        let state = self.state.lock().expect("core lock");
        state
            .order
            .iter()
            .filter_map(|job| state.jobs.get(job).map(|e| summarize(job, e)))
            .collect()
    }

    /// The result payload of a finished job.  `None` = unknown job,
    /// `Some(None)` = known but not finished.
    #[allow(clippy::option_option)]
    pub fn result(&self, job: &str) -> Option<Option<Json>> {
        let state = self.state.lock().expect("core lock");
        state.jobs.get(job).map(|e| e.result.clone())
    }

    /// Events `from..` of a job's log (empty when none are new).  `None`
    /// for unknown jobs.
    pub fn events_from(&self, job: &str, from: usize) -> Option<Vec<Json>> {
        let state = self.state.lock().expect("core lock");
        state.jobs.get(job).map(|e| e.events.get(from..).unwrap_or_default().to_vec())
    }

    /// Block until the job finishes (or the core stops); returns its result
    /// payload.
    ///
    /// # Errors
    /// Returns a message for unknown jobs or when the core stops first.
    pub fn wait(&self, job: &str) -> Result<Json, String> {
        let mut state = self.state.lock().expect("core lock");
        loop {
            match state.jobs.get(job) {
                None => return Err(format!("unknown job `{job}`")),
                Some(e) => {
                    if let Some(result) = &e.result {
                        return Ok(result.clone());
                    }
                }
            }
            if self.stopped() {
                return Err("service stopped before the job finished".to_string());
            }
            let (next, _) = self
                .changed
                .wait_timeout(state, Duration::from_millis(200))
                .expect("core lock");
            state = next;
        }
    }

    /// Build the durable record of a job, stamped with the next record
    /// version (callers persist it *outside* the core lock — checkpoint
    /// documents carry whole violation reports, and file I/O under the
    /// lock would stall every client-facing call).
    fn record_of(job: &str, entry: &mut JobEntry) -> (SpoolRecord, u64) {
        entry.record_version += 1;
        let record = SpoolRecord {
            job: job.to_string(),
            spec: entry.spec.clone(),
            phase: entry.phase,
            checkpoint: entry.checkpoint.clone(),
            units: entry.units.as_ref().map(|units| {
                units
                    .iter()
                    .map(|u| UnitRecord {
                        target: u.target,
                        phase: u.phase,
                        checkpoint: u.checkpoint.clone(),
                    })
                    .collect()
            }),
            result: entry.result.clone(),
            cancel_requested: entry.cancel_requested,
        };
        (record, entry.record_version)
    }

    /// Write one record to the spool (core lock NOT held).  Writes are
    /// ordered by record version: two threads can build records for the
    /// same job back to back under the core lock and then race to the
    /// file, and without the ordering the stale one could win the rename
    /// and roll back durable state (e.g. a freshly persisted
    /// `cancel_requested` flag, which must survive a server kill).
    fn persist(&self, record: &SpoolRecord, version: u64) {
        if self.spool.is_none() {
            return;
        }
        // The map lock is held only to fetch the job's own lock; the file
        // write happens under the *per-job* lock, so unrelated jobs (and
        // submit() on the reactor thread) never wait on each other's I/O.
        let job_lock = {
            let mut persisted = self.persisted.lock().expect("persist map lock");
            Arc::clone(persisted.entry(record.job.clone()).or_default())
        };
        let mut last = job_lock.lock().expect("persist job lock");
        if version <= *last {
            return; // a newer record already reached the disk
        }
        *last = version;
        let spool = self.spool.as_ref().expect("checked above");
        if let Err(e) = spool.save(record) {
            eprintln!("spool: failed to persist job {}: {e}", record.job);
        }
    }

    /// Pick the next queued job, marking it running: the highest-priority
    /// queued job (FIFO within a priority), from the **one global queue**
    /// — every idle drainer (in-process shard worker or, via the
    /// coordinator, a remote worker host) takes the globally best job, so
    /// the priority guarantee is never inverted by placement.  `worker`
    /// names the remote worker host taking the job, when there is one.
    pub(crate) fn claim(
        &self,
        worker: Option<&str>,
    ) -> Option<(String, JobSpec, Option<MatrixCheckpoint>)> {
        let (claimed, record, cancelled) = {
            let mut state = self.state.lock().expect("core lock");
            if state.queued == 0 {
                // Fast path for the idle pollers: no scan of the full job
                // history when nothing is queued.
                return None;
            }
            // A queued job can carry a pending cancel (its cancel raced a
            // requeue): it must never be dispatched again — collect it for
            // terminal cancellation instead of claiming it.
            let mut cancelled: Vec<String> = Vec::new();
            // `order` is submission order; keeping only *strictly* higher
            // priorities picks the earliest submission within the winning
            // priority (FIFO tie-break).
            let mut best: Option<(&String, i64)> = None;
            for job in &state.order {
                let Some(e) = state.jobs.get(job) else { continue };
                if e.phase != JobPhase::Queued {
                    continue;
                }
                if e.cancel_requested {
                    cancelled.push(job.clone());
                    continue;
                }
                if best.is_none_or(|(_, p)| e.spec.priority > p) {
                    best = Some((job, e.spec.priority));
                }
            }
            match best {
                None => (None, None, cancelled),
                Some((job, _)) => {
                    let job = job.clone();
                    state.queued -= 1; // the scan saw it Queued
                    let entry = state.jobs.get_mut(&job).expect("found above");
                    entry.phase = JobPhase::Running;
                    entry.worker = worker.map(str::to_string);
                    let claimed = (job.clone(), entry.spec.clone(), entry.checkpoint.clone());
                    let record = Self::record_of(&job, entry);
                    (Some(claimed), Some(record), cancelled)
                }
            }
        };
        for job in cancelled {
            self.finish_cancelled(&job, None);
        }
        let (record, version) = record?;
        self.persist(&record, version);
        claimed
    }

    /// Hand a running job back to the queue (its driver is gone — e.g. a
    /// worker host died).  The job keeps its last replicated checkpoint, so
    /// the next claim resumes it from there with byte-identical verdicts.
    /// A job with a pending cancellation is cancelled terminally instead
    /// of requeued — its driver died before honoring the cancel, and
    /// re-dispatching it would run waves the client already cancelled.
    pub(crate) fn requeue_interrupted(&self, job: &str) {
        let record = {
            let mut state = self.state.lock().expect("core lock");
            let Some(entry) = state.jobs.get_mut(job) else { return };
            if entry.phase != JobPhase::Running {
                return;
            }
            if entry.cancel_requested {
                drop(state);
                self.finish_cancelled(job, None);
                return;
            }
            entry.phase = JobPhase::Queued;
            entry.worker = None;
            let record = Self::record_of(job, entry);
            state.queued += 1; // back from Running
            record
        };
        let (record, version) = record;
        self.persist(&record, version);
        let _guard = self.state.lock().expect("core lock");
        self.changed.notify_all();
    }

    /// Lease the best queued work unit to `worker` (fleet mode): the
    /// highest-priority job with a queued unit (FIFO within a priority —
    /// the same global-queue guarantee as [`ServiceCore::claim`], at unit
    /// granularity), whose units are lazily split out of its whole-matrix
    /// checkpoint on first lease.  Mints a fresh lease token; every frame
    /// the worker sends for the unit must quote it.
    pub(crate) fn lease_unit(&self, worker: &str) -> Option<UnitGrant> {
        let (grant, record, cancelled, empty_job) = {
            let mut state = self.state.lock().expect("core lock");
            let mut cancelled: Vec<String> = Vec::new();
            let mut best: Option<(&String, i64)> = None;
            for job in &state.order {
                let Some(e) = state.jobs.get(job) else { continue };
                if e.phase.terminal() {
                    continue;
                }
                if e.cancel_requested {
                    // A cancelled job must never lease out more units; a
                    // still-queued one is terminally cancelled right here
                    // (see `claim`).
                    if e.phase == JobPhase::Queued {
                        cancelled.push(job.clone());
                    }
                    continue;
                }
                let has_queued = match &e.units {
                    Some(units) => units.iter().any(|u| u.phase == UnitPhase::Queued),
                    None => e.phase == JobPhase::Queued,
                };
                if has_queued && best.is_none_or(|(_, p)| e.spec.priority > p) {
                    best = Some((job, e.spec.priority));
                }
            }
            match best {
                None => (None, None, cancelled, None),
                Some((job, _)) => {
                    let job = job.clone();
                    let lease = self.lease_counter.fetch_add(1, Ordering::SeqCst);
                    let was_queued;
                    let (grant, empty) = {
                        let entry = state.jobs.get_mut(&job).expect("found above");
                        if entry.units.is_none() {
                            entry.units = Some(materialize_units(
                                &job,
                                &entry.spec,
                                entry.checkpoint.as_ref(),
                            ));
                        }
                        was_queued = entry.phase == JobPhase::Queued;
                        let spec = entry.spec.clone();
                        let units = entry.units.as_mut().expect("materialized above");
                        match units.iter_mut().find(|u| u.phase == UnitPhase::Queued) {
                            None => {
                                // A cell-less spec splits into zero units:
                                // nothing to lease, but the job must still
                                // complete (vacuously, below).
                                (None, units.is_empty())
                            }
                            Some(unit) => {
                                unit.phase = UnitPhase::Leased;
                                unit.worker = Some(worker.to_string());
                                unit.lease = lease;
                                let grant = UnitGrant {
                                    job: job.clone(),
                                    target: unit.target,
                                    lease,
                                    spec,
                                    checkpoint: unit.checkpoint.clone(),
                                };
                                entry.phase = JobPhase::Running;
                                entry.worker = Some(worker.to_string());
                                (Some(grant), false)
                            }
                        }
                    };
                    if was_queued && (grant.is_some() || empty) {
                        // Leased (or about to vacuously complete): either
                        // way the job left the queue.
                        state.queued -= 1;
                        let entry = state.jobs.get_mut(&job).expect("found above");
                        entry.phase = JobPhase::Running;
                    }
                    let entry = state.jobs.get_mut(&job).expect("found above");
                    let record = Self::record_of(&job, entry);
                    let empty_job = if empty { Some(job) } else { None };
                    (grant, Some(record), cancelled, empty_job)
                }
            }
        };
        for job in cancelled {
            self.finish_cancelled(&job, None);
        }
        if let Some(job) = empty_job {
            self.finalize_units(&job);
        }
        let (record, version) = record?;
        self.persist(&record, version);
        grant
    }

    /// Store a replicated sub-run checkpoint for a leased unit.  The
    /// quoted lease must be current ([`UnitDisposition::Revoked`]
    /// otherwise — the unit was stolen, released or its job went
    /// terminal); wave numbers must strictly increase per unit
    /// ([`UnitDisposition::Ignored`] for replays, nothing stored).
    pub(crate) fn save_unit_checkpoint(
        &self,
        job: &str,
        target: u8,
        lease: u64,
        checkpoint: MatrixCheckpoint,
    ) -> UnitDisposition {
        let record = {
            let mut state = self.state.lock().expect("core lock");
            let Some(entry) = state.jobs.get_mut(job) else {
                return UnitDisposition::Revoked;
            };
            if entry.phase.terminal() {
                return UnitDisposition::Revoked;
            }
            let Some(unit) = entry
                .units
                .as_mut()
                .and_then(|units| units.iter_mut().find(|u| u.target == target))
            else {
                return UnitDisposition::Revoked;
            };
            if unit.lease != lease || unit.phase != UnitPhase::Leased {
                return UnitDisposition::Revoked;
            }
            if unit.checkpoint.as_ref().is_some_and(|old| checkpoint.wave <= old.wave) {
                return UnitDisposition::Ignored;
            }
            unit.checkpoint = Some(checkpoint);
            refresh_merged_checkpoint(job, entry);
            Self::record_of(job, entry)
        };
        let (record, version) = record;
        self.persist(&record, version);
        self.changed.notify_all();
        UnitDisposition::Accepted
    }

    /// Finish a leased unit: store its final sub-checkpoint, publish the
    /// worker's trailing events, and — when this was the job's last open
    /// unit — reconstruct and publish the job result.  Any wave is
    /// accepted on a valid lease (a unit can finish without ever
    /// checkpointing mid-run).
    pub(crate) fn complete_unit(
        &self,
        job: &str,
        target: u8,
        lease: u64,
        checkpoint: MatrixCheckpoint,
        events: Vec<Json>,
    ) -> UnitDisposition {
        let (record, all_done) = {
            let mut state = self.state.lock().expect("core lock");
            let Some(entry) = state.jobs.get_mut(job) else {
                return UnitDisposition::Revoked;
            };
            if entry.phase.terminal() {
                return UnitDisposition::Revoked;
            }
            let Some(units) = entry.units.as_mut() else {
                return UnitDisposition::Revoked;
            };
            let Some(unit) = units.iter_mut().find(|u| u.target == target) else {
                return UnitDisposition::Revoked;
            };
            if unit.lease != lease || unit.phase != UnitPhase::Leased {
                return UnitDisposition::Revoked;
            }
            unit.phase = UnitPhase::Done;
            unit.worker = None;
            unit.checkpoint = Some(checkpoint);
            let all_done = units.iter().all(|u| u.phase == UnitPhase::Done);
            refresh_merged_checkpoint(job, entry);
            (Self::record_of(job, entry), all_done)
        };
        // Trailing events precede the reconstruction's closing events.
        self.publish(job, events);
        let (record, version) = record;
        self.persist(&record, version);
        if all_done {
            self.finalize_units(job);
        }
        UnitDisposition::Accepted
    }

    /// A worker honored a cancellation for its leased unit: store where it
    /// stopped and release the lease.  When no other unit of the job is
    /// still leased, the job itself leaves `Running` (terminally cancelled
    /// when the cancel is still pending — the usual case — or requeued).
    pub(crate) fn cancel_unit(
        &self,
        job: &str,
        target: u8,
        lease: u64,
        checkpoint: Option<MatrixCheckpoint>,
    ) {
        let Some((record, none_leased)) = self.release_unit_inner(job, target, lease, checkpoint)
        else {
            return;
        };
        let (record, version) = record;
        self.persist(&record, version);
        if none_leased {
            self.requeue_interrupted(job);
        }
    }

    /// Revoke a unit's lease without new progress (its worker died or is
    /// being stolen from): the unit requeues at its last replicated
    /// sub-checkpoint.  The old owner's in-flight frames are fenced — they
    /// quote a lease that no longer matches a `Leased` unit.
    pub(crate) fn release_unit(&self, job: &str, target: u8, lease: u64) {
        let Some((record, none_leased)) = self.release_unit_inner(job, target, lease, None)
        else {
            return;
        };
        let (record, version) = record;
        self.persist(&record, version);
        if none_leased {
            self.requeue_interrupted(job);
        }
    }

    /// Release every `Leased` unit whose `(job, target, lease)` is not in
    /// `live` — the set of leases actually held by a connected worker.
    /// The core never re-leases a unit that is not `Queued`, so a lease
    /// with no owning connection would wedge its job forever, silently;
    /// this sweep makes that state self-healing no matter how it arose
    /// (a worker that abandoned a grant without a frame the coordinator
    /// kept, a peer speaking an older protocol, a future desync bug).
    /// Returns the released `(job, target)` pairs for logging.
    pub(crate) fn reconcile_leases(&self, live: &[(String, u8, u64)]) -> Vec<(String, u8)> {
        let orphaned: Vec<(String, u8, u64)> = {
            let state = self.state.lock().expect("core lock");
            state
                .jobs
                .iter()
                .filter(|(_, e)| !e.phase.terminal())
                .flat_map(|(job, e)| {
                    e.units.iter().flatten().filter(|u| u.phase == UnitPhase::Leased).filter_map(
                        move |u| {
                            let owned = live
                                .iter()
                                .any(|(j, t, l)| j == job && *t == u.target && *l == u.lease);
                            if owned {
                                None
                            } else {
                                Some((job.clone(), u.target, u.lease))
                            }
                        },
                    )
                })
                .collect()
        };
        let mut released = Vec::with_capacity(orphaned.len());
        for (job, target, lease) in orphaned {
            self.release_unit(&job, target, lease);
            released.push((job, target));
        }
        released
    }

    /// Shared lease-release body: unit back to `Queued` (optionally
    /// recording a final position), report whether the job now has no
    /// leased units left.  `None` when the lease is not current.
    fn release_unit_inner(
        &self,
        job: &str,
        target: u8,
        lease: u64,
        checkpoint: Option<MatrixCheckpoint>,
    ) -> Option<((SpoolRecord, u64), bool)> {
        let mut state = self.state.lock().expect("core lock");
        let entry = state.jobs.get_mut(job)?;
        if entry.phase.terminal() {
            return None;
        }
        let units = entry.units.as_mut()?;
        let unit = units.iter_mut().find(|u| u.target == target)?;
        if unit.lease != lease || unit.phase != UnitPhase::Leased {
            return None;
        }
        unit.phase = UnitPhase::Queued;
        unit.worker = None;
        if let Some(checkpoint) = checkpoint {
            unit.checkpoint = Some(checkpoint);
        }
        let none_leased = units.iter().all(|u| u.phase != UnitPhase::Leased);
        refresh_merged_checkpoint(job, entry);
        Some((Self::record_of(job, entry), none_leased))
    }

    /// A worker could not run its leased unit at all (the spec no longer
    /// resolves on that host, or the granted checkpoint was rejected):
    /// fail the whole job.  Lease-fenced like every other unit frame, so a
    /// stale owner cannot fail a job its thief is completing.
    pub(crate) fn fail_unit(&self, job: &str, target: u8, lease: u64, error: &str) {
        let valid = {
            let state = self.state.lock().expect("core lock");
            state.jobs.get(job).is_some_and(|e| {
                !e.phase.terminal()
                    && e.units.as_ref().is_some_and(|units| {
                        units
                            .iter()
                            .any(|u| u.target == target && u.lease == lease && u.phase == UnitPhase::Leased)
                    })
            })
        };
        if valid {
            self.complete(job, Json::obj().field("job", job).field("error", error));
        }
    }

    /// All units of the job are `Done`: reconstruct the final
    /// [`MatrixReport`] from the per-unit final checkpoints — resuming
    /// each sub-run at its final checkpoint and closing it reproduces the
    /// exact per-cell reports an in-process run yields — publish the
    /// closing cell events, and complete the job.  No-op unless every unit
    /// really is `Done` (so a straggler can never finish a job early).
    fn finalize_units(&self, job: &str) {
        let snapshot = {
            let state = self.state.lock().expect("core lock");
            let Some(entry) = state.jobs.get(job) else { return };
            if entry.phase.terminal() {
                return;
            }
            let Some(units) = entry.units.as_ref() else { return };
            if !units.iter().all(|u| u.phase == UnitPhase::Done) {
                return;
            }
            (
                entry.spec.clone(),
                units.iter().map(|u| u.checkpoint.clone()).collect::<Vec<_>>(),
            )
        };
        let (spec, checkpoints) = snapshot;
        let mut collector = EventCollector { job: job.to_string(), events: Vec::new() };
        let outcome: Result<MatrixReport, String> = (|| {
            let matrix = spec.to_matrix()?;
            let subs = matrix.group_matrices();
            if subs.len() != checkpoints.len() {
                return Err(format!(
                    "{} finished units but the matrix splits into {} groups",
                    checkpoints.len(),
                    subs.len()
                ));
            }
            let mut reports = Vec::with_capacity(subs.len());
            for (sub, checkpoint) in subs.iter().zip(checkpoints) {
                let checkpoint =
                    checkpoint.ok_or("a unit finished without a final checkpoint")?;
                let run = sub
                    .resume(&checkpoint)
                    .map_err(|e| format!("final sub-checkpoint rejected: {e}"))?;
                reports.push(run.finish(&mut collector));
            }
            matrix.merge_reports(reports)
        })();
        match outcome {
            Ok(report) => {
                self.publish(job, std::mem::take(&mut collector.events));
                self.index_result(job, &report);
                self.complete(job, job_result_json(job, &spec, &report));
            }
            Err(e) => {
                // Only a hand-edited spool (or a codec bug) gets here.
                let error = format!("result reconstruction failed: {e}");
                self.complete(job, Json::obj().field("job", job).field("error", error.as_str()));
            }
        }
    }

    /// Ask for a job's cancellation.  Queued jobs cancel immediately;
    /// running jobs cancel cooperatively at their next wave boundary (the
    /// returned phase is still `Running` until then).  Terminal jobs are
    /// rejected.
    ///
    /// # Errors
    /// Returns a message for unknown or already-finished jobs.
    pub fn cancel(&self, job: &str) -> Result<JobPhase, String> {
        // `Some(record)` = running (cooperative cancel; persist the flag),
        // `None` = still queued (cancel immediately).
        let cooperative: Option<(SpoolRecord, u64)> = {
            let mut state = self.state.lock().expect("core lock");
            let entry = state.jobs.get_mut(job).ok_or_else(|| format!("unknown job `{job}`"))?;
            match entry.phase {
                JobPhase::Done => return Err(format!("job `{job}` already finished")),
                JobPhase::Cancelled => return Ok(JobPhase::Cancelled),
                JobPhase::Queued => {
                    // Flag it under the SAME lock as the phase observation:
                    // if a claim slips in between this lock and the
                    // `finish_cancelled` below, it sees the flag and
                    // cancels instead of dispatching — without it, a
                    // queued job racing a claim would run to completion
                    // behind its own cancelled `done` event.
                    entry.cancel_requested = true;
                    None
                }
                JobPhase::Running => {
                    entry.cancel_requested = true;
                    // Persisted so the cancellation survives a server kill
                    // before the next wave boundary.
                    Some(Self::record_of(job, entry))
                }
            }
        };
        match cooperative {
            None => {
                self.finish_cancelled(job, None);
                Ok(JobPhase::Cancelled)
            }
            Some((record, version)) => {
                self.persist(&record, version);
                let _guard = self.state.lock().expect("core lock");
                self.changed.notify_all();
                Ok(JobPhase::Running)
            }
        }
    }

    /// Has a cancellation been requested for this (running) job?
    pub fn cancel_requested(&self, job: &str) -> bool {
        let state = self.state.lock().expect("core lock");
        state.jobs.get(job).is_some_and(|e| e.cancel_requested && !e.phase.terminal())
    }

    /// Terminally cancel a job: record the (optional) final checkpoint as
    /// the stopping point, store the `cancelled` result payload and publish
    /// the terminating `done` event.  Called by whichever driver honors the
    /// cooperative cancel — or directly for still-queued jobs.
    pub(crate) fn finish_cancelled(&self, job: &str, checkpoint: Option<MatrixCheckpoint>) {
        let result = Json::obj().field("job", job).field("cancelled", true);
        let done = Json::obj()
            .field("event", "done")
            .field("job", job)
            .field("cancelled", true)
            .field("result", result.clone());
        let record = {
            let mut state = self.state.lock().expect("core lock");
            let Some(entry) = state.jobs.get_mut(job) else { return };
            if entry.phase.terminal() {
                return;
            }
            let was_queued = entry.phase == JobPhase::Queued;
            entry.phase = JobPhase::Cancelled;
            entry.cancel_requested = false;
            entry.worker = None;
            entry.result = Some(result);
            if let Some(checkpoint) = checkpoint {
                entry.checkpoint = Some(checkpoint);
            }
            let done = self.stamp(done);
            entry.events.push(done);
            let record = Self::record_of(job, entry);
            if was_queued {
                state.queued -= 1;
            }
            record
        };
        let (record, version) = record;
        self.persist(&record, version);
        let _guard = self.state.lock().expect("core lock");
        self.changed.notify_all();
    }

    /// Stamp an event with the next global sequence number.
    fn stamp(&self, event: Json) -> Json {
        event.field("seq", self.event_seq.fetch_add(1, Ordering::SeqCst))
    }

    /// Append events to a job's log (each stamped with the global `seq`).
    /// Terminal jobs accept no further events: their `done` line stays the
    /// last one watchers ever see, even if a straggling driver (one that
    /// raced a cancellation) is still producing.
    pub(crate) fn publish(&self, job: &str, events: Vec<Json>) {
        if events.is_empty() {
            return;
        }
        let mut state = self.state.lock().expect("core lock");
        if let Some(entry) = state.jobs.get_mut(job) {
            if entry.phase.terminal() {
                return;
            }
            for event in events {
                let event = self.stamp(event);
                entry.events.push(event);
            }
        }
        self.changed.notify_all();
    }

    /// Store a wave checkpoint (and persist it, outside the lock).
    pub(crate) fn save_checkpoint(&self, job: &str, checkpoint: MatrixCheckpoint, phase: JobPhase) {
        let record = {
            let mut state = self.state.lock().expect("core lock");
            let Some(entry) = state.jobs.get_mut(job) else { return };
            if entry.phase.terminal() {
                // A straggling driver must never resurrect a finished or
                // cancelled job to Running.
                return;
            }
            let was_queued = entry.phase == JobPhase::Queued;
            entry.checkpoint = Some(checkpoint);
            entry.phase = phase;
            let record = Self::record_of(job, entry);
            match (was_queued, phase == JobPhase::Queued) {
                (false, true) => state.queued += 1,
                (true, false) => state.queued -= 1,
                _ => {}
            }
            record
        };
        let (record, version) = record;
        self.persist(&record, version);
        self.changed.notify_all();
    }

    /// Finish a job: store the result, drop the checkpoint, publish the
    /// `done` event.
    pub(crate) fn complete(&self, job: &str, result: Json) {
        let done = Json::obj()
            .field("event", "done")
            .field("job", job)
            .field("result", result.clone());
        let record = {
            let mut state = self.state.lock().expect("core lock");
            let Some(entry) = state.jobs.get_mut(job) else { return };
            if entry.phase.terminal() {
                // A result racing a cancellation: first terminal state wins.
                return;
            }
            let was_queued = entry.phase == JobPhase::Queued;
            entry.phase = JobPhase::Done;
            entry.result = Some(result);
            entry.checkpoint = None;
            entry.worker = None;
            let done = self.stamp(done);
            entry.events.push(done);
            let record = Self::record_of(job, entry);
            if was_queued {
                state.queued -= 1;
            }
            record
        };
        let (record, version) = record;
        self.persist(&record, version);
        self.changed.notify_all();
    }

    /// The body of one shard worker thread: claim → drive → complete, until
    /// the core stops.
    pub fn run_worker(self: &Arc<Self>, _shard: usize) {
        while !self.stopped() {
            let Some((job, spec, checkpoint)) = self.claim(None) else {
                // Idle: wait for a submission (or stop).
                let state = self.state.lock().expect("core lock");
                let _ = self
                    .changed
                    .wait_timeout(state, Duration::from_millis(100))
                    .expect("core lock");
                continue;
            };
            self.drive(&job, &spec, checkpoint);
        }
    }

    /// Drive one job to completion (or to the stop flag).
    fn drive(&self, job: &str, spec: &JobSpec, checkpoint: Option<MatrixCheckpoint>) {
        let matrix = match spec.to_matrix() {
            Ok(m) => m,
            Err(e) => {
                // Validated at submit; only a hand-edited spool reaches here.
                self.complete(job, Json::obj().field("job", job).field("error", e.as_str()));
                return;
            }
        };
        let mut run = match &checkpoint {
            Some(cp) => match matrix.resume(cp) {
                Ok(run) => run,
                Err(e) => {
                    eprintln!("job {job}: discarding stale checkpoint ({e}); restarting");
                    matrix.start()
                }
            },
            None => matrix.start(),
        };
        let mut collector = EventCollector { job: job.to_string(), events: Vec::new() };
        let mut waves_since_checkpoint = 0usize;
        loop {
            if self.stopped() {
                // Killed mid-job: park the progress and hand the job back
                // to the queue; the next server (or restart) resumes it.
                self.publish(job, std::mem::take(&mut collector.events));
                self.save_checkpoint(job, run.checkpoint(), JobPhase::Queued);
                return;
            }
            if self.cancel_requested(job) {
                // Cooperative cancellation: stop at the wave boundary and
                // record where the job stopped.
                self.publish(job, std::mem::take(&mut collector.events));
                self.finish_cancelled(job, Some(run.checkpoint()));
                return;
            }
            if self.job_phase(job).is_none_or(JobPhase::terminal) {
                // The job went terminal behind our back (a cancel raced
                // the claim): abandon the run; the terminal state already
                // published its closing event.
                return;
            }
            let more = run.step(&mut collector);
            self.publish(job, std::mem::take(&mut collector.events));
            if !more {
                break;
            }
            waves_since_checkpoint += 1;
            if waves_since_checkpoint >= self.config.checkpoint_every.max(1) {
                self.save_checkpoint(job, run.checkpoint(), JobPhase::Running);
                waves_since_checkpoint = 0;
            }
        }
        let report = run.finish(&mut collector);
        self.publish(job, std::mem::take(&mut collector.events));
        self.index_result(job, &report);
        self.complete(job, job_result_json(job, spec, &report));
    }

    /// Append a finished job's violation cells to the indexed store (a
    /// no-op without [`ServiceConfig::store`]).  Indexing failures are
    /// logged, never propagated: the index is a derived view and must not
    /// affect job results.
    fn index_result(&self, job: &str, report: &MatrixReport) {
        let Some(store) = &self.store else { return };
        if let Err(e) = store.index_report(job, report) {
            eprintln!("store: failed to index job {job}: {e}");
        }
    }

    /// The parsed token table ([`ServiceConfig::token_file`]): token →
    /// tenant.  `None` means the client front-end runs open (no auth).
    pub fn auth(&self) -> Option<&BTreeMap<String, String>> {
        self.auth.as_ref()
    }
}

/// Parse a token file: one `<token> <tenant>` pair per line; blank lines
/// and `#` comments are ignored.
fn load_tokens(path: &std::path::Path) -> io::Result<BTreeMap<String, String>> {
    let text = std::fs::read_to_string(path)?;
    let mut tokens = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(token), Some(tenant), None) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}:{}: expected `<token> <tenant>`, got `{line}`",
                    path.display(),
                    i + 1
                ),
            ));
        };
        tokens.insert(token.to_string(), tenant.to_string());
    }
    Ok(tokens)
}

fn summarize(job: &str, e: &JobEntry) -> JobStatus {
    let cells = e.spec.cells.len();
    JobStatus {
        job: job.to_string(),
        phase: e.phase,
        shard: e.shard,
        priority: e.spec.priority,
        worker: e.worker.clone(),
        tenant: e.spec.tenant.clone(),
        cells,
        cells_finished: match e.phase {
            JobPhase::Done => cells,
            _ => e
                .events
                .iter()
                .filter(|ev| ev.get("event").and_then(Json::as_str) == Some("cell"))
                .count(),
        },
        events: e.events.len(),
        units: e
            .units
            .as_ref()
            .map(|units| {
                units
                    .iter()
                    .map(|u| UnitStatus {
                        target: u.target,
                        phase: u.phase,
                        worker: u.worker.clone(),
                        wave: u.checkpoint.as_ref().map_or(0, |cp| cp.wave),
                    })
                    .collect()
            })
            .unwrap_or_default(),
    }
}

/// Split a job into its work units, one per target group, each resuming
/// from its slice of the job's whole-matrix checkpoint (fresh units when
/// there is none, or when the stored checkpoint no longer matches the
/// spec — e.g. a hand-edited spool).
fn materialize_units(
    job: &str,
    spec: &JobSpec,
    checkpoint: Option<&MatrixCheckpoint>,
) -> Vec<UnitState> {
    let targets = spec.group_targets();
    let fresh = || vec![None; targets.len()];
    let parts: Vec<Option<MatrixCheckpoint>> = match (checkpoint, spec.to_matrix()) {
        (Some(checkpoint), Ok(matrix)) => match matrix.split_checkpoint(checkpoint) {
            Ok(parts) if parts.len() == targets.len() => parts.into_iter().map(Some).collect(),
            Ok(_) => fresh(),
            Err(e) => {
                eprintln!("job {job}: discarding stale checkpoint ({e}); starting units fresh");
                fresh()
            }
        },
        _ => fresh(),
    };
    targets
        .into_iter()
        .zip(parts)
        .map(|(target, checkpoint)| UnitState {
            target,
            phase: UnitPhase::Queued,
            worker: None,
            lease: 0,
            checkpoint,
        })
        .collect()
}

/// Recompute a job's whole-matrix checkpoint as the merge of its per-unit
/// sub-checkpoints (units that never checkpointed contribute their initial
/// sub-checkpoint).  Keeps the job resumable as ONE record across server
/// restarts and shard/fleet mode changes.  Called under the core lock.
fn refresh_merged_checkpoint(job: &str, entry: &mut JobEntry) {
    let Some(units) = entry.units.as_ref() else { return };
    let Ok(matrix) = entry.spec.to_matrix() else { return };
    let subs = matrix.group_matrices();
    if subs.len() != units.len() {
        return;
    }
    let parts: Vec<MatrixCheckpoint> = units
        .iter()
        .zip(&subs)
        .map(|(u, sub)| u.checkpoint.clone().unwrap_or_else(|| sub.initial_checkpoint()))
        .collect();
    match matrix.merge_checkpoints(&parts) {
        Ok(merged) => entry.checkpoint = Some(merged),
        Err(e) => eprintln!("job {job}: sub-checkpoint merge failed ({e}); keeping the previous"),
    }
}

/// Reconstruct a restored job's event log from its spool record, so
/// watchers of a job that progressed (or finished) under a previous server
/// still see its history and — crucially — the terminating `done` event.
/// Cell events are synthesized from the checkpoint (pre-kill finds never
/// re-fire after a resume); `elapsed_ms` is lost with the old process.
fn restored_events(record: &SpoolRecord) -> Vec<Json> {
    let mut events = Vec::new();
    if let Some(checkpoint) = &record.checkpoint {
        for (progress, (target, contract)) in
            checkpoint.cells.iter().zip(&record.spec.cells)
        {
            let Some(progress) = progress else { continue };
            events.push(
                Json::obj()
                    .field("event", "cell")
                    .field("job", record.job.as_str())
                    .field("target", *target)
                    .field("contract", contract.as_str())
                    .field("found", progress.violation.is_some())
                    .field(
                        "vulnerability",
                        progress.violation.as_ref().map(|v| v.vulnerability.to_string()),
                    )
                    .field("test_cases", progress.test_cases)
                    .field("elapsed_ms", 0.0),
            );
        }
    }
    if let Some(result) = &record.result {
        let mut done = Json::obj().field("event", "done").field("job", record.job.as_str());
        if record.phase == JobPhase::Cancelled {
            done = done.field("cancelled", true);
        }
        events.push(done.field("result", result.clone()));
    }
    events
}

/// The result payload of a finished job: the job id and spec, the
/// deterministic per-cell section ([`matrix_cells_json`] — byte-identical
/// for any execution of the same spec, kill + resume included) and the
/// nondeterministic timing side channel.
pub fn job_result_json(job: &str, spec: &JobSpec, report: &MatrixReport) -> Json {
    Json::obj()
        .field("job", job)
        .field("spec", spec.to_json())
        .field("seed", report.seed)
        .field("measured_test_cases", report.test_cases)
        .field("generated_test_cases", report.generated)
        .field("statically_filtered", report.statically_filtered)
        .field("cells", matrix_cells_json(report))
        .field("timing", matrix_timing_json(report))
}

/// The deterministic section of a result payload: everything except the
/// per-run `job` id and `timing`.  Two results for the same spec compare
/// byte-equal on this rendering.
pub fn deterministic_result(result: &Json) -> Json {
    match result {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "job" && k != "timing")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Collects matrix progress events as wire-format JSON lines (shared by
/// the in-process shard workers and the remote worker loop).
pub(crate) struct EventCollector {
    pub(crate) job: String,
    pub(crate) events: Vec<Json>,
}

impl ProgressObserver for EventCollector {
    fn round_completed(&mut self, event: &RoundEvent) {
        self.events.push(
            Json::obj()
                .field("event", "round")
                .field("job", self.job.as_str())
                .field("target", event.target_id)
                .field("round", event.round)
                .field("test_cases", event.test_cases)
                .field("escalations", event.escalations),
        );
    }

    fn cell_finished(&mut self, event: &CellEvent) {
        self.events.push(
            Json::obj()
                .field("event", "cell")
                .field("job", self.job.as_str())
                .field("target", event.target_id)
                .field("contract", event.contract.name())
                .field("found", event.found)
                .field("vulnerability", event.vulnerability.map(|v| v.to_string()))
                .field("test_cases", event.test_cases)
                .field("elapsed_ms", event.elapsed.as_secs_f64() * 1000.0),
        );
    }
}

/// FNV-1a, used for shard assignment (stable across restarts).
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn shard_of(job: &str, shards: usize) -> usize {
    (fnv(job.as_bytes()) % shards.max(1) as u64) as usize
}

/// The submission counter baked into a server-minted job id
/// (`j<digest>-<counter hex>`); `None` for hand-named spool files.
fn id_counter(job: &str) -> Option<u64> {
    job.rsplit('-').next().and_then(|suffix| u64::from_str_radix(suffix, 16).ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 8] {
            for job in ["j1-1", "jabc-2", "jfff-3"] {
                let s = shard_of(job, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(job, shards));
            }
        }
    }

    #[test]
    fn deterministic_result_drops_job_and_timing() {
        let result = Json::obj()
            .field("job", "j1")
            .field("cells", Json::Arr(vec![]))
            .field("timing", Json::obj().field("duration_ms", 3.5));
        let det = deterministic_result(&result);
        assert!(det.get("job").is_none());
        assert!(det.get("timing").is_none());
        assert!(det.get("cells").is_some());
    }

    #[test]
    fn submit_rejects_invalid_specs() {
        let core = ServiceCore::new(ServiceConfig::default()).unwrap();
        let err = core.submit(JobSpec::new(1).add_cell(42, "CT-SEQ")).expect_err("rejects");
        assert!(err.contains("unknown target"), "{err}");
    }

    /// No shard threads run here (the core is constructed directly), so
    /// the queue can be claimed by hand and its order observed.
    #[test]
    fn claim_drains_higher_priority_first_then_fifo() {
        let config = ServiceConfig { shards: 1, ..ServiceConfig::default() };
        let core = ServiceCore::new(config).unwrap();
        let spec = |p: i64| JobSpec::new(1).with_priority(p).add_cell(1, "CT-SEQ");
        let low_first = core.submit(spec(0)).unwrap();
        let low_second = core.submit(spec(0)).unwrap();
        let high = core.submit(spec(5)).unwrap();
        let negative = core.submit(spec(-1)).unwrap();
        let drained: Vec<String> = std::iter::from_fn(|| core.claim(None))
            .map(|(job, _, _)| job)
            .collect();
        assert_eq!(drained, vec![high, low_first, low_second, negative]);
        assert!(core.claim(None).is_none(), "queue fully drained");
    }

    /// Two finished jobs that hit the same gadget produce one deduplicated
    /// store entry with an occurrence count of 2 — the indexed-store
    /// contract end to end through the core's completion path.
    #[test]
    fn finished_jobs_index_their_violations_into_the_store() {
        let dir = std::env::temp_dir()
            .join(format!("rvz-core-test-{}-store-index", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServiceConfig {
            shards: 1,
            store: Some(dir.clone()),
            ..ServiceConfig::default()
        };
        let core = ServiceCore::new(config).unwrap();
        let spec = || JobSpec::new(7).with_budget(60).add_cell(5, "CT-SEQ");
        for _ in 0..2 {
            let job = core.submit(spec()).unwrap();
            let (claimed, spec, checkpoint) = core.claim(None).unwrap();
            assert_eq!(claimed, job);
            core.drive(&job, &spec, checkpoint);
            assert_eq!(core.status(&job).unwrap().phase, JobPhase::Done);
        }
        let merged = rvz_store::Store::open(&dir).unwrap().merged().unwrap();
        assert_eq!(merged.len(), 1, "identical gadgets dedup into one entry");
        assert_eq!(merged[0].count, 2);
        assert_eq!(merged[0].jobs.len(), 2);
        assert_eq!(merged[0].entry.target, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_transitions_and_rejections() {
        let config = ServiceConfig { shards: 1, ..ServiceConfig::default() };
        let core = ServiceCore::new(config).unwrap();
        let job = core.submit(JobSpec::new(1).add_cell(1, "CT-SEQ")).unwrap();
        assert!(core.cancel("j-unknown").is_err());
        // Queued cancels immediately and terminally; cancel is idempotent.
        assert_eq!(core.cancel(&job).unwrap(), JobPhase::Cancelled);
        assert_eq!(core.cancel(&job).unwrap(), JobPhase::Cancelled);
        assert_eq!(core.status(&job).unwrap().phase, JobPhase::Cancelled);
        let result = core.result(&job).unwrap().expect("cancelled result payload");
        assert_eq!(result.get("cancelled").and_then(Json::as_bool), Some(true));
        // A cancelled job is never claimed.
        assert!(core.claim(None).is_none());
        // The event log terminates with a cancelled `done` event.
        let events = core.events_from(&job, 0).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("event").and_then(Json::as_str), Some("done"));
        assert_eq!(events[0].get("cancelled").and_then(Json::as_bool), Some(true));
        // A running job cancels cooperatively: the claim holder observes
        // the request at its next wave boundary.
        let running = core.submit(JobSpec::new(2).add_cell(1, "CT-SEQ")).unwrap();
        let (claimed, _, _) = core.claim(None).unwrap();
        assert_eq!(claimed, running);
        assert_eq!(core.cancel(&running).unwrap(), JobPhase::Running);
        assert!(core.cancel_requested(&running));
        core.finish_cancelled(&running, None);
        assert!(!core.cancel_requested(&running), "terminal phase clears the request");
        assert_eq!(core.status(&running).unwrap().phase, JobPhase::Cancelled);
        // Completing after cancellation must not overwrite the terminal state.
        core.complete(&running, Json::obj().field("job", running.as_str()));
        assert_eq!(core.status(&running).unwrap().phase, JobPhase::Cancelled);
    }

    #[test]
    fn pending_cancel_survives_requeue_and_claim_never_redispatches_it() {
        let config = ServiceConfig { shards: 1, ..ServiceConfig::default() };
        let core = ServiceCore::new(config).unwrap();
        // A cancel that lands while the job runs, whose driver then dies
        // (worker host lost): requeue must cancel terminally, not hand the
        // job back to the queue.
        let job = core.submit(JobSpec::new(1).add_cell(1, "CT-SEQ")).unwrap();
        core.claim(Some("w1")).expect("claimed");
        assert_eq!(core.cancel(&job).unwrap(), JobPhase::Running);
        core.requeue_interrupted(&job);
        assert_eq!(core.status(&job).unwrap().phase, JobPhase::Cancelled);
        assert!(core.result(&job).unwrap().is_some(), "terminal result published");

        // Defense in depth: even a Queued job carrying the flag (the
        // cancel raced a requeue) is cancelled at claim time, never
        // dispatched — and does not shadow other queued work.
        let stuck = core.submit(JobSpec::new(2).add_cell(1, "CT-SEQ")).unwrap();
        let next = core.submit(JobSpec::new(3).add_cell(1, "CT-SEQ")).unwrap();
        {
            let mut state = core.state.lock().unwrap();
            state.jobs.get_mut(&stuck).unwrap().cancel_requested = true;
        }
        let (claimed, _, _) = core.claim(None).expect("other work still claimable");
        assert_eq!(claimed, next);
        assert_eq!(core.status(&stuck).unwrap().phase, JobPhase::Cancelled);
    }

    #[test]
    fn restored_pending_cancel_is_cancelled_at_startup() {
        // A server killed between a cancel request and the next wave
        // boundary leaves Running + cancel_requested in the spool; the
        // next server must cancel the job, not resume it (nor strand it
        // queued forever when no worker connects).
        let dir = std::env::temp_dir()
            .join(format!("rvz-core-test-{}-restored-cancel", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spool = Spool::open(&dir).unwrap();
        spool
            .save(&SpoolRecord {
                job: "j-test-9".to_string(),
                spec: JobSpec::new(1).add_cell(1, "CT-SEQ"),
                phase: JobPhase::Running,
                checkpoint: None,
                units: None,
                result: None,
                cancel_requested: true,
            })
            .unwrap();
        let config = ServiceConfig {
            shards: 1,
            spool: Some(dir.clone()),
            ..ServiceConfig::default()
        };
        let core = ServiceCore::new(config).unwrap();
        assert_eq!(core.status("j-test-9").unwrap().phase, JobPhase::Cancelled);
        assert!(core.claim(None).is_none(), "never dispatched");
        // The cancelled phase is durable for the *next* restart too.
        let record = Spool::open(&dir).unwrap().load_all().remove(0);
        assert_eq!(record.phase, JobPhase::Cancelled);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restored_jobs_keep_submission_order_not_directory_order() {
        // Job ids are `j<digest>-<counter hex>`: the spool's lexicographic
        // directory scan orders by digest (and misorders unpadded hex
        // counters across widths), so restore must re-sort by counter to
        // keep the FIFO-within-priority guarantee across restarts.
        let dir = std::env::temp_dir()
            .join(format!("rvz-core-test-{}-restore-order", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spool = Spool::open(&dir).unwrap();
        // Submission order by counter: jzz-9 (9), jmm-a (10), jaa-10 (16)
        // — exactly inverse to the lexicographic file order.
        for job in ["jzz-9", "jmm-a", "jaa-10"] {
            spool
                .save(&SpoolRecord {
                    job: job.to_string(),
                    spec: JobSpec::new(1).add_cell(1, "CT-SEQ"),
                    phase: JobPhase::Queued,
                    checkpoint: None,
                    units: None,
                    result: None,
                    cancel_requested: false,
                })
                .unwrap();
        }
        let config = ServiceConfig {
            shards: 1,
            spool: Some(dir.clone()),
            ..ServiceConfig::default()
        };
        let core = ServiceCore::new(config).unwrap();
        let drained: Vec<String> = std::iter::from_fn(|| core.claim(None))
            .map(|(job, _, _)| job)
            .collect();
        assert_eq!(drained, vec!["jzz-9", "jmm-a", "jaa-10"]);
        // And fresh ids keep allocating above the highest restored counter.
        let fresh = core.submit(JobSpec::new(2).add_cell(1, "CT-SEQ")).unwrap();
        assert!(u64::from_str_radix(fresh.rsplit('-').next().unwrap(), 16).unwrap() > 0x10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_host_mode_pins_every_job_to_shard_zero() {
        // The wire-visible `shard` field is documented as always 0 in
        // fleet mode; the config normalizes shards to 1 there.
        let core = ServiceCore::new(ServiceConfig {
            shards: 8,
            worker_listen: Some("127.0.0.1:0".to_string()),
            ..ServiceConfig::default()
        })
        .unwrap();
        for seed in 0..6u64 {
            let job = core.submit(JobSpec::new(seed).add_cell(1, "CT-SEQ")).unwrap();
            assert_eq!(core.status(&job).unwrap().shard, 0);
        }
    }

    #[test]
    fn published_events_carry_increasing_seq_stamps() {
        let config = ServiceConfig { shards: 1, ..ServiceConfig::default() };
        let core = ServiceCore::new(config).unwrap();
        let a = core.submit(JobSpec::new(1).add_cell(1, "CT-SEQ")).unwrap();
        let b = core.submit(JobSpec::new(2).add_cell(1, "CT-SEQ")).unwrap();
        core.publish(&a, vec![Json::obj().field("event", "round")]);
        core.publish(&b, vec![Json::obj().field("event", "round")]);
        core.publish(&a, vec![Json::obj().field("event", "round")]);
        let seq_of = |job: &str, i: usize| {
            core.events_from(job, 0).unwrap()[i].get("seq").and_then(Json::as_u64).unwrap()
        };
        assert_eq!(seq_of(&a, 0), 0);
        assert_eq!(seq_of(&b, 0), 1);
        assert_eq!(seq_of(&a, 1), 2);
    }

    /// The sub-checkpoint of the group unit `target` belongs to, at wave 0.
    fn sub_checkpoint(spec: &JobSpec, target: u8) -> MatrixCheckpoint {
        let matrix = spec.to_matrix().expect("spec resolves");
        matrix
            .group_matrices()
            .into_iter()
            .find(|m| m.cells().iter().any(|c| c.target.id == target))
            .expect("target has a group")
            .initial_checkpoint()
    }

    #[test]
    fn unit_leases_fence_stale_owners() {
        let core = ServiceCore::new(ServiceConfig {
            worker_listen: Some("127.0.0.1:0".to_string()),
            ..ServiceConfig::default()
        })
        .unwrap();
        let job = core
            .submit(JobSpec::new(7).with_budget(10).add_cell(1, "CT-SEQ").add_cell(5, "CT-SEQ"))
            .unwrap();

        // The job's two target groups lease independently, nothing more.
        let g1 = core.lease_unit("w1").expect("first unit leases");
        let g2 = core.lease_unit("w2").expect("second unit leases");
        assert_eq!((g1.job.as_str(), g2.job.as_str()), (job.as_str(), job.as_str()));
        assert_ne!(g1.target, g2.target);
        assert!(core.lease_unit("w3").is_none(), "a two-group job has exactly two units");

        // A steal re-leases the unit under a fresh token...
        core.release_unit(&job, g1.target, g1.lease);
        let g3 = core.lease_unit("w3").expect("a released unit re-leases");
        assert_eq!(g3.target, g1.target);
        assert_ne!(g3.lease, g1.lease, "every lease mints a fresh fencing token");

        // ...and every frame the deposed owner still sends is revoked.
        let cp = sub_checkpoint(&g3.spec, g3.target);
        assert_eq!(
            core.save_unit_checkpoint(&job, g1.target, g1.lease, cp.clone()),
            UnitDisposition::Revoked
        );
        assert_eq!(
            core.complete_unit(&job, g1.target, g1.lease, cp.clone(), vec![]),
            UnitDisposition::Revoked
        );

        // The current owner's first checkpoint lands; replaying the same
        // wave is ignored (monotonic progress only), not revoked.
        assert_eq!(
            core.save_unit_checkpoint(&job, g3.target, g3.lease, cp.clone()),
            UnitDisposition::Accepted
        );
        assert_eq!(
            core.save_unit_checkpoint(&job, g3.target, g3.lease, cp),
            UnitDisposition::Ignored
        );
    }

    #[test]
    fn orphaned_leases_are_reconciled_back_to_the_queue() {
        let core = ServiceCore::new(ServiceConfig {
            worker_listen: Some("127.0.0.1:0".to_string()),
            ..ServiceConfig::default()
        })
        .unwrap();
        let job = core
            .submit(JobSpec::new(7).with_budget(10).add_cell(1, "CT-SEQ").add_cell(5, "CT-SEQ"))
            .unwrap();
        let g1 = core.lease_unit("w1").expect("first unit leases");
        let g2 = core.lease_unit("w2").expect("second unit leases");

        // w1's connection vanished without the core ever learning: its
        // lease is live in the core but owned by nobody.  The sweep
        // requeues exactly that unit — w2's owned lease is untouched.
        let live = vec![(job.clone(), g2.target, g2.lease)];
        assert_eq!(core.reconcile_leases(&live), vec![(job.clone(), g1.target)]);

        // The orphaned unit is re-leasable under a fresh fencing token.
        let again = core.lease_unit("w3").expect("orphaned unit re-leases");
        assert_eq!(again.target, g1.target);
        assert_ne!(again.lease, g1.lease);

        // With every lease owned, the sweep is a no-op.
        let live =
            vec![(job.clone(), g2.target, g2.lease), (job.clone(), again.target, again.lease)];
        assert!(core.reconcile_leases(&live).is_empty());
    }

    #[test]
    fn backpressure_defers_submits_at_the_watermark() {
        let core = ServiceCore::new(ServiceConfig {
            worker_listen: Some("127.0.0.1:0".to_string()),
            queue_watermark: 2,
            ..ServiceConfig::default()
        })
        .unwrap();
        let spec = |seed: u64| JobSpec::new(seed).add_cell(1, "CT-SEQ").add_cell(5, "CT-SEQ");
        assert!(matches!(
            core.try_submit(JobSpec::new(1).add_cell(42, "CT-SEQ")),
            Err(SubmitRejection::Invalid(_))
        ));

        // First job (two units) fills the queue to the watermark; the next
        // submission defers with a retry hint instead of queueing.
        core.try_submit(spec(1)).expect("an empty queue accepts");
        match core.try_submit(spec(2)) {
            Err(SubmitRejection::Backpressure(bp)) => {
                assert_eq!((bp.queued_units, bp.watermark), (2, 2));
                assert!(bp.retry_after >= Duration::from_millis(250));
            }
            other => panic!("expected backpressure, got {other:?}"),
        }

        // Leasing a unit drains the backlog below the watermark: submits
        // reopen without any explicit reset.
        core.lease_unit("w1").expect("unit leases");
        core.try_submit(spec(3)).expect("draining below the watermark reopens submits");
    }
}
