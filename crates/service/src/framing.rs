//! Shared non-blocking line-framing primitives for the poll reactors
//! (the client front-end in [`crate::server`] and the worker-port
//! coordinator in [`crate::coordinator`]).
//!
//! Both reactors speak one JSON document per `\n`-terminated line over
//! non-blocking sockets; the subtle edge cases (orderly close on `Ok(0)`,
//! `WouldBlock` as "drained", hard errors as close, partial writes) live
//! here once.
//!
//! The worker port additionally interleaves **binary frames**
//! ([`rvz_bench::binfmt`]) on the same socket: a JSON line always opens
//! with `{`, a binary frame with the `RVZB` magic, so [`next_frame`] can
//! pop whichever is buffered next.  Which peers speak binary is
//! negotiated per connection (a worker advertises `"binary": true` in its
//! `register` frame; the coordinator answers binary grants, and the
//! worker replies to a binary grant with binary wave transfers) — old
//! JSON-only peers keep working unchanged.

use rvz_bench::binfmt;
use rvz_bench::json::Json;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Drain everything currently readable into `inbuf`.  Returns
/// `(progress, closed)`: whether any bytes arrived, and whether the
/// connection ended (EOF or a hard error).
pub(crate) fn read_available(stream: &mut TcpStream, inbuf: &mut Vec<u8>) -> (bool, bool) {
    let mut progress = false;
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return (progress, true),
            Ok(n) => {
                inbuf.extend_from_slice(&buf[..n]);
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return (progress, false),
            Err(_) => return (progress, true),
        }
    }
}

/// Pop the next complete, non-blank line from `inbuf` (without its
/// terminator), if one is buffered.
pub(crate) fn next_line(inbuf: &mut Vec<u8>) -> Option<String> {
    while let Some(pos) = inbuf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = inbuf.drain(..=pos).collect();
        let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
        if !line.trim().is_empty() {
            return Some(line);
        }
    }
    None
}

/// One frame popped off a mixed-format connection.
pub(crate) enum WireFrame {
    /// A complete JSON line (without its terminator).
    Json(String),
    /// A complete binary frame (header + body), ready for
    /// [`binfmt::parse_frame`].
    Binary(Vec<u8>),
}

/// Pop the next complete frame — JSON line or binary frame — from a
/// mixed-format buffer.  `Ok(None)` means "incomplete, keep reading";
/// `Err` means the buffer head is corrupt (bad magic, unsupported
/// version, oversized length) and the caller should drop the connection
/// rather than wait forever.
pub(crate) fn next_frame(inbuf: &mut Vec<u8>) -> Result<Option<WireFrame>, String> {
    loop {
        // Skip inter-frame whitespace (blank lines between JSON frames).
        let skip = inbuf.iter().take_while(|b| b" \t\r\n".contains(b)).count();
        inbuf.drain(..skip);
        let Some(&first) = inbuf.first() else { return Ok(None) };
        if first == binfmt::MAGIC[0] {
            return match binfmt::frame_len(inbuf)? {
                None => Ok(None),
                Some(total) if inbuf.len() < total => Ok(None),
                Some(total) => Ok(Some(WireFrame::Binary(inbuf.drain(..total).collect()))),
            };
        }
        let Some(pos) = inbuf.iter().position(|&b| b == b'\n') else { return Ok(None) };
        let line: Vec<u8> = inbuf.drain(..=pos).collect();
        let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
        if !line.trim().is_empty() {
            return Ok(Some(WireFrame::Json(line)));
        }
    }
}

/// Append one complete binary frame to `outbuf` (no terminator — binary
/// frames are self-delimiting).
pub(crate) fn queue_binary(outbuf: &mut Vec<u8>, frame: &[u8]) {
    outbuf.extend_from_slice(frame);
}

/// The `op` discriminator of a protocol frame, if it carries one.
pub(crate) fn op(frame: &Json) -> Option<&str> {
    frame.get("op").and_then(Json::as_str)
}

/// Append one rendered frame (plus terminator) to `outbuf`.
pub(crate) fn queue_line(outbuf: &mut Vec<u8>, doc: &Json) {
    outbuf.extend_from_slice(doc.render().as_bytes());
    outbuf.push(b'\n');
}

/// Write as much of `outbuf` as the socket accepts.  Returns
/// `(progress, closed)` like [`read_available`].
pub(crate) fn flush(stream: &mut TcpStream, outbuf: &mut Vec<u8>) -> (bool, bool) {
    let mut progress = false;
    while !outbuf.is_empty() {
        match stream.write(outbuf) {
            Ok(0) => return (progress, true),
            Ok(n) => {
                outbuf.drain(..n);
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return (progress, false),
            Err(_) => return (progress, true),
        }
    }
    (progress, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_skips_blanks_and_preserves_order() {
        let mut buf = b"\n  \n{\"a\":1}\n{\"b\":2}\npartial".to_vec();
        assert_eq!(next_line(&mut buf).as_deref(), Some("{\"a\":1}"));
        assert_eq!(next_line(&mut buf).as_deref(), Some("{\"b\":2}"));
        assert_eq!(next_line(&mut buf), None, "incomplete line stays buffered");
        assert_eq!(buf, b"partial");
    }

    #[test]
    fn next_frame_interleaves_json_lines_and_binary_frames() {
        let bin = binfmt::FrameBuilder::new(binfmt::KIND_GRANT)
            .str_section(binfmt::TAG_JOB, "j1")
            .build();
        let mut buf = b"{\"a\":1}\n\n".to_vec();
        buf.extend_from_slice(&bin);
        buf.extend_from_slice(b"{\"b\":2}\n");
        buf.extend_from_slice(&bin[..5]); // a partial binary frame stays buffered
        match next_frame(&mut buf).unwrap() {
            Some(WireFrame::Json(line)) => assert_eq!(line, "{\"a\":1}"),
            _ => panic!("expected a JSON line"),
        }
        match next_frame(&mut buf).unwrap() {
            Some(WireFrame::Binary(frame)) => assert_eq!(frame, bin),
            _ => panic!("expected a binary frame"),
        }
        match next_frame(&mut buf).unwrap() {
            Some(WireFrame::Json(line)) => assert_eq!(line, "{\"b\":2}"),
            _ => panic!("expected a JSON line"),
        }
        assert!(next_frame(&mut buf).unwrap().is_none(), "partial frame stays buffered");
        assert_eq!(buf, &bin[..5]);
        // Corrupt magic is an error (drop the connection), not a stall.
        let mut garbage = b"RVXXgarbage".to_vec();
        assert!(next_frame(&mut garbage).is_err());
    }

    #[test]
    fn queue_line_terminates_frames() {
        let mut out = Vec::new();
        queue_line(&mut out, &Json::obj().field("ok", true));
        queue_line(&mut out, &Json::obj().field("ok", false));
        assert_eq!(out, b"{\"ok\":true}\n{\"ok\":false}\n");
    }
}
