//! Regenerates Table 2: description of the experimental setups.
//!
//! The rows come from the shared [`CampaignMatrix`] definition — one row
//! per cell group of the full zoo matrix, in group order — so this table
//! always describes exactly the setups the campaign bins run, including
//! the predictor-zoo targets (9-13) that extend the paper's Table 2.

use revizor::orchestrator::CampaignMatrix;
use rvz_bench::row;

fn main() {
    println!("Table 2: Description of the experimental setups (1-8 paper, 9-13 predictor zoo)");
    println!();
    let widths = [10, 28, 12, 22, 14, 20, 22];
    println!(
        "{}",
        row(
            &[
                "Target".into(),
                "CPU".into(),
                "ISA subset".into(),
                "Executor mode".into(),
                "#instructions".into(),
                "Predictors".into(),
                "Scenario".into(),
            ],
            &widths
        )
    );
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 3 * widths.len()));
    let matrix = CampaignMatrix::table3_zoo(0);
    let mut seen = std::collections::BTreeSet::new();
    for cell in matrix.cells() {
        let t = &cell.target;
        if !seen.insert(t.id) {
            continue;
        }
        let predictors = match t.cpu_config.predictors.label() {
            label if label.is_empty() => "default".to_string(),
            label => label,
        };
        println!(
            "{}",
            row(
                &[
                    format!("Target {}", t.id),
                    t.cpu_config.name.clone(),
                    t.isa.name(),
                    format!("{}", t.mode),
                    format!("{}", t.isa.instruction_count()),
                    predictors,
                    t.scenario.as_ref().map(|s| s.label()).unwrap_or_else(|| "-".into()),
                ],
                &widths
            )
        );
    }
    println!();
    println!(
        "(#instructions is the number of unique catalog entries in this reproduction's ISA; \
         the paper reports 325-719 unique x86 instructions for the corresponding subsets. \
         'default' predictors are the bimodal direction predictor, last-target BTB and \
         16-entry stack RSB; scenario-pinned targets fuzz a fixed gadget family instead \
         of random programs.)"
    );
}
