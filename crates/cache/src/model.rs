//! LRU set-associative cache model.

use serde::{Deserialize, Serialize};

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_size: u64,
}

impl CacheConfig {
    /// The 32 KiB, 8-way L1D of the Skylake / Coffee Lake parts tested in
    /// the paper: 64 sets × 8 ways × 64 B.
    pub fn l1d() -> CacheConfig {
        CacheConfig { sets: 64, ways: 8, line_size: 64 }
    }

    /// A tiny cache useful for eviction-heavy unit tests.
    pub fn tiny(sets: usize, ways: usize) -> CacheConfig {
        CacheConfig { sets, ways, line_size: 64 }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        (self.sets * self.ways) as u64 * self.line_size
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::l1d()
    }
}

/// One cache line: tag plus LRU age (smaller = more recently used).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Line {
    tag: u64,
    age: u32,
}

/// An LRU set-associative cache.
///
/// Addresses are mapped to sets by `(addr / line_size) % sets`; the tag is
/// the full line address, so distinct addresses never alias incorrectly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Create an empty cache.
    pub fn new(config: CacheConfig) -> Cache {
        Cache { config, sets: vec![Vec::new(); config.sets], accesses: 0, misses: 0 }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Line-granular tag of an address.
    #[inline]
    pub fn tag_of(&self, addr: u64) -> u64 {
        addr / self.config.line_size
    }

    /// Set index of an address.
    #[inline]
    pub fn set_of(&self, addr: u64) -> usize {
        (self.tag_of(addr) as usize) % self.config.sets
    }

    /// Access (load or store) the line containing `addr`, filling it on a
    /// miss and updating LRU state.  Returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let tag = self.tag_of(addr);
        let set_idx = self.set_of(addr);
        let ways = self.config.ways;
        let set = &mut self.sets[set_idx];
        // Age everything, then handle hit/miss.
        for line in set.iter_mut() {
            line.age = line.age.saturating_add(1);
        }
        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.age = 0;
            return true;
        }
        self.misses += 1;
        if set.len() >= ways {
            // Evict the oldest line.
            let victim = set
                .iter()
                .enumerate()
                .max_by_key(|(_, l)| l.age)
                .map(|(i, _)| i)
                .expect("non-empty set");
            set.remove(victim);
        }
        set.push(Line { tag, age: 0 });
        false
    }

    /// Access without filling: returns whether the line is present and
    /// refreshes its LRU age if it is (models a probe load that hits).
    pub fn probe_access(&mut self, addr: u64) -> bool {
        let tag = self.tag_of(addr);
        let set_idx = self.set_of(addr);
        if let Some(line) = self.sets[set_idx].iter_mut().find(|l| l.tag == tag) {
            line.age = 0;
            true
        } else {
            false
        }
    }

    /// Bulk-fill one set with the given lines, exactly as if the `tags`
    /// (distinct) had been [`access`](Cache::access)ed in order: hits
    /// refresh in place, misses evict the LRU victim, survivors age, and
    /// the access/miss counters advance — the resulting set (line order
    /// included) is bit-identical to the sequential walk's.
    ///
    /// This is the executor's priming fast path: a Prime+Probe prepare
    /// walks `sets × ways` attacker lines, and replaying that walk through
    /// the generic access path costs `O(ways²)` aging *writes* per set;
    /// here the ages are reconstructed once at the end.
    pub fn prime_set(&mut self, set: usize, tags: &[u64]) {
        if tags.is_empty() {
            return;
        }
        self.accesses += tags.len() as u64;
        let ways = self.config.ways;
        let lines = &mut self.sets[set];
        let walk_len = tags.len() as u32;

        // Steady-state fast path: the set already holds exactly the walk's
        // lines in walk order (true for every set the victim left alone
        // since the previous prime — misses append in walk order and hits
        // refresh in place, so a full prime always leaves this layout).
        // Every access hits; only the ages move.
        if lines.len() == tags.len() && lines.iter().map(|l| l.tag).eq(tags.iter().copied()) {
            for (i, line) in lines.iter_mut().enumerate() {
                line.age = walk_len - 1 - i as u32;
            }
            return;
        }

        // Replay the walk on a scratch list mirroring the real line order,
        // without the per-access aging writes.  `Some(i)` marks a line
        // (re-)accessed at walk index `i` — "fresh".  At any point a fresh
        // line is strictly younger than every stale occupant, so the LRU
        // victim of a miss is the stale line `access` would pick (greatest
        // age, last position on ties; stale lines age uniformly and never
        // reorder).  Only once no stale occupant is left (more tags than
        // ways) does the oldest fresh line — the smallest walk index — get
        // evicted.
        let mut scratch: Vec<(u64, u32, Option<u32>)> =
            lines.iter().map(|l| (l.tag, l.age, None)).collect();
        for (walk_idx, &tag) in tags.iter().enumerate() {
            if let Some(entry) = scratch.iter_mut().find(|e| e.0 == tag) {
                entry.2 = Some(walk_idx as u32);
                continue;
            }
            self.misses += 1;
            if scratch.len() >= ways {
                let victim = scratch
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.2.is_none())
                    .max_by_key(|&(i, &(_, age, _))| (age, i))
                    .map(|(i, _)| i)
                    .or_else(|| {
                        // No stale occupant left (more tags than ways):
                        // the oldest fresh line is the LRU victim.
                        scratch
                            .iter()
                            .enumerate()
                            .min_by_key(|&(_, &(_, _, idx))| idx)
                            .map(|(i, _)| i)
                    });
                if let Some(v) = victim {
                    scratch.remove(v);
                }
            }
            scratch.push((tag, 0, Some(walk_idx as u32)));
        }

        lines.clear();
        lines.extend(scratch.into_iter().map(|(tag, age, fresh)| match fresh {
            // Fresh lines: accessed at walk index `i`, then aged once per
            // later access.
            Some(i) => Line { tag, age: walk_len - 1 - i },
            // Stale survivors (partial fill): aged once per access.
            None => Line { tag, age: age.saturating_add(walk_len) },
        }));
    }

    /// Probe one set for the given lines: returns how many of the `tags`
    /// (distinct) are resident, refreshing the LRU age of each hit exactly
    /// like [`probe_access`](Cache::probe_access) — but in a single pass
    /// over the set instead of one lookup per tag.
    pub fn probe_set(&mut self, set: usize, tags: &[u64]) -> usize {
        let mut hits = 0;
        for line in self.sets[set].iter_mut() {
            if tags.contains(&line.tag) {
                line.age = 0;
                hits += 1;
            }
        }
        hits
    }

    /// Is the line containing `addr` currently cached?
    pub fn is_cached(&self, addr: u64) -> bool {
        let tag = self.tag_of(addr);
        self.sets[self.set_of(addr)].iter().any(|l| l.tag == tag)
    }

    /// Flush the line containing `addr` (CLFLUSH).
    pub fn flush(&mut self, addr: u64) {
        let tag = self.tag_of(addr);
        let set_idx = self.set_of(addr);
        self.sets[set_idx].retain(|l| l.tag != tag);
    }

    /// Flush the entire cache.
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of valid lines in a set.
    pub fn set_occupancy(&self, set: usize) -> usize {
        self.sets[set].len()
    }

    /// Tags currently resident in a set.
    pub fn set_tags(&self, set: usize) -> Vec<u64> {
        self.sets[set].iter().map(|l| l.tag).collect()
    }

    /// Total accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses observed (the quantity the paper reads from the L1D
    /// miss performance counter during probing, §5.3).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Reset the hit/miss counters without touching cache contents.
    pub fn reset_counters(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_capacity() {
        assert_eq!(CacheConfig::l1d().capacity(), 32 * 1024);
        assert_eq!(CacheConfig::tiny(2, 2).capacity(), 256);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(CacheConfig::l1d());
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13f), "same line");
        assert!(!c.access(0x140), "next line misses");
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn set_mapping() {
        let c = Cache::new(CacheConfig::l1d());
        assert_eq!(c.set_of(0), 0);
        assert_eq!(c.set_of(64), 1);
        assert_eq!(c.set_of(64 * 64), 0);
        assert_eq!(c.set_of(63), 0);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = Cache::new(CacheConfig::tiny(1, 2));
        c.access(0); // A
        c.access(64); // B  (set 0 again since only 1 set)
        c.access(0); // A refreshed
        c.access(128); // C evicts B (least recently used)
        assert!(c.is_cached(0));
        assert!(!c.is_cached(64));
        assert!(c.is_cached(128));
    }

    #[test]
    fn associativity_respected() {
        let cfg = CacheConfig::tiny(4, 2);
        let mut c = Cache::new(cfg);
        // Three lines mapping to set 0: strides of sets*line_size.
        let stride = cfg.sets as u64 * cfg.line_size;
        c.access(0);
        c.access(stride);
        c.access(2 * stride);
        assert_eq!(c.set_occupancy(0), 2);
        assert!(!c.is_cached(0), "oldest evicted");
    }

    #[test]
    fn flush_removes_line() {
        let mut c = Cache::new(CacheConfig::l1d());
        c.access(0x1000);
        assert!(c.is_cached(0x1000));
        c.flush(0x1000);
        assert!(!c.is_cached(0x1000));
        c.access(0x2000);
        c.flush_all();
        assert!(!c.is_cached(0x2000));
    }

    #[test]
    fn probe_access_does_not_fill() {
        let mut c = Cache::new(CacheConfig::l1d());
        assert!(!c.probe_access(0x40));
        assert!(!c.is_cached(0x40));
        c.access(0x40);
        assert!(c.probe_access(0x40));
    }

    #[test]
    fn counters_reset() {
        let mut c = Cache::new(CacheConfig::l1d());
        c.access(0);
        c.reset_counters();
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.misses(), 0);
        assert!(c.is_cached(0), "contents preserved");
    }

    #[test]
    fn prime_set_matches_sequential_accesses() {
        // The bulk fill must leave the set bit-identical (tags and LRU ages)
        // to accessing the same lines in order through the generic path.
        let cfg = CacheConfig::tiny(2, 4);
        let stride = cfg.sets as u64 * cfg.line_size;
        let attacker: Vec<u64> = (0..4u64).map(|w| (0x8000 + w * stride) / cfg.line_size).collect();

        let mut slow = Cache::new(cfg);
        let mut fast = Cache::new(cfg);
        // Pre-pollute both with victim lines in set 0.
        for c in [&mut slow, &mut fast] {
            c.access(0);
            c.access(2 * stride);
        }
        for &tag in &attacker {
            slow.access(tag * cfg.line_size);
        }
        fast.prime_set(0, &attacker);
        assert_eq!(slow.sets[0], fast.sets[0]);
        assert_eq!(slow.accesses(), fast.accesses());
        assert_eq!(slow.misses(), fast.misses());

        // Warm re-prime after a victim eviction: the victim displaces the
        // oldest attacker line, and during the re-prime walk a still-resident
        // attacker line becomes the LRU victim before its own access — the
        // corner where membership-at-entry accounting would undercount
        // misses.  State and counters must still match the sequential walk.
        for c in [&mut slow, &mut fast] {
            c.access(4 * stride);
        }
        for &tag in &attacker {
            slow.access(tag * cfg.line_size);
        }
        fast.prime_set(0, &attacker);
        assert_eq!(slow.sets[0], fast.sets[0]);
        assert_eq!(slow.accesses(), fast.accesses());
        assert_eq!(slow.misses(), fast.misses());
    }

    #[test]
    fn partial_prime_matches_sequential_and_keeps_occupants() {
        // Fewer tags than ways: room remains, so a resident victim line
        // survives the walk (aged) instead of being evicted.
        let cfg = CacheConfig::tiny(1, 4);
        let mut slow = Cache::new(cfg);
        let mut fast = Cache::new(cfg);
        for c in [&mut slow, &mut fast] {
            c.access(0);
        }
        let tags = [100u64, 200];
        for &t in &tags {
            slow.access(t * cfg.line_size);
        }
        fast.prime_set(0, &tags);
        assert_eq!(slow.sets[0], fast.sets[0]);
        assert_eq!(slow.misses(), fast.misses());
        assert!(fast.is_cached(0), "occupant survives a partial prime");
    }

    #[test]
    fn warm_prime_with_hits_preserves_line_order() {
        // Hits refresh lines in place: when the resident order differs from
        // the walk order, the final line order (which decides future LRU
        // tie-breaks) must match the sequential walk, not the tag list.
        let cfg = CacheConfig::tiny(1, 2);
        let mut slow = Cache::new(cfg);
        let mut fast = Cache::new(cfg);
        for c in [&mut slow, &mut fast] {
            c.access(11 * cfg.line_size);
            c.access(10 * cfg.line_size);
        }
        let tags = [10u64, 11];
        for &t in &tags {
            slow.access(t * cfg.line_size);
        }
        fast.prime_set(0, &tags);
        assert_eq!(slow.sets[0], fast.sets[0]);
        assert_eq!(slow.accesses(), fast.accesses());
        assert_eq!(slow.misses(), fast.misses());
    }

    #[test]
    fn prime_set_is_idempotent_and_counts_hits() {
        let cfg = CacheConfig::tiny(1, 2);
        let mut c = Cache::new(cfg);
        c.prime_set(0, &[10, 11]);
        assert_eq!(c.misses(), 2);
        c.prime_set(0, &[10, 11]);
        assert_eq!(c.misses(), 2, "resident lines hit on re-prime");
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.set_tags(0), vec![10, 11]);
        c.prime_set(0, &[]);
        assert_eq!(c.set_tags(0), vec![10, 11], "empty prime is a no-op");
    }

    #[test]
    fn probe_set_counts_and_refreshes_like_probe_access() {
        let cfg = CacheConfig::tiny(1, 3);
        let mut a = Cache::new(cfg);
        let mut b = Cache::new(cfg);
        for c in [&mut a, &mut b] {
            c.prime_set(0, &[1, 2, 3]);
            c.access(9 * 64); // victim evicts tag 1 (oldest)
        }
        let tags = [1u64, 2, 3];
        let hits_slow =
            tags.iter().filter(|&&t| a.probe_access(t * cfg.line_size)).count();
        let hits_fast = b.probe_set(0, &tags);
        assert_eq!(hits_slow, hits_fast);
        assert_eq!(hits_fast, 2);
        assert_eq!(a.sets[0], b.sets[0], "hit ages refreshed identically");
    }

    #[test]
    fn set_tags_reported() {
        let mut c = Cache::new(CacheConfig::l1d());
        c.access(0x0);
        c.access(0x1000);
        let tags = c.set_tags(0);
        assert!(tags.contains(&0));
        assert!(tags.contains(&(0x1000 / 64)));
    }
}
