//! Hardware traces.

use rvz_cache::SetVector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A hardware trace: the side-channel observation of one (test case, input)
/// pair, merged over repeated measurements.
///
/// In the L1D Prime+Probe mode this is the bit vector of cache sets touched
/// by the test case (§5.3); the paper prints it as a 64-character bit
/// string, which [`fmt::Display`] reproduces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HTrace {
    sets: SetVector,
    /// Number of raw samples merged into this trace.
    samples: u32,
}

impl HTrace {
    /// An empty trace.
    pub fn empty() -> HTrace {
        HTrace::default()
    }

    /// Build a trace from a single measurement.
    pub fn from_sets(sets: SetVector) -> HTrace {
        HTrace { sets, samples: 1 }
    }

    /// Reassemble a trace from its observed sets and merged-sample count
    /// (the inverse of [`HTrace::sets`] + [`HTrace::samples`], used by
    /// report deserialization).
    pub fn from_parts(sets: SetVector, samples: u32) -> HTrace {
        HTrace { sets, samples }
    }

    /// The observed cache sets.
    pub fn sets(&self) -> SetVector {
        self.sets
    }

    /// Number of merged samples.
    pub fn samples(&self) -> u32 {
        self.samples
    }

    /// Merge another measurement by union (§5.3: "we then take the union of
    /// all traces collected from the executions of a test case with the
    /// same input").
    pub fn merge(&mut self, other: HTrace) {
        self.sets = self.sets.union(other.sets);
        self.samples += other.samples;
    }

    /// The analyzer's equivalence: traces are equivalent when each is a
    /// subset of the other *or vice versa* — i.e. one trace's observations
    /// all appear in the other (§5.5).
    pub fn equivalent(&self, other: &HTrace) -> bool {
        self.sets.is_subset_of(other.sets) || other.sets.is_subset_of(self.sets)
    }

    /// Sets present in `self` but not in `other` (used in violation reports).
    pub fn difference(&self, other: &HTrace) -> SetVector {
        self.sets.difference(other.sets)
    }

    /// Number of observed sets.
    pub fn count(&self) -> u32 {
        self.sets.count()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

impl fmt::Display for HTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sets)
    }
}

impl From<SetVector> for HTrace {
    fn from(sets: SetVector) -> HTrace {
        HTrace::from_sets(sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_union() {
        let mut a = HTrace::from_sets(SetVector::from_sets([0, 4]));
        let b = HTrace::from_sets(SetVector::from_sets([5]));
        a.merge(b);
        assert_eq!(a.sets(), SetVector::from_sets([0, 4, 5]));
        assert_eq!(a.samples(), 2);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn equivalence_is_subset_based() {
        // Example from §5.3/§5.5: a trace with and without a mispredicted
        // access are considered equivalent because one is a subset.
        let with_spec = HTrace::from_sets(SetVector::from_sets([4, 6, 13, 31]));
        let without_spec = HTrace::from_sets(SetVector::from_sets([4, 13, 31]));
        assert!(with_spec.equivalent(&without_spec));
        assert!(without_spec.equivalent(&with_spec));
        // Secret-dependent difference: same count, different values.
        let a = HTrace::from_sets(SetVector::from_sets([4, 8]));
        let b = HTrace::from_sets(SetVector::from_sets([4, 9]));
        assert!(!a.equivalent(&b));
    }

    #[test]
    fn difference_reports_extra_sets() {
        let a = HTrace::from_sets(SetVector::from_sets([1, 2, 3]));
        let b = HTrace::from_sets(SetVector::from_sets([2]));
        assert_eq!(a.difference(&b), SetVector::from_sets([1, 3]));
    }

    #[test]
    fn display_is_bit_string() {
        let t = HTrace::from_sets(SetVector::from_sets([0, 4, 5]));
        let s = format!("{t}");
        assert!(s.starts_with("100011"));
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn empty_trace() {
        let t = HTrace::empty();
        assert!(t.is_empty());
        assert_eq!(t.samples(), 0);
        assert!(t.equivalent(&HTrace::from_sets(SetVector::from_sets([7]))));
    }
}
