//! Architectural state: registers, flags and sandbox memory.

use crate::fault::Fault;
use rvz_isa::reg::FlagSet;
use rvz_isa::{Flag, Input, Reg, SandboxLayout, Width};
use serde::{Deserialize, Serialize};

/// The complete architectural state of a test-case execution.
///
/// Cloning an `ArchState` is the checkpoint mechanism used by the contract
/// model to explore speculative paths and roll back (§5.4, "the emulator
/// takes a checkpoint ... then rolls back").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchState {
    regs: [u64; 16],
    flags: FlagSet,
    mem: Vec<u8>,
    sandbox: SandboxLayout,
}

impl ArchState {
    /// Build the initial state for an input: copies registers and memory,
    /// then forces the reserved registers (`R14` = sandbox base, `RSP` =
    /// top of the in-sandbox stack).
    pub fn from_input(sandbox: SandboxLayout, input: &Input) -> ArchState {
        let mut mem = input.mem.clone();
        mem.resize(sandbox.size() as usize, 0);
        let mut s = ArchState { regs: input.regs, flags: input.flags, mem, sandbox };
        s.set_reg(Reg::R14, sandbox.base);
        s.set_reg(Reg::Rsp, sandbox.initial_rsp());
        s
    }

    /// The sandbox layout this state was created with.
    pub fn sandbox(&self) -> SandboxLayout {
        self.sandbox
    }

    /// Read a full 64-bit register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Write a full 64-bit register.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Read a register at a given width (zero-extended).
    #[inline]
    pub fn reg_w(&self, r: Reg, w: Width) -> u64 {
        w.truncate(self.reg(r))
    }

    /// Write a register at a given width using x86 merge semantics:
    /// 32-bit writes zero the upper half, 8/16-bit writes merge.
    pub fn set_reg_w(&mut self, r: Reg, w: Width, v: u64) {
        let v = w.truncate(v);
        let old = self.reg(r);
        let new = match w {
            Width::Qword => v,
            Width::Dword => v,
            Width::Word | Width::Byte => (old & !w.mask()) | v,
        };
        self.set_reg(r, new);
    }

    /// Read a flag.
    #[inline]
    pub fn flag(&self, f: Flag) -> bool {
        self.flags.get(f)
    }

    /// Write a flag.
    #[inline]
    pub fn set_flag(&mut self, f: Flag, v: bool) {
        self.flags.set(f, v);
    }

    /// The whole flag set.
    #[inline]
    pub fn flags(&self) -> FlagSet {
        self.flags
    }

    /// Snapshot of the whole register file (used by delta checkpoints).
    #[inline]
    pub(crate) fn regs_snapshot(&self) -> [u64; 16] {
        self.regs
    }

    /// Restore the whole register file from a snapshot.
    #[inline]
    pub(crate) fn restore_regs(&mut self, regs: [u64; 16]) {
        self.regs = regs;
    }

    /// Replace the whole flag set.
    #[inline]
    pub fn set_flags(&mut self, flags: FlagSet) {
        self.flags = flags;
    }

    /// Read `width` bytes at virtual address `addr` (little-endian).
    ///
    /// # Errors
    /// Returns [`Fault::OutOfSandbox`] if the access leaves the sandbox.
    pub fn read_mem(&self, addr: u64, width: Width) -> Result<u64, Fault> {
        let len = width.bytes();
        if !self.sandbox.contains_range(addr, len) {
            return Err(Fault::OutOfSandbox { addr, len });
        }
        let off = self.sandbox.offset_of(addr) as usize;
        let mut v: u64 = 0;
        for i in 0..len as usize {
            v |= (self.mem[off + i] as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Write `width` bytes at virtual address `addr` (little-endian).
    ///
    /// # Errors
    /// Returns [`Fault::OutOfSandbox`] if the access leaves the sandbox.
    pub fn write_mem(&mut self, addr: u64, width: Width, value: u64) -> Result<(), Fault> {
        let len = width.bytes();
        if !self.sandbox.contains_range(addr, len) {
            return Err(Fault::OutOfSandbox { addr, len });
        }
        let off = self.sandbox.offset_of(addr) as usize;
        let value = width.truncate(value);
        for i in 0..len as usize {
            self.mem[off + i] = ((value >> (8 * i)) & 0xff) as u8;
        }
        Ok(())
    }

    /// Raw view of the sandbox memory.
    pub fn mem(&self) -> &[u8] {
        &self.mem
    }

    /// Mutable raw view of the sandbox memory.
    pub fn mem_mut(&mut self) -> &mut [u8] {
        &mut self.mem
    }

    /// A compact digest of the architectural state, useful for equivalence
    /// assertions in tests (e.g. "nested speculation rolls back completely").
    pub fn digest(&self) -> u64 {
        // FNV-1a-style mixing over 64-bit words instead of bytes, with the
        // sandbox memory split across four independent lanes.  The digest is
        // only ever compared against digests computed by the same build, so
        // the exact value is free to change; what matters is that any
        // register, flag or memory difference flips it, and that computing
        // it is cheap enough to run once per CPU-under-test execution
        // (byte-serial FNV over the whole sandbox was a multi-microsecond
        // dependency chain that dominated short runs).
        const PRIME: u64 = 0x1000_0000_01b3;
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        let mut h = OFFSET;
        for r in self.regs {
            h = (h ^ r).wrapping_mul(PRIME);
        }
        h = (h ^ self.flags.bits() as u64).wrapping_mul(PRIME);
        let mut lanes = [OFFSET ^ 1, OFFSET ^ 2, OFFSET ^ 3, OFFSET ^ 4];
        let mut chunks = self.mem.chunks_exact(32);
        for c in &mut chunks {
            for (i, lane) in lanes.iter_mut().enumerate() {
                let w = u64::from_le_bytes(c[i * 8..i * 8 + 8].try_into().expect("8-byte word"));
                *lane = (*lane ^ w).wrapping_mul(PRIME);
            }
        }
        for &b in chunks.remainder() {
            lanes[0] = (lanes[0] ^ b as u64).wrapping_mul(PRIME);
        }
        for lane in lanes {
            h = (h ^ lane).wrapping_mul(PRIME);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ArchState {
        let sb = SandboxLayout::one_page();
        ArchState::from_input(sb, &Input::zeroed(sb))
    }

    #[test]
    fn reserved_registers_initialized() {
        let sb = SandboxLayout::one_page();
        let mut input = Input::zeroed(sb);
        input.set_reg(Reg::R14, 123);
        input.set_reg(Reg::Rsp, 456);
        let s = ArchState::from_input(sb, &input);
        assert_eq!(s.reg(Reg::R14), sb.base);
        assert_eq!(s.reg(Reg::Rsp), sb.initial_rsp());
    }

    #[test]
    fn register_width_semantics() {
        let mut s = state();
        s.set_reg(Reg::Rax, 0xffff_ffff_ffff_ffff);
        s.set_reg_w(Reg::Rax, Width::Dword, 0x1234_5678);
        assert_eq!(s.reg(Reg::Rax), 0x1234_5678, "32-bit write zero-extends");
        s.set_reg(Reg::Rbx, 0xffff_ffff_ffff_ffff);
        s.set_reg_w(Reg::Rbx, Width::Byte, 0xab);
        assert_eq!(s.reg(Reg::Rbx), 0xffff_ffff_ffff_ffab, "8-bit write merges");
        s.set_reg_w(Reg::Rcx, Width::Word, 0x1_0000 + 5);
        assert_eq!(s.reg_w(Reg::Rcx, Width::Word), 5, "write truncates to width");
    }

    #[test]
    fn memory_roundtrip_and_bounds() {
        let mut s = state();
        let base = s.sandbox().base;
        s.write_mem(base + 64, Width::Qword, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(s.read_mem(base + 64, Width::Qword).unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(s.read_mem(base + 64, Width::Byte).unwrap(), 0x08, "little endian");
        assert!(s.read_mem(base - 8, Width::Qword).is_err());
        let end = base + s.sandbox().size();
        assert!(s.read_mem(end - 4, Width::Qword).is_err(), "straddling the end faults");
    }

    #[test]
    fn flags_roundtrip() {
        let mut s = state();
        assert!(!s.flag(Flag::Zf));
        s.set_flag(Flag::Zf, true);
        assert!(s.flag(Flag::Zf));
        let f = s.flags();
        s.set_flag(Flag::Zf, false);
        s.set_flags(f);
        assert!(s.flag(Flag::Zf));
    }

    #[test]
    fn digest_changes_with_state() {
        let mut s = state();
        let d0 = s.digest();
        s.set_reg(Reg::Rax, 1);
        let d1 = s.digest();
        assert_ne!(d0, d1);
        let base = s.sandbox().base;
        s.write_mem(base, Width::Byte, 7).unwrap();
        assert_ne!(d1, s.digest());
    }

    #[test]
    fn checkpoint_by_clone_restores_exactly() {
        let mut s = state();
        let cp = s.clone();
        s.set_reg(Reg::Rdx, 9);
        s.write_mem(s.sandbox().base + 8, Width::Qword, 11).unwrap();
        assert_ne!(s.digest(), cp.digest());
        let restored = cp.clone();
        assert_eq!(restored.digest(), cp.digest());
    }
}
