//! Speculation contracts: observation and execution clauses.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The observation clause: what an instruction may expose (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObservationClause {
    /// `MEM`: addresses of data loads and stores (a data-cache attacker).
    Mem,
    /// `CT`: `MEM` plus the program counter (data + instruction cache
    /// attacker; the constant-time threat model).
    Ct,
    /// `ARCH`: `CT` plus the values loaded from memory (a same-address-space
    /// attacker, as assumed by STT).
    Arch,
}

impl ObservationClause {
    /// Does the clause expose the program counter?
    pub fn exposes_pc(self) -> bool {
        matches!(self, ObservationClause::Ct | ObservationClause::Arch)
    }

    /// Does the clause expose loaded values?
    pub fn exposes_loaded_values(self) -> bool {
        matches!(self, ObservationClause::Arch)
    }

    /// Short name used in contract identifiers.
    pub fn name(self) -> &'static str {
        match self {
            ObservationClause::Mem => "MEM",
            ObservationClause::Ct => "CT",
            ObservationClause::Arch => "ARCH",
        }
    }
}

/// The execution clause: which speculation the contract permits (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionClause {
    /// `SEQ`: observations only from the sequential (in-order,
    /// non-speculative) execution.
    Seq,
    /// `COND`: observations also from the mispredicted paths of conditional
    /// branches, bounded by the speculation window.
    Cond,
    /// `BPAS`: observations also from executions in which stores are
    /// speculatively bypassed (skipped), bounded by the speculation window.
    Bpas,
    /// `COND-BPAS`: both [`ExecutionClause::Cond`] and
    /// [`ExecutionClause::Bpas`].
    CondBpas,
}

impl ExecutionClause {
    /// Does the clause permit conditional-branch misprediction?
    pub fn permits_cond(self) -> bool {
        matches!(self, ExecutionClause::Cond | ExecutionClause::CondBpas)
    }

    /// Does the clause permit store bypass?
    pub fn permits_bpas(self) -> bool {
        matches!(self, ExecutionClause::Bpas | ExecutionClause::CondBpas)
    }

    /// Short name used in contract identifiers.
    pub fn name(self) -> &'static str {
        match self {
            ExecutionClause::Seq => "SEQ",
            ExecutionClause::Cond => "COND",
            ExecutionClause::Bpas => "BPAS",
            ExecutionClause::CondBpas => "COND-BPAS",
        }
    }
}

/// A full speculation contract: an observation clause, an execution clause
/// and the parameters of the speculative exploration.
///
/// The paper's evaluation tests the CT-* family (Table 3) plus MEM-SEQ /
/// ARCH-SEQ for the sensitivity experiment (§6.6) and a CT-COND variant in
/// which speculative stores may not leak (§6.4).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Contract {
    /// What may be exposed.
    pub observation: ObservationClause,
    /// Which speculation is permitted.
    pub execution: ExecutionClause,
    /// Maximum number of instructions executed on a permitted speculative
    /// path (the paper uses 250, the Skylake ROB size).
    pub speculation_window: usize,
    /// Whether nested speculation is explored.  Disabled by default for
    /// speed, exactly as in the paper (§5.4); reported violations are
    /// re-checked with nesting enabled by the fuzzer.
    pub nested_speculation: bool,
    /// Whether observations of *stores* on speculative paths are exposed.
    /// `true` for the standard contracts; `false` for the §6.4 variant used
    /// to validate the "stores do not modify the cache until retirement"
    /// assumption of STT/KLEESpectre.
    pub expose_speculative_stores: bool,
}

impl Contract {
    /// Default speculation window (instructions), matching the paper.
    pub const DEFAULT_SPECULATION_WINDOW: usize = 250;

    /// Build a contract from clauses with default parameters.
    pub fn new(observation: ObservationClause, execution: ExecutionClause) -> Contract {
        Contract {
            observation,
            execution,
            speculation_window: Self::DEFAULT_SPECULATION_WINDOW,
            nested_speculation: false,
            expose_speculative_stores: true,
        }
    }

    /// `MEM-SEQ`: non-speculative load/store addresses only.
    pub fn mem_seq() -> Contract {
        Contract::new(ObservationClause::Mem, ExecutionClause::Seq)
    }

    /// `MEM-COND`: load/store addresses, including on mispredicted paths
    /// (the contract of Table 1).
    pub fn mem_cond() -> Contract {
        Contract::new(ObservationClause::Mem, ExecutionClause::Cond)
    }

    /// `CT-SEQ`: the most restrictive contract of the evaluation —
    /// speculation exposes nothing.
    pub fn ct_seq() -> Contract {
        Contract::new(ObservationClause::Ct, ExecutionClause::Seq)
    }

    /// `CT-COND`: leakage during branch prediction is permitted.
    pub fn ct_cond() -> Contract {
        Contract::new(ObservationClause::Ct, ExecutionClause::Cond)
    }

    /// `CT-BPAS`: leakage during store bypass is permitted.
    pub fn ct_bpas() -> Contract {
        Contract::new(ObservationClause::Ct, ExecutionClause::Bpas)
    }

    /// `CT-COND-BPAS`: leakage during both speculation types is permitted.
    pub fn ct_cond_bpas() -> Contract {
        Contract::new(ObservationClause::Ct, ExecutionClause::CondBpas)
    }

    /// `ARCH-SEQ`: exposes addresses and non-speculatively loaded values;
    /// equivalent to transient noninterference (used to test STT-like
    /// defences, §6.6).
    pub fn arch_seq() -> Contract {
        Contract::new(ObservationClause::Arch, ExecutionClause::Seq)
    }

    /// The §6.4 variant of `CT-COND` in which speculative stores may not
    /// modify observable state.
    pub fn ct_cond_no_spec_store() -> Contract {
        Contract::ct_cond().without_speculative_store_exposure()
    }

    /// The four CT-* contracts in the order of Table 3 (most restrictive
    /// first).
    pub fn table3_contracts() -> Vec<Contract> {
        vec![Contract::ct_seq(), Contract::ct_bpas(), Contract::ct_cond(), Contract::ct_cond_bpas()]
    }

    /// Remove speculative-store observations from the contract (§6.4).
    pub fn without_speculative_store_exposure(mut self) -> Contract {
        self.expose_speculative_stores = false;
        self
    }

    /// Set the speculation window.
    pub fn with_speculation_window(mut self, window: usize) -> Contract {
        self.speculation_window = window;
        self
    }

    /// Enable or disable nested speculation.
    pub fn with_nesting(mut self, nested: bool) -> Contract {
        self.nested_speculation = nested;
        self
    }

    /// Canonical name, e.g. `CT-COND-BPAS`.
    pub fn name(&self) -> String {
        let mut n = format!("{}-{}", self.observation.name(), self.execution.name());
        if !self.expose_speculative_stores {
            n.push_str("-NOSPECSTORE");
        }
        n
    }

    /// Partial order of permissiveness: `self` is weaker (more permissive)
    /// than `other` if it exposes at least as much and permits at least as
    /// much speculation, so any CPU complying with `other`... violates
    /// `self` no more often.  Used to order the contract sequence when
    /// narrowing down violations (§1, "a sequence of increasingly permissive
    /// contracts").
    pub fn at_least_as_permissive_as(&self, other: &Contract) -> bool {
        let obs_ge = match (self.observation, other.observation) {
            (a, b) if a == b => true,
            (ObservationClause::Ct, ObservationClause::Mem) => true,
            (ObservationClause::Arch, ObservationClause::Mem) => true,
            (ObservationClause::Arch, ObservationClause::Ct) => true,
            _ => false,
        };
        let exec_ge = match (self.execution, other.execution) {
            (a, b) if a == b => true,
            (ExecutionClause::CondBpas, _) => true,
            (ExecutionClause::Cond, ExecutionClause::Seq) => true,
            (ExecutionClause::Bpas, ExecutionClause::Seq) => true,
            _ => false,
        };
        obs_ge && exec_ge
    }
}

impl fmt::Display for Contract {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Contract::ct_seq().name(), "CT-SEQ");
        assert_eq!(Contract::ct_cond_bpas().name(), "CT-COND-BPAS");
        assert_eq!(Contract::mem_seq().name(), "MEM-SEQ");
        assert_eq!(Contract::arch_seq().name(), "ARCH-SEQ");
        assert_eq!(Contract::ct_cond_no_spec_store().name(), "CT-COND-NOSPECSTORE");
        assert_eq!(format!("{}", Contract::ct_cond()), "CT-COND");
    }

    #[test]
    fn clause_properties() {
        assert!(!ObservationClause::Mem.exposes_pc());
        assert!(ObservationClause::Ct.exposes_pc());
        assert!(ObservationClause::Arch.exposes_loaded_values());
        assert!(!ObservationClause::Ct.exposes_loaded_values());
        assert!(ExecutionClause::CondBpas.permits_cond());
        assert!(ExecutionClause::CondBpas.permits_bpas());
        assert!(!ExecutionClause::Seq.permits_cond());
        assert!(ExecutionClause::Bpas.permits_bpas());
        assert!(!ExecutionClause::Bpas.permits_cond());
    }

    #[test]
    fn table3_order_is_increasingly_permissive() {
        let cs = Contract::table3_contracts();
        assert_eq!(cs.len(), 4);
        let last = &cs[3];
        for c in &cs {
            assert!(last.at_least_as_permissive_as(c));
        }
        assert!(!cs[0].at_least_as_permissive_as(&cs[3]));
    }

    #[test]
    fn permissiveness_partial_order() {
        assert!(Contract::ct_cond().at_least_as_permissive_as(&Contract::ct_seq()));
        assert!(Contract::arch_seq().at_least_as_permissive_as(&Contract::mem_seq()));
        assert!(!Contract::ct_bpas().at_least_as_permissive_as(&Contract::ct_cond()));
        assert!(!Contract::mem_seq().at_least_as_permissive_as(&Contract::ct_seq()));
    }

    #[test]
    fn builders() {
        let c = Contract::ct_cond().with_speculation_window(10).with_nesting(true);
        assert_eq!(c.speculation_window, 10);
        assert!(c.nested_speculation);
        assert!(Contract::ct_seq().expose_speculative_stores);
        assert!(!Contract::ct_cond_no_spec_store().expose_speculative_stores);
    }

    #[test]
    fn defaults_match_paper() {
        let c = Contract::ct_seq();
        assert_eq!(c.speculation_window, 250);
        assert!(!c.nested_speculation);
    }
}
