//! Zero-cost trace hooks for the decoded step loop.
//!
//! The decoded execution path ([`Emulator::exec_decoded`]) is generic over a
//! [`TraceSink`] that receives every memory event.  Passes that need the
//! events (the contract model, the uarch simulator) pass an [`EventBuf`];
//! passes that do not pass [`NoTrace`], whose empty body monomorphizes the
//! whole loop down to no bookkeeping at all — no dynamic dispatch and no
//! per-step "is tracing on" branch.
//!
//! [`Emulator::exec_decoded`]: crate::Emulator::exec_decoded

use crate::emulator::{MemEvent, MemEventKind};
use rvz_isa::Width;

/// Receiver for the memory events of the decoded step loop.
pub trait TraceSink {
    /// Called for every memory access, in program order within the
    /// instruction.
    fn mem_event(&mut self, ev: MemEvent);
}

/// A sink that discards everything; compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTrace;

impl TraceSink for NoTrace {
    #[inline(always)]
    fn mem_event(&mut self, _ev: MemEvent) {}
}

/// An inline fixed-capacity event buffer.
///
/// One instruction produces at most three memory events (a read-modify-write
/// ALU op with a memory source: read dest, read src, write dest), so the
/// buffer never spills to the heap.  Callers clear it before each
/// instruction and consume it only on success, matching the old
/// `InstrEffects`-dropped-on-fault behaviour.
#[derive(Debug, Clone)]
pub struct EventBuf {
    events: [MemEvent; 4],
    len: usize,
}

const EMPTY_EVENT: MemEvent =
    MemEvent { addr: 0, width: Width::Byte, kind: MemEventKind::Read, value: 0 };

impl EventBuf {
    /// An empty buffer.
    pub fn new() -> EventBuf {
        EventBuf { events: [EMPTY_EVENT; 4], len: 0 }
    }

    /// Drop all buffered events.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The buffered events in program order.
    #[inline]
    pub fn events(&self) -> &[MemEvent] {
        &self.events[..self.len]
    }

    /// Whether no events were recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of buffered events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }
}

impl Default for EventBuf {
    fn default() -> Self {
        EventBuf::new()
    }
}

impl TraceSink for EventBuf {
    #[inline]
    fn mem_event(&mut self, ev: MemEvent) {
        self.events[self.len] = ev;
        self.len += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_buf_roundtrip() {
        let mut b = EventBuf::new();
        assert!(b.is_empty());
        let ev = MemEvent { addr: 7, width: Width::Qword, kind: MemEventKind::Write, value: 3 };
        b.mem_event(ev);
        b.mem_event(ev);
        assert_eq!(b.len(), 2);
        assert_eq!(b.events(), &[ev, ev]);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn no_trace_discards() {
        let mut s = NoTrace;
        s.mem_event(EMPTY_EVENT);
    }
}
