//! Soundness of the static speculation pre-filter.
//!
//! The filter discards a test case before any measurement when
//! [`staticanalysis::leak_possible`] says no speculation source can reach a
//! transmitter.  That is only admissible if the static pass
//! over-approximates the contract model: whenever the model itself observes
//! a speculative leak, the static pass must have classified the test case
//! as leak-possible.
//!
//! The oracle is relational, matching the MRT violation definition: a
//! *speculative leak* is a pair of inputs whose CT-SEQ traces are equal but
//! whose traces under a speculative contract (CT-COND, CT-BPAS or
//! CT-COND-BPAS) diverge.  A per-input CT-SEQ vs CT-COND comparison would
//! be wrong — the model pushes a `Pc` observation on every speculative
//! step, so almost every branch would "diverge" without leaking anything.

use proptest::prelude::*;
use revizor::staticanalysis;
use revizor::targets::Target;
use rvz_gen::{GeneratorConfig, InputGenerator, ProgramGenerator};
use rvz_model::{CTrace, Contract, ContractModel};

/// Collect one trace per contract per input, skipping faulting inputs
/// (faulting test cases are discarded by the pipeline before analysis, so
/// the filter owes them nothing).
fn traces_per_contract(
    contracts: &[Contract],
    tc: &rvz_isa::TestCase,
    inputs: &[rvz_isa::Input],
) -> Vec<Vec<CTrace>> {
    let mut per_contract: Vec<Vec<CTrace>> = vec![Vec::new(); contracts.len()];
    for input in inputs {
        if let Ok(outs) = ContractModel::collect_many(contracts, tc, input) {
            for (k, out) in outs.into_iter().enumerate() {
                per_contract[k].push(out.trace);
            }
        }
    }
    per_contract
}

/// Does any input pair have equal CT-SEQ traces but divergent traces under
/// a speculative contract?
fn model_observes_speculative_leak(seq: &[CTrace], speculative: &[&Vec<CTrace>]) -> bool {
    for i in 0..seq.len() {
        for j in i + 1..seq.len() {
            if seq[i] == seq[j] && speculative.iter().any(|spec| spec[i] != spec[j]) {
                return true;
            }
        }
    }
    false
}

fn target_for(choice: usize) -> Target {
    // A spread of ISA subsets: no speculation at all (AR), store-bypass
    // only (AR+MEM), conditional branches (AR+MEM+CB), and the full set
    // with variable-latency instructions.
    match choice % 4 {
        0 => Target::target1(),
        1 => Target::target2(),
        2 => Target::target5(),
        _ => Target::target6(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any generated test case for which the contract model observes a
    /// speculative leak must be classified leak-possible by the static
    /// pass — i.e. the pre-measurement filter never discards a test case
    /// that could produce a contract violation.
    #[test]
    fn filter_never_discards_a_model_observable_leak(
        choice in 0usize..4,
        seed in any::<u64>(),
        input_seed in any::<u64>(),
    ) {
        let target = target_for(choice);
        let generator = ProgramGenerator::new(
            GeneratorConfig::for_subset(target.isa).with_basic_blocks(4).with_instructions(14),
        );
        let tc = generator.generate(seed);
        // Low input entropy so that CT-SEQ trace collisions — the premise
        // of the relational oracle — actually occur among 16 random inputs
        // (at full entropy almost every input has a unique trace and the
        // property would hold vacuously).
        let inputs = InputGenerator::new(2).generate(&tc, input_seed, 16);

        let contracts = Contract::table3_contracts();
        let traces = traces_per_contract(&contracts, &tc, &inputs);
        let speculative: Vec<&Vec<CTrace>> = traces[1..].iter().collect();

        if model_observes_speculative_leak(&traces[0], &speculative) {
            let assists = tc.sandbox().assist_page.is_some();
            prop_assert!(
                staticanalysis::leak_possible(&tc, assists),
                "model observes a speculative leak on target {} seed {seed} but the \
                 static pass filtered the test case: {:?}",
                target.id,
                staticanalysis::analyze(&tc),
            );
        }
    }
}

/// Non-vacuity guard for the property above: at least one known seed makes
/// the relational oracle fire, so the proptest genuinely exercises the
/// implication (and that leak is classified leak-possible).
#[test]
fn relational_oracle_fires_on_a_known_seed() {
    let target = Target::target5();
    let generator = ProgramGenerator::new(
        GeneratorConfig::for_subset(target.isa).with_basic_blocks(4).with_instructions(14),
    );
    let tc = generator.generate(1);
    let inputs = InputGenerator::new(2).generate(&tc, 6, 16);

    let contracts = Contract::table3_contracts();
    let traces = traces_per_contract(&contracts, &tc, &inputs);
    let speculative: Vec<&Vec<CTrace>> = traces[1..].iter().collect();

    assert!(
        model_observes_speculative_leak(&traces[0], &speculative),
        "the known seed no longer triggers the oracle — pick a new one"
    );
    assert!(staticanalysis::leak_possible(&tc, tc.sandbox().assist_page.is_some()));
}
