//! Sequential (non-speculative) execution of whole test cases.

use crate::emulator::{Emulator, MemEvent};
use crate::fault::Fault;
use crate::sink::{EventBuf, NoTrace};
use crate::state::ArchState;
use rvz_isa::{BlockId, DecodedProgram, DecodedTerm, Input, Terminator, TestCase};

/// One executed program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecStep {
    /// Block containing the instruction.
    pub block: BlockId,
    /// Index in the block body, or `None` for the terminator.
    pub index: Option<usize>,
    /// Memory events produced by the instruction.
    pub events: Vec<MemEvent>,
}

/// The result of a sequential execution.
#[derive(Debug, Clone)]
pub struct ExecTrace {
    /// Executed steps in program order.
    pub steps: Vec<ExecStep>,
    /// Architectural state after the last instruction.
    pub final_state: ArchState,
    /// Blocks in execution order.
    pub block_order: Vec<BlockId>,
}

impl ExecTrace {
    /// All memory events in program order.
    pub fn mem_events(&self) -> Vec<MemEvent> {
        self.steps.iter().flat_map(|s| s.events.iter().copied()).collect()
    }

    /// Number of executed instructions (including terminators).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether nothing was executed.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Sequential executor for a test case.
///
/// This is what the in-order, non-speculative reference execution of the
/// contract's `SEQ` execution clause looks like; the contract model reuses
/// the same stepping functions but adds speculative exploration.
#[derive(Debug)]
pub struct Runner<'a> {
    tc: &'a TestCase,
    max_steps: usize,
}

impl<'a> Runner<'a> {
    /// Default maximum number of executed instructions.
    pub const DEFAULT_MAX_STEPS: usize = 4096;

    /// Create a runner for the test case.
    pub fn new(tc: &'a TestCase) -> Runner<'a> {
        Runner { tc, max_steps: Self::DEFAULT_MAX_STEPS }
    }

    /// Override the step budget.
    pub fn with_max_steps(mut self, max_steps: usize) -> Runner<'a> {
        self.max_steps = max_steps;
        self
    }

    /// Resolve the next block after a terminator executes architecturally.
    ///
    /// Returns `Ok(None)` when the test case exits.
    pub fn next_block(
        emu: &mut Emulator,
        tc: &TestCase,
        current: BlockId,
        events: &mut Vec<MemEvent>,
    ) -> Result<Option<BlockId>, Fault> {
        let term = &tc.block(current).expect("valid block").terminator;
        let next = match term {
            Terminator::Exit => None,
            Terminator::Jmp { target } => Some(*target),
            Terminator::CondJmp { cond, taken, not_taken } => {
                if emu.eval_cond(*cond) {
                    Some(*taken)
                } else {
                    Some(*not_taken)
                }
            }
            Terminator::IndirectJmp { src, table } => {
                let v = emu.state().reg(*src) as usize;
                Some(table[v % table.len()])
            }
            Terminator::Call { target, return_to } => {
                let ev = emu.push_ret(return_to.index() as u64)?;
                events.push(ev);
                Some(*target)
            }
            Terminator::Ret => {
                let (v, ev) = emu.pop_ret()?;
                events.push(ev);
                let n = tc.blocks().len() as u64;
                Some(BlockId((v % n) as usize))
            }
        };
        Ok(next)
    }

    /// Resolve the next block after a decoded terminator executes
    /// architecturally.
    ///
    /// Returns `Ok(None)` when the test case exits.  Semantics are identical
    /// to [`Runner::next_block`]; decode already validated the targets and
    /// rejected empty jump tables.
    ///
    /// # Errors
    /// Propagates stack faults from `CALL`/`RET`.
    pub fn next_block_decoded(
        emu: &mut Emulator,
        prog: &DecodedProgram,
        current: BlockId,
        events: &mut Vec<MemEvent>,
    ) -> Result<Option<BlockId>, Fault> {
        let next = match &prog.terminator(current).term {
            DecodedTerm::Exit => None,
            DecodedTerm::Jmp { target } => Some(*target),
            DecodedTerm::CondJmp { cond, taken, not_taken } => {
                if emu.eval_cond(*cond) {
                    Some(*taken)
                } else {
                    Some(*not_taken)
                }
            }
            DecodedTerm::IndirectJmp { src, table } => {
                let v = emu.state().reg(*src) as usize;
                Some(table[v % table.len()])
            }
            DecodedTerm::Call { target, return_to } => {
                let ev = emu.push_ret(return_to.index() as u64)?;
                events.push(ev);
                Some(*target)
            }
            DecodedTerm::Ret => {
                let (v, ev) = emu.pop_ret()?;
                events.push(ev);
                let n = prog.num_blocks() as u64;
                Some(BlockId((v % n) as usize))
            }
        };
        Ok(next)
    }

    /// Execute a pre-decoded program with the given input.
    ///
    /// # Errors
    /// Propagates any architectural [`Fault`].
    pub fn run_decoded(
        prog: &DecodedProgram,
        input: &Input,
        max_steps: usize,
    ) -> Result<ExecTrace, Fault> {
        let mut emu = Emulator::new(prog.sandbox(), input);
        let mut steps = Vec::new();
        let mut block_order = Vec::new();
        let mut current = Some(BlockId::ENTRY);
        let mut executed = 0usize;
        let mut buf = EventBuf::new();
        while let Some(bid) = current {
            block_order.push(bid);
            for d in prog.body(bid) {
                if executed >= max_steps {
                    return Err(Fault::StepLimitExceeded);
                }
                buf.clear();
                emu.exec_decoded(&d.op, &mut buf)?;
                steps.push(ExecStep {
                    block: bid,
                    index: Some(d.index as usize),
                    events: buf.events().to_vec(),
                });
                executed += 1;
            }
            if executed >= max_steps {
                return Err(Fault::StepLimitExceeded);
            }
            let mut events = Vec::new();
            let next = Self::next_block_decoded(&mut emu, prog, bid, &mut events)?;
            steps.push(ExecStep { block: bid, index: None, events });
            executed += 1;
            current = next;
        }
        Ok(ExecTrace { steps, final_state: emu.into_state(), block_order })
    }

    /// Execute a pre-decoded program and return only the final architectural
    /// state: the zero-cost-tracer configuration of the step loop.
    ///
    /// The emulator's step function is generic over [`TraceSink`]
    /// (monomorphized, no dynamic dispatch), so with [`NoTrace`] every piece
    /// of memory-event bookkeeping compiles away and no per-step trace is
    /// built.  This is the right entry point for callers that only need the
    /// fault outcome or the final state — e.g. the generator's
    /// "instrumented programs never fault" check — where
    /// [`Runner::run_decoded`]'s `ExecTrace` would be allocated only to be
    /// dropped.
    ///
    /// [`NoTrace`]: crate::NoTrace
    /// [`TraceSink`]: crate::TraceSink
    ///
    /// # Errors
    /// Propagates any architectural [`Fault`].
    pub fn run_final_decoded(
        prog: &DecodedProgram,
        input: &Input,
        max_steps: usize,
    ) -> Result<ArchState, Fault> {
        let mut emu = Emulator::new(prog.sandbox(), input);
        let mut sink = NoTrace;
        let mut current = Some(BlockId::ENTRY);
        let mut executed = 0usize;
        // Terminator events (CALL/RET stack traffic) are discarded; the
        // buffer is hoisted so at most one allocation happens per run.
        let mut events = Vec::new();
        while let Some(bid) = current {
            for d in prog.body(bid) {
                if executed >= max_steps {
                    return Err(Fault::StepLimitExceeded);
                }
                emu.exec_decoded(&d.op, &mut sink)?;
                executed += 1;
            }
            if executed >= max_steps {
                return Err(Fault::StepLimitExceeded);
            }
            events.clear();
            current = Self::next_block_decoded(&mut emu, prog, bid, &mut events)?;
            executed += 1;
        }
        Ok(emu.into_state())
    }

    /// Execute the test case with the given input.
    ///
    /// Decodes the test case once, then steps the decoded form.  Callers
    /// that execute the same test case with many inputs should decode once
    /// themselves and use [`Runner::run_decoded`].
    ///
    /// # Errors
    /// Propagates any architectural [`Fault`]; well-formed generated test
    /// cases never fault thanks to the generator's instrumentation.
    ///
    /// # Panics
    /// Panics if the test case fails decode-time validation.
    pub fn run(&self, input: &Input) -> Result<ExecTrace, Fault> {
        let prog = DecodedProgram::decode(self.tc)
            .unwrap_or_else(|e| panic!("malformed test case: {e}"));
        Self::run_decoded(&prog, input, self.max_steps)
    }

    /// Execute the test case by walking the instruction AST per step (the
    /// pre-decode reference path, kept for the differential tests).
    ///
    /// # Errors
    /// Propagates any architectural [`Fault`].
    pub fn run_reference(&self, input: &Input) -> Result<ExecTrace, Fault> {
        let mut emu = Emulator::new(self.tc.sandbox(), input);
        let mut steps = Vec::new();
        let mut block_order = Vec::new();
        let mut current = Some(BlockId::ENTRY);
        let mut executed = 0usize;
        while let Some(bid) = current {
            block_order.push(bid);
            let block = self.tc.block(bid).expect("valid block id");
            for (idx, instr) in block.instrs.iter().enumerate() {
                if executed >= self.max_steps {
                    return Err(Fault::StepLimitExceeded);
                }
                let fx = emu.exec_instr(instr)?;
                steps.push(ExecStep { block: bid, index: Some(idx), events: fx.mem_events });
                executed += 1;
            }
            if executed >= self.max_steps {
                return Err(Fault::StepLimitExceeded);
            }
            let mut events = Vec::new();
            let next = Self::next_block(&mut emu, self.tc, bid, &mut events)?;
            steps.push(ExecStep { block: bid, index: None, events });
            executed += 1;
            current = next;
        }
        Ok(ExecTrace { steps, final_state: emu.into_state(), block_order })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_isa::builder::TestCaseBuilder;
    use rvz_isa::{Cond, Reg, SandboxLayout};

    fn input_for(tc: &TestCase) -> Input {
        Input::zeroed(tc.sandbox())
    }

    #[test]
    fn straight_line_execution() {
        let tc = TestCaseBuilder::new()
            .block("entry", |b| {
                b.mov_imm(Reg::Rax, 5);
                b.add_imm(Reg::Rax, 7);
                b.exit();
            })
            .build();
        let t = Runner::new(&tc).run(&input_for(&tc)).unwrap();
        assert_eq!(t.final_state.reg(Reg::Rax), 12);
        assert_eq!(t.len(), 3);
        assert_eq!(t.block_order, vec![BlockId(0)]);
    }

    #[test]
    fn conditional_branch_both_directions() {
        let build = || {
            TestCaseBuilder::new()
                .block("entry", |b| {
                    b.cmp_imm(Reg::Rax, 10);
                    b.jcc(Cond::B, "low", "high");
                })
                .block("low", |b| {
                    b.mov_imm(Reg::Rbx, 1);
                    b.jmp("end");
                })
                .block("high", |b| {
                    b.mov_imm(Reg::Rbx, 2);
                    b.jmp("end");
                })
                .block("end", |b| b.exit())
                .build()
        };
        let tc = build();
        let mut low = input_for(&tc);
        low.set_reg(Reg::Rax, 3);
        let t = Runner::new(&tc).run(&low).unwrap();
        assert_eq!(t.final_state.reg(Reg::Rbx), 1);
        assert!(t.block_order.contains(&BlockId(1)));

        let mut high = input_for(&tc);
        high.set_reg(Reg::Rax, 30);
        let t = Runner::new(&tc).run(&high).unwrap();
        assert_eq!(t.final_state.reg(Reg::Rbx), 2);
        assert!(t.block_order.contains(&BlockId(2)));
    }

    #[test]
    fn memory_events_collected() {
        let tc = TestCaseBuilder::new()
            .block("entry", |b| {
                b.mov_imm(Reg::Rax, 64);
                b.store_disp(Reg::R14, 192, Reg::Rax);
                b.load(Reg::Rbx, Reg::R14, Reg::Rax);
                b.exit();
            })
            .build();
        let t = Runner::new(&tc).run(&input_for(&tc)).unwrap();
        let events = t.mem_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].addr, tc.sandbox().base + 192);
        assert_eq!(events[1].addr, tc.sandbox().base + 64);
    }

    #[test]
    fn call_and_ret_follow_stack() {
        let tc = TestCaseBuilder::new()
            .block("entry", |b| b.call("callee", "after"))
            .block("callee", |b| {
                b.mov_imm(Reg::Rax, 42);
                b.ret();
            })
            .block("after", |b| {
                b.add_imm(Reg::Rax, 1);
                b.exit();
            })
            .build();
        let t = Runner::new(&tc).run(&input_for(&tc)).unwrap();
        assert_eq!(t.final_state.reg(Reg::Rax), 43);
        assert_eq!(t.block_order, vec![BlockId(0), BlockId(1), BlockId(2)]);
    }

    #[test]
    fn indirect_jump_uses_table_modulo() {
        let tc = TestCaseBuilder::new()
            .block("entry", |b| b.jmp_indirect(Reg::Rax, vec!["t0", "t1"]))
            .block("t0", |b| {
                b.mov_imm(Reg::Rbx, 10);
                b.jmp("end");
            })
            .block("t1", |b| {
                b.mov_imm(Reg::Rbx, 20);
                b.jmp("end");
            })
            .block("end", |b| b.exit())
            .build();
        let mut i = input_for(&tc);
        i.set_reg(Reg::Rax, 5); // 5 % 2 == 1 -> t1
        let t = Runner::new(&tc).run(&i).unwrap();
        assert_eq!(t.final_state.reg(Reg::Rbx), 20);
    }

    #[test]
    fn step_limit_enforced() {
        let tc = TestCaseBuilder::new()
            .block("entry", |b| {
                for _ in 0..10 {
                    b.nop();
                }
                b.exit();
            })
            .build();
        let r = Runner::new(&tc).with_max_steps(5).run(&input_for(&tc));
        assert_eq!(r.unwrap_err(), Fault::StepLimitExceeded);
    }

    #[test]
    fn decoded_walk_matches_reference_walk() {
        let tcs = vec![
            TestCaseBuilder::new()
                .block("entry", |b| b.call("callee", "after"))
                .block("callee", |b| {
                    b.mov_imm(Reg::Rax, 42);
                    b.ret();
                })
                .block("after", |b| {
                    b.add_imm(Reg::Rax, 1);
                    b.exit();
                })
                .build(),
            TestCaseBuilder::new()
                .sandbox(SandboxLayout::two_pages())
                .block("entry", |b| {
                    b.and_imm(Reg::Rax, 0b111111000000);
                    b.load(Reg::Rbx, Reg::R14, Reg::Rax);
                    b.cmp_imm(Reg::Rcx, 10);
                    b.jcc(Cond::B, "low", "end");
                })
                .block("low", |b| {
                    b.store_disp(Reg::R14, 4096, Reg::Rbx);
                    b.jmp("end");
                })
                .block("end", |b| b.exit())
                .build(),
        ];
        for tc in &tcs {
            for seed in 0..4u64 {
                let mut input = input_for(tc);
                input.set_reg(Reg::Rax, seed * 0x241);
                input.set_reg(Reg::Rcx, seed);
                input.write_mem_u64(0x200, seed * 7);
                let d = Runner::new(tc).run(&input).unwrap();
                let r = Runner::new(tc).run_reference(&input).unwrap();
                assert_eq!(d.steps, r.steps);
                assert_eq!(d.block_order, r.block_order);
                assert_eq!(d.final_state, r.final_state);
            }
        }
    }

    #[test]
    fn trace_free_run_reaches_the_same_final_state() {
        let tc = TestCaseBuilder::new()
            .sandbox(SandboxLayout::two_pages())
            .block("entry", |b| {
                b.and_imm(Reg::Rax, 0b111111000000);
                b.load(Reg::Rbx, Reg::R14, Reg::Rax);
                b.cmp_imm(Reg::Rcx, 10);
                b.jcc(Cond::B, "low", "end");
            })
            .block("low", |b| {
                b.store_disp(Reg::R14, 4096, Reg::Rbx);
                b.jmp("end");
            })
            .block("end", |b| b.exit())
            .build();
        let prog = rvz_isa::DecodedProgram::decode(&tc).unwrap();
        for seed in 0..4u64 {
            let mut input = input_for(&tc);
            input.set_reg(Reg::Rax, seed * 0x241);
            input.set_reg(Reg::Rcx, seed);
            input.write_mem_u64(0x200, seed * 7);
            let traced = Runner::new(&tc).run_reference(&input).unwrap();
            let quiet = Runner::run_final_decoded(&prog, &input, 4096).unwrap();
            assert_eq!(quiet, traced.final_state);
        }
    }

    #[test]
    fn trace_free_run_enforces_step_limit() {
        let tc = TestCaseBuilder::new()
            .block("entry", |b| {
                for _ in 0..10 {
                    b.nop();
                }
                b.exit();
            })
            .build();
        let prog = rvz_isa::DecodedProgram::decode(&tc).unwrap();
        let r = Runner::run_final_decoded(&prog, &input_for(&tc), 5);
        assert_eq!(r.unwrap_err(), Fault::StepLimitExceeded);
    }

    #[test]
    fn deterministic_across_runs() {
        let tc = TestCaseBuilder::new()
            .sandbox(SandboxLayout::two_pages())
            .block("entry", |b| {
                b.and_imm(Reg::Rax, 0b111111000000);
                b.load(Reg::Rbx, Reg::R14, Reg::Rax);
                b.add(Reg::Rbx, Reg::Rcx);
                b.store_disp(Reg::R14, 4096, Reg::Rbx);
                b.exit();
            })
            .build();
        let mut i = input_for(&tc);
        i.set_reg(Reg::Rax, 0x7ff);
        i.set_reg(Reg::Rcx, 3);
        i.write_mem_u64(0x7c0, 99);
        let a = Runner::new(&tc).run(&i).unwrap();
        let b = Runner::new(&tc).run(&i).unwrap();
        assert_eq!(a.final_state.digest(), b.final_state.digest());
        assert_eq!(a.mem_events(), b.mem_events());
        assert_eq!(a.final_state.read_mem(tc.sandbox().base + 4096, rvz_isa::Width::Qword).unwrap(), 102);
    }
}
