//! Micro-architecture configuration and CPU presets.

use crate::predictors::PredictorConfig;
use serde::{Deserialize, Serialize};

/// Configuration of the simulated micro-architecture.
///
/// The fields are the knobs the paper's experimental setups vary (Table 2):
/// which CPU generation is being tested and which microcode patches are
/// applied, plus the structural parameters of the speculation machinery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UarchConfig {
    /// Part name used in reports.
    pub name: String,

    // --- structural parameters -------------------------------------------
    /// Maximum number of instructions executed on one speculative path
    /// (the reorder-buffer bound; the paper uses 250 for Skylake).
    pub speculation_window: usize,
    /// Maximum nesting depth of speculation episodes.
    pub max_nesting: usize,
    /// Extra cycles between a branch's inputs being ready and the squash of
    /// its wrong path (pipeline refill / misprediction penalty).
    pub misprediction_penalty: u64,
    /// Extra cycles after a store's address operands are ready before the
    /// store is considered resolved for memory disambiguation.
    pub store_address_delay: u64,
    /// Load-to-use latency on an L1D hit.
    pub load_hit_latency: u64,
    /// Load-to-use latency on an L1D miss that hits the L2 cache (the common
    /// case inside the sandbox working set).
    pub load_miss_latency: u64,
    /// Base latency of a division; the data-dependent part is added on top.
    pub div_base_latency: u64,
    /// Latency of a single-cycle ALU operation.
    pub alu_latency: u64,
    /// Cycles spent in a microcode assist before the faulting load is
    /// re-issued (the transient window of MDS/LVI).
    pub assist_latency: u64,

    // --- vulnerability switches -------------------------------------------
    /// The part predicts store/load aliasing and lets loads bypass older
    /// stores with unresolved addresses (Spectre V4 hardware capability).
    pub store_bypass: bool,
    /// The Speculative Store Bypass Disable microcode patch ("V4 patch" in
    /// Table 2): when `true`, loads never bypass stores.
    pub ssbd_patch: bool,
    /// Assisted/faulting loads transiently forward stale line-fill-buffer
    /// data (MDS family).  `false` on parts with the hardware MDS patch.
    pub mds_vulnerable: bool,
    /// Assisted/faulting loads transiently forward zero (LVI-Null); this is
    /// the behaviour of MDS-patched parts such as Coffee Lake.
    pub lvi_null_injection: bool,
    /// Speculative stores already allocate/modify cache lines before they
    /// retire.  The paper found this true on Coffee Lake and false on
    /// Skylake (§6.4).
    pub spec_store_touches_cache: bool,

    // --- prediction structures --------------------------------------------
    /// Which prediction structures the part uses (direction / indirect
    /// target / return).  Absent in configurations serialized before the
    /// predictor zoo existed; the default reproduces the original trio.
    #[serde(default)]
    pub predictors: PredictorConfig,
}

impl UarchConfig {
    /// Intel Core i7-6700 (Skylake) as tested in the paper, with the
    /// Spectre V4 microcode patch **disabled** (Targets 1-3).
    pub fn skylake() -> UarchConfig {
        UarchConfig {
            name: "Skylake (V4 patch off)".to_string(),
            speculation_window: 250,
            max_nesting: 2,
            misprediction_penalty: 20,
            store_address_delay: 14,
            load_hit_latency: 4,
            load_miss_latency: 12,
            div_base_latency: 12,
            alu_latency: 1,
            assist_latency: 120,
            store_bypass: true,
            ssbd_patch: false,
            mds_vulnerable: true,
            lvi_null_injection: false,
            spec_store_touches_cache: false,
            predictors: PredictorConfig::default(),
        }
    }

    /// Skylake with the Spectre V4 microcode patch **enabled** (Targets 4-7).
    pub fn skylake_patched() -> UarchConfig {
        let mut c = UarchConfig::skylake();
        c.name = "Skylake (V4 patch on)".to_string();
        c.ssbd_patch = true;
        c
    }

    /// Intel Core i7-9700 (Coffee Lake) as tested in the paper: hardware MDS
    /// patch (so assisted loads forward zeroes, i.e. LVI-Null), V4 patch on,
    /// and speculative stores already modify the cache (§6.4).
    pub fn coffee_lake() -> UarchConfig {
        UarchConfig {
            name: "Coffee Lake".to_string(),
            speculation_window: 250,
            max_nesting: 2,
            misprediction_penalty: 20,
            store_address_delay: 14,
            load_hit_latency: 4,
            load_miss_latency: 12,
            div_base_latency: 12,
            alu_latency: 1,
            assist_latency: 120,
            store_bypass: true,
            ssbd_patch: true,
            mds_vulnerable: false,
            lvi_null_injection: true,
            spec_store_touches_cache: true,
            predictors: PredictorConfig::default(),
        }
    }

    /// A hypothetical fully in-order, non-speculative part: no prediction,
    /// no bypass, no assists leakage.  Useful as a "compliant" baseline in
    /// tests — it should satisfy even CT-SEQ.
    pub fn in_order() -> UarchConfig {
        UarchConfig {
            name: "InOrder (no speculation)".to_string(),
            speculation_window: 0,
            max_nesting: 0,
            misprediction_penalty: 0,
            store_address_delay: 0,
            load_hit_latency: 4,
            load_miss_latency: 12,
            div_base_latency: 12,
            alu_latency: 1,
            assist_latency: 0,
            store_bypass: false,
            ssbd_patch: true,
            mds_vulnerable: false,
            lvi_null_injection: false,
            spec_store_touches_cache: false,
            predictors: PredictorConfig::default(),
        }
    }

    /// Select the prediction structures.  Non-default selections append the
    /// predictor label to the part name so reports and matrix-cell digests
    /// distinguish the configurations; the default selection leaves the name
    /// untouched (preserving pre-zoo digests).
    pub fn with_predictors(mut self, predictors: PredictorConfig) -> UarchConfig {
        if !predictors.is_default() {
            self.name = format!("{} [{}]", self.name, predictors.label());
        }
        self.predictors = predictors;
        self
    }

    /// Toggle the Spectre V4 (SSBD) microcode patch.
    pub fn with_v4_patch(mut self, enabled: bool) -> UarchConfig {
        self.ssbd_patch = enabled;
        let base = self.name.split(" (V4").next().unwrap_or(&self.name).to_string();
        self.name = format!("{} (V4 patch {})", base, if enabled { "on" } else { "off" });
        self
    }

    /// Data-dependent latency of a division with the given operands.
    ///
    /// The latency grows with the number of significant quotient bits.  The
    /// per-bit cost is deliberately steep (several cycles per bit) so that
    /// even the narrow value range produced by the low-entropy input
    /// generator straddles the misprediction window — which is the race
    /// behind the paper's novel V1-var/V4-var findings (§6.3).  Real
    /// dividers are faster per bit but operate on much wider value ranges;
    /// what matters for the reproduction is the *shape*: latency is a
    /// monotone, operand-dependent function that can win or lose the race
    /// against branch resolution.
    pub fn div_latency(&self, dividend_lo: u64, dividend_hi: u64, divisor: u64) -> u64 {
        let significant = if dividend_hi != 0 {
            128 - dividend_hi.leading_zeros() as u64
        } else {
            64 - dividend_lo.leading_zeros() as u64
        };
        let divisor_bits = 64 - divisor.leading_zeros() as u64;
        let quotient_bits = significant.saturating_sub(divisor_bits.saturating_sub(1));
        self.div_base_latency + quotient_bits * 8
    }

    /// Does the part perform speculative store bypass (capability present
    /// and not disabled by microcode)?
    pub fn bypass_active(&self) -> bool {
        self.store_bypass && !self.ssbd_patch
    }
}

impl Default for UarchConfig {
    fn default() -> Self {
        UarchConfig::skylake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_vulnerabilities() {
        let sky = UarchConfig::skylake();
        assert!(sky.bypass_active());
        assert!(sky.mds_vulnerable);
        assert!(!sky.lvi_null_injection);
        assert!(!sky.spec_store_touches_cache);

        let sky_p = UarchConfig::skylake_patched();
        assert!(!sky_p.bypass_active());
        assert!(sky_p.mds_vulnerable);

        let cfl = UarchConfig::coffee_lake();
        assert!(!cfl.mds_vulnerable);
        assert!(cfl.lvi_null_injection);
        assert!(cfl.spec_store_touches_cache);

        let inorder = UarchConfig::in_order();
        assert_eq!(inorder.speculation_window, 0);
        assert!(!inorder.bypass_active());
    }

    #[test]
    fn v4_patch_toggle_updates_name_and_flag() {
        let c = UarchConfig::skylake().with_v4_patch(true);
        assert!(c.ssbd_patch);
        assert!(c.name.contains("V4 patch on"));
        let c = c.with_v4_patch(false);
        assert!(!c.ssbd_patch);
        assert!(c.name.contains("V4 patch off"));
    }

    #[test]
    fn div_latency_is_data_dependent_and_monotone() {
        let c = UarchConfig::skylake();
        let small = c.div_latency(3, 0, 1);
        let large = c.div_latency(u64::MAX, 0, 1);
        let huge = c.div_latency(u64::MAX, 0xffff, 1);
        assert!(small < large, "{small} < {large}");
        assert!(large < huge);
        assert!(small >= c.div_base_latency);
    }

    #[test]
    fn div_latency_depends_on_divisor() {
        let c = UarchConfig::skylake();
        let wide = c.div_latency(u64::MAX, 0, 1);
        let narrow = c.div_latency(u64::MAX, 0, u64::MAX);
        assert!(narrow < wide, "larger divisor -> fewer quotient bits -> faster");
    }

    #[test]
    fn default_is_skylake() {
        assert_eq!(UarchConfig::default(), UarchConfig::skylake());
    }

    #[test]
    fn with_predictors_labels_non_default_selections() {
        let base = UarchConfig::skylake();
        let same = base.clone().with_predictors(PredictorConfig::default());
        assert_eq!(same, base, "default selection must not change the config");

        let tage = UarchConfig::skylake().with_predictors(PredictorConfig::tage());
        assert_eq!(tage.name, "Skylake (V4 patch off) [TAGE]");
        assert!(!tage.predictors.is_default());
    }
}
