//! Basic blocks and control-flow terminators.

use crate::inst::{Cond, Instr};
use crate::reg::Reg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a basic block within a [`TestCase`](crate::TestCase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub usize);

impl BlockId {
    /// The entry block of every test case.
    pub const ENTRY: BlockId = BlockId(0);

    /// Index into the block vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".bb{}", self.0)
    }
}

/// The control-flow terminator of a basic block.
///
/// Generated programs form a DAG (§5.1): terminators only ever target blocks
/// with a strictly larger id, which rules out loops by construction.
/// Handwritten gadgets additionally use `Call`/`Ret`/indirect jumps for the
/// Spectre V2 / V5-ret experiments (Table 5).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Terminator {
    /// End of the test case.
    Exit,
    /// Unconditional jump.
    Jmp {
        /// Target block.
        target: BlockId,
    },
    /// Conditional jump: if `cond` holds go to `taken`, otherwise fall
    /// through to `not_taken`.
    CondJmp {
        /// Condition code (reads flags).
        cond: Cond,
        /// Block executed when the condition holds.
        taken: BlockId,
        /// Block executed when the condition does not hold.
        not_taken: BlockId,
    },
    /// Indirect jump through a register.  The register value is interpreted
    /// modulo `table.len()` as an index into `table` (a jump table), which
    /// keeps arbitrary register values from escaping the test case while
    /// still exercising the branch-target buffer.
    IndirectJmp {
        /// Register holding the target selector.
        src: Reg,
        /// Possible targets.
        table: Vec<BlockId>,
    },
    /// Call: push the return block onto the in-sandbox stack and jump to
    /// `target`; the matching [`Terminator::Ret`] pops it.
    Call {
        /// Callee block.
        target: BlockId,
        /// Block to return to.
        return_to: BlockId,
    },
    /// Return: pop the return target from the in-sandbox stack.
    Ret,
}

impl Terminator {
    /// Blocks that this terminator may transfer control to (statically).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Exit | Terminator::Ret => vec![],
            Terminator::Jmp { target } => vec![*target],
            Terminator::CondJmp { taken, not_taken, .. } => vec![*taken, *not_taken],
            Terminator::IndirectJmp { table, .. } => table.clone(),
            Terminator::Call { target, return_to } => vec![*target, *return_to],
        }
    }

    /// Is this a conditional branch (the `CB` instruction class)?
    pub fn is_conditional(&self) -> bool {
        matches!(self, Terminator::CondJmp { .. })
    }

    /// Is this an indirect control transfer (BTB/RSB-predicted)?
    pub fn is_indirect(&self) -> bool {
        matches!(self, Terminator::IndirectJmp { .. } | Terminator::Ret)
    }

    /// Does the terminator read the status flags?
    pub fn reads_flags(&self) -> bool {
        self.is_conditional()
    }

    /// Registers read by the terminator.
    pub fn reads_regs(&self) -> Vec<Reg> {
        match self {
            Terminator::IndirectJmp { src, .. } => vec![*src],
            Terminator::Call { .. } | Terminator::Ret => vec![Reg::Rsp],
            _ => vec![],
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Exit => write!(f, "EXIT"),
            Terminator::Jmp { target } => write!(f, "JMP {target}"),
            Terminator::CondJmp { cond, taken, not_taken } => {
                write!(f, "J{} {}   ; else fall through to {}", cond.suffix(), taken, not_taken)
            }
            Terminator::IndirectJmp { src, table } => {
                write!(f, "JMP {src}  ; table:")?;
                for t in table {
                    write!(f, " {t}")?;
                }
                Ok(())
            }
            Terminator::Call { target, return_to } => {
                write!(f, "CALL {target}  ; returns to {return_to}")
            }
            Terminator::Ret => write!(f, "RET"),
        }
    }
}

/// A basic block: a straight-line instruction sequence plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Identifier of this block.
    pub id: BlockId,
    /// Optional human-readable label (used by the builder and printer).
    pub label: Option<String>,
    /// Straight-line body.
    pub instrs: Vec<Instr>,
    /// Control-flow terminator.
    pub terminator: Terminator,
}

impl BasicBlock {
    /// Create an empty block that simply exits.
    pub fn new(id: BlockId) -> BasicBlock {
        BasicBlock { id, label: None, instrs: Vec::new(), terminator: Terminator::Exit }
    }

    /// Number of instructions including the terminator.
    pub fn len(&self) -> usize {
        self.instrs.len() + 1
    }

    /// A block is never empty because it always has a terminator.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of memory-accessing instructions in the body.
    pub fn memory_access_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.accesses_mem()).count()
    }
}

impl fmt::Display for BasicBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.label {
            Some(l) => writeln!(f, "{} ({}):", self.id, l)?,
            None => writeln!(f, "{}:", self.id)?,
        }
        for i in &self.instrs {
            writeln!(f, "    {i}")?;
        }
        writeln!(f, "    {}", self.terminator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::Operand;
    use crate::AluOp;

    #[test]
    fn block_id_display() {
        assert_eq!(format!("{}", BlockId(3)), ".bb3");
        assert_eq!(BlockId::ENTRY.index(), 0);
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::CondJmp { cond: Cond::Ns, taken: BlockId(1), not_taken: BlockId(2) };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(t.is_conditional());
        assert!(t.reads_flags());
        assert!(!t.is_indirect());

        let t = Terminator::IndirectJmp { src: Reg::Rax, table: vec![BlockId(1), BlockId(3)] };
        assert!(t.is_indirect());
        assert_eq!(t.reads_regs(), vec![Reg::Rax]);

        assert!(Terminator::Exit.successors().is_empty());
        assert!(Terminator::Ret.is_indirect());
    }

    #[test]
    fn call_successors_include_return_block() {
        let t = Terminator::Call { target: BlockId(5), return_to: BlockId(2) };
        assert_eq!(t.successors(), vec![BlockId(5), BlockId(2)]);
        assert_eq!(t.reads_regs(), vec![Reg::Rsp]);
    }

    #[test]
    fn block_len_counts_terminator() {
        let mut b = BasicBlock::new(BlockId(0));
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        b.instrs.push(Instr::Alu {
            op: AluOp::Add,
            dest: Operand::reg(Reg::Rax),
            src: Operand::imm(1),
            lock: false,
        });
        assert_eq!(b.len(), 2);
        assert_eq!(b.memory_access_count(), 0);
    }

    #[test]
    fn block_display_contains_label() {
        let mut b = BasicBlock::new(BlockId(1));
        b.label = Some("spec_path".to_string());
        let s = format!("{b}");
        assert!(s.contains(".bb1"));
        assert!(s.contains("spec_path"));
        assert!(s.contains("EXIT"));
    }
}
