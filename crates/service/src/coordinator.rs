//! Fleet mode: the coordinator side of the worker protocol.
//!
//! A coordinator is a campaign server whose jobs run on an **elastic fleet
//! of worker hosts** (`revizor-worker` processes) instead of in-process
//! shard threads.  Clients see the exact same JSON-lines protocol; behind
//! the core, a second listener accepts worker connections at any time and
//! a poll reactor (same shape as [`crate::server`]) drives the unit queue:
//!
//! ```text
//!            clients                          worker fleet (elastic)
//!   submit/watch/cancel │   ┌──────────────┐ │ register ──► lease ──►
//!            ───────────┼──►│ ServiceCore  │◄┼─────────────────────┐
//!        (backpressured     │  unit queue  │ │ ◄── grant(unit, cp) │
//!         at watermark)     │  job table   │ │ ──► wave(cp, digest)│
//!                           │  spool ◄─────┼─┼── replicate, ack ──►│
//!                           └──────┬───────┘ │ ──► unit_done(cp)   │
//!                                  │ steal: revoke slow owner,     │
//!                                  └── re-lease unit to idle worker┘
//! ```
//!
//! Jobs split into **relocatable work units** (one per target group; see
//! [`ServiceCore::lease_unit`]).  Workers join at runtime (`register`),
//! ask for work (`lease`), and drive one unit at a time; a job's units can
//! run on different hosts concurrently and the final report is
//! reconstructed from their merged sub-checkpoints, byte-identical to an
//! in-process run.
//!
//! ## The replication contract
//!
//! After every wave a worker sends its unit's sub-checkpoint (with its
//! [`digest`](revizor::orchestrator::MatrixCheckpoint::digest) computed
//! *before* encoding) and blocks for the coordinator's `ack`.  The
//! coordinator re-digests the decoded snapshot — a mismatch means the
//! transfer codec lost state, so the snapshot is **rejected** (`"accepted":
//! false`) rather than spooled; the unit then simply resumes from an older
//! replicated wave if its worker dies.  Because a resumed sub-run replays
//! the identical stream suffix from *any* wave boundary, verdicts stay
//! byte-identical no matter which replicated checkpoint a steal or
//! reassignment starts from — the chaos harness (`tests/chaos.rs`) sweeps
//! exactly this property.
//!
//! ## Failure handling
//!
//! * **Worker dies / connection drops** — its leased unit is released
//!   ([`ServiceCore::release_unit`]) and re-leased to the next idle
//!   worker at the unit's last replicated sub-checkpoint.
//! * **Worker goes slow** — an idle worker **steals**: a unit without an
//!   accepted checkpoint for [`steal_after`](crate::ServiceConfig::steal_after)
//!   is revoked from its owner and re-leased.  Every unit frame quotes its
//!   lease token, so the old owner's in-flight frames bounce off the core
//!   (`Revoked`) instead of corrupting the thief's progress.
//! * **Cancellation** — a client `cancel` marks the job; the coordinator
//!   forwards `{"op":"cancel"}` to every owner of one of its units, each
//!   of which stops at the next wave boundary and reports back its
//!   stopping checkpoint (`unit_cancelled`).
//! * **Priorities** — leasing picks units of the highest-priority job
//!   (FIFO within a priority), exactly like the in-process shard workers.

use crate::core::{ServiceCore, UnitDisposition, UnitGrant};
use crate::framing;
use rvz_bench::binfmt;
use rvz_bench::json::{parse, Json};
use rvz_bench::report::{
    checkpoint_transfer_from_binary, checkpoint_transfer_from_json, CheckpointTransfer,
};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One connected worker host.
struct WorkerConn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// The name the worker registered under (empty until `register`).
    name: String,
    registered: bool,
    /// Did the worker advertise binary-frame support (`"binary": true` in
    /// its `register` frame)?  Grants to it go out as binary frames and
    /// it answers with binary wave transfers; JSON-only workers coexist
    /// on the same port.
    binary: bool,
    /// Has the worker asked for work (`lease`) it has not been granted yet?
    wants_work: bool,
    /// When the connection last produced bytes, for the silent-partition
    /// timeout ([`crate::ServiceConfig::worker_timeout`]).
    last_heard: Instant,
    /// The unit this worker currently drives: `(job, target, lease)`.
    unit: Option<(String, u8, u64)>,
    /// When the unit last had a checkpoint *accepted* (grant time before
    /// that) — the steal clock
    /// ([`crate::ServiceConfig::steal_after`]).
    last_progress: Instant,
    /// Has the cancel for the unit's job already been forwarded?
    cancel_sent: bool,
    closed: bool,
}

impl WorkerConn {
    fn queue_line(&mut self, doc: &Json) {
        framing::queue_line(&mut self.outbuf, doc);
    }
}

/// The coordinator reactor: worker listener + connections (see the module
/// docs).
pub struct Coordinator {
    core: Arc<ServiceCore>,
    listener: TcpListener,
    addr: SocketAddr,
    conns: Vec<WorkerConn>,
}

impl Coordinator {
    /// Bind the worker listener (non-blocking) on `listen`.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind(core: Arc<ServiceCore>, listen: &str) -> io::Result<Coordinator> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Coordinator { core, listener, addr, conns: Vec::new() })
    }

    /// The bound worker address (useful with an ephemeral `:0` port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// One non-blocking pass: accept workers, ingest their frames,
    /// forward cancels, lease (and steal) units for idle workers, flush.
    /// Returns whether any progress was made (callers sleep briefly when
    /// idle).
    pub fn poll_once(&mut self) -> bool {
        let mut progress = false;

        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_ok() {
                        self.conns.push(WorkerConn {
                            stream,
                            inbuf: Vec::new(),
                            outbuf: Vec::new(),
                            name: String::new(),
                            registered: false,
                            binary: false,
                            wants_work: false,
                            last_heard: Instant::now(),
                            unit: None,
                            last_progress: Instant::now(),
                            cancel_sent: false,
                            closed: false,
                        });
                        progress = true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        for conn in &mut self.conns {
            progress |= Self::service_conn(&self.core, conn);
        }

        // Silent-partition detection: a worker driving a unit sends at
        // least one frame per wave, so a long-silent unit-holding
        // connection is dead even if the socket never errors (pulled
        // cable, frozen host).  Dropping it is safe — the unit resumes
        // byte-identically from its last replicated sub-checkpoint on
        // another worker.  Idle (leaseless) workers heartbeat and are
        // never dropped for silence.
        let timeout = self.core.config().worker_timeout;
        for conn in &mut self.conns {
            if !conn.closed && conn.unit.is_some() && conn.last_heard.elapsed() > timeout {
                eprintln!(
                    "coordinator: worker `{}` silent for {:.1?} mid-job; dropping it",
                    conn.name,
                    conn.last_heard.elapsed()
                );
                conn.closed = true;
            }
        }

        // A closed connection orphans its lease: release the unit so the
        // next idle worker picks it up at its last replicated
        // sub-checkpoint.
        for conn in &mut self.conns {
            if conn.closed {
                if let Some((job, target, lease)) = conn.unit.take() {
                    eprintln!(
                        "coordinator: worker `{}` lost mid-job; requeueing {job} unit t{target}",
                        conn.name
                    );
                    self.core.release_unit(&job, target, lease);
                    progress = true;
                }
            }
        }
        self.conns.retain(|c| !c.closed);

        // Lease reconciliation: every lease the core holds must be owned
        // by a live connection.  The closed-conn pass above covers the
        // common desync (a dead worker); this sweep self-heals the rest —
        // a worker that abandoned its grant without a frame the
        // coordinator kept, or a peer speaking an older protocol.  An
        // unowned lease would otherwise wedge its job forever: the core
        // never re-leases a unit that is not `Queued`, and no log line
        // would ever say why.
        let live: Vec<(String, u8, u64)> =
            self.conns.iter().filter_map(|c| c.unit.clone()).collect();
        for (job, target) in self.core.reconcile_leases(&live) {
            eprintln!("coordinator: {job} unit t{target} leased but unowned; requeueing it");
            progress = true;
        }

        progress |= self.forward_cancels();
        progress |= self.dispatch();

        for conn in &mut self.conns {
            progress |= Self::flush(conn);
        }
        progress
    }

    /// Read and handle every complete frame (JSON line or binary) of one
    /// connection.
    fn service_conn(core: &Arc<ServiceCore>, conn: &mut WorkerConn) -> bool {
        let (mut progress, closed) = framing::read_available(&mut conn.stream, &mut conn.inbuf);
        conn.closed |= closed;
        if progress {
            conn.last_heard = Instant::now();
        }
        while !conn.closed {
            match framing::next_frame(&mut conn.inbuf) {
                Ok(None) => break,
                Ok(Some(framing::WireFrame::Json(line))) => {
                    Self::handle_frame(core, conn, &line);
                    progress = true;
                }
                Ok(Some(framing::WireFrame::Binary(bytes))) => {
                    Self::handle_binary_frame(core, conn, &bytes);
                    progress = true;
                }
                Err(e) => {
                    eprintln!(
                        "coordinator: corrupt worker stream ({e}); dropping `{}`",
                        conn.name
                    );
                    conn.closed = true;
                    progress = true;
                }
            }
        }
        progress
    }

    /// Handle one worker frame.
    fn handle_frame(core: &Arc<ServiceCore>, conn: &mut WorkerConn, line: &str) {
        let frame = match parse(line) {
            Ok(doc) => doc,
            Err(e) => {
                // A malformed frame means the peer is not speaking the
                // protocol (or the stream is corrupt): drop it; its unit is
                // released like any other disconnect.
                eprintln!("coordinator: malformed worker frame ({e}); dropping `{}`", conn.name);
                conn.closed = true;
                return;
            }
        };
        match framing::op(&frame) {
            Some("register") => {
                conn.name = frame
                    .get("worker")
                    .and_then(Json::as_str)
                    .unwrap_or("anonymous")
                    .to_string();
                conn.registered = true;
                conn.binary = frame.get("binary").and_then(Json::as_bool) == Some(true);
                conn.queue_line(&Json::obj().field("op", "registered"));
            }
            Some("lease") => conn.wants_work = true,
            // Any frame already refreshed `last_heard`; heartbeats exist
            // only to do that while a worker waits for a grant.
            Some("heartbeat") => {}
            Some("wave") => Self::handle_wave(core, conn, &frame),
            Some("unit_done") => Self::handle_unit_done(core, conn, &frame),
            Some("unit_cancelled") => {
                let Some((job, target, lease)) = unit_fields(&frame) else { return };
                let transfer = checkpoint_transfer_from_json(&frame).ok();
                Self::apply_unit_cancelled(core, conn, &job, target, lease, transfer);
            }
            Some("unit_failed") => {
                let Some((job, target, lease)) = unit_fields(&frame) else { return };
                let error = frame
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("worker could not run the unit");
                core.fail_unit(&job, target, lease, error);
                if conn.unit.as_ref().is_some_and(|(j, t, _)| *j == job && *t == target) {
                    conn.unit = None;
                    conn.cancel_sent = false;
                }
            }
            _ => {}
        }
    }

    /// Handle one binary worker frame — a `wave` / `unit_done` /
    /// `unit_cancelled` checkpoint transfer whose routing fields ride in
    /// the frame's meta section.  Control frames stay JSON in both
    /// directions, so any other binary frame is a protocol violation.
    fn handle_binary_frame(core: &Arc<ServiceCore>, conn: &mut WorkerConn, bytes: &[u8]) {
        let decoded = match checkpoint_transfer_from_binary(bytes) {
            Ok(d) => d,
            Err(e) => {
                eprintln!(
                    "coordinator: undecodable binary transfer ({e}); dropping `{}`",
                    conn.name
                );
                conn.closed = true;
                return;
            }
        };
        let meta = decoded.meta;
        let (Some(target), Some(lease)) = (
            meta.get("target").and_then(Json::as_u64).and_then(|t| u8::try_from(t).ok()),
            meta.get("lease").and_then(Json::as_u64),
        ) else {
            conn.closed = true;
            return;
        };
        let job = decoded.transfer.job.clone();
        let events = meta
            .get("events")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .unwrap_or_default();
        match framing::op(&meta) {
            Some("wave") => Self::apply_wave(core, conn, &job, target, lease, decoded.transfer, events),
            Some("unit_done") => {
                Self::apply_unit_done(core, conn, &job, target, lease, decoded.transfer, events);
            }
            Some("unit_cancelled") => {
                Self::apply_unit_cancelled(core, conn, &job, target, lease, Some(decoded.transfer));
            }
            op => {
                eprintln!(
                    "coordinator: unexpected binary op {op:?}; dropping `{}`",
                    conn.name
                );
                conn.closed = true;
            }
        }
    }

    /// Replicate one wave sub-checkpoint (the heart of the failover and
    /// stealing story).
    fn handle_wave(core: &Arc<ServiceCore>, conn: &mut WorkerConn, frame: &Json) {
        let Some((job, target, lease)) = unit_fields(frame) else {
            conn.closed = true;
            return;
        };
        let transfer = match checkpoint_transfer_from_json(frame) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("coordinator: undecodable checkpoint transfer ({e})");
                conn.closed = true;
                return;
            }
        };
        let events = frame
            .get("events")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .unwrap_or_default();
        Self::apply_wave(core, conn, &job, target, lease, transfer, events);
    }

    /// Format-independent core of wave replication: validate the digest,
    /// spool the snapshot, publish events, answer the (always-JSON) ack.
    fn apply_wave(
        core: &Arc<ServiceCore>,
        conn: &mut WorkerConn,
        job: &str,
        target: u8,
        lease: u64,
        transfer: CheckpointTransfer,
        events: Vec<Json>,
    ) {
        let wave = transfer.checkpoint.wave;
        let mut accepted = false;
        let mut revoked = false;
        if !transfer.validates() || transfer.job != job {
            // Never spool a snapshot that lost state in transit: resuming
            // from it could silently change verdicts.  The unit still holds
            // its previous replicated checkpoint, which resumes correctly.
            eprintln!(
                "coordinator: checkpoint digest mismatch for {job} unit t{target} wave {wave} \
                 (rejected)"
            );
        } else {
            match core.save_unit_checkpoint(job, target, lease, transfer.checkpoint) {
                UnitDisposition::Accepted => {
                    core.publish(job, events);
                    conn.last_progress = Instant::now();
                    accepted = true;
                }
                UnitDisposition::Revoked => revoked = true,
                UnitDisposition::Ignored => {}
            }
        }
        if revoked && conn.unit.as_ref().is_some_and(|(j, t, _)| j == job && *t == target) {
            conn.unit = None;
            conn.cancel_sent = false;
        }
        conn.queue_line(
            &Json::obj()
                .field("op", "ack")
                .field("job", job)
                .field("target", target)
                .field("wave", wave)
                .field("accepted", accepted)
                .field("revoked", revoked),
        );
    }

    /// A worker finished its unit: store the final sub-checkpoint (the
    /// unit's result — the core reconstructs the job report from it once
    /// every unit is done).
    fn handle_unit_done(core: &Arc<ServiceCore>, conn: &mut WorkerConn, frame: &Json) {
        let Some((job, target, lease)) = unit_fields(frame) else {
            conn.closed = true;
            return;
        };
        let transfer = match checkpoint_transfer_from_json(frame) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("coordinator: undecodable final checkpoint ({e})");
                conn.closed = true;
                return;
            }
        };
        let events = frame
            .get("events")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .unwrap_or_default();
        Self::apply_unit_done(core, conn, &job, target, lease, transfer, events);
    }

    /// Format-independent core of unit completion.
    fn apply_unit_done(
        core: &Arc<ServiceCore>,
        conn: &mut WorkerConn,
        job: &str,
        target: u8,
        lease: u64,
        transfer: CheckpointTransfer,
        events: Vec<Json>,
    ) {
        if !transfer.validates() || transfer.job != job {
            // A final snapshot that lost state in transit cannot be
            // accepted, and there is nothing older to fall back to for a
            // *finished* unit — drop the connection; the release path
            // requeues the unit from its last replicated checkpoint and
            // another worker re-runs the tail.
            eprintln!(
                "coordinator: final checkpoint digest mismatch for {job} unit t{target}; \
                 dropping `{}`",
                conn.name
            );
            conn.closed = true;
            return;
        }
        core.complete_unit(job, target, lease, transfer.checkpoint, events);
        if conn.unit.as_ref().is_some_and(|(j, t, _)| j == job && *t == target) {
            conn.unit = None;
            conn.cancel_sent = false;
        }
    }

    /// Format-independent core of cooperative cancellation: the worker's
    /// stopping point rides along as a normal checkpoint transfer; keep it
    /// only if it validates.
    fn apply_unit_cancelled(
        core: &Arc<ServiceCore>,
        conn: &mut WorkerConn,
        job: &str,
        target: u8,
        lease: u64,
        transfer: Option<CheckpointTransfer>,
    ) {
        let checkpoint =
            transfer.filter(|t| t.validates() && t.job == job).map(|t| t.checkpoint);
        core.cancel_unit(job, target, lease, checkpoint);
        if conn.unit.as_ref().is_some_and(|(j, t, _)| j == job && *t == target) {
            conn.unit = None;
            conn.cancel_sent = false;
        }
    }

    /// Forward pending cancellations to every worker driving one of the
    /// job's units.
    fn forward_cancels(&mut self) -> bool {
        let mut progress = false;
        for conn in &mut self.conns {
            let Some((job, _, _)) = conn.unit.clone() else { continue };
            if !conn.cancel_sent && self.core.cancel_requested(&job) {
                conn.queue_line(&Json::obj().field("op", "cancel").field("job", job.as_str()));
                conn.cancel_sent = true;
                progress = true;
            }
        }
        progress
    }

    /// Lease units (highest-priority job first) to workers that asked for
    /// work; when the queue is empty, steal from the slowest eligible
    /// owner instead.
    fn dispatch(&mut self) -> bool {
        let mut progress = false;
        for i in 0..self.conns.len() {
            {
                let conn = &self.conns[i];
                if !conn.registered || !conn.wants_work || conn.unit.is_some() || conn.closed {
                    continue;
                }
            }
            let worker = self.conns[i].name.clone();
            let grant = match self.core.lease_unit(&worker) {
                Some(grant) => Some(grant),
                None => self.steal_for(i).and_then(|()| self.core.lease_unit(&worker)),
            };
            let Some(grant) = grant else { continue };
            eprintln!(
                "coordinator: leased {} unit t{} to worker `{worker}`{}",
                grant.job,
                grant.target,
                match &grant.checkpoint {
                    Some(cp) => format!(" (resuming from wave {})", cp.wave),
                    None => String::new(),
                }
            );
            let conn = &mut self.conns[i];
            if conn.binary {
                framing::queue_binary(&mut conn.outbuf, &binary_grant_frame(&grant));
            } else {
                conn.queue_line(&grant_frame(&grant));
            }
            conn.unit = Some((grant.job, grant.target, grant.lease));
            conn.wants_work = false;
            conn.cancel_sent = false;
            // The silence and steal clocks start at the grant — idle
            // workers' stale timestamps must not count against the unit.
            conn.last_heard = Instant::now();
            conn.last_progress = Instant::now();
            progress = true;
        }
        progress
    }

    /// Steal for idle worker `thief`: revoke the longest-stalled unit
    /// (no accepted checkpoint for `steal_after`) and requeue it.  Returns
    /// `Some(())` when something was freed for re-leasing.
    fn steal_for(&mut self, thief: usize) -> Option<()> {
        let steal_after = self.core.config().steal_after;
        let victim = self
            .conns
            .iter()
            .enumerate()
            .filter(|(j, c)| {
                *j != thief
                    && !c.closed
                    && c.unit.is_some()
                    && c.last_progress.elapsed() > steal_after
            })
            .max_by_key(|(_, c)| c.last_progress.elapsed())
            .map(|(j, _)| j)?;
        let conn = &mut self.conns[victim];
        let (job, target, lease) = conn.unit.take().expect("filtered on unit");
        eprintln!(
            "coordinator: stealing {job} unit t{target} from stalled worker `{}` \
             (no progress for {:.1?})",
            conn.name,
            conn.last_progress.elapsed()
        );
        conn.cancel_sent = false;
        // Tell the old owner its lease is void (best effort — the lease
        // token fences its frames either way).
        conn.queue_line(
            &Json::obj().field("op", "revoke").field("job", job.as_str()).field("target", target),
        );
        self.core.release_unit(&job, target, lease);
        Some(())
    }

    /// Flush as much queued output as the socket accepts.
    fn flush(conn: &mut WorkerConn) -> bool {
        let (progress, closed) = framing::flush(&mut conn.stream, &mut conn.outbuf);
        conn.closed |= closed;
        progress
    }

    /// Drive the reactor until the core stops, then tell every worker to
    /// shut down (best effort).
    pub fn run(mut self) {
        while !self.core.stopped() {
            if !self.poll_once() {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        for conn in &mut self.conns {
            conn.queue_line(&Json::obj().field("op", "shutdown"));
            // The socket is non-blocking; a backed-up buffer would make
            // write_all bail on WouldBlock and silently drop the shutdown
            // frame, leaving workers to burn their whole reconnect-retry
            // window.  Switch to blocking with a short timeout so the
            // frame actually drains (bounded: this is best-effort).
            let _ = conn.stream.set_nonblocking(false);
            let _ = conn.stream.set_write_timeout(Some(Duration::from_millis(500)));
            let _ = conn.stream.write_all(&conn.outbuf);
        }
    }
}

/// The `(job, target, lease)` identity every unit-scoped frame carries.
fn unit_fields(frame: &Json) -> Option<(String, u8, u64)> {
    let job = frame.get("job").and_then(Json::as_str)?.to_string();
    let target = u8::try_from(frame.get("target").and_then(Json::as_u64)?).ok()?;
    let lease = frame.get("lease").and_then(Json::as_u64)?;
    Some((job, target, lease))
}

/// The JSON wire form of a lease grant.
fn grant_frame(grant: &UnitGrant) -> Json {
    Json::obj()
        .field("op", "grant")
        .field("job", grant.job.as_str())
        .field("target", grant.target)
        .field("lease", grant.lease)
        .field("spec", grant.spec.to_json())
        .field(
            "checkpoint",
            grant.checkpoint.as_ref().map(rvz_bench::report::matrix_checkpoint_to_json),
        )
}

/// The binary wire form of a lease grant (for workers that advertised
/// binary support): routing fields as a meta section, the resume
/// checkpoint — the bulky part — as a typed section.
fn binary_grant_frame(grant: &UnitGrant) -> Vec<u8> {
    let meta = Json::obj()
        .field("op", "grant")
        .field("job", grant.job.as_str())
        .field("target", grant.target)
        .field("lease", grant.lease)
        .field("spec", grant.spec.to_json());
    let mut frame =
        binfmt::FrameBuilder::new(binfmt::KIND_GRANT).json_section(binfmt::TAG_META, &meta);
    if let Some(cp) = &grant.checkpoint {
        frame = frame.checkpoint_section(binfmt::TAG_CHECKPOINT, cp);
    }
    frame.build()
}

/// A running coordinator: the reactor thread plus its bound worker
/// address.
pub struct CoordinatorHandle {
    addr: SocketAddr,
    thread: JoinHandle<()>,
}

impl CoordinatorHandle {
    /// Spawn the coordinator reactor on its own thread.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn spawn(core: Arc<ServiceCore>, listen: &str) -> io::Result<CoordinatorHandle> {
        let coordinator = Coordinator::bind(core, listen)?;
        let addr = coordinator.local_addr();
        let thread = std::thread::Builder::new()
            .name("rvz-service-coordinator".to_string())
            .spawn(move || coordinator.run())
            .map_err(io::Error::other)?;
        Ok(CoordinatorHandle { addr, thread })
    }

    /// The bound worker address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Join the reactor thread (call after [`ServiceCore::stop`]).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}
