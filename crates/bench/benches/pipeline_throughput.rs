//! Criterion benches for the individual MRT pipeline stages: test-case
//! generation, contract-trace collection (model), hardware-trace collection
//! (executor) and relational analysis.  Together these determine the §6.5
//! fuzzing speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revizor::gadgets;
use rvz_analyzer::Analyzer;
use rvz_executor::{Executor, ExecutorConfig, MeasurementMode};
use rvz_gen::{GeneratorConfig, InputGenerator, ProgramGenerator};
use rvz_isa::IsaSubset;
use rvz_model::{Contract, ContractModel};
use rvz_uarch::{CpuUnderTest, SpecCpu, UarchConfig};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    for (name, cfg) in [
        ("initial_8instr_2bb", GeneratorConfig::paper_initial()),
        (
            "escalated_24instr_5bb",
            GeneratorConfig::paper_initial().with_instructions(24).with_basic_blocks(5),
        ),
    ] {
        let generator = ProgramGenerator::new(cfg);
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                generator.generate(seed)
            })
        });
    }
    group.finish();
}

fn bench_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_ctrace");
    let tc = gadgets::spectre_v1();
    let input = InputGenerator::new(2).generate_one(&tc, 3);
    for contract in [Contract::ct_seq(), Contract::ct_cond(), Contract::ct_cond_bpas()] {
        let model = ContractModel::new(contract.clone());
        group.bench_with_input(BenchmarkId::from_parameter(contract.name()), &model, |b, m| {
            b.iter(|| m.collect(&tc, &input).unwrap())
        });
    }
    group.finish();
}

fn bench_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor_htrace");
    group.sample_size(30);
    let tc = gadgets::spectre_v1();
    let inputs = InputGenerator::new(2).generate(&tc, 3, 20);
    for (name, mode) in [
        ("prime_probe_20_inputs", MeasurementMode::prime_probe()),
        ("prime_probe_assist_20_inputs", MeasurementMode::prime_probe_assist()),
    ] {
        group.bench_function(name, |b| {
            let cpu = SpecCpu::new(UarchConfig::skylake());
            let mut ex = Executor::new(cpu, ExecutorConfig::fast(mode).with_repetitions(2));
            b.iter(|| ex.collect_htraces(&tc, &inputs).unwrap())
        });
    }
    // The measurement-session payoff grows with the repetition count: every
    // repetition of every input reuses the channel's precomputed address
    // lists and the per-input sample buffers (the paper runs 50 repetitions).
    for reps in [3usize, 5, 10] {
        group.bench_with_input(
            BenchmarkId::new("prime_probe_20_inputs_reps", reps),
            &reps,
            |b, &reps| {
                let cpu = SpecCpu::new(UarchConfig::skylake());
                let mut ex = Executor::new(
                    cpu,
                    ExecutorConfig::fast(MeasurementMode::prime_probe()).with_repetitions(reps),
                );
                b.iter(|| ex.collect_htraces(&tc, &inputs).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_executor_batch(c: &mut Criterion) {
    // A round's worth of test cases through one executor.  The session
    // persists across single `collect_htraces` calls too, so the batch API
    // must add no overhead over a caller-side loop — these two entries
    // guard that the numbers stay indistinguishable.
    let mut group = c.benchmark_group("executor_batch");
    group.sample_size(20);
    let cases: Vec<_> = [gadgets::spectre_v1(), gadgets::spectre_v1_1(), gadgets::spectre_v4()]
        .into_iter()
        .map(|tc| {
            let inputs = InputGenerator::new(2).generate(&tc, 7, 20);
            (tc, inputs)
        })
        .collect();
    let batch: Vec<(&rvz_isa::TestCase, &[rvz_isa::Input])> =
        cases.iter().map(|(tc, inputs)| (tc, inputs.as_slice())).collect();

    group.bench_function("batch_3_test_cases_reps3", |b| {
        let cpu = SpecCpu::new(UarchConfig::skylake());
        let mut ex = Executor::new(
            cpu,
            ExecutorConfig::fast(MeasurementMode::prime_probe()).with_repetitions(3),
        );
        b.iter(|| ex.collect_htraces_batch(&batch).unwrap())
    });
    group.bench_function("single_3_test_cases_reps3", |b| {
        let cpu = SpecCpu::new(UarchConfig::skylake());
        let mut ex = Executor::new(
            cpu,
            ExecutorConfig::fast(MeasurementMode::prime_probe()).with_repetitions(3),
        );
        b.iter(|| {
            cases
                .iter()
                .map(|(tc, inputs)| ex.collect_htraces(tc, inputs).unwrap())
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

fn bench_analyzer(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyzer");
    let tc = gadgets::spectre_v1();
    let inputs = InputGenerator::new(2).generate(&tc, 3, 50);
    let model = ContractModel::new(Contract::ct_seq());
    let ctraces: Vec<_> = inputs.iter().map(|i| model.collect_trace(&tc, i).unwrap()).collect();
    let cpu = SpecCpu::new(UarchConfig::skylake());
    let mut ex = Executor::new(cpu, ExecutorConfig::fast(MeasurementMode::prime_probe()));
    let htraces = ex.collect_htraces(&tc, &inputs).unwrap();
    group.bench_function("relational_check_50_inputs", |b| {
        let analyzer = Analyzer::new();
        b.iter(|| analyzer.check(&ctraces, &htraces))
    });
    group.finish();
}

fn bench_uarch(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_under_test");
    let generator =
        ProgramGenerator::new(GeneratorConfig::for_subset(IsaSubset::AR_MEM_CB).with_instructions(16));
    let tc = generator.generate(9);
    let input = InputGenerator::new(2).generate_one(&tc, 1);
    group.bench_function("single_run_16_instr", |b| {
        let mut cpu = SpecCpu::new(UarchConfig::skylake());
        b.iter(|| cpu.run(&tc, &input, &rvz_uarch::RunOptions::default()).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_model,
    bench_executor,
    bench_executor_batch,
    bench_analyzer,
    bench_uarch
);
criterion_main!(benches);
