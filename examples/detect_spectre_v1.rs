//! End-to-end fuzzing campaign: automatically surface Spectre V1 as a CT-SEQ
//! contract violation on the paper's Target 5 (Skylake, AR+MEM+CB,
//! Prime+Probe), using randomly generated test cases only.
//!
//! Run with: `cargo run --release --example detect_spectre_v1`

use revizor_suite::prelude::*;

fn main() {
    let target = Target::target5();
    println!("Fuzzing {target}");
    println!("Contract under test: CT-SEQ (speculation may expose nothing)\n");

    let generator = GeneratorConfig::for_subset(target.isa)
        .with_basic_blocks(4)
        .with_instructions(14);
    let config = FuzzerConfig::for_target(&target, Contract::ct_seq())
        .with_generator(generator)
        .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2))
        .with_inputs_per_test_case(20)
        .with_max_test_cases(200)
        .with_seed(7);
    let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());
    let report = fuzzer.run();

    println!("test cases executed : {}", report.test_cases);
    println!("inputs executed     : {}", report.total_inputs);
    println!("duration            : {:?}", report.duration);
    println!("pattern coverage    : {}", report.coverage);
    println!("mean effectiveness  : {:.2}", report.mean_effectiveness);
    println!();

    match report.violation {
        Some(v) => {
            println!("VIOLATION of {} detected after {} test cases", v.contract, v.test_cases_until_detection);
            println!("classified as: {}", v.vulnerability);
            println!("diverging inputs: #{} and #{}", v.violation.input_a, v.violation.input_b);
            println!("  htrace A: {}", v.violation.htrace_a);
            println!("  htrace B: {}", v.violation.htrace_b);
            println!("\nviolating test case:\n{}", v.test_case.to_asm());
        }
        None => println!("no violation found within the budget — rerun with a larger budget"),
    }
}
