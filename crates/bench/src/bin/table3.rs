//! Regenerates Table 3: detected contract violations for every target and
//! every CT-* contract.
//!
//! Usage: `cargo run --release -p rvz-bench --bin table3 [budget] [--json] [--threads=N] [--filter] [--zoo]`
//!
//! `--filter` enables the static speculation pre-filter: test cases that
//! provably cannot leak are discarded after generation, before any model
//! or hardware measurement.  Verdicts are unchanged (the filter is sound);
//! the measured-test-case counts drop.
//!
//! `--zoo` extends the matrix with the predictor-zoo targets (9-13): TAGE
//! and loop-predictor fuzzing cells plus the scenario-pinned BTB-aliasing,
//! deep-RSB-chain and predictor-state cells — 52 cells instead of 32.  The
//! classic 32 cells keep byte-identical verdicts either way (same seeds,
//! same streams).
//!
//! The 32 cells run as one [`CampaignMatrix`] over a single shared worker
//! pool: the four contracts of each target share one test-case stream and
//! its hardware traces (collected once, checked four times), so the whole
//! matrix costs a fraction of 32 independent campaigns.  Live progress is
//! printed to stderr as cells finish.
//!
//! With `--json` a machine-readable document is written to stdout instead of
//! the table: per-cell `target`, `contract`, `found`, `vulnerability`,
//! `test_cases`, `duration_ms` and `seed`.
//!
//! The paper fuzzes each cell for 24 hours or until the first violation; the
//! default budget here is sized for a simulator run of a few minutes.  The
//! rare latency variants of Targets 3 and 6 may need a larger budget, just
//! as the paper's artifact notes that they are hard to reproduce.

use revizor::campaign::{CellEvent, ProgressObserver};
use revizor::orchestrator::{CampaignMatrix, MatrixReport};
use revizor::targets::Target;
use rvz_bench::{budget_from_args, flag_from_args, flag_value_from_args, fmt_duration, matrix_report_json, row};
use rvz_model::Contract;

/// Streams one stderr line per finished cell, so long runs show progress.
struct LiveStatus;

impl ProgressObserver for LiveStatus {
    fn cell_finished(&mut self, event: &CellEvent) {
        let verdict = match (event.found, &event.vulnerability) {
            (true, Some(v)) => format!("VIOLATION ({v})"),
            (true, None) => "VIOLATION".to_string(),
            (false, _) => "no violation".to_string(),
        };
        eprintln!(
            "[{}] Target {} x {:<14} {verdict} after {} test cases",
            fmt_duration(event.elapsed),
            event.target_id,
            event.contract.name(),
            event.test_cases,
        );
    }
}

fn main() {
    // Budget 300 with matrix seed 30 reproduces 30/32 cells of the paper's
    // Table 3 (measured; only the two rare V1-var cells of Target 6 are
    // missing — the paper's artifact flags exactly those as hard).
    let budget = budget_from_args(300);
    let json_mode = flag_from_args("--json");
    let filter = flag_from_args("--filter");
    let zoo = flag_from_args("--zoo");
    let threads = flag_value_from_args::<usize>("--threads").unwrap_or(1);

    if !json_mode {
        println!("Table 3: testing results (budget: {budget} test cases per cell group)");
        println!("  check mark = violation detected (vulnerability, time); x = no violation within budget");
        println!();
    }

    let matrix = if zoo { CampaignMatrix::table3_zoo(30) } else { CampaignMatrix::table3(30) }
        .with_budget(budget)
        .with_parallelism(threads)
        .with_speculation_filter(filter);
    let report = matrix.run_with_observer(&mut LiveStatus);

    if json_mode {
        println!("{}", matrix_report_json(&report, budget).render_pretty());
    } else {
        print_table(&report, zoo);
    }
}

fn print_table(report: &MatrixReport, zoo: bool) {
    let contracts = Contract::table3_contracts();
    let widths = [14, 26, 26, 26, 26];
    let mut header = vec!["".to_string()];
    header.extend(contracts.iter().map(|c| c.name()));
    println!("{}", row(&header, &widths));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 3 * widths.len()));

    let mut matches = 0usize;
    let mut cells = 0usize;
    let targets = if zoo { Target::catalog() } else { Target::all() };
    for target in targets {
        let label = match target.cpu_config.predictors.label() {
            l if l.is_empty() || target.id <= 8 => format!("Target {}", target.id),
            l => format!("Target {} ({l})", target.id),
        };
        let mut line = vec![label];
        for contract in &contracts {
            let outcome = report.cell(target.id, contract).expect("table3 covers every cell");
            let paper_row = target.id <= 8;
            let expected = target.paper_expects_violation(&contract.name());
            if paper_row {
                cells += 1;
                if outcome.found() == expected {
                    matches += 1;
                }
            }
            let cell = if outcome.found() {
                format!(
                    "YES ({}, {})",
                    outcome.vulnerability().map(|v| v.to_string()).unwrap_or("?".to_string()),
                    fmt_duration(outcome.detection_time)
                )
            } else {
                format!("no  ({} tcs)", outcome.test_cases)
            };
            let marker = if !paper_row || outcome.found() == expected {
                ""
            } else {
                " [differs from paper]"
            };
            line.push(format!("{cell}{marker}"));
        }
        println!("{}", row(&line, &widths));
    }

    println!();
    println!(
        "Matrix: {} unique (target, test case) measurements for {} cells in {} \
         (hardware traces shared across each target's contracts).",
        report.test_cases,
        report.cells.len(),
        fmt_duration(report.duration)
    );
    if report.statically_filtered > 0 {
        println!(
            "Static pre-filter: {} of {} generated test cases discarded before measurement.",
            report.statically_filtered, report.generated
        );
    }
    println!(
        "Agreement with the paper's Table 3: {matches}/{cells} cells \
         (cells marked 'differs' usually correspond to the rare V1-var/V4-var variants, \
         which the paper's artifact also describes as hard to reproduce)."
    );
    if zoo {
        println!(
            "Zoo rows (Targets 9-13) have no paper counterpart and are excluded from the \
             agreement count; Targets 11-12 are expected to violate every contract \
             (no CT contract models indirect-jump or return speculation), Target 13 is \
             the deliberate compliant cell."
        );
    }
}
