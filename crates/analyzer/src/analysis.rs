//! Input classes, effectiveness statistics and violation detection.

use rvz_executor::HTrace;
use rvz_model::CTrace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A group of inputs that share the same contract trace (an equivalence
/// class of contract-trace equality, §4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputClass {
    /// Digest of the shared contract trace.
    pub ctrace_digest: u64,
    /// Indices (into the input vector) of the members, in priming order.
    pub members: Vec<usize>,
}

impl InputClass {
    /// A class is *effective* if it has at least two members; singleton
    /// classes cannot witness a violation and are discarded (CH2).
    pub fn is_effective(&self) -> bool {
        self.members.len() >= 2
    }
}

/// Input-effectiveness statistics, reported by the fuzzer to gauge how much
/// of the input generation effort is wasted (§5.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EffectivenessStats {
    /// Total inputs analyzed.
    pub total_inputs: usize,
    /// Inputs belonging to a class with at least two members.
    pub effective_inputs: usize,
    /// Number of distinct classes.
    pub classes: usize,
    /// Number of singleton (ineffective) classes.
    pub singleton_classes: usize,
}

impl EffectivenessStats {
    /// Accumulate another test case's statistics into this one (field-wise
    /// sums).  Campaign drivers use this to aggregate per-cell totals out
    /// of per-test-case analyses; the sums stay exact integers, so
    /// aggregates survive serialization round trips byte-identically.
    pub fn merge(&mut self, other: &EffectivenessStats) {
        self.total_inputs += other.total_inputs;
        self.effective_inputs += other.effective_inputs;
        self.classes += other.classes;
        self.singleton_classes += other.singleton_classes;
    }

    /// Fraction of inputs that are effective (0.0 when there are no inputs).
    pub fn effectiveness(&self) -> f64 {
        if self.total_inputs == 0 {
            0.0
        } else {
            self.effective_inputs as f64 / self.total_inputs as f64
        }
    }
}

/// A contract counterexample: two inputs with equal contract traces but
/// non-equivalent hardware traces (Definition 1 violated).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Index of the first input.
    pub input_a: usize,
    /// Index of the second input.
    pub input_b: usize,
    /// Hardware trace of the first input.
    pub htrace_a: HTrace,
    /// Hardware trace of the second input.
    pub htrace_b: HTrace,
    /// Digest of the shared contract trace.
    pub ctrace_digest: u64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "contract violation: inputs #{} and #{} share a contract trace", self.input_a, self.input_b)?;
        writeln!(f, "  htrace[{:>3}] = {}", self.input_a, self.htrace_a)?;
        write!(f, "  htrace[{:>3}] = {}", self.input_b, self.htrace_b)
    }
}

/// The outcome of one relational analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisResult {
    /// All detected violations (possibly several per class).
    pub violations: Vec<Violation>,
    /// Input-effectiveness statistics.
    pub stats: EffectivenessStats,
}

impl AnalysisResult {
    /// Did the analysis find at least one violation?
    pub fn has_violation(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// The relational analyzer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Analyzer {
    /// Report at most one violation per input class (the fuzzer only needs
    /// one counterexample to stop); set to `false` to enumerate all pairs.
    pub first_violation_per_class: bool,
}

impl Analyzer {
    /// Analyzer with the default setting (one violation per class).
    pub fn new() -> Analyzer {
        Analyzer { first_violation_per_class: true }
    }

    /// Group inputs into classes by contract-trace equality, preserving
    /// priming order within each class.
    pub fn input_classes(&self, ctraces: &[CTrace]) -> Vec<InputClass> {
        let mut by_digest: HashMap<u64, InputClass> = HashMap::new();
        let mut order: Vec<u64> = Vec::new();
        for (i, ct) in ctraces.iter().enumerate() {
            let digest = ct.digest();
            let entry = by_digest.entry(digest).or_insert_with(|| {
                order.push(digest);
                InputClass { ctrace_digest: digest, members: Vec::new() }
            });
            entry.members.push(i);
        }
        order.into_iter().map(|d| by_digest.remove(&d).expect("inserted above")).collect()
    }

    /// Compute effectiveness statistics for a set of classes.
    pub fn effectiveness(&self, classes: &[InputClass], total_inputs: usize) -> EffectivenessStats {
        let singleton_classes = classes.iter().filter(|c| !c.is_effective()).count();
        let effective_inputs =
            classes.iter().filter(|c| c.is_effective()).map(|c| c.members.len()).sum();
        EffectivenessStats {
            total_inputs,
            effective_inputs,
            classes: classes.len(),
            singleton_classes,
        }
    }

    /// Run the full relational check of Definition 1 on parallel vectors of
    /// contract and hardware traces (index `i` belongs to input `i`).
    ///
    /// # Panics
    /// Panics if the two vectors have different lengths.
    pub fn check(&self, ctraces: &[CTrace], htraces: &[HTrace]) -> AnalysisResult {
        assert_eq!(ctraces.len(), htraces.len(), "one hardware trace per contract trace");
        let classes = self.input_classes(ctraces);
        let stats = self.effectiveness(&classes, ctraces.len());
        let mut violations = Vec::new();
        for class in classes.iter().filter(|c| c.is_effective()) {
            'class: for (k, &a) in class.members.iter().enumerate() {
                for &b in &class.members[k + 1..] {
                    if !htraces[a].equivalent(&htraces[b]) {
                        violations.push(Violation {
                            input_a: a,
                            input_b: b,
                            htrace_a: htraces[a],
                            htrace_b: htraces[b],
                            ctrace_digest: class.ctrace_digest,
                        });
                        if self.first_violation_per_class {
                            break 'class;
                        }
                    }
                }
            }
        }
        AnalysisResult { violations, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_cache::SetVector;
    use rvz_model::Observation;

    fn ct(addrs: &[u64]) -> CTrace {
        CTrace::new(addrs.iter().map(|a| Observation::MemAddr(*a)).collect())
    }

    fn ht(sets: &[usize]) -> HTrace {
        HTrace::from_sets(SetVector::from_sets(sets.iter().copied()))
    }

    #[test]
    fn classes_group_by_ctrace() {
        let a = Analyzer::new();
        let classes = a.input_classes(&[ct(&[1]), ct(&[2]), ct(&[1]), ct(&[3]), ct(&[1])]);
        assert_eq!(classes.len(), 3);
        assert_eq!(classes[0].members, vec![0, 2, 4]);
        assert!(classes[0].is_effective());
        assert!(!classes[1].is_effective());
    }

    #[test]
    fn effectiveness_statistics() {
        let a = Analyzer::new();
        let classes = a.input_classes(&[ct(&[1]), ct(&[2]), ct(&[1]), ct(&[3])]);
        let stats = a.effectiveness(&classes, 4);
        assert_eq!(stats.total_inputs, 4);
        assert_eq!(stats.effective_inputs, 2);
        assert_eq!(stats.classes, 3);
        assert_eq!(stats.singleton_classes, 2);
        assert!((stats.effectiveness() - 0.5).abs() < 1e-9);
        assert_eq!(EffectivenessStats::default().effectiveness(), 0.0);
    }

    #[test]
    fn no_violation_when_htraces_match_within_classes() {
        let a = Analyzer::new();
        let r = a.check(
            &[ct(&[1]), ct(&[1]), ct(&[2]), ct(&[2])],
            &[ht(&[4]), ht(&[4]), ht(&[8]), ht(&[8])],
        );
        assert!(!r.has_violation());
        assert_eq!(r.stats.effective_inputs, 4);
    }

    #[test]
    fn violation_when_htraces_differ_within_a_class() {
        let a = Analyzer::new();
        let r = a.check(&[ct(&[1]), ct(&[1])], &[ht(&[4]), ht(&[9])]);
        assert!(r.has_violation());
        assert_eq!(r.violations.len(), 1);
        let v = &r.violations[0];
        assert_eq!((v.input_a, v.input_b), (0, 1));
        assert!(format!("{v}").contains("contract violation"));
    }

    #[test]
    fn subset_traces_are_equivalent_not_violations() {
        // One input observed with and one without the speculative access
        // (different microarchitectural contexts): subset relation, no
        // violation (§5.5).
        let a = Analyzer::new();
        let r = a.check(&[ct(&[1]), ct(&[1])], &[ht(&[4, 6, 13]), ht(&[4, 13])]);
        assert!(!r.has_violation());
    }

    #[test]
    fn no_violation_across_different_classes() {
        let a = Analyzer::new();
        let r = a.check(&[ct(&[1]), ct(&[2])], &[ht(&[4]), ht(&[9])]);
        assert!(!r.has_violation());
        assert_eq!(r.stats.singleton_classes, 2);
    }

    #[test]
    fn singleton_classes_are_skipped() {
        let a = Analyzer::new();
        let r = a.check(&[ct(&[1]), ct(&[2]), ct(&[3])], &[ht(&[1]), ht(&[2]), ht(&[3])]);
        assert!(!r.has_violation());
        assert_eq!(r.stats.effective_inputs, 0);
    }

    #[test]
    fn all_pairs_mode_reports_every_violation() {
        let a = Analyzer { first_violation_per_class: false };
        let r = a.check(
            &[ct(&[1]), ct(&[1]), ct(&[1])],
            &[ht(&[1]), ht(&[2]), ht(&[3])],
        );
        assert_eq!(r.violations.len(), 3);
        let first_only = Analyzer::new().check(
            &[ct(&[1]), ct(&[1]), ct(&[1])],
            &[ht(&[1]), ht(&[2]), ht(&[3])],
        );
        assert_eq!(first_only.violations.len(), 1);
    }

    #[test]
    #[should_panic(expected = "one hardware trace per contract trace")]
    fn mismatched_lengths_panic() {
        Analyzer::new().check(&[ct(&[1])], &[]);
    }

    #[test]
    fn empty_input_set() {
        let r = Analyzer::new().check(&[], &[]);
        assert!(!r.has_violation());
        assert_eq!(r.stats.total_inputs, 0);
    }
}
