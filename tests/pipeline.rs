//! Integration tests for the end-to-end MRT pipeline: the fuzzer on the
//! paper's targets, the diversity feedback, the minimizer and the detection
//! harnesses.

use revizor_suite::prelude::*;

#[test]
fn target1_baseline_produces_no_false_violations() {
    // Table 3, Target 1: arithmetic-only test cases on the speculative part
    // comply with every contract — the noise filtering and the relational
    // analysis produce no false positives.
    let target = Target::target1();
    for contract in [Contract::ct_seq(), Contract::ct_cond_bpas()] {
        let config = FuzzerConfig::for_target(&target, contract)
            .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2))
            .with_inputs_per_test_case(15)
            .with_max_test_cases(15)
            .with_seed(5);
        let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());
        let report = fuzzer.run();
        assert!(!report.found_violation());
        assert_eq!(report.test_cases, 15);
    }
}

#[test]
fn full_campaign_detects_and_classifies_spectre_v1() {
    // Seed 9 finds its first V1 at test case 13 under the orchestrator's
    // detection-tuned defaults (see the per-seed table in
    // `crates/revizor/src/detection.rs`); budget 40 keeps headroom.
    let outcome = detection::detection_time(&Target::target5(), Contract::ct_seq(), 9, 40);
    assert!(outcome.found);
    assert_eq!(outcome.vulnerability.as_deref(), Some("V1"));
    assert!(outcome.inputs > 0);
}

#[test]
fn assist_campaigns_detect_mds_and_lvi_with_random_test_cases() {
    // Targets 7 and 8 of Table 3, with randomly generated test cases.
    // Measured first detections under the detection-tuned defaults:
    // Target 7 × CT-COND-BPAS finds MDS at 6/49/79 test cases for seeds
    // 2/1/11 (seed 3 needs 204); Target 8 × CT-COND-BPAS finds LVI-Null at
    // 17/17/15 for seeds 3/9/11.
    let mds = detection::detection_time(&Target::target7(), Contract::ct_cond_bpas(), 2, 80);
    assert!(mds.found, "MDS must surface on Target 7");
    assert_eq!(mds.vulnerability.as_deref(), Some("MDS"));

    let lvi = detection::detection_time(&Target::target8(), Contract::ct_cond_bpas(), 3, 80);
    assert!(lvi.found, "LVI-Null must surface on Target 8");
    assert_eq!(lvi.vulnerability.as_deref(), Some("LVI-Null"));
}

#[test]
fn fuzzer_escalates_generator_configuration_over_rounds() {
    // The diversity analysis must reconfigure the generator when coverage
    // goals are reached (§5.6); on the AR-only target nothing is ever
    // detected, so several rounds complete and escalations accumulate.
    let target = Target::target1();
    let config = FuzzerConfig::for_target(&target, Contract::ct_seq())
        .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2))
        .with_inputs_per_test_case(10)
        .with_max_test_cases(30)
        .with_seed(2);
    let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());
    let report = fuzzer.run();
    assert!(report.rounds >= 2);
    assert!(report.escalations >= 1, "coverage feedback should escalate the generator");
    assert!(!report.coverage.covered().is_empty(), "patterns should be covered");
}

#[test]
fn minimizer_shrinks_a_generated_counterexample() {
    // Find a violation with random test cases, then minimize it and check
    // the violation still reproduces on the minimized artifact.
    let target = Target::target5();
    let generator = GeneratorConfig::for_subset(target.isa)
        .with_basic_blocks(4)
        .with_instructions(14);
    let config = FuzzerConfig::for_target(&target, Contract::ct_seq())
        .with_generator(generator)
        .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2))
        .with_inputs_per_test_case(20)
        .with_max_test_cases(80)
        .with_seed(9);
    let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());
    let report = fuzzer.run();
    let violation = report.violation.expect("campaign must find a violation");

    let original_len = violation.test_case.instruction_count();
    let minimized = Postprocessor::new().minimize(&mut fuzzer, &violation.test_case, &violation.inputs);
    let check = fuzzer.test_with_inputs(&minimized.test_case, &minimized.inputs).unwrap();
    assert!(check.confirmed_violation.is_some(), "minimized test case must still violate");
    assert!(minimized.test_case.instruction_count() <= original_len + minimized_fence_count(&minimized));
    assert!(!minimized.leaking_region.is_empty(), "the leak must be localized");
}

fn minimized_fence_count(m: &revizor::minimize::MinimizedViolation) -> usize {
    m.test_case
        .blocks()
        .iter()
        .map(|b| b.instrs.iter().filter(|i| i.is_fence()).count())
        .sum()
}

#[test]
fn detection_works_across_measurement_repetition_settings() {
    // The paper repeats each measurement 50 times; the detection result must
    // not depend on the exact repetition count on a deterministic CPU.
    let gadget = gadgets::spectre_v1();
    let target = Target::target5();
    for reps in [2usize, 5, 10] {
        let config = FuzzerConfig::for_target(&target, Contract::ct_seq())
            .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(reps));
        let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());
        let inputs = InputGenerator::new(2).generate(&gadget, 11, 24);
        let outcome = fuzzer.test_with_inputs(&gadget, &inputs).unwrap();
        assert!(outcome.confirmed_violation.is_some(), "reps={reps}");
    }
}

#[test]
fn noisy_executor_still_reaches_the_same_verdicts() {
    // With synthetic one-off noise and SMI pollution enabled, the filtering
    // machinery (§5.3) keeps both the positive and the negative verdict.
    use rvz_executor::NoiseConfig;
    let target = Target::target5();
    let noisy = ExecutorConfig::fast(target.mode)
        .with_repetitions(10)
        .with_noise(NoiseConfig { one_off_probability: 0.05, smi_probability: 0.05, seed: 17 });

    // Positive verdict: the V1 gadget still violates CT-SEQ.
    let config = FuzzerConfig::for_target(&target, Contract::ct_seq()).with_executor(noisy);
    let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());
    let inputs = InputGenerator::new(2).generate(&gadgets::spectre_v1(), 11, 24);
    let outcome = fuzzer.test_with_inputs(&gadgets::spectre_v1(), &inputs).unwrap();
    assert!(outcome.confirmed_violation.is_some());

    // Negative verdict: the AR-only baseline still complies.
    let baseline = Target::target1();
    let config = FuzzerConfig::for_target(&baseline, Contract::ct_seq())
        .with_executor(noisy)
        .with_inputs_per_test_case(10)
        .with_max_test_cases(10);
    let mut fuzzer = Revizor::new(baseline.cpu(), config).with_target(baseline.clone());
    let report = fuzzer.run();
    assert!(!report.found_violation(), "noise must not create false violations");
}

#[test]
fn smoke_one_full_round_finds_spectre_v1_end_to_end() {
    // One full fuzzing round, end to end with a fixed seed: the generator
    // samples test cases, the model collects contract traces, the executor
    // collects hardware traces on the vulnerable target, and the analyzer's
    // relational check confirms a Spectre-V1 violation of CT-SEQ.
    let target = Target::target5();
    let generator = GeneratorConfig::for_subset(target.isa)
        .with_basic_blocks(4)
        .with_instructions(14);
    let config = FuzzerConfig::for_target(&target, Contract::ct_seq())
        .with_generator(generator)
        .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2))
        .with_inputs_per_test_case(20)
        .with_max_test_cases(120)
        .with_seed(9);
    let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());
    let report = fuzzer.run();
    assert!(report.found_violation(), "Spectre V1 must surface within the budget");
    let v = report.violation.expect("violation report");
    assert_eq!(v.vulnerability, VulnClass::SpectreV1);
    assert!(v.test_case.conditional_branch_count() > 0);
    assert_ne!(v.violation.input_a, v.violation.input_b);
    assert!(v.inputs_until_detection >= v.test_cases_until_detection);
}

#[test]
fn parallel_rounds_reproduce_the_sequential_campaign() {
    // The acceptance property of the parallel round driver: for a fixed
    // campaign seed, `parallelism = N` confirms exactly the violations that
    // `parallelism = 1` confirms, with identical counters.
    let campaign = |parallelism: usize| {
        let target = Target::target5();
        let generator = GeneratorConfig::for_subset(target.isa)
            .with_basic_blocks(4)
            .with_instructions(14);
        let config = FuzzerConfig::for_target(&target, Contract::ct_seq())
            .with_generator(generator)
            .with_executor(ExecutorConfig::fast(target.mode).with_repetitions(2))
            .with_inputs_per_test_case(20)
            .with_max_test_cases(120)
            .with_seed(1)
            .with_parallelism(parallelism);
        let mut fuzzer = Revizor::new(target.cpu(), config).with_target(target.clone());
        fuzzer.run()
    };
    let sequential = campaign(1);
    let parallel = campaign(4);

    assert_eq!(sequential.test_cases, parallel.test_cases);
    assert_eq!(sequential.total_inputs, parallel.total_inputs);
    assert_eq!(sequential.rounds, parallel.rounds);
    assert_eq!(sequential.escalations, parallel.escalations);
    assert_eq!(sequential.coverage, parallel.coverage);

    let (a, b) = (
        sequential.violation.expect("sequential campaign finds V1"),
        parallel.violation.expect("parallel campaign finds V1"),
    );
    assert_eq!(a.test_cases_until_detection, b.test_cases_until_detection);
    assert_eq!(a.inputs_until_detection, b.inputs_until_detection);
    assert_eq!(a.vulnerability, b.vulnerability);
    assert_eq!(a.violation.input_a, b.violation.input_a);
    assert_eq!(a.violation.input_b, b.violation.input_b);
    assert_eq!(a.inputs, b.inputs);
}
