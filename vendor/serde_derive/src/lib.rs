//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors API-compatible stubs for its external dependencies.  Nothing in
//! the workspace serializes values at runtime — the `#[derive(Serialize,
//! Deserialize)]` annotations only declare intent — so the derives here
//! expand to nothing.  Swapping the `[workspace.dependencies]` path entries
//! back to the crates.io versions requires no source changes.

use proc_macro::TokenStream;

/// Derive macro for `serde::Serialize`; expands to nothing in this stub.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive macro for `serde::Deserialize`; expands to nothing in this stub.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
