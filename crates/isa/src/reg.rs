//! Architectural registers, status flags and operand widths.

use serde::{Deserialize, Serialize};
use std::fmt;

/// General-purpose registers of the ISA.
///
/// The set mirrors the x86-64 integer register file.  Two registers have a
/// fixed role in generated test cases, following the paper:
///
/// * [`Reg::R14`] always holds the base address of the memory sandbox
///   (§5.1, Figure 3);
/// * [`Reg::Rsp`] is the stack pointer used by `CALL`/`RET` and points into
///   the dedicated stack area of the sandbox.
///
/// # Example
/// ```
/// use rvz_isa::Reg;
/// assert_eq!(Reg::Rax.index(), 0);
/// assert_eq!(Reg::ALL.len(), 16);
/// assert_eq!(format!("{}", Reg::R14), "R14");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Reg {
    Rax,
    Rbx,
    Rcx,
    Rdx,
    Rsi,
    Rdi,
    Rbp,
    Rsp,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg {
    /// All registers, in index order.
    pub const ALL: [Reg; 16] = [
        Reg::Rax,
        Reg::Rbx,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rsi,
        Reg::Rdi,
        Reg::Rbp,
        Reg::Rsp,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// The reduced register set used by the generator to improve input
    /// effectiveness ("the generator generates programs with only four
    /// registers", §5.1).
    pub const GENERATOR_SET: [Reg; 4] = [Reg::Rax, Reg::Rbx, Reg::Rcx, Reg::Rdx];

    /// Register reserved as the sandbox base pointer.
    pub const SANDBOX_BASE: Reg = Reg::R14;

    /// Dense index of the register (0..16).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Reg::index`].
    ///
    /// # Panics
    /// Panics if `idx >= 16`.
    #[inline]
    pub fn from_index(idx: usize) -> Reg {
        Reg::ALL[idx]
    }

    /// Returns `true` for registers that generated code must not clobber
    /// arbitrarily (the sandbox base and the stack pointer).
    #[inline]
    pub fn is_reserved(self) -> bool {
        matches!(self, Reg::R14 | Reg::Rsp)
    }

    /// x86-style name for the given access width (e.g. `EAX` for the 32-bit
    /// view of `RAX`).
    pub fn name(self, width: Width) -> String {
        let full = format!("{self}");
        match width {
            Width::Qword => full,
            Width::Dword => match self {
                Reg::Rax | Reg::Rbx | Reg::Rcx | Reg::Rdx | Reg::Rsi | Reg::Rdi | Reg::Rbp
                | Reg::Rsp => full.replacen('R', "E", 1),
                _ => format!("{full}D"),
            },
            Width::Word => match self {
                Reg::Rax | Reg::Rbx | Reg::Rcx | Reg::Rdx | Reg::Rsi | Reg::Rdi | Reg::Rbp
                | Reg::Rsp => full[1..].to_string(),
                _ => format!("{full}W"),
            },
            Width::Byte => match self {
                Reg::Rax => "AL".to_string(),
                Reg::Rbx => "BL".to_string(),
                Reg::Rcx => "CL".to_string(),
                Reg::Rdx => "DL".to_string(),
                Reg::Rsi => "SIL".to_string(),
                Reg::Rdi => "DIL".to_string(),
                Reg::Rbp => "BPL".to_string(),
                Reg::Rsp => "SPL".to_string(),
                _ => format!("{full}B"),
            },
        }
    }
}

/// A set of general-purpose registers as a 16-bit mask, one bit per
/// [`Reg::index`].
///
/// This is the allocation-free form of a `Vec<Reg>` read/write set: building
/// it, testing membership and intersecting two sets are single-word
/// operations, which is what lets per-instruction execution records stay
/// `Copy` on the measurement hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct RegSet {
    bits: u16,
}

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet { bits: 0 };

    /// Set containing exactly the given registers.
    pub fn of(regs: &[Reg]) -> RegSet {
        let mut s = RegSet::EMPTY;
        for &r in regs {
            s.insert(r);
        }
        s
    }

    /// Add a register to the set.
    #[inline]
    pub fn insert(&mut self, r: Reg) {
        self.bits |= 1 << r.index();
    }

    /// Whether the register is in the set.
    #[inline]
    pub fn contains(self, r: Reg) -> bool {
        self.bits & (1 << r.index()) != 0
    }

    /// Whether the two sets share any register.
    #[inline]
    pub fn intersects(self, other: RegSet) -> bool {
        self.bits & other.bits != 0
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Number of registers in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// The registers in the set, in [`Reg::index`] order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        Reg::ALL.into_iter().filter(move |r| self.contains(*r))
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<T: IntoIterator<Item = Reg>>(iter: T) -> RegSet {
        let mut s = RegSet::EMPTY;
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Reg::Rax => "RAX",
            Reg::Rbx => "RBX",
            Reg::Rcx => "RCX",
            Reg::Rdx => "RDX",
            Reg::Rsi => "RSI",
            Reg::Rdi => "RDI",
            Reg::Rbp => "RBP",
            Reg::Rsp => "RSP",
            Reg::R8 => "R8",
            Reg::R9 => "R9",
            Reg::R10 => "R10",
            Reg::R11 => "R11",
            Reg::R12 => "R12",
            Reg::R13 => "R13",
            Reg::R14 => "R14",
            Reg::R15 => "R15",
        };
        f.write_str(s)
    }
}

/// Status flags written by arithmetic instructions and read by conditional
/// instructions (`Jcc`, `CMOVcc`, `SETcc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Flag {
    /// Carry flag.
    Cf,
    /// Zero flag.
    Zf,
    /// Sign flag.
    Sf,
    /// Overflow flag.
    Of,
    /// Parity flag (parity of the low byte of the result).
    Pf,
}

impl Flag {
    /// All flags in index order.
    pub const ALL: [Flag; 5] = [Flag::Cf, Flag::Zf, Flag::Sf, Flag::Of, Flag::Pf];

    /// Dense index of the flag (0..5).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Flag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Flag::Cf => "CF",
            Flag::Zf => "ZF",
            Flag::Sf => "SF",
            Flag::Of => "OF",
            Flag::Pf => "PF",
        };
        f.write_str(s)
    }
}

/// Access width of an operand, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Width {
    /// 8-bit access.
    Byte,
    /// 16-bit access.
    Word,
    /// 32-bit access.
    Dword,
    /// 64-bit access.
    Qword,
}

impl Width {
    /// All widths from narrowest to widest.
    pub const ALL: [Width; 4] = [Width::Byte, Width::Word, Width::Dword, Width::Qword];

    /// Number of bytes accessed.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            Width::Byte => 1,
            Width::Word => 2,
            Width::Dword => 4,
            Width::Qword => 8,
        }
    }

    /// Number of bits accessed.
    #[inline]
    pub fn bits(self) -> u32 {
        (self.bytes() * 8) as u32
    }

    /// Mask selecting the low `bits()` bits of a 64-bit value.
    #[inline]
    pub fn mask(self) -> u64 {
        match self {
            Width::Qword => u64::MAX,
            w => (1u64 << w.bits()) - 1,
        }
    }

    /// Truncate `value` to this width (zero-extending representation).
    #[inline]
    pub fn truncate(self, value: u64) -> u64 {
        value & self.mask()
    }

    /// Sign bit position for this width.
    #[inline]
    pub fn sign_bit(self) -> u64 {
        1u64 << (self.bits() - 1)
    }

    /// x86 pointer-size keyword, e.g. `byte ptr`.
    pub fn ptr_keyword(self) -> &'static str {
        match self {
            Width::Byte => "byte ptr",
            Width::Word => "word ptr",
            Width::Dword => "dword ptr",
            Width::Qword => "qword ptr",
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bytes() * 8)
    }
}

/// A packed snapshot of the five status flags.
///
/// # Example
/// ```
/// use rvz_isa::reg::FlagSet;
/// use rvz_isa::Flag;
/// let mut f = FlagSet::default();
/// f.set(Flag::Zf, true);
/// assert!(f.get(Flag::Zf));
/// assert!(!f.get(Flag::Cf));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlagSet(u8);

impl FlagSet {
    /// Create a flag set from a raw bit pattern (low five bits used).
    #[inline]
    pub fn from_bits(bits: u8) -> FlagSet {
        FlagSet(bits & 0x1f)
    }

    /// Raw bit pattern.
    #[inline]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Read a flag.
    #[inline]
    pub fn get(self, flag: Flag) -> bool {
        self.0 & (1 << flag.index()) != 0
    }

    /// Write a flag.
    #[inline]
    pub fn set(&mut self, flag: Flag, value: bool) {
        if value {
            self.0 |= 1 << flag.index();
        } else {
            self.0 &= !(1 << flag.index());
        }
    }
}

impl fmt::Display for FlagSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for flag in Flag::ALL {
            if self.get(flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{flag}")?;
                first = false;
            }
        }
        if first {
            write!(f, "-")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_index_roundtrip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), *r);
        }
    }

    #[test]
    fn reserved_registers() {
        assert!(Reg::R14.is_reserved());
        assert!(Reg::Rsp.is_reserved());
        assert!(!Reg::Rax.is_reserved());
        assert_eq!(Reg::SANDBOX_BASE, Reg::R14);
    }

    #[test]
    fn generator_set_excludes_reserved() {
        for r in Reg::GENERATOR_SET {
            assert!(!r.is_reserved());
        }
    }

    #[test]
    fn width_masks() {
        assert_eq!(Width::Byte.mask(), 0xff);
        assert_eq!(Width::Word.mask(), 0xffff);
        assert_eq!(Width::Dword.mask(), 0xffff_ffff);
        assert_eq!(Width::Qword.mask(), u64::MAX);
        assert_eq!(Width::Byte.truncate(0x1234), 0x34);
        assert_eq!(Width::Dword.sign_bit(), 0x8000_0000);
    }

    #[test]
    fn width_bytes_and_bits() {
        for w in Width::ALL {
            assert_eq!(w.bits() as u64, w.bytes() * 8);
        }
    }

    #[test]
    fn flagset_set_get() {
        let mut f = FlagSet::default();
        assert_eq!(f.bits(), 0);
        f.set(Flag::Cf, true);
        f.set(Flag::Of, true);
        assert!(f.get(Flag::Cf));
        assert!(f.get(Flag::Of));
        assert!(!f.get(Flag::Zf));
        f.set(Flag::Cf, false);
        assert!(!f.get(Flag::Cf));
    }

    #[test]
    fn flagset_display() {
        let mut f = FlagSet::default();
        assert_eq!(format!("{f}"), "-");
        f.set(Flag::Zf, true);
        f.set(Flag::Sf, true);
        assert_eq!(format!("{f}"), "ZF|SF");
    }

    #[test]
    fn reg_subregister_names() {
        assert_eq!(Reg::Rax.name(Width::Qword), "RAX");
        assert_eq!(Reg::Rax.name(Width::Dword), "EAX");
        assert_eq!(Reg::Rax.name(Width::Word), "AX");
        assert_eq!(Reg::Rax.name(Width::Byte), "AL");
        assert_eq!(Reg::R8.name(Width::Dword), "R8D");
        assert_eq!(Reg::R10.name(Width::Byte), "R10B");
        assert_eq!(Reg::Rsi.name(Width::Byte), "SIL");
    }

    #[test]
    fn flagset_from_bits_masks_high_bits() {
        let f = FlagSet::from_bits(0xff);
        assert_eq!(f.bits(), 0x1f);
    }
}
