//! A worker host for multi-host campaign serving: dial a coordinator
//! (`revizor-serve --worker-addr=…`), register, and run assigned jobs.
//!
//! ```text
//! revizor-worker --coordinator=127.0.0.1:15791 [--name=w1] [--retry-secs=30]
//! ```
//!
//! * `--coordinator` — the coordinator's **worker** port (not the client
//!   port).
//! * `--name` — the name this worker registers under (default:
//!   `worker-<pid>`); it shows up in `revizor-submit --status` output.
//! * `--retry-secs` — how long to keep retrying a failed connect before
//!   exiting (default 30; lets workers start before the coordinator and
//!   ride out coordinator restarts).
//!
//! Workers are stateless: every wave's checkpoint is replicated to the
//! coordinator's spool before the next wave starts, so killing a worker
//! (even `kill -9`) never loses more than the wave in flight — the
//! coordinator reassigns the job and the verdicts come out byte-identical.
//! Run as many workers as you have machines; each takes one job at a time.

use rvz_bench::flag_value_from_args;
use rvz_service::{Worker, WorkerConfig};
use std::time::Duration;

fn main() {
    let Some(coordinator) = flag_value_from_args::<String>("--coordinator") else {
        eprintln!("revizor-worker: pass --coordinator=HOST:PORT (the coordinator's worker port)");
        std::process::exit(2);
    };
    let mut config = WorkerConfig::new(coordinator);
    if let Some(name) = flag_value_from_args::<String>("--name") {
        config.name = name;
    }
    if let Some(secs) = flag_value_from_args::<u64>("--retry-secs") {
        config.retry_for = Duration::from_secs(secs);
    }
    eprintln!(
        "revizor-worker: `{}` connecting to {} (retry window {:?})",
        config.name, config.coordinator, config.retry_for
    );
    match Worker::new(config).run() {
        Ok(()) => eprintln!("revizor-worker: coordinator shut us down; exiting"),
        Err(e) => {
            eprintln!("revizor-worker: coordinator unreachable: {e}");
            std::process::exit(1);
        }
    }
}
