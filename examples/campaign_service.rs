//! Serve fuzzing campaigns in-process: submit a small Table-3 slice as a
//! job, stream its progress, and verify the served verdicts are
//! byte-identical to running the matrix directly — then show job
//! priorities, cancellation, and multi-host dispatch to a worker host.
//!
//! ```text
//! cargo run --release --example campaign_service
//! ```
//!
//! The same jobs can be served over TCP: start `revizor-serve` and submit
//! with `revizor-submit` (see the README's "Campaign service" section);
//! for real multi-host serving start `revizor-serve --coordinator` plus
//! one `revizor-worker` per machine.

use revizor_suite::bench::report::matrix_cells_json;
use revizor_suite::prelude::*;

fn main() {
    // An in-process service: two shard workers, no TCP, no spool.
    let handle = ServiceHandle::start(ServiceConfig::default()).expect("service starts");

    // Target 5 (Skylake, AR+MEM+CB) against the four Table 3 contracts.
    let spec = JobSpec::new(7)
        .with_budget(60)
        .add_cell(5, "CT-SEQ")
        .add_cell(5, "CT-BPAS")
        .add_cell(5, "CT-COND")
        .add_cell(5, "CT-COND-BPAS");
    let job = handle.submit(spec.clone()).expect("job accepted");
    println!("submitted {job} ({} cells)", spec.cells.len());

    let result = handle.wait(&job).expect("job completes");
    for cell in result.get("cells").and_then(|c| c.as_array()).unwrap_or_default() {
        println!(
            "  target {} x {:<14} found: {} ({} test cases)",
            cell.get("target").and_then(|v| v.as_u64()).unwrap_or(0),
            cell.get("contract").and_then(|v| v.as_str()).unwrap_or("?"),
            cell.get("found").and_then(|v| v.as_bool()).unwrap_or(false),
            cell.get("test_cases").and_then(|v| v.as_u64()).unwrap_or(0),
        );
    }

    // The service contract: served verdicts are byte-identical to an
    // in-process matrix run of the same spec.
    let baseline = spec.to_matrix().expect("spec resolves").run();
    assert_eq!(
        result.get("cells").expect("cells present").render(),
        matrix_cells_json(&baseline).render()
    );
    println!("served verdicts match the in-process CampaignMatrix::run byte-for-byte");

    // Priorities and cancellation: a high-priority job jumps the queue;
    // a queued job can be cancelled before it ever runs.
    // The backlog job is long (target 1 always runs its whole budget), so
    // the cancel below reliably lands while it is queued or mid-run.
    let backlog = handle
        .submit(JobSpec::new(11).with_budget(2000).add_cell(1, "CT-SEQ"))
        .expect("backlog job accepted");
    let urgent = handle
        .submit(JobSpec::new(12).with_budget(20).with_priority(10).add_cell(1, "CT-SEQ"))
        .expect("urgent job accepted");
    // Queued → cancelled immediately; already claimed → cooperatively at
    // the next wave boundary.  Either way the wait returns the cancelled
    // payload and no verdicts are ever published for it.
    let phase = handle.cancel(&backlog).expect("cancel accepted");
    let cancelled = handle.wait(&backlog).expect("cancellation terminal");
    assert_eq!(cancelled.get("cancelled").and_then(|c| c.as_bool()), Some(true));
    handle.wait(&urgent).expect("urgent job completes");
    println!(
        "urgent (priority 10) {urgent} completed; {backlog} cancelled ({})",
        if phase == JobPhase::Cancelled { "while queued" } else { "cooperatively" }
    );
    handle.shutdown();

    // Multi-host mode: the same job served through a coordinator and a
    // worker host (a thread here; `revizor-worker` processes in
    // production) is byte-identical too.
    let coordinator = ServiceHandle::start(ServiceConfig {
        worker_listen: Some("127.0.0.1:0".to_string()),
        ..ServiceConfig::default()
    })
    .expect("coordinator starts");
    let worker_addr = coordinator.worker_addr().expect("worker port bound").to_string();
    let worker = std::thread::spawn(move || {
        let _ = Worker::new(WorkerConfig::new(worker_addr)).run();
    });
    let job = coordinator.submit(spec).expect("job accepted");
    let remote = coordinator.wait(&job).expect("worker-served job completes");
    assert_eq!(
        remote.get("cells").expect("cells present").render(),
        matrix_cells_json(&baseline).render()
    );
    println!("worker-host verdicts match byte-for-byte as well");
    coordinator.shutdown();
    let _ = worker.join();
}
