//! Fleet mode: the worker-host side of the worker protocol.
//!
//! A worker (`revizor-worker`) dials the coordinator's worker port,
//! registers, and then pulls **work units** one at a time: it sends
//! `lease` (heartbeating while it waits), receives a `grant` naming one
//! target group of a job plus a lease token and an optional sub-run
//! checkpoint, resolves the job's [`JobSpec`] into the unit's single-group
//! [`CampaignMatrix`], and steps the resulting
//! [`MatrixRun`](revizor::orchestrator::MatrixRun) wave by wave.  After
//! every wave it streams the sub-checkpoint (plus digest, lease token and
//! progress events) to the coordinator and blocks for the `ack` — so the
//! coordinator's spool replica is never more than one wave behind, and a
//! worker that dies mid-unit loses at most the wave it was computing.
//! When the unit's budget is exhausted it ships the final checkpoint
//! (`unit_done`) — the coordinator reconstructs the cell reports from it —
//! and leases again.
//!
//! An `ack` with `"revoked": true` (or a standalone `revoke` frame) means
//! the unit was stolen: the worker abandons it immediately and leases new
//! work.  Cancellation stays cooperative: a `cancel` frame is honored at
//! the next wave boundary, answered with a final `unit_cancelled` frame
//! carrying the stopping checkpoint.
//!
//! ## Fault injection (test-only)
//!
//! [`Worker::with_fault_hook`] installs a hook that fires at every wave
//! boundary with `(job id, wave index)` and decides a [`FaultAction`]:
//! continue, delay (models a slow host / delayed checkpoint ack), drop the
//! coordinator connection (models a network partition — the worker
//! reconnects and re-registers), or die (models a worker kill).  The chaos
//! harness (`tests/chaos.rs`) drives seeded schedules of these actions and
//! asserts the coordinator's final verdicts stay byte-identical through
//! all of them.  Production binaries never install a hook.
//!
//! [`CampaignMatrix`]: revizor::orchestrator::CampaignMatrix

use crate::core::EventCollector;
use crate::framing;
use crate::job::JobSpec;
use revizor::orchestrator::MatrixCheckpoint;
use rvz_bench::binfmt;
use rvz_bench::json::{parse, Json};
use rvz_bench::report::{
    checkpoint_transfer_to_binary, checkpoint_transfer_to_json, matrix_checkpoint_from_json,
};
use std::io::{self, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// What the fault hook tells the worker loop to do at a wave boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault: keep going.
    Continue,
    /// Sleep before proceeding (a slow host; since waves are ack-gated,
    /// this is also what a delayed checkpoint ack looks like end-to-end).
    Delay(Duration),
    /// Drop the coordinator connection mid-unit, then reconnect and
    /// re-register.  The coordinator releases the abandoned unit to the
    /// next idle worker at its last replicated checkpoint.
    DropConnection,
    /// Terminate the worker loop for good (a worker-host kill).
    Die,
}

/// The fault hook signature: `(job id, wave index about to run)`.
pub type FaultHook = Box<dyn FnMut(&str, usize) -> FaultAction + Send>;

/// Configuration of one worker host.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator worker-port address (`host:port`).
    pub coordinator: String,
    /// The name this worker registers under (shows up in job status).
    pub name: String,
    /// How long to keep retrying a failed connect (initial *and*
    /// reconnect) before giving up.  Lets workers start before the
    /// coordinator and survive coordinator restarts.
    pub retry_for: Duration,
    /// Do not advertise binary-frame support at registration
    /// (`revizor-worker --wire-format=json`): the coordinator then sends
    /// JSON grants and this worker replies with JSON wave transfers.
    /// Verdicts are format-independent, so mixed fleets stay
    /// byte-identical — the chaos harness checks exactly that.
    pub force_json: bool,
}

impl WorkerConfig {
    /// A worker config with a process-unique default name.
    pub fn new(coordinator: impl Into<String>) -> WorkerConfig {
        WorkerConfig {
            coordinator: coordinator.into(),
            name: format!("worker-{}", std::process::id()),
            retry_for: Duration::from_secs(10),
            force_json: false,
        }
    }
}

/// How a unit ended, steering the outer connection loop.
enum Flow {
    /// Unit finished / abandoned cleanly: lease again on this connection.
    Continue,
    /// The connection is unusable (or a fault dropped it): reconnect.
    Reconnect,
    /// Shut down the worker loop.
    Exit,
}

/// One message read off the coordinator connection.
enum Msg {
    /// A JSON protocol frame (grants, acks, revokes, cancels, shutdown).
    Json(Json),
    /// A parsed binary frame (a grant, when the coordinator speaks
    /// binary — control frames stay JSON in both directions).
    Binary(binfmt::Frame),
}

/// A mixed-format (JSON lines + binary frames) connection to the
/// coordinator.
struct FrameConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl FrameConn {
    /// Connect, retrying for up to `retry_for`.
    fn connect(addr: &str, retry_for: Duration) -> io::Result<FrameConn> {
        let deadline = Instant::now() + retry_for;
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => return Ok(FrameConn { stream, buf: Vec::new() }),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Send one JSON frame.
    fn send(&mut self, doc: &Json) -> io::Result<()> {
        let mut line = doc.render();
        line.push('\n');
        self.stream.write_all(line.as_bytes())
    }

    /// Send one pre-encoded frame (a `\n`-terminated JSON line or a
    /// self-delimiting binary frame).
    fn send_raw(&mut self, frame: &[u8]) -> io::Result<()> {
        self.stream.write_all(frame)
    }

    /// Pop the next complete message already buffered, if any.
    fn pop(&mut self) -> io::Result<Option<Msg>> {
        let popped =
            framing::next_frame(&mut self.buf).map_err(|e| io::Error::new(ErrorKind::InvalidData, e))?;
        match popped {
            None => Ok(None),
            Some(framing::WireFrame::Json(line)) => parse(&line)
                .map(|doc| Some(Msg::Json(doc)))
                .map_err(|e| io::Error::new(ErrorKind::InvalidData, e)),
            Some(framing::WireFrame::Binary(bytes)) => binfmt::parse_frame(&bytes)
                .map(|frame| Some(Msg::Binary(frame)))
                .map_err(|e| io::Error::new(ErrorKind::InvalidData, e)),
        }
    }

    /// Read one message, blocking until a full frame arrives.
    fn read_frame(&mut self) -> io::Result<Msg> {
        loop {
            if let Some(msg) = self.pop()? {
                return Ok(msg);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Read one message, waiting at most `wait`; `Ok(None)` on timeout
    /// (used by the lease loop to interleave heartbeats while idle).
    fn read_frame_for(&mut self, wait: Duration) -> io::Result<Option<Msg>> {
        if let Some(msg) = self.pop()? {
            return Ok(Some(msg));
        }
        let deadline = Instant::now() + wait;
        self.stream.set_read_timeout(Some(wait))?;
        let result = loop {
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => break Err(io::Error::from(ErrorKind::UnexpectedEof)),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    match self.pop() {
                        Ok(None) => {}
                        Ok(Some(msg)) => break Ok(Some(msg)),
                        Err(e) => break Err(e),
                    }
                }
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) => break Err(e),
            }
            if Instant::now() >= deadline {
                break Ok(None);
            }
        };
        self.stream.set_read_timeout(None)?;
        result
    }

    /// Read one message if one is already available, without blocking
    /// (used between waves to notice cancels and revokes promptly).
    fn try_read_frame(&mut self) -> io::Result<Option<Msg>> {
        if let Some(msg) = self.pop()? {
            return Ok(Some(msg));
        }
        // Nothing complete buffered: drain whatever the socket has.
        self.stream.set_nonblocking(true)?;
        let (_, closed) = framing::read_available(&mut self.stream, &mut self.buf);
        self.stream.set_nonblocking(false)?;
        if closed {
            return Err(ErrorKind::UnexpectedEof.into());
        }
        self.pop()
    }
}

/// One granted unit, in whichever format the coordinator spoke.
struct Grant {
    /// The grant's routing fields (`job`, `target`, `lease`, `spec`; JSON
    /// grants also carry `checkpoint` here).
    meta: Json,
    /// The binary grant frame, when the coordinator sent one — the unit's
    /// wave transfers then go back in binary too.  Its checkpoint section
    /// is decoded inside [`Worker::run_unit`] so a decode failure reports
    /// `unit_failed` exactly like an undecodable JSON checkpoint.
    frame: Option<binfmt::Frame>,
}

/// A worker host: connects to a coordinator and drives leased work units
/// (see the module docs).
pub struct Worker {
    config: WorkerConfig,
    hook: Option<FaultHook>,
}

impl Worker {
    /// A worker for the given configuration.
    pub fn new(config: WorkerConfig) -> Worker {
        Worker { config, hook: None }
    }

    /// Install a fault-injection hook (test-only; see the module docs).
    #[must_use]
    pub fn with_fault_hook(mut self, hook: FaultHook) -> Worker {
        self.hook = Some(hook);
        self
    }

    /// Run the worker loop: connect (with retries), register, and pull
    /// leased units until the coordinator shuts it down, the retry window
    /// closes with the coordinator unreachable, or a `Die` fault fires.
    ///
    /// # Errors
    /// Returns the final connect error once the retry window closes.
    pub fn run(mut self) -> io::Result<()> {
        'reconnect: loop {
            let mut conn = FrameConn::connect(&self.config.coordinator, self.config.retry_for)?;
            let register = Json::obj()
                .field("op", "register")
                .field("worker", self.config.name.as_str())
                .field("binary", !self.config.force_json);
            if conn.send(&register).is_err() {
                continue;
            }
            loop {
                // Ask for work, then wait for the grant, heartbeating so
                // the coordinator knows this idle connection is alive.
                if conn.send(&Json::obj().field("op", "lease")).is_err() {
                    continue 'reconnect;
                }
                let grant = loop {
                    match conn.read_frame_for(Duration::from_millis(250)) {
                        Ok(Some(Msg::Json(frame))) => match framing::op(&frame) {
                            Some("grant") => break Grant { meta: frame, frame: None },
                            Some("shutdown") => return Ok(()),
                            // `registered` acks and stragglers for units
                            // this worker no longer holds (stale acks,
                            // revokes, cancels) need no action.
                            _ => {}
                        },
                        Ok(Some(Msg::Binary(frame))) if frame.kind == binfmt::KIND_GRANT => {
                            match frame.json_section(binfmt::TAG_META, "grant meta") {
                                Ok(meta) => break Grant { meta, frame: Some(frame) },
                                // A grant whose meta does not decode is a
                                // protocol bug; resync on a fresh
                                // connection.
                                Err(_) => continue 'reconnect,
                            }
                        }
                        // Other binary kinds are never coordinator→worker.
                        Ok(Some(Msg::Binary(_))) => {}
                        Ok(None) => {
                            if conn.send(&Json::obj().field("op", "heartbeat")).is_err() {
                                continue 'reconnect;
                            }
                        }
                        Err(_) => continue 'reconnect,
                    }
                };
                match self.run_unit(&mut conn, &grant) {
                    Flow::Continue => {}
                    Flow::Reconnect => continue 'reconnect,
                    Flow::Exit => return Ok(()),
                }
            }
        }
    }

    /// Drive one granted unit: step its single-group sub-run, replicate,
    /// ack-gate, honor cancels, revokes and injected faults.
    fn run_unit(&mut self, conn: &mut FrameConn, grant: &Grant) -> Flow {
        let binary = grant.frame.is_some();
        let meta = &grant.meta;
        let Some(job) = meta.get("job").and_then(Json::as_str).map(str::to_string) else {
            return Flow::Continue;
        };
        let Some(target) =
            meta.get("target").and_then(Json::as_u64).and_then(|t| u8::try_from(t).ok())
        else {
            return Flow::Continue;
        };
        let Some(lease) = meta.get("lease").and_then(Json::as_u64) else {
            return Flow::Continue;
        };
        let fail = |conn: &mut FrameConn, error: &str| {
            Self::report_bad_unit(conn, &job, target, lease, error)
        };
        let spec = match meta.get("spec") {
            None => return fail(conn, "grant carries no spec"),
            Some(s) => match JobSpec::from_json(s) {
                Ok(spec) => spec,
                Err(e) => return fail(conn, &e),
            },
        };
        let checkpoint = match &grant.frame {
            Some(frame) => match frame.section(binfmt::TAG_CHECKPOINT) {
                None => None,
                Some(_) => match frame.checkpoint_section(binfmt::TAG_CHECKPOINT, "checkpoint") {
                    Ok(cp) => Some(cp),
                    Err(e) => return fail(conn, &e),
                },
            },
            None => match meta.get("checkpoint") {
                None | Some(Json::Null) => None,
                Some(cp) => match matrix_checkpoint_from_json(cp) {
                    Ok(cp) => Some(cp),
                    Err(e) => return fail(conn, &e),
                },
            },
        };
        let matrix = match spec.to_matrix() {
            Ok(matrix) => matrix,
            Err(e) => return fail(conn, &e),
        };
        // The unit is one target group of the job's matrix: resolve the
        // single-group sub-matrix whose stream this worker drives.  The
        // sub-run's seeds derive from (matrix seed, target id, index)
        // alone, so it is byte-identical to the same group inside an
        // in-process full-matrix run.
        let Some(sub) = matrix
            .group_matrices()
            .into_iter()
            .find(|m| m.cells().iter().any(|c| c.target.id == target))
        else {
            return fail(conn, &format!("spec has no cell group for target {target}"));
        };
        let mut run = match &checkpoint {
            Some(cp) => match sub.resume(cp) {
                Ok(run) => run,
                Err(e) => {
                    eprintln!("worker: {job} unit t{target}: stale checkpoint ({e}); restarting");
                    sub.start()
                }
            },
            None => sub.start(),
        };

        let mut collector = EventCollector { job: job.clone(), events: Vec::new() };
        let mut cancelled = false;
        loop {
            match self.fault(&job, run.wave()) {
                FaultAction::Continue => {}
                FaultAction::Delay(d) => std::thread::sleep(d),
                FaultAction::DropConnection => return Flow::Reconnect,
                FaultAction::Die => return Flow::Exit,
            }
            // Notice cancels and revokes that arrived since the last ack.
            loop {
                match conn.try_read_frame() {
                    Ok(None) => break,
                    Ok(Some(Msg::Json(f))) => {
                        if Self::is_revoke(&f, &job, target) {
                            return Flow::Continue; // stolen: abandon now
                        }
                        Self::note_cancel(&f, &job, &mut cancelled);
                    }
                    // Binary frames mid-unit target some other lease.
                    Ok(Some(Msg::Binary(_))) => {}
                    Err(_) => return Flow::Reconnect,
                }
            }
            if cancelled {
                let stop = Self::transfer_frame(
                    binary,
                    &job,
                    &run.checkpoint(),
                    "unit_cancelled",
                    target,
                    lease,
                    None,
                );
                return match conn.send_raw(&stop) {
                    Ok(()) => Flow::Continue,
                    Err(_) => Flow::Reconnect,
                };
            }
            let more = run.step(&mut collector);
            if !more {
                break;
            }
            // Replicate the wave and block for the coordinator's ack (the
            // spool replica stays at most one wave behind).
            let wave = run.wave();
            let transfer = Self::transfer_frame(
                binary,
                &job,
                &run.checkpoint(),
                "wave",
                target,
                lease,
                Some(std::mem::take(&mut collector.events)),
            );
            if conn.send_raw(&transfer).is_err() {
                return Flow::Reconnect;
            }
            loop {
                let reply = match conn.read_frame() {
                    Ok(Msg::Json(reply)) => reply,
                    // Binary frames are grants; none can target this unit.
                    Ok(Msg::Binary(_)) => continue,
                    Err(_) => return Flow::Reconnect,
                };
                match framing::op(&reply) {
                    Some("ack")
                        if reply.get("job").and_then(Json::as_str) == Some(job.as_str())
                            && reply.get("target").and_then(Json::as_u64)
                                == Some(u64::from(target))
                            && reply.get("wave").and_then(Json::as_u64)
                                == Some(wave as u64) =>
                    {
                        if reply.get("revoked").and_then(Json::as_bool) == Some(true) {
                            return Flow::Continue; // stolen: abandon now
                        }
                        break;
                    }
                    Some("shutdown") => return Flow::Exit,
                    _ => {
                        if Self::is_revoke(&reply, &job, target) {
                            return Flow::Continue;
                        }
                        Self::note_cancel(&reply, &job, &mut cancelled);
                    }
                }
            }
        }
        // Budget exhausted: the final checkpoint IS the unit's result —
        // the coordinator resumes it with zero steps to reconstruct the
        // exact cell reports, so no report is computed (or shipped) here.
        let done = Self::transfer_frame(
            binary,
            &job,
            &run.checkpoint(),
            "unit_done",
            target,
            lease,
            Some(std::mem::take(&mut collector.events)),
        );
        match conn.send_raw(&done) {
            Ok(()) => Flow::Continue,
            Err(_) => Flow::Reconnect,
        }
    }

    /// Encode one checkpoint transfer (`wave` / `unit_done` /
    /// `unit_cancelled`) in the unit's negotiated format, ready to write.
    fn transfer_frame(
        binary: bool,
        job: &str,
        cp: &MatrixCheckpoint,
        op: &str,
        target: u8,
        lease: u64,
        events: Option<Vec<Json>>,
    ) -> Vec<u8> {
        if binary {
            let mut meta =
                Json::obj().field("op", op).field("target", target).field("lease", lease);
            if let Some(events) = events {
                meta = meta.field("events", Json::Arr(events));
            }
            checkpoint_transfer_to_binary(job, cp, &meta)
        } else {
            let mut doc = checkpoint_transfer_to_json(job, cp)
                .field("op", op)
                .field("target", target)
                .field("lease", lease);
            if let Some(events) = events {
                doc = doc.field("events", Json::Arr(events));
            }
            let mut line = doc.render();
            line.push('\n');
            line.into_bytes()
        }
    }

    /// Is this frame a revoke for the unit this worker is driving?
    fn is_revoke(frame: &Json, job: &str, target: u8) -> bool {
        framing::op(frame) == Some("revoke")
            && frame.get("job").and_then(Json::as_str) == Some(job)
            && frame.get("target").and_then(Json::as_u64) == Some(u64::from(target))
    }

    /// Record a cancel frame for the current job.
    fn note_cancel(frame: &Json, job: &str, cancelled: &mut bool) {
        if framing::op(frame) == Some("cancel")
            && frame.get("job").and_then(Json::as_str) == Some(job)
        {
            *cancelled = true;
        }
    }

    /// Consult the fault hook (production workers always continue).
    fn fault(&mut self, job: &str, wave: usize) -> FaultAction {
        match &mut self.hook {
            Some(hook) => hook(job, wave),
            None => FaultAction::Continue,
        }
    }

    /// A unit this worker cannot run (undecodable spec or checkpoint —
    /// only a hand-edited spool can produce one): report it so the job
    /// fails visibly instead of bouncing between workers forever.
    fn report_bad_unit(
        conn: &mut FrameConn,
        job: &str,
        target: u8,
        lease: u64,
        error: &str,
    ) -> Flow {
        let failed = Json::obj()
            .field("op", "unit_failed")
            .field("job", job)
            .field("target", target)
            .field("lease", lease)
            .field("error", error);
        match conn.send(&failed) {
            Ok(()) => Flow::Continue,
            Err(_) => Flow::Reconnect,
        }
    }
}
