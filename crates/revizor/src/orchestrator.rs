//! Multi-campaign orchestration: fuzz a whole matrix of (target, contract)
//! cells — e.g. the paper's Table 3 — over **one** shared worker pool, with
//! cross-contract trace sharing.
//!
//! Hardware traces depend only on (target, test case, inputs), never on the
//! contract, so all cells that test the same target form a *cell group*
//! that shares a single test-case stream: each test case is generated once,
//! measured once ([`Executor::collect_htraces`]), and the collected traces
//! are checked against every contract of the group
//! ([`campaign::evaluate_slate`]).  Since measurement dominates the cost of
//! a test case, a four-contract group costs barely more than a single
//! campaign:
//!
//! ```text
//!   CampaignMatrix ──┬── group(Target 1) ─ stream: tc₀ tc₁ tc₂ … ──► CT-SEQ
//!                    │                       (htraces shared)    ├─► CT-BPAS
//!                    │                                           ├─► CT-COND
//!                    │                                           └─► CT-COND-BPAS
//!                    ├── group(Target 2) ─ stream: tc₀ tc₁ … ────► …
//!                    ┆
//!                    └──────────── one shared rayon pool ───────────────────
//! ```
//!
//! The scheduler interleaves (group, round) work units over the shared
//! pool.  Each unit is a pure function of `(target, configuration, seed)`
//! with the seed derived from `(matrix seed, target id, test-case index)`
//! alone, so:
//!
//! * results are identical for any `parallelism`, and
//! * a cell's verdict never changes when other cells are added to or
//!   removed from the matrix (per-contract outcomes are independent of the
//!   slate's composition — see the [`campaign`] module docs).
//!
//! Every cell stops early at its first confirmed violation; a group keeps
//! running until all of its cells have stopped or the per-group test-case
//! budget is exhausted.  Cell groups run a **fixed** generator
//! configuration (the mid-campaign parameters the detection harnesses use)
//! rather than the single-campaign diversity escalation of §5.6, which
//! would entangle the shared stream with per-contract coverage.
//!
//! [`Executor::collect_htraces`]: rvz_executor::Executor::collect_htraces

use crate::campaign::{self, CellEvent, NoopObserver, ProgressObserver, RoundEvent, SlateChecks, SlateSpec, SlateUnit};
use crate::classify::{classify, VulnClass};
use crate::fuzzer::ViolationReport;
use crate::targets::Target;
use rvz_executor::ExecutorConfig;
use rvz_gen::GeneratorConfig;
use rvz_model::Contract;
use rvz_uarch::SpecCpu;
use std::time::{Duration, Instant};

/// One cell of the testing matrix: a target fuzzed against a contract.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// The target (Table 2 column).
    pub target: Target,
    /// The contract the target is tested against.
    pub contract: Contract,
}

/// The result of one matrix cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// The cell's target.
    pub target: Target,
    /// The cell's contract.
    pub contract: Contract,
    /// The first confirmed violation, if any was found within the budget.
    pub violation: Option<ViolationReport>,
    /// Test cases of the group stream evaluated for this cell (up to and
    /// including the violating one, or the whole budget).
    pub test_cases: usize,
    /// Inputs executed across those test cases.
    pub total_inputs: usize,
    /// Evaluation time the cell's group had accumulated when this cell
    /// finished: the shared measurement cost attributed to the cell, i.e.
    /// the time an independent campaign for this cell would have needed
    /// *plus* the (small) per-contract analysis shared with its group —
    /// comparable to a per-cell detection time, and independent of how many
    /// *other* groups the matrix interleaves.  Wall clock for the whole
    /// matrix lives in [`MatrixReport::duration`]; wall-clock-since-start
    /// for live display is in [`CellEvent::elapsed`](crate::CellEvent).
    pub detection_time: Duration,
}

impl CellReport {
    /// Did the cell find a confirmed violation?
    pub fn found(&self) -> bool {
        self.violation.is_some()
    }

    /// Classification of the violation, if one was found.
    pub fn vulnerability(&self) -> Option<VulnClass> {
        self.violation.as_ref().map(|v| v.vulnerability)
    }
}

/// Summary of a matrix run.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Per-cell results, in the order the cells were added.
    pub cells: Vec<CellReport>,
    /// The matrix seed (per-cell streams derive from it, the target id and
    /// the test-case index).
    pub seed: u64,
    /// Unique (target, test case) evaluations across all cell groups — the
    /// measurement work actually performed.  The per-cell `test_cases`
    /// counters sum to more than this whenever groups share traces.
    pub test_cases: usize,
    /// Wall-clock duration of the whole matrix run.
    pub duration: Duration,
}

impl MatrixReport {
    /// The report of the cell for `(target_id, contract)`, if present.
    pub fn cell(&self, target_id: u8, contract: &Contract) -> Option<&CellReport> {
        self.cells.iter().find(|c| c.target.id == target_id && c.contract == *contract)
    }
}

/// Orchestrates a matrix of fuzzing campaigns over one shared worker pool
/// with cross-contract trace sharing (see the module docs).
///
/// # Example
///
/// ```no_run
/// use revizor::orchestrator::CampaignMatrix;
///
/// // Regenerate Table 3: 8 targets × 4 CT-* contracts over one pool.
/// let report = CampaignMatrix::table3(3).with_budget(200).with_parallelism(4).run();
/// for cell in &report.cells {
///     println!("Target {} × {}: {}", cell.target.id, cell.contract, cell.found());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct CampaignMatrix {
    cells: Vec<MatrixCell>,
    seed: u64,
    budget: usize,
    round_size: usize,
    parallelism: usize,
    inputs_per_test_case: usize,
    repetitions: usize,
    basic_blocks: usize,
    instructions: usize,
    branch_then_load_bias: bool,
}

impl CampaignMatrix {
    /// An empty matrix.  The defaults mirror the detection harnesses of
    /// §6.5: mid-campaign generator parameters (4 basic blocks, 14
    /// instructions, 20 inputs per test case), fast executor settings
    /// (2 repetitions), a budget of 200 test cases per cell group, rounds
    /// of 10, and a single worker thread.
    pub fn new(seed: u64) -> CampaignMatrix {
        CampaignMatrix {
            cells: Vec::new(),
            seed,
            budget: 200,
            round_size: 10,
            parallelism: 1,
            inputs_per_test_case: 20,
            repetitions: 2,
            basic_blocks: 4,
            instructions: 14,
            branch_then_load_bias: true,
        }
    }

    /// The full Table 3 matrix: every target of Table 2 against every CT-*
    /// contract.
    pub fn table3(seed: u64) -> CampaignMatrix {
        let mut matrix = CampaignMatrix::new(seed);
        for target in Target::all() {
            for contract in Contract::table3_contracts() {
                matrix = matrix.add_cell(target.clone(), contract);
            }
        }
        matrix
    }

    /// Add one (target, contract) cell.  Cells of the same target share one
    /// test-case stream and its hardware traces.
    pub fn add_cell(mut self, target: Target, contract: Contract) -> CampaignMatrix {
        self.cells.push(MatrixCell { target, contract });
        self
    }

    /// Add one target against several contracts.
    pub fn add_cells(
        mut self,
        target: Target,
        contracts: impl IntoIterator<Item = Contract>,
    ) -> CampaignMatrix {
        for contract in contracts {
            self = self.add_cell(target.clone(), contract);
        }
        self
    }

    /// Builder: maximum test cases per cell group.
    pub fn with_budget(mut self, budget: usize) -> CampaignMatrix {
        self.budget = budget.max(1);
        self
    }

    /// Builder: test cases per scheduling round.
    pub fn with_round_size(mut self, round_size: usize) -> CampaignMatrix {
        self.round_size = round_size.max(1);
        self
    }

    /// Builder: worker threads of the shared pool (`0` and `1` both mean
    /// single-threaded).  Results are identical for any value.
    pub fn with_parallelism(mut self, parallelism: usize) -> CampaignMatrix {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Builder: inputs generated per test case.
    pub fn with_inputs_per_test_case(mut self, n: usize) -> CampaignMatrix {
        self.inputs_per_test_case = n.max(2);
        self
    }

    /// Builder: measurement repetitions per input sequence.
    pub fn with_repetitions(mut self, repetitions: usize) -> CampaignMatrix {
        self.repetitions = repetitions.max(1);
        self
    }

    /// Builder: generator size parameters (basic blocks, instructions).
    pub fn with_generator_size(mut self, basic_blocks: usize, instructions: usize) -> CampaignMatrix {
        self.basic_blocks = basic_blocks.max(1);
        self.instructions = instructions;
        self
    }

    /// Builder: enable or disable the branch-then-load placement bias of
    /// the generator (on by default — see
    /// [`GeneratorConfig::branch_then_load_bias`]).
    pub fn with_branch_then_load_bias(mut self, bias: bool) -> CampaignMatrix {
        self.branch_then_load_bias = bias;
        self
    }

    /// The cells added so far.
    pub fn cells(&self) -> &[MatrixCell] {
        &self.cells
    }

    /// The worker configuration for one cell group.
    fn spec_for(&self, target: &Target, contracts: Vec<Contract>) -> SlateSpec {
        let mut generator = GeneratorConfig::for_subset(target.isa)
            .with_basic_blocks(self.basic_blocks)
            .with_instructions(self.instructions)
            .with_branch_then_load_bias(self.branch_then_load_bias);
        generator.inputs_per_test_case = self.inputs_per_test_case;
        SlateSpec {
            generator,
            executor: ExecutorConfig::fast(target.mode).with_repetitions(self.repetitions),
            checks: SlateChecks::all(),
            contracts,
        }
    }

    /// Run the matrix.
    pub fn run(&self) -> MatrixReport {
        self.run_with_observer(&mut NoopObserver)
    }

    /// Run the matrix, reporting live progress (completed rounds per cell
    /// group, finished cells) to `observer`.  Events are delivered from the
    /// driving thread in deterministic order and do not affect results.
    pub fn run_with_observer(&self, observer: &mut dyn ProgressObserver) -> MatrixReport {
        let start = Instant::now();
        let round_size = self.round_size.max(1);

        // Group the cells by target; each group shares one test-case
        // stream.  Groups keep matrix insertion order, cells keep their
        // index into `self.cells` so the final report preserves order.
        struct GroupCell {
            cell_idx: usize,
            contract: Contract,
            report: Option<CellReport>,
        }
        struct Group {
            target: Target,
            cells: Vec<GroupCell>,
            next_index: usize,
            test_cases: usize,
            total_inputs: usize,
            round: usize,
            /// Accumulated unit-evaluation time of this group's stream.
            work: Duration,
        }
        let mut groups: Vec<Group> = Vec::new();
        for (cell_idx, cell) in self.cells.iter().enumerate() {
            let gc = GroupCell { cell_idx, contract: cell.contract.clone(), report: None };
            match groups.iter_mut().find(|g| g.target == cell.target) {
                Some(g) => g.cells.push(gc),
                None => groups.push(Group {
                    target: cell.target.clone(),
                    cells: vec![gc],
                    next_index: 0,
                    test_cases: 0,
                    total_inputs: 0,
                    round: 0,
                    work: Duration::ZERO,
                }),
            }
        }
        let templates: Vec<SpecCpu> = groups.iter().map(|g| g.target.cpu()).collect();

        // The one shared pool all groups' work units fan out over.
        let pool = (self.parallelism > 1).then(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(self.parallelism)
                .build()
                .expect("failed to spawn matrix worker threads")
        });

        loop {
            // Build the wave: one round of (index → seed) work units per
            // group that still has unfinished cells and remaining budget.
            // The slate (and with it the per-unit work) is fixed at round
            // boundaries, which keeps results independent of scheduling.
            let mut wave: Vec<(usize, u64)> = Vec::new();
            let mut wave_specs: Vec<Option<SlateSpec>> = groups.iter().map(|_| None).collect();
            let mut wave_cells: Vec<Vec<usize>> = groups.iter().map(|_| Vec::new()).collect();
            let mut wave_counts: Vec<usize> = groups.iter().map(|_| 0).collect();
            for (gi, group) in groups.iter().enumerate() {
                let active: Vec<usize> = (0..group.cells.len())
                    .filter(|&ci| group.cells[ci].report.is_none())
                    .collect();
                if active.is_empty() || group.next_index >= self.budget {
                    continue;
                }
                let end = (group.next_index + round_size).min(self.budget);
                let contracts: Vec<Contract> =
                    active.iter().map(|&ci| group.cells[ci].contract.clone()).collect();
                wave_specs[gi] = Some(self.spec_for(&group.target, contracts));
                wave_cells[gi] = active;
                wave_counts[gi] = end - group.next_index;
                for index in group.next_index..end {
                    wave.push((gi, unit_seed(self.seed, group.target.id, index)));
                }
            }
            if wave.is_empty() {
                break;
            }

            // Evaluate the whole wave; each unit is independent.  Per-unit
            // evaluation time is recorded so cells can report their group's
            // attributed cost rather than matrix-wide wall clock.
            let specs = &wave_specs;
            let cpus = &templates;
            let eval = move |(gi, seed): (usize, u64)| -> (usize, Option<SlateUnit>, Duration) {
                let spec = specs[gi].as_ref().expect("scheduled group has a spec");
                let t0 = Instant::now();
                let unit = campaign::evaluate_seed(&cpus[gi], spec, seed);
                (gi, unit, t0.elapsed())
            };
            let units: Vec<(usize, Option<SlateUnit>, Duration)> = match &pool {
                None => wave.into_iter().map(eval).collect(),
                Some(pool) => pool.install(|| {
                    use rayon::prelude::*;
                    wave.into_par_iter().map(eval).collect()
                }),
            };

            // Merge in deterministic order: the wave lists each scheduled
            // group's indices contiguously and in stream order.
            let mut cursor = 0usize;
            for (gi, scheduled) in wave_counts.iter().enumerate() {
                if *scheduled == 0 {
                    continue;
                }
                let group = &mut groups[gi];
                for (_, unit, unit_time) in &units[cursor..cursor + scheduled] {
                    group.next_index += 1;
                    group.work += *unit_time;
                    // Malformed test cases are skipped (never happens for
                    // generated code).
                    let Some(unit) = unit else { continue };
                    group.test_cases += 1;
                    group.total_inputs += unit.inputs.len();
                    for (k, outcome) in unit.outcomes.iter().enumerate() {
                        let cell = &mut group.cells[wave_cells[gi][k]];
                        if cell.report.is_some() || outcome.confirmed_violation.is_none() {
                            continue;
                        }
                        // First confirmed violation for this cell: the cell
                        // finishes; later stream test cases no longer count
                        // toward it.
                        let vulnerability = classify(&group.target, &outcome.contract, &unit.tc);
                        let violation = ViolationReport {
                            test_case: unit.tc.clone(),
                            inputs: unit.inputs.clone(),
                            violation: outcome
                                .confirmed_violation
                                .clone()
                                .expect("checked above"),
                            contract: outcome.contract.clone(),
                            test_case_seed: unit.seed,
                            vulnerability,
                            test_cases_until_detection: group.test_cases,
                            inputs_until_detection: group.total_inputs,
                        };
                        observer.cell_finished(&CellEvent {
                            target_id: group.target.id,
                            contract: outcome.contract.clone(),
                            found: true,
                            vulnerability: Some(vulnerability),
                            test_cases: group.test_cases,
                            elapsed: start.elapsed(),
                        });
                        cell.report = Some(CellReport {
                            target: group.target.clone(),
                            contract: outcome.contract.clone(),
                            violation: Some(violation),
                            test_cases: group.test_cases,
                            total_inputs: group.total_inputs,
                            detection_time: group.work,
                        });
                    }
                }
                cursor += scheduled;
                group.round += 1;
                observer.round_completed(&RoundEvent {
                    target_id: Some(group.target.id),
                    round: group.round,
                    test_cases: group.test_cases,
                    escalations: 0,
                });
            }
        }

        // Budget exhausted (or the matrix was empty): close the remaining
        // cells without a violation.
        for group in &mut groups {
            for cell in &mut group.cells {
                if cell.report.is_none() {
                    observer.cell_finished(&CellEvent {
                        target_id: group.target.id,
                        contract: cell.contract.clone(),
                        found: false,
                        vulnerability: None,
                        test_cases: group.test_cases,
                        elapsed: start.elapsed(),
                    });
                    cell.report = Some(CellReport {
                        target: group.target.clone(),
                        contract: cell.contract.clone(),
                        violation: None,
                        test_cases: group.test_cases,
                        total_inputs: group.total_inputs,
                        detection_time: group.work,
                    });
                }
            }
        }

        // Reassemble the reports in cell insertion order.
        let test_cases = groups.iter().map(|g| g.test_cases).sum();
        let mut slots: Vec<Option<CellReport>> = self.cells.iter().map(|_| None).collect();
        for group in groups {
            for cell in group.cells {
                slots[cell.cell_idx] = cell.report;
            }
        }
        MatrixReport {
            cells: slots.into_iter().map(|s| s.expect("every cell closed")).collect(),
            seed: self.seed,
            test_cases,
            duration: start.elapsed(),
        }
    }
}

/// The campaign seed of one (target, test-case index) work unit: a
/// splitmix64-style mix of the matrix seed, the target id and the index.
/// Streams are deterministic per target regardless of `parallelism` and of
/// which other cells are in the matrix.
fn unit_seed(matrix_seed: u64, target_id: u8, index: usize) -> u64 {
    let mut x = matrix_seed
        ^ u64::from(target_id).wrapping_mul(0xA076_1D64_78BD_642F)
        ^ (index as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_matrix(parallelism: usize) -> CampaignMatrix {
        CampaignMatrix::new(7)
            .with_budget(60)
            .with_parallelism(parallelism)
            .add_cells(Target::target5(), Contract::table3_contracts())
    }

    /// Everything except the wall-clock fields.
    fn verdicts(report: &MatrixReport) -> Vec<(u8, String, Option<u64>, usize, usize)> {
        report
            .cells
            .iter()
            .map(|c| {
                (
                    c.target.id,
                    c.contract.name(),
                    c.violation.as_ref().map(|v| v.test_case_seed),
                    c.test_cases,
                    c.total_inputs,
                )
            })
            .collect()
    }

    #[test]
    fn table3_matrix_has_32_cells() {
        let m = CampaignMatrix::table3(3);
        assert_eq!(m.cells().len(), 32);
    }

    #[test]
    fn target5_group_reproduces_its_table3_row() {
        let report = small_matrix(1).run();
        assert!(report.cell(5, &Contract::ct_seq()).unwrap().found(), "V1 violates CT-SEQ");
        assert!(report.cell(5, &Contract::ct_bpas()).unwrap().found(), "V1 violates CT-BPAS");
        assert!(!report.cell(5, &Contract::ct_cond()).unwrap().found());
        assert!(!report.cell(5, &Contract::ct_cond_bpas()).unwrap().found());
        let v = report.cell(5, &Contract::ct_seq()).unwrap().violation.as_ref().unwrap();
        assert_eq!(v.vulnerability, VulnClass::SpectreV1);
        // The four cells share one stream: the group's measurement count is
        // the longest cell's, not the sum.
        assert_eq!(report.test_cases, 60);
    }

    #[test]
    fn matrix_results_are_parallelism_invariant() {
        let sequential = small_matrix(1).run();
        for parallelism in [2usize, 4] {
            let parallel = small_matrix(parallelism).run();
            assert_eq!(verdicts(&sequential), verdicts(&parallel), "parallelism {parallelism}");
        }
    }

    #[test]
    fn cell_verdicts_are_unchanged_by_unrelated_cells() {
        let alone = CampaignMatrix::new(7)
            .with_budget(60)
            .add_cell(Target::target5(), Contract::ct_seq())
            .run();
        // Add cells of another target *and* more contracts of the same
        // target: neither may change the CT-SEQ cell's verdict.
        let crowded = CampaignMatrix::new(7)
            .with_budget(60)
            .add_cell(Target::target5(), Contract::ct_seq())
            .add_cell(Target::target1(), Contract::ct_seq())
            .add_cells(Target::target5(), [Contract::ct_cond(), Contract::ct_bpas()])
            .run();
        let a = alone.cell(5, &Contract::ct_seq()).unwrap();
        let b = crowded.cell(5, &Contract::ct_seq()).unwrap();
        assert_eq!(a.found(), b.found());
        assert_eq!(a.test_cases, b.test_cases);
        assert_eq!(a.total_inputs, b.total_inputs);
        assert_eq!(
            a.violation.as_ref().map(|v| v.test_case_seed),
            b.violation.as_ref().map(|v| v.test_case_seed)
        );
    }

    #[test]
    fn observer_sees_rounds_and_cells() {
        struct Recorder {
            rounds: usize,
            cells: Vec<(u8, String, bool)>,
        }
        impl ProgressObserver for Recorder {
            fn round_completed(&mut self, _event: &RoundEvent) {
                self.rounds += 1;
            }
            fn cell_finished(&mut self, event: &CellEvent) {
                self.cells.push((event.target_id, event.contract.name(), event.found));
            }
        }
        let mut rec = Recorder { rounds: 0, cells: Vec::new() };
        let report = small_matrix(1).run_with_observer(&mut rec);
        assert!(rec.rounds >= 1);
        assert_eq!(rec.cells.len(), report.cells.len());
        assert_eq!(rec.cells.iter().filter(|(_, _, found)| *found).count(), 2);
    }

    #[test]
    fn empty_matrix_finishes_immediately() {
        let report = CampaignMatrix::new(1).run();
        assert!(report.cells.is_empty());
        assert_eq!(report.test_cases, 0);
    }

    #[test]
    fn unit_seed_streams_are_target_scoped() {
        // Different targets draw from disjoint-looking streams; the same
        // (target, index) always maps to the same seed.
        assert_eq!(unit_seed(3, 5, 0), unit_seed(3, 5, 0));
        assert_ne!(unit_seed(3, 5, 0), unit_seed(3, 5, 1));
        assert_ne!(unit_seed(3, 5, 0), unit_seed(3, 4, 0));
        assert_ne!(unit_seed(3, 5, 0), unit_seed(4, 5, 0));
    }
}
