//! Measurement modes and the noise model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which cache attack the executor performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SideChannelKind {
    /// Prime+Probe on the L1D cache (the paper's default).
    PrimeProbe,
    /// Flush+Reload on the sandbox lines.
    FlushReload,
    /// Evict+Reload on the sandbox lines.
    EvictReload,
}

impl fmt::Display for SideChannelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SideChannelKind::PrimeProbe => "Prime+Probe",
            SideChannelKind::FlushReload => "Flush+Reload",
            SideChannelKind::EvictReload => "Evict+Reload",
        };
        f.write_str(s)
    }
}

/// A measurement mode: a cache attack, optionally with microcode assists
/// (the `*+Assist` modes of §5.3, used for the MDS/LVI experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MeasurementMode {
    /// The cache attack performed.
    pub channel: SideChannelKind,
    /// Whether the accessed-bit of a sandbox page is cleared before each
    /// run so that the first access triggers a microcode assist.
    pub assists: bool,
}

impl MeasurementMode {
    /// `Prime+Probe` (Targets 1-6 of Table 2).
    pub fn prime_probe() -> MeasurementMode {
        MeasurementMode { channel: SideChannelKind::PrimeProbe, assists: false }
    }

    /// `Prime+Probe+Assist` (Targets 7-8 of Table 2).
    pub fn prime_probe_assist() -> MeasurementMode {
        MeasurementMode { channel: SideChannelKind::PrimeProbe, assists: true }
    }

    /// `Flush+Reload`.
    pub fn flush_reload() -> MeasurementMode {
        MeasurementMode { channel: SideChannelKind::FlushReload, assists: false }
    }

    /// `Evict+Reload`.
    pub fn evict_reload() -> MeasurementMode {
        MeasurementMode { channel: SideChannelKind::EvictReload, assists: false }
    }

    /// Enable microcode assists on this mode.
    pub fn with_assists(mut self) -> MeasurementMode {
        self.assists = true;
        self
    }
}

impl fmt::Display for MeasurementMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.channel)?;
        if self.assists {
            write!(f, "+Assist")?;
        }
        Ok(())
    }
}

impl Default for MeasurementMode {
    fn default() -> Self {
        MeasurementMode::prime_probe()
    }
}

/// Synthetic measurement-noise model.
///
/// The real executor fights noise from prefetchers, SMIs and neighbouring
/// processes (CH5).  The simulator is deterministic, so the executor
/// injects equivalent disturbances on demand — this keeps the paper's
/// filtering pipeline (repetition, outlier discard, trace union, SMI
/// discard) honest and testable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Probability that a sample gains one spurious cache set (e.g. a
    /// prefetch or an unrelated eviction).
    pub one_off_probability: f64,
    /// Probability that a sample is polluted by a System Management
    /// Interrupt and must be discarded.
    pub smi_probability: f64,
    /// Seed for the noise PRNG (noise is reproducible).
    pub seed: u64,
}

impl NoiseConfig {
    /// No noise at all.
    pub fn none() -> NoiseConfig {
        NoiseConfig { one_off_probability: 0.0, smi_probability: 0.0, seed: 0 }
    }

    /// A realistic low-noise environment: occasional one-off outliers and
    /// rare SMIs.
    pub fn realistic(seed: u64) -> NoiseConfig {
        NoiseConfig { one_off_probability: 0.02, smi_probability: 0.01, seed }
    }

    /// Is any noise enabled?
    pub fn is_enabled(&self) -> bool {
        self.one_off_probability > 0.0 || self.smi_probability > 0.0
    }

    /// Derive the noise stream for one test case of a campaign from the
    /// test case's seed.
    ///
    /// Campaign round workers and the sequential replay APIs
    /// (`Revizor::test_case`) must share this derivation: it makes the
    /// stream a function of the test case alone, so a measurement does not
    /// depend on which worker — or after how many other test cases — it
    /// runs, and a campaign violation reproduces exactly when replayed.
    #[must_use]
    pub fn for_test_case_seed(mut self, test_case_seed: u64) -> NoiseConfig {
        if self.is_enabled() {
            self.seed ^= test_case_seed.rotate_left(17);
        }
        self
    }
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names() {
        assert_eq!(format!("{}", MeasurementMode::prime_probe()), "Prime+Probe");
        assert_eq!(format!("{}", MeasurementMode::prime_probe_assist()), "Prime+Probe+Assist");
        assert_eq!(format!("{}", MeasurementMode::flush_reload()), "Flush+Reload");
        assert_eq!(format!("{}", MeasurementMode::evict_reload().with_assists()), "Evict+Reload+Assist");
    }

    #[test]
    fn default_mode_is_prime_probe() {
        assert_eq!(MeasurementMode::default(), MeasurementMode::prime_probe());
        assert!(!MeasurementMode::default().assists);
    }

    #[test]
    fn noise_config_flags() {
        assert!(!NoiseConfig::none().is_enabled());
        assert!(NoiseConfig::realistic(1).is_enabled());
        assert_eq!(NoiseConfig::default(), NoiseConfig::none());
    }

    #[test]
    fn per_test_case_noise_derivation() {
        let base = NoiseConfig::realistic(5);
        assert_eq!(base.for_test_case_seed(1), base.for_test_case_seed(1));
        assert_ne!(base.for_test_case_seed(1).seed, base.for_test_case_seed(2).seed);
        // Disabled noise keeps its (unused) seed untouched.
        assert_eq!(NoiseConfig::none().for_test_case_seed(9), NoiseConfig::none());
    }
}
